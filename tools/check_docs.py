"""Executable-documentation checks: run doc snippets, lint docstrings.

Two jobs, both wired into CI (and into the tier-1 suite via
``tests/test_docs.py``) so documentation cannot rot:

1. **Snippet execution** — every fenced ```` ```python ```` block in
   ``README.md`` and ``docs/*.md`` is executed, top to bottom, with the
   blocks of one document sharing a namespace (so a later block can use
   names defined by an earlier one).  Blocks fenced as
   ```` ```python no-run ```` are syntax-checked but not executed —
   reserve that for snippets needing hardware or long wall-clock.

2. **Docstring lint** — the public API must carry real docstrings, and
   the documented numpy-style surfaces must keep their section headers
   (``Parameters``/``Returns``/``Attributes``), shapes and determinism
   notes from silently disappearing in refactors.

Run from the repo root:

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
import traceback
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

FENCE_RE = re.compile(r"^```(\S+)?(.*)$")

#: Public API callables that must have a substantive docstring.
#: Entries are (module, attribute path) pairs.
PUBLIC_API = [
    ("repro.core.transpile", "transpile"),
    ("repro.core.transpile", "transpile_many"),
    ("repro.core.transpile", "compare_methods"),
    ("repro.core.results", "TranspileResult"),
    ("repro.core.results", "BatchResult"),
    ("repro.polytopes.coverage", "CoverageSet.cost_of"),
    ("repro.polytopes.coverage", "CoverageSet.cost_of_many"),
    ("repro.polytopes.coverage", "CoverageSet.mirror_cost_of_many"),
    ("repro.polytopes.coverage", "CoverageSet.depth_of_many"),
    ("repro.weyl.coordinates", "weyl_coordinates"),
    ("repro.weyl.coordinates", "weyl_coordinates_many"),
    ("repro.transpiler.executors", "TrialExecutor.map"),
    ("repro.transpiler.executors", "TrialExecutor.map_shared"),
    ("repro.transpiler.executors", "TrialExecutor.open_dispatch"),
    ("repro.transpiler.executors", "DispatchSession"),
    ("repro.transpiler.executors", "PayloadHandle"),
    ("repro.transpiler.executors", "shm_transport_enabled"),
    ("repro.transpiler.executors", "zero_copy_enabled"),
    ("repro.transpiler.executors", "zero_copy_inline_max"),
    ("repro.transpiler.kernel.intdag", "IntDAG"),
    ("repro.transpiler.kernel.intdag", "int_dag"),
    ("repro.transpiler.kernel.neighbors", "NeighborTable"),
    ("repro.transpiler.kernel.neighbors", "neighbor_table"),
    ("repro.transpiler.kernel.route", "route_kernel"),
    ("repro.transpiler.kernel.route", "route_kernel_mode"),
    ("repro.transpiler.passes.sabre_layout", "run_trial"),
    ("repro.core.pipeline", "run_plan"),
    ("repro.core.pipeline", "PlanSpec"),
    ("repro.exceptions", "TransportError"),
    ("repro.transpiler.executors", "task_timeout"),
    ("repro.transpiler.executors", "task_retries"),
    ("repro.transpiler.faults", "FaultPlan"),
    ("repro.transpiler.faults", "FaultPlan.chunk_faults"),
    ("repro.transpiler.faults", "ChunkFaults"),
    ("repro.transpiler.faults", "parse_fault_plan"),
    ("repro.transpiler.faults", "reap_stale_segments"),
    ("repro.transpiler.faults", "InjectedWorkerCrash"),
    ("repro.transpiler.faults", "CorruptResultError"),
    ("repro.service.service", "MirageService"),
    ("repro.service.service", "MirageService.submit"),
    ("repro.service.service", "MirageService.stats"),
    ("repro.service.service", "MirageService.aclose"),
    ("repro.service.service", "ServiceClient"),
    ("repro.service.service", "service_window_ms"),
    ("repro.polytopes.registry", "CoverageRegistry"),
    ("repro.polytopes.registry", "CoverageRegistry.get"),
    ("repro.polytopes.registry", "RegistryHandle"),
    ("repro.core.pipeline", "resolve_coverage"),
    ("repro.transpiler.executors", "TrialExecutor.lease"),
    ("repro.transpiler.executors", "TrialExecutor.prewarm"),
    ("repro.exceptions", "InvalidModeError"),
    ("repro.exceptions", "ServiceError"),
    ("repro.exceptions", "ServiceOverloadError"),
    ("repro.exceptions", "ServiceClosedError"),
    ("repro.exceptions", "DeadlineExceededError"),
    ("repro.transpiler.faults", "FaultPlan.service_fault"),
    ("repro.transpiler.faults", "FaultPlan.network_fault"),
    ("repro.transpiler.remote.client", "RemoteExecutor"),
    ("repro.transpiler.remote.client", "RemoteExecutor.prewarm"),
    ("repro.transpiler.remote.client", "RemoteExecutor.host_meta"),
    ("repro.transpiler.remote.host", "WorkerHost"),
    ("repro.transpiler.remote.host", "WorkerHost.serve_forever"),
    ("repro.transpiler.remote.protocol", "HostAddress"),
    ("repro.transpiler.remote.protocol", "FrameReader"),
    ("repro.transpiler.remote.protocol", "write_frame"),
    ("repro.transpiler.remote.protocol", "read_frame"),
    ("repro.transpiler.remote.protocol", "parse_hosts"),
    ("repro.transpiler.remote.protocol", "remote_heartbeat_s"),
    ("repro.transpiler.executors", "plan_park_enabled"),
    ("repro.transpiler.executors", "park_payload"),
    ("repro.core.pipeline", "run_plan_parked"),
    ("repro.exceptions", "RemoteTransportError"),
    ("repro.exceptions", "GarbledFrameError"),
    ("repro.exceptions", "ProtocolVersionError"),
]

#: Subset that must keep numpy-style section headers.
NUMPY_STYLE = {
    "repro.core.transpile.transpile_many",
    "repro.core.results.TranspileResult",
    "repro.core.results.BatchResult",
    "repro.polytopes.coverage.CoverageSet.cost_of_many",
    "repro.polytopes.coverage.CoverageSet.mirror_cost_of_many",
    "repro.polytopes.coverage.CoverageSet.depth_of_many",
    "repro.weyl.coordinates.weyl_coordinates_many",
    "repro.service.service.MirageService",
    "repro.polytopes.registry.CoverageRegistry",
}

NUMPY_SECTIONS = ("Parameters", "Returns", "Attributes")


def extract_blocks(path: Path) -> list[tuple[int, str, bool]]:
    """Pull fenced python blocks out of a markdown file.

    Returns ``(first_line_number, source, runnable)`` triples; blocks
    fenced with an extra ``no-run`` word are marked non-runnable.
    """
    blocks: list[tuple[int, str, bool]] = []
    lines = path.read_text().splitlines()
    inside = False
    runnable = True
    start = 0
    buffer: list[str] = []
    for number, line in enumerate(lines, start=1):
        match = FENCE_RE.match(line.strip())
        if match is None:
            if inside:
                buffer.append(line)
            continue
        if not inside:
            language = (match.group(1) or "").lower()
            if language == "python":
                inside = True
                runnable = "no-run" not in (match.group(2) or "")
                start = number + 1
                buffer = []
            continue
        blocks.append((start, "\n".join(buffer), runnable))
        inside = False
    if inside:
        # A missing closing fence must not silently drop the block — keep
        # it so the snippet still gets compiled/executed (and fails loudly
        # if the truncation broke it).
        blocks.append((start, "\n".join(buffer), runnable))
    return blocks


def run_document(path: Path) -> list[str]:
    """Execute every runnable block of one document in one namespace."""
    errors: list[str] = []
    namespace: dict = {"__name__": f"docsnippet:{path.name}"}
    for lineno, source, runnable in extract_blocks(path):
        label = f"{path.relative_to(REPO_ROOT)}:{lineno}"
        try:
            code = compile(source, label, "exec")
        except SyntaxError:
            errors.append(f"{label}: snippet does not parse\n"
                          f"{traceback.format_exc(limit=0)}")
            continue
        if not runnable:
            continue
        try:
            exec(code, namespace)
        except Exception:
            errors.append(f"{label}: snippet raised\n"
                          f"{traceback.format_exc(limit=3)}")
    return errors


def _resolve(module_name: str, attribute_path: str):
    module = __import__(module_name, fromlist=["_"])
    target = module
    for part in attribute_path.split("."):
        target = getattr(target, part)
    return target


def lint_docstrings() -> list[str]:
    """Check the public API carries substantive (and styled) docstrings."""
    errors: list[str] = []
    for module_name, attribute_path in PUBLIC_API:
        qualified = f"{module_name}.{attribute_path}"
        try:
            target = _resolve(module_name, attribute_path)
        except (ImportError, AttributeError) as exc:
            errors.append(f"{qualified}: cannot resolve ({exc})")
            continue
        doc = target.__doc__ or ""
        if len(doc.strip()) < 40:
            errors.append(f"{qualified}: missing or trivial docstring")
            continue
        if qualified in NUMPY_STYLE and not any(
            section in doc for section in NUMPY_SECTIONS
        ):
            errors.append(
                f"{qualified}: expected a numpy-style section header "
                f"({'/'.join(NUMPY_SECTIONS)})"
            )
    return errors


def documentation_files() -> list[Path]:
    docs = sorted((REPO_ROOT / "docs").glob("*.md"))
    return [REPO_ROOT / "README.md", *docs]


def main() -> int:
    failures: list[str] = []
    for path in documentation_files():
        if not path.exists():
            failures.append(f"{path}: missing documentation file")
            continue
        count = len(extract_blocks(path))
        print(f"[snippets] {path.relative_to(REPO_ROOT)}: {count} block(s)")
        failures.extend(run_document(path))
    failures.extend(lint_docstrings())
    if failures:
        print(f"\n{len(failures)} documentation failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"- {failure}", file=sys.stderr)
        return 1
    print("documentation OK: snippets execute, public API is documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
