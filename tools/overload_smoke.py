"""Overload smoke driver: quotas + deadlines + breaker + drain in one run.

CI's ``overload`` job runs this script under a matrix of fault plans
(clean control, worker kills, deterministic breaker trips).  It drives a
multi-tenant burst through one ``MirageService`` and asserts the whole
overload contract end to end:

* concurrent tenants over quota are shed with ``ServiceOverloadError``
  (and a positive ``retry_after_ms``) while admitted requests — including
  the other tenant's — complete **byte-identical** to direct
  ``transpile()`` calls at the same seed;
* expiring deadlines fail only their own request with
  ``DeadlineExceededError`` and are counted in ``deadline_expirations``;
* injected worker kills are recovered (``respawns`` recorded) and
  injected breaker trips walk the breaker state machine, serving the
  next window degraded but still byte-identical;
* after ``aclose()`` nothing leaks: no pending requests, no live
  ``mirage_shm_*`` segments.

Run from the repo root (optionally under a fault plan):

    MIRAGE_FAULT_PLAN="kill:trial:1,trip_breaker:window:0" \
        PYTHONPATH=src python tools/overload_smoke.py
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
from pathlib import Path

from repro.circuits.library import ghz, qft
from repro.core.transpile import transpile
from repro.exceptions import (
    DeadlineExceededError,
    ServiceClosedError,
    ServiceOverloadError,
)
from repro.polytopes.coverage import get_coverage_set
from repro.service import MirageService
from repro.transpiler.topologies import line_topology

COVERAGE_PARAMS = dict(num_samples=150, seed=3)
KNOBS = dict(use_vf2=False, layout_trials=2)
TOPOLOGY = line_topology(5)

#: (tenant, circuit factory, width, seed) — two tenants, shared window.
ADMITTED = [
    ("hot", ghz, 4, 101),
    ("hot", qft, 4, 102),
    ("cold", ghz, 5, 201),
    ("cold", qft, 5, 202),
]


def fingerprint(result):
    return (
        [(instr.gate.name, instr.qubits) for instr in result.circuit],
        result.initial_layout.virtual_to_physical(),
        result.final_layout.virtual_to_physical(),
        result.swaps_added,
        result.mirrors_accepted,
        result.trial_index,
    )


def leaked_segments() -> list[str]:
    shm = Path("/dev/shm")
    if not shm.exists():
        return []
    return sorted(p.name for p in shm.glob("mirage_shm_*"))


async def drive(plan: str) -> dict:
    service = MirageService(
        executor="processes",
        max_workers=2,
        window_ms=150.0,
        tenant_quota=2,
        # Longer than the admission window, so a tripped breaker is still
        # open (not half-open) when the follow-up window dispatches.
        breaker_cooldown_s=5.0,
        coverage_params=COVERAGE_PARAMS,
        prewarm=False,
    )
    await asyncio.to_thread(service.executor.prewarm)

    tasks = []
    for tenant, factory, width, seed in ADMITTED:
        tasks.append(asyncio.ensure_future(service.submit(
            factory(width), TOPOLOGY, seed=seed, tenant=tenant, **KNOBS)))
    # A deadline that expires while parked in the 150 ms window: the
    # safety timer must fail it without touching its window siblings.
    doomed = asyncio.ensure_future(service.submit(
        qft(4), TOPOLOGY, seed=301, tenant="deadline", deadline_ms=1.0, **KNOBS))
    # The doomed request expires ~1 ms after admission (releasing its
    # pending slot), so synchronise on the hot tenant's quota being full
    # rather than on the total pending count.
    while service.stats()["tenant_pending"].get("hot", 0) < 2:
        await asyncio.sleep(0.002)

    # Concurrent over-quota pressure from the hot tenant: both rejected,
    # neither starves the cold tenant's admitted work.
    shed = 0
    for seed in (103, 104):
        try:
            await service.submit(ghz(4), TOPOLOGY, seed=seed,
                                 tenant="hot", **KNOBS)
        except ServiceOverloadError as exc:
            assert exc.retry_after_ms > 0, exc.retry_after_ms
            shed += 1
    assert shed == 2, f"expected 2 quota sheds, saw {shed}"

    # Already-expired deadline: typed rejection at admission.
    try:
        await service.submit(ghz(4), TOPOLOGY, seed=302, deadline_ms=0.0,
                             tenant="deadline", **KNOBS)
    except DeadlineExceededError:
        pass
    else:
        raise AssertionError("deadline_ms=0 did not expire at admission")

    results = await asyncio.gather(*tasks)
    try:
        await doomed
    except DeadlineExceededError:
        pass
    else:
        raise AssertionError("parked 1 ms deadline did not expire")

    # A follow-up window: degraded (serial, in-process) when the plan
    # tripped the breaker, primary otherwise — byte-identical either way.
    followup = await service.submit(ghz(5), TOPOLOGY, seed=401,
                                    tenant="cold", **KNOBS)

    stats = service.stats()
    await service.aclose()
    try:
        await service.submit(ghz(3), TOPOLOGY, seed=999, **KNOBS)
    except ServiceClosedError:
        pass
    else:
        raise AssertionError("submit after aclose() was admitted")
    return {
        "results": results,
        "followup": followup,
        "stats": stats,
    }


def main() -> int:
    plan = os.environ.get("MIRAGE_FAULT_PLAN", "")
    outcome = asyncio.run(drive(plan))
    stats = outcome["stats"]

    # Counter assertions: sheds and deadline expirations are exact and
    # plan-independent; recovery counters depend on the injected plan.
    assert stats["shed_requests"] == 2, stats["shed_requests"]
    assert stats["shed"] == {"tenant_quota": 2}, stats["shed"]
    assert stats["deadline_expirations"] == 2, stats["deadline_expirations"]
    dispatch = stats["executor"]
    breaker = stats["breaker"]
    if "kill:" in plan:
        assert dispatch["respawns"] >= 1, dispatch
    if "trip_breaker" in plan:
        assert breaker["trips"] >= 1, breaker
        assert stats["degraded_windows"] >= 1, stats["degraded_windows"]
    if not plan:
        assert dispatch["respawns"] == 0, dispatch
        assert breaker["trips"] == 0, breaker
        assert stats["degraded_windows"] == 0, stats["degraded_windows"]
    assert stats["pending"] == 0, stats["pending"]
    assert stats["drain_abandoned"] == 0, stats["drain_abandoned"]

    leaks = leaked_segments()
    assert not leaks, f"leaked shared-memory segments: {leaks}"

    # Byte-identity against direct transpile() at the same seeds, with
    # the fault plan cleared so baselines run undisturbed.
    os.environ.pop("MIRAGE_FAULT_PLAN", None)
    coverage = get_coverage_set("sqrt_iswap", **COVERAGE_PARAMS)
    for (tenant, factory, width, seed), result in zip(
        ADMITTED, outcome["results"]
    ):
        direct = transpile(factory(width), TOPOLOGY, coverage=coverage,
                           seed=seed, **KNOBS)
        assert fingerprint(result) == fingerprint(direct), (tenant, seed)
    direct = transpile(ghz(5), TOPOLOGY, coverage=coverage, seed=401, **KNOBS)
    assert fingerprint(outcome["followup"]) == fingerprint(direct)

    print(json.dumps({
        "fault_plan": plan,
        "shed_requests": stats["shed_requests"],
        "deadline_expirations": stats["deadline_expirations"],
        "breaker_trips": breaker["trips"],
        "degraded_windows": stats["degraded_windows"],
        "respawns": dispatch["respawns"],
        "windows": stats["windows"],
        "byte_identical": True,
        "leaked_segments": leaks,
    }, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
