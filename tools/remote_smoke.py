"""Remote smoke driver: real worker hosts, injected network faults.

CI's ``remote`` job runs this script under a matrix of network fault
plans (clean control, dropped connections, garbled frames, a silent
host) plus a SIGKILL-mid-dispatch scenario.  It launches two real
``mirage-worker-host`` processes on localhost unix sockets, drives a
fixed-seed batch through :class:`RemoteExecutor`, and asserts the
distributed contract end to end:

* the batch is **byte-identical** to the serial executor's at the same
  seed — clean and under every injected fault plan;
* the recovery counters are **exact**: a dropped connection costs one
  ``reconnect`` and one replayed chunk, a garbled frame one
  ``frames_garbled``, a partitioned host one ``host_downgrades`` with
  zero reconnects, a silent host one staleness replay — and a clean
  run records the whole family at zero;
* a host SIGKILLed mid-dispatch loses only its in-flight chunks (the
  survivor absorbs the replays), the janitor reclaims its socket file
  and spool directory, and the follow-up batch still matches serial;
* after ``close()`` and host shutdown nothing leaks: no socket files,
  no spool directories, no ``mirage_shm_*`` segments.

Run from the repo root (optionally under a fault plan):

    MIRAGE_FAULT_PLAN="drop_conn:chunk:1" \
        PYTHONPATH=src python tools/remote_smoke.py
    REMOTE_SMOKE_KILL_HOST=1 PYTHONPATH=src python tools/remote_smoke.py
"""

from __future__ import annotations

import glob
import hashlib
import importlib
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.circuits.library import ghz, qft
from repro.core import transpile_many
from repro.polytopes import get_coverage_set
from repro.transpiler import RemoteExecutor, line_topology
from repro.transpiler.executors import SHM_SEGMENT_PREFIX
from repro.transpiler.faults import SPOOL_PREFIX, reap_stale_segments

REPO_ROOT = Path(__file__).resolve().parent.parent

COVERAGE_PARAMS = dict(num_samples=250, seed=3)
TOPOLOGY = line_topology(5)
SEED = 7

#: Exact recovery counters per fault plan — the CI matrix.  Every value
#: is asserted with ``==``: recovery that *almost* worked (extra
#: reconnects, consumed retry budget on a partitioned host) fails the
#: job just as loudly as recovery that failed.
EXPECTED = {
    "": {
        "retries": 0, "lost_tasks": 0, "reconnects": 0,
        "host_downgrades": 0, "frames_garbled": 0,
        "executor_downgrades": 0, "deadline_expirations": 0,
    },
    "drop_conn:chunk:1": {
        "retries": 1, "reconnects": 1,
        "host_downgrades": 0, "frames_garbled": 0,
    },
    "garble:frame:2": {
        "retries": 1, "frames_garbled": 1, "host_downgrades": 0,
    },
    "partition:host:0": {
        "retries": 0, "reconnects": 0, "host_downgrades": 1,
    },
    "slow_net:chunk:3": {
        "retries": 1, "reconnects": 1, "host_downgrades": 0,
    },
}


def _slow_scale(shared, task):
    """Deliberately slow chunk body — keeps a dispatch in flight long
    enough for the driver to SIGKILL a host under it."""
    time.sleep(0.25)
    return shared * task


def digest(batch) -> str:
    hasher = hashlib.sha256()
    for result in batch:
        for instruction in result.circuit:
            params = ",".join(f"{p:.12e}" for p in instruction.gate.params)
            hasher.update(
                f"{instruction.gate.name}({params})@{instruction.qubits}\n"
                .encode()
            )
        hasher.update(f"{result.trial_index}\n".encode())
    return hasher.hexdigest()


def run_batch(executor, coverage):
    return transpile_many(
        [qft(4), ghz(5)],
        TOPOLOGY,
        coverage=coverage,
        use_vf2=False,
        layout_trials=2,
        seed=SEED,
        fanout="circuits",
        executor=executor,
    )


def spawn_host(socket_path: str) -> subprocess.Popen:
    """Launch a real ``mirage-worker-host`` process and wait for READY."""
    env = dict(os.environ)
    # Faults are injected client-side (shipped per chunk); the hosts run
    # clean.  The tools dir rides along so hosts can unpickle the
    # driver's chunk functions by module name.
    env.pop("MIRAGE_FAULT_PLAN", None)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "tools")]
        + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.transpiler.remote.host",
            "--socket", socket_path, "--heartbeat", "0.1",
        ],
        env=env,
        stdout=subprocess.PIPE,
        text=True,
    )
    ready = process.stdout.readline()
    assert ready.startswith("MIRAGE-HOST-READY"), ready
    return process


def host_leftovers(pids) -> list[str]:
    tmp = tempfile.gettempdir()
    leftovers: list[str] = []
    for pid in pids:
        leftovers.extend(glob.glob(os.path.join(tmp, f"{SPOOL_PREFIX}{pid}_*")))
    return sorted(leftovers)


def leaked_segments() -> list[str]:
    return sorted(glob.glob(f"/dev/shm/{SHM_SEGMENT_PREFIX}{os.getpid()}_*"))


def drive_fault_plan(plan: str, coverage, host_paths) -> dict:
    """One batch under ``plan``; returns the dispatch counters."""
    os.environ.pop("MIRAGE_FAULT_PLAN", None)
    reference = digest(run_batch(None, coverage))
    if plan:
        os.environ["MIRAGE_FAULT_PLAN"] = plan
    executor = RemoteExecutor(hosts=host_paths)
    try:
        fanned = run_batch(executor, coverage)
    finally:
        executor.close()
        os.environ.pop("MIRAGE_FAULT_PLAN", None)
    assert digest(fanned) == reference, (
        f"fault plan {plan!r}: remote batch diverged from serial"
    )
    dispatch = dict(fanned.dispatch)
    for counter, value in EXPECTED[plan].items():
        assert dispatch[counter] == value, (
            f"fault plan {plan!r}: expected {counter}={value}, got "
            f"{dispatch[counter]} "
            f"({ {k: v for k, v in dispatch.items() if isinstance(v, int) and v} })"
        )
    return dispatch


def drive_host_kill(coverage, tmp_dir: str) -> dict:
    """SIGKILL one real host mid-dispatch; the survivor absorbs replays."""
    os.environ.pop("MIRAGE_FAULT_PLAN", None)
    victim_path = os.path.join(tmp_dir, "victim.sock")
    survivor_path = os.path.join(tmp_dir, "survivor.sock")
    victim = spawn_host(victim_path)
    survivor = spawn_host(survivor_path)
    # The chunk function must be importable by the host processes, so
    # resolve it through the module name rather than ``__main__``.
    slow_scale = importlib.import_module("remote_smoke")._slow_scale
    try:
        executor = RemoteExecutor(
            hosts=[victim_path, survivor_path], max_streams=1
        )
        with executor.open_dispatch(slow_scale) as session:
            slot = session.add_payload(9)
            futures = session.submit(slot, list(range(12)))
            time.sleep(0.3)  # let chunks land on both hosts
            os.kill(victim.pid, signal.SIGKILL)
            results = [
                value for future in futures for value in future.result()
            ]
        assert results == [9 * task for task in range(12)], results
        stats = dict(executor.dispatch_stats)
        assert stats["retries"] >= 1, stats  # killed host's chunks replayed
        assert stats["host_downgrades"] == 1, stats
        assert stats["executor_downgrades"] == 0, stats  # survivor absorbed

        # The follow-up batch runs on the surviving host alone and still
        # matches serial byte for byte.
        reference = digest(run_batch(None, coverage))
        assert digest(run_batch(executor, coverage)) == reference
        executor.close()
    finally:
        victim.wait(timeout=10)
        survivor.send_signal(signal.SIGTERM)
        survivor.wait(timeout=10)

    # The SIGKILL left the victim's pid-keyed spool behind; a janitor
    # pass — the same one every starting host runs — reclaims it because
    # the owning pid is dead.  The socket file sits at a caller-chosen
    # path the janitor cannot know, so the driver removes that corpse.
    reap_stale_segments()
    assert host_leftovers([victim.pid, survivor.pid]) == []
    if os.path.exists(victim_path):
        os.unlink(victim_path)
    assert not os.path.exists(survivor_path), survivor_path  # SIGTERM tidied
    return stats


def main() -> int:
    plan = os.environ.get("MIRAGE_FAULT_PLAN", "")
    kill_host = os.environ.get("REMOTE_SMOKE_KILL_HOST", "") not in ("", "0")
    if not kill_host and plan not in EXPECTED:
        print(f"unknown fault plan {plan!r}; known: "
              f"{sorted(p for p in EXPECTED if p)}", file=sys.stderr)
        return 2
    # Fast recovery: tight heartbeats so staleness detection and the CI
    # job stay in seconds, and a short injected slow-down.
    os.environ.setdefault("MIRAGE_REMOTE_HEARTBEAT_S", "0.1")
    os.environ.setdefault("MIRAGE_REMOTE_CONNECT_S", "2.0")
    os.environ.setdefault("MIRAGE_FAULT_SLOW_SECONDS", "1.0")
    coverage = get_coverage_set("sqrt_iswap", **COVERAGE_PARAMS)

    with tempfile.TemporaryDirectory(prefix="mirage_remote_smoke_") as tmp:
        if kill_host:
            stats = drive_host_kill(coverage, tmp)
            scenario = "kill_host"
        else:
            paths = [os.path.join(tmp, f"host{i}.sock") for i in (0, 1)]
            hosts = [spawn_host(path) for path in paths]
            try:
                stats = drive_fault_plan(plan, coverage, paths)
            finally:
                for host in hosts:
                    host.send_signal(signal.SIGTERM)
                for host in hosts:
                    host.wait(timeout=10)
            for path in paths:
                assert not os.path.exists(path), path
            assert host_leftovers([host.pid for host in hosts]) == []
            scenario = plan or "clean"

    leaks = leaked_segments()
    assert not leaks, f"leaked shared-memory segments: {leaks}"

    print(json.dumps({
        "scenario": scenario,
        "byte_identical": True,
        "chunks": stats.get("chunks", 0),
        "chunks_replayed": stats.get("retries", 0),
        "lost_tasks": stats.get("lost_tasks", 0),
        "reconnects": stats.get("reconnects", 0),
        "host_downgrades": stats.get("host_downgrades", 0),
        "frames_garbled": stats.get("frames_garbled", 0),
        "executor_downgrades": stats.get("executor_downgrades", 0),
        "leaked_segments": leaks,
    }, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
