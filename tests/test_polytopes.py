"""Tests for the coverage-polytope subsystem (monodromy substitute)."""

import numpy as np
import pytest

from repro.exceptions import CoverageError
from repro.polytopes import (
    CoordinateCache,
    CoverageSet,
    WeylPolytope,
    build_circuit_polytope,
    build_coverage_set,
    cost_to_fidelity,
    expected_cost,
    get_coverage_set,
    haar_score,
    sample_ansatz_coordinates,
    score_comparison,
)
from repro.linalg import CNOT, haar_unitary
from repro.weyl import (
    CNOT_COORD,
    ISWAP_COORD,
    PI4,
    PI8,
    SQRT_ISWAP_COORD,
    SWAP_COORD,
    mirror_coordinate,
)
from repro.weyl.haar import cached_haar_samples

# Small, fast coverage sets shared by the tests in this module.
SAMPLES = 250


@pytest.fixture(scope="module")
def sqrt_iswap_coverage():
    return build_coverage_set("sqrt_iswap", num_samples=SAMPLES, seed=3)


@pytest.fixture(scope="module")
def sqrt_iswap_mirror_coverage():
    return build_coverage_set("sqrt_iswap", num_samples=SAMPLES, seed=3, mirror=True)


@pytest.fixture(scope="module")
def haar_samples():
    return cached_haar_samples(400, 11)


# ---------------------------------------------------------------------------
# WeylPolytope geometry
# ---------------------------------------------------------------------------


def test_polytope_single_point():
    poly = WeylPolytope([[0.1, 0.05, 0.0]])
    assert poly.dimension == 0
    assert poly.contains((0.1, 0.05, 0.0))
    assert not poly.contains((0.2, 0.05, 0.0))
    assert poly.euclidean_volume == 0.0


def test_polytope_segment():
    poly = WeylPolytope([[0.0, 0.0, 0.0], [0.4, 0.0, 0.0]])
    assert poly.dimension == 1
    assert poly.contains((0.2, 0.0, 0.0))
    assert not poly.contains((0.5, 0.0, 0.0))
    assert not poly.contains((0.2, 0.1, 0.0))


def test_polytope_planar():
    points = [[0, 0, 0], [0.5, 0, 0], [0, 0.5, 0], [0.5, 0.5, 0]]
    poly = WeylPolytope(points)
    assert poly.dimension == 2
    assert poly.contains((0.25, 0.25, 0.0))
    assert not poly.contains((0.25, 0.25, 0.05))
    assert poly.euclidean_volume == 0.0


def test_polytope_full_dimensional():
    points = [
        [0, 0, 0],
        [0.6, 0, 0],
        [0, 0.6, 0],
        [0, 0, 0.6],
        [0.6, 0.6, 0.6],
    ]
    poly = WeylPolytope(points)
    assert poly.dimension == 3
    assert poly.euclidean_volume > 0
    assert poly.contains((0.1, 0.1, 0.1))
    assert not poly.contains((0.7, 0.0, 0.0))


def test_polytope_contains_mask_matches_scalar():
    points = [[0, 0, 0], [0.6, 0, 0], [0, 0.6, 0], [0, 0, 0.6]]
    poly = WeylPolytope(points)
    rng = np.random.default_rng(0)
    samples = rng.uniform(0, 0.6, size=(50, 3))
    mask = poly.contains_mask(samples)
    scalar = np.array([poly.contains(row) for row in samples])
    assert np.array_equal(mask, scalar)


def test_polytope_nearest_point_and_distance():
    points = [[0, 0, 0], [0.4, 0, 0], [0, 0.4, 0], [0, 0, 0.4]]
    poly = WeylPolytope(points)
    inside = (0.05, 0.05, 0.05)
    assert np.allclose(poly.nearest_point(inside), inside)
    assert poly.distance(inside) == 0.0
    outside = (1.0, 0.0, 0.0)
    nearest = poly.nearest_point(outside)
    assert np.allclose(nearest, (0.4, 0.0, 0.0), atol=1e-4)
    assert poly.distance(outside) == pytest.approx(0.6, abs=1e-3)


def test_polytope_rejects_bad_shape():
    with pytest.raises(ValueError):
        WeylPolytope([[0.0, 0.1]])


def test_polytope_union():
    left = WeylPolytope([[0, 0, 0], [0.2, 0, 0]])
    right = WeylPolytope([[0.4, 0, 0], [0.6, 0, 0]])
    union = left.union_with(right)
    assert union.contains((0.3, 0, 0))


# ---------------------------------------------------------------------------
# Ansatz sampling and circuit polytopes
# ---------------------------------------------------------------------------


def test_sample_ansatz_depth_one_is_single_class():
    points = sample_ansatz_coordinates("sqrt_iswap", 1, 10, seed=1)
    assert np.allclose(points, SQRT_ISWAP_COORD.to_tuple(), atol=1e-7)


def test_sample_ansatz_depth_two_spreads():
    points = sample_ansatz_coordinates("sqrt_iswap", 2, 60, seed=1)
    assert points.shape[1] == 3
    assert points[:, 0].max() > PI8


def test_circuit_polytope_depth_two_contains_cnot_and_iswap(sqrt_iswap_coverage):
    poly = sqrt_iswap_coverage.polytope_for_depth(2)
    assert poly.contains(CNOT_COORD.to_tuple())
    assert poly.contains(ISWAP_COORD.to_tuple())
    assert not poly.contains(SWAP_COORD.to_tuple())


def test_cnot_basis_depth_two_is_planar():
    polytope = build_circuit_polytope(
        "cx", 2, num_samples=150, seed=5, anchor=False
    )
    assert all(piece.dimension <= 2 for piece in polytope.pieces)
    assert polytope.contains(CNOT_COORD.to_tuple())
    assert polytope.contains(ISWAP_COORD.to_tuple())
    assert not polytope.contains(SWAP_COORD.to_tuple())


def test_circuit_polytope_nearest_point(sqrt_iswap_coverage):
    poly = sqrt_iswap_coverage.polytope_for_depth(2)
    nearest = poly.nearest_point(SWAP_COORD.to_tuple())
    assert not np.allclose(nearest, SWAP_COORD.to_tuple())


def test_circuit_polytope_label(sqrt_iswap_coverage):
    assert "k=2" in sqrt_iswap_coverage.polytope_for_depth(2).label


# ---------------------------------------------------------------------------
# CoverageSet queries
# ---------------------------------------------------------------------------


def test_coverage_costs_of_landmarks(sqrt_iswap_coverage):
    cov = sqrt_iswap_coverage
    assert cov.cost_of(SQRT_ISWAP_COORD) == pytest.approx(0.5)
    assert cov.cost_of(CNOT_COORD) == pytest.approx(1.0)
    assert cov.cost_of(ISWAP_COORD) == pytest.approx(1.0)
    assert cov.cost_of(SWAP_COORD) == pytest.approx(1.5)
    assert cov.cost_of((0, 0, 0)) == pytest.approx(0.0)  # identity needs no pulses


def test_coverage_depth_of(sqrt_iswap_coverage):
    assert sqrt_iswap_coverage.depth_of(CNOT_COORD) == 2
    assert sqrt_iswap_coverage.depth_of(SWAP_COORD) == 3


def test_coverage_mirror_cost(sqrt_iswap_coverage):
    # mirror of SWAP is the identity: decomposition becomes trivial.
    assert sqrt_iswap_coverage.mirror_cost_of(SWAP_COORD) <= 0.5
    # mirror of CNOT is iSWAP: same cost in the sqrt(iSWAP) basis.
    assert sqrt_iswap_coverage.mirror_cost_of(CNOT_COORD) == pytest.approx(
        sqrt_iswap_coverage.cost_of(CNOT_COORD)
    )


def test_coverage_cache_counters(sqrt_iswap_coverage):
    sqrt_iswap_coverage.clear_cache()
    sqrt_iswap_coverage.cost_of(CNOT_COORD)
    sqrt_iswap_coverage.cost_of(CNOT_COORD)
    info = sqrt_iswap_coverage.cache_info()
    assert info["hits"] == 1
    assert info["misses"] == 1
    assert info["size"] == 1


def test_coverage_cheaper_polytopes(sqrt_iswap_coverage):
    cheaper = sqrt_iswap_coverage.cheaper_polytopes(1.5)
    assert all(poly.cost < 1.5 for poly in cheaper)
    assert len(cheaper) == 3  # depths 0, 1 and 2


def test_coverage_requires_polytopes():
    with pytest.raises(CoverageError):
        CoverageSet("sqrt_iswap", [])


def test_coverage_unknown_depth_raises(sqrt_iswap_coverage):
    with pytest.raises(CoverageError):
        sqrt_iswap_coverage.polytope_for_depth(9)


def test_mirror_coverage_is_superset(sqrt_iswap_coverage, sqrt_iswap_mirror_coverage, haar_samples):
    exact = sqrt_iswap_coverage.polytope_for_depth(2)
    mirrored = sqrt_iswap_mirror_coverage.polytope_for_depth(2)
    assert mirrored.haar_volume(haar_samples) >= exact.haar_volume(haar_samples)
    # Mirror coverage contains the mirror of everything in the exact region.
    assert mirrored.contains(mirror_coordinate(CNOT_COORD))
    assert mirrored.contains(mirror_coordinate((0.0, 0.0, 0.0)))


def test_sqrt_iswap_depth2_volume_reasonable(sqrt_iswap_coverage, haar_samples):
    # Paper Fig. 3c: ~79% Haar coverage; allow slack for the small test build.
    volume = sqrt_iswap_coverage.polytope_for_depth(2).haar_volume(haar_samples)
    assert 0.6 < volume < 0.95


def test_get_coverage_set_is_cached():
    first = get_coverage_set("cx", num_samples=100, seed=3)
    second = get_coverage_set("cx", num_samples=100, seed=3)
    assert first is second


# ---------------------------------------------------------------------------
# Haar scores
# ---------------------------------------------------------------------------


def test_expected_cost_and_fidelity(sqrt_iswap_coverage, haar_samples):
    score, costs = expected_cost(sqrt_iswap_coverage, haar_samples)
    assert 0.5 <= score <= 1.5
    assert costs.min() >= 0.5
    assert costs.max() <= 1.5
    fid = cost_to_fidelity(costs)
    assert np.all(fid <= 0.99**0.5 + 1e-12)


def test_haar_score_mirror_improves(sqrt_iswap_coverage, sqrt_iswap_mirror_coverage, haar_samples):
    exact = haar_score(sqrt_iswap_coverage, samples=haar_samples)
    mirrored = haar_score(sqrt_iswap_mirror_coverage, samples=haar_samples)
    assert mirrored.score <= exact.score
    assert mirrored.average_fidelity >= exact.average_fidelity
    rows = score_comparison([exact, mirrored])
    assert rows[0]["basis"] == "sqrt_iswap"
    assert rows[1]["mirrored"] is True


# ---------------------------------------------------------------------------
# Coordinate cache
# ---------------------------------------------------------------------------


def test_coordinate_cache_hits():
    cache = CoordinateCache(maxsize=4)
    first = cache.coordinate(CNOT)
    second = cache.coordinate(CNOT)
    assert first == second
    assert cache.info()["hits"] == 1
    assert cache.info()["misses"] == 1


def test_coordinate_cache_eviction():
    cache = CoordinateCache(maxsize=2)
    rng = np.random.default_rng(0)
    for _ in range(4):
        cache.coordinate(haar_unitary(4, rng))
    assert len(cache) == 2


def test_coordinate_cache_put_and_clear():
    cache = CoordinateCache()
    cache.put(CNOT, (PI4, 0.0, 0.0))
    assert cache.coordinate(CNOT) == (PI4, 0.0, 0.0)
    assert cache.info()["hits"] == 1
    cache.clear()
    assert len(cache) == 0
