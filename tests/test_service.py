"""Concurrency harness for the transpilation-as-a-service tier.

Pins the four hard guarantees of :class:`repro.service.MirageService`
under genuinely concurrent, multi-tenant load:

* **Byte-identity** — results returned through the service (coalesced,
  interleaved, on warm pools) are byte-identical to direct
  :func:`repro.core.transpile.transpile` calls at the same seed;
* **Single-flight coverage** — a coverage set is built exactly once per
  registry key no matter how many concurrent requests race the cold
  cache;
* **Coalescing provenance** — requests admitted within one window
  produce exactly one batch dispatch, and the provenance log says so;
* **Clean shutdown** — ``aclose()`` leaks no shared-memory segments and
  no worker processes, including when a fault plan kills a worker
  mid-window;
* **Overload safety** — admission quotas shed excess load with typed
  errors while in-quota tenants are served byte-identically, expired
  deadlines fail only their own request, a tripped circuit breaker
  degrades to in-process execution without changing an output bit, and
  a drain refuses new work while finishing what was admitted.

No pytest-asyncio: each test drives a private event loop through
``asyncio.run`` with an internal deadline, so a wedged service fails
the test instead of hanging the suite.
"""

import asyncio
import glob
import os
import threading
import time

import pytest

from repro.circuits.library import ghz, qft, twolocal_full
from repro.core.transpile import transpile
from repro.exceptions import (
    DeadlineExceededError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadError,
    TranspilerError,
)
from repro.polytopes import CoverageRegistry, get_coverage_set
from repro.service import (
    DEFAULT_WINDOW_MS,
    WINDOW_ENV,
    MirageService,
    ServiceClient,
    service_window_ms,
)
from repro.service.service import _topology_key
from repro.transpiler import ProcessExecutor, line_topology
from repro.transpiler.executors import SHM_SEGMENT_PREFIX

COVERAGE_PARAMS = dict(num_samples=250, seed=3)
COVERAGE = get_coverage_set("sqrt_iswap", **COVERAGE_PARAMS)
TOPOLOGY = line_topology(5)

#: Per-request knobs shared by the service submits and the direct
#: ``transpile`` baselines — byte-identity only holds when both sides
#: run the identical configuration.
REQUEST_KNOBS = dict(use_vf2=False, layout_trials=2)


def _own_segments() -> list[str]:
    return glob.glob(f"/dev/shm/{SHM_SEGMENT_PREFIX}{os.getpid()}_*")


def _fingerprint(result):
    """Byte-level identity of a transpile result, modulo wall-clock."""
    return (
        [(instr.gate.name, instr.qubits) for instr in result.circuit],
        result.initial_layout.virtual_to_physical(),
        result.final_layout.virtual_to_physical(),
        result.swaps_added,
        result.mirrors_accepted,
        result.trial_index,
        round(result.metrics.depth, 9),
    )


def _direct(circuit, seed):
    """The ground truth: a one-shot transpile at the request's seed."""
    return transpile(
        circuit, TOPOLOGY, coverage=COVERAGE, seed=seed, **REQUEST_KNOBS
    )


def _registry() -> CoverageRegistry:
    """A service registry preloaded with the module's coverage set."""
    registry = CoverageRegistry()
    registry.put(
        COVERAGE,
        "sqrt_iswap",
        topology=_topology_key(TOPOLOGY),
        **COVERAGE_PARAMS,
    )
    return registry


def _service(**kwargs) -> MirageService:
    kwargs.setdefault("executor", "threads")
    kwargs.setdefault("max_workers", 2)
    kwargs.setdefault("registry", _registry())
    kwargs.setdefault("coverage_params", COVERAGE_PARAMS)
    return MirageService(**kwargs)


def _run(coro, timeout=600.0):
    """Drive a coroutine on a fresh loop with a hang-proof deadline."""

    async def _bounded():
        return await asyncio.wait_for(coro, timeout)

    return asyncio.run(_bounded())


# ---------------------------------------------------------------------------
# Guarantee 1: byte-identity with direct transpile, per request seed
# ---------------------------------------------------------------------------


#: (circuit, seed, tenant) for the staggered multi-tenant load test;
#: qft(4) appears twice under different seeds, so coalescing must keep
#: per-request seeds straight even for identical payloads.
LOAD = [
    (qft(4), 3, "alice"),
    (ghz(5), 11, "bob"),
    (twolocal_full(4), 17, "alice"),
    (qft(4), 23, "carol"),
    (ghz(5), 5, "bob"),
    (twolocal_full(4), 41, "carol"),
]


def test_staggered_multi_tenant_requests_match_direct_transpile():
    """Dozens of interleaved awaits, three tenants, one warm pool —
    every response byte-identical to a direct call at its own seed."""
    expected = [_fingerprint(_direct(circuit, seed)) for circuit, seed, _ in LOAD]

    async def main():
        async with _service(window_ms=40.0) as service:
            async def one(delay, circuit, seed, tenant):
                await asyncio.sleep(delay)
                return await service.submit(
                    circuit, TOPOLOGY, seed=seed, tenant=tenant,
                    **REQUEST_KNOBS,
                )

            results = await asyncio.gather(*(
                one(0.015 * (index % 4), circuit, seed, tenant)
                for index, (circuit, seed, tenant) in enumerate(LOAD)
            ))
            return results, service.stats()

    results, stats = _run(main())
    assert [_fingerprint(result) for result in results] == expected
    assert stats["requests"] == len(LOAD)
    assert stats["completed"] == len(LOAD)
    assert stats["failed"] == 0
    assert stats["tenants"] == {"alice": 2, "bob": 2, "carol": 2}
    assert stats["open_windows"] == 0
    assert sum(record["requests"] for record in stats["window_log"]) == len(LOAD)


def test_client_binds_tenant_and_forwards():
    expected = _fingerprint(_direct(qft(4), 9))

    async def main():
        async with _service(window_ms=0.0) as service:
            client = service.client("tenant-a")
            assert isinstance(client, ServiceClient)
            result = await client.transpile(
                qft(4), TOPOLOGY, seed=9, **REQUEST_KNOBS
            )
            return result, service.stats()

    result, stats = _run(main())
    assert _fingerprint(result) == expected
    assert stats["tenants"] == {"tenant-a": 1}


# ---------------------------------------------------------------------------
# Guarantee 2: coverage built exactly once per key under contention
# ---------------------------------------------------------------------------


def test_registry_single_flight_under_thread_contention():
    """Eight threads race a cold key; exactly one build, shared object."""
    calls = {"count": 0}
    release = threading.Event()

    def loader(basis, **kwargs):
        calls["count"] += 1
        release.wait(5.0)
        return COVERAGE

    registry = CoverageRegistry(loader=loader)
    results = [None] * 8
    threads = [
        threading.Thread(
            target=lambda i=i: results.__setitem__(
                i, registry.get("sqrt_iswap", **COVERAGE_PARAMS)
            )
        )
        for i in range(8)
    ]
    for thread in threads:
        thread.start()
    while registry.stats()["misses"] == 0:
        time.sleep(0.001)
    release.set()
    for thread in threads:
        thread.join(timeout=10.0)
    assert calls["count"] == 1
    assert all(result is COVERAGE for result in results)
    stats = registry.stats()
    assert stats["builds"] == 1
    assert stats["misses"] == 1
    assert stats["waits"] == 7
    assert stats["errors"] == 0


def test_registry_failed_build_propagates_and_leaves_key_cold():
    attempts = {"count": 0}

    def loader(basis, **kwargs):
        attempts["count"] += 1
        if attempts["count"] == 1:
            raise RuntimeError("simulated build failure")
        return COVERAGE

    registry = CoverageRegistry(loader=loader)
    with pytest.raises(RuntimeError, match="simulated build failure"):
        registry.get("sqrt_iswap", **COVERAGE_PARAMS)
    assert registry.stats()["errors"] == 1
    assert len(registry) == 0
    # The key went cold, so the next request retries — and succeeds.
    assert registry.get("sqrt_iswap", **COVERAGE_PARAMS) is COVERAGE
    assert attempts["count"] == 2


def test_service_builds_coverage_once_across_windows():
    """Sequential windows on one service share a single coverage build."""
    calls = {"count": 0}

    def loader(basis, **kwargs):
        calls["count"] += 1
        return COVERAGE

    registry = CoverageRegistry(loader=loader)

    async def main():
        async with _service(window_ms=0.0, registry=registry) as service:
            for seed in (2, 4, 6):
                await service.submit(
                    ghz(5), TOPOLOGY, seed=seed, **REQUEST_KNOBS
                )
            return service.stats()

    stats = _run(main())
    assert calls["count"] == 1
    assert stats["registry"]["builds"] == 1
    assert stats["registry"]["misses"] == 1
    assert stats["registry"]["hits"] == 2
    assert stats["windows"] == 3
    assert stats["coalesced_requests"] == 0


# ---------------------------------------------------------------------------
# Guarantee 3: one admission window -> one batch dispatch
# ---------------------------------------------------------------------------


def test_window_coalesces_concurrent_requests_into_one_dispatch():
    expected = [_fingerprint(_direct(circuit, seed)) for circuit, seed, _ in LOAD[:4]]

    async def main():
        async with _service(window_ms=250.0) as service:
            results = await asyncio.gather(*(
                service.submit(
                    circuit, TOPOLOGY, seed=seed, tenant=tenant,
                    **REQUEST_KNOBS,
                )
                for circuit, seed, tenant in LOAD[:4]
            ))
            return results, service.stats()

    results, stats = _run(main())
    assert [_fingerprint(result) for result in results] == expected
    # One window, one dispatch, all four circuits inside it.
    assert stats["windows"] == 1
    assert stats["coalesced_requests"] == 4
    (record,) = stats["window_log"]
    assert record["requests"] == 4
    assert record["tenants"] == {"alice": 2, "bob": 1, "carol": 1}
    assert record["dispatch"]["circuits"] == 4
    assert record["dispatch"]["scheduler"] == "stream"
    assert record["queue_wait_seconds"]["max"] >= 0.0
    assert record["runtime_seconds"] > 0


def test_incompatible_requests_open_separate_windows():
    """Different trial knobs cannot share a batch, so they never coalesce."""

    async def main():
        async with _service(window_ms=250.0) as service:
            results = await asyncio.gather(
                service.submit(
                    qft(4), TOPOLOGY, seed=7, use_vf2=False, layout_trials=2
                ),
                service.submit(
                    qft(4), TOPOLOGY, seed=7, use_vf2=False, layout_trials=3
                ),
            )
            return results, service.stats()

    results, stats = _run(main())
    assert stats["windows"] == 2
    assert stats["coalesced_requests"] == 0
    assert all(record["requests"] == 1 for record in stats["window_log"])
    assert _fingerprint(results[0]) == _fingerprint(
        transpile(
            qft(4), TOPOLOGY, coverage=COVERAGE, seed=7,
            use_vf2=False, layout_trials=2,
        )
    )


def test_aclose_flushes_open_windows():
    """Requests parked in a not-yet-expired window resolve on aclose."""
    expected = [_fingerprint(_direct(qft(4), 13)), _fingerprint(_direct(ghz(5), 29))]

    async def main():
        service = _service(window_ms=30_000.0)  # would park ~forever
        first = asyncio.ensure_future(
            service.submit(qft(4), TOPOLOGY, seed=13, **REQUEST_KNOBS)
        )
        second = asyncio.ensure_future(
            service.submit(ghz(5), TOPOLOGY, seed=29, **REQUEST_KNOBS)
        )
        await asyncio.sleep(0.1)  # both admitted, window still open
        await service.aclose()
        results = [await first, await second]
        return results, service.stats()

    results, stats = _run(main())
    assert [_fingerprint(result) for result in results] == expected
    assert stats["windows"] == 1
    assert stats["coalesced_requests"] == 2
    assert stats["completed"] == 2


def test_closed_service_rejects_submissions():
    async def main():
        service = _service(prewarm=False)
        await service.aclose()
        with pytest.raises(ServiceError, match="closed"):
            await service.submit(qft(4), TOPOLOGY, **REQUEST_KNOBS)
        assert service.closed
        await service.aclose()  # idempotent

    _run(main())


def test_window_env_parsing(monkeypatch):
    monkeypatch.setenv(WINDOW_ENV, "25")
    assert service_window_ms() == 25.0
    monkeypatch.setenv(WINDOW_ENV, "0")
    assert service_window_ms() == 0.0
    for junk in ("", "soon", "-4"):
        monkeypatch.setenv(WINDOW_ENV, junk)
        assert service_window_ms() == DEFAULT_WINDOW_MS
    monkeypatch.delenv(WINDOW_ENV)
    assert service_window_ms() == DEFAULT_WINDOW_MS


# ---------------------------------------------------------------------------
# Guarantee 4: aclose leaks nothing -- clean runs and killed workers alike
# ---------------------------------------------------------------------------


def _assert_workers_dead(pids):
    assert pids, "expected the pool to expose worker pids"
    for pid in pids:
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)


def test_process_service_shutdown_leaves_no_workers_or_segments():
    expected = [_fingerprint(_direct(circuit, seed)) for circuit, seed, _ in LOAD[:3]]

    async def main():
        async with _service(executor="processes", window_ms=50.0) as service:
            pids = service.executor.worker_pids()
            assert len(pids) == 2  # prewarmed before the first request
            results = await asyncio.gather(*(
                service.submit(
                    circuit, TOPOLOGY, seed=seed, tenant=tenant,
                    **REQUEST_KNOBS,
                )
                for circuit, seed, tenant in LOAD[:3]
            ))
        return results, pids

    results, pids = _run(main())
    assert [_fingerprint(result) for result in results] == expected
    assert _own_segments() == []
    _assert_workers_dead(pids)


def test_worker_kill_mid_window_recovers_and_leaks_nothing(monkeypatch):
    """A worker killed mid-window is respawned; the affected requests
    still resolve byte-identically and shutdown still leaks nothing."""
    expected = [_fingerprint(_direct(circuit, seed)) for circuit, seed, _ in LOAD[:3]]
    monkeypatch.setenv("MIRAGE_FAULT_PLAN", "kill:trial:1")
    monkeypatch.setenv("MIRAGE_TASK_TIMEOUT", "1.0")

    async def main():
        async with _service(executor="processes", window_ms=120.0) as service:
            pids = service.executor.worker_pids()
            results = await asyncio.gather(*(
                service.submit(
                    circuit, TOPOLOGY, seed=seed, tenant=tenant,
                    **REQUEST_KNOBS,
                )
                for circuit, seed, tenant in LOAD[:3]
            ))
            stats = service.stats()
        return results, stats, pids

    results, stats, pids = _run(main())
    assert [_fingerprint(result) for result in results] == expected
    assert stats["failed"] == 0
    assert stats["executor"]["retries"] >= 1
    assert stats["executor"]["lost_tasks"] >= 1
    assert _own_segments() == []
    _assert_workers_dead(pids)


def test_shutdown_refuses_to_race_borrowed_executor_leases():
    """close() on a leased executor fails loudly instead of killing the
    pool under an in-flight window (the service always holds a lease
    while dispatching)."""
    with ProcessExecutor(max_workers=2) as executor:
        with executor.lease():
            with pytest.raises(TranspilerError, match="active lease"):
                executor.close()
        # Lease released: the context manager close below succeeds.
    assert executor.worker_pids() == []


# ---------------------------------------------------------------------------
# Guarantee 5a: admission control -- quotas shed, in-quota tenants served
# ---------------------------------------------------------------------------


def test_breaker_trip_with_quota_shed_and_no_starvation(monkeypatch):
    """The overload acceptance scenario: under a fault plan that trips
    the breaker, a multi-tenant batch completes with every response
    byte-identical to direct ``transpile()`` at the same seed; the
    over-quota submission gets ``ServiceOverloadError`` while in-quota
    tenants show no starvation; the breaker serves the next window
    degraded and half-open-probes back to closed."""
    monkeypatch.setenv("MIRAGE_FAULT_PLAN", "trip_breaker:window:0")
    expected = [_fingerprint(_direct(circuit, seed)) for circuit, seed, _ in LOAD]
    degraded_expected = _fingerprint(_direct(ghz(5), 77))
    probe_expected = _fingerprint(_direct(qft(4), 88))

    async def main():
        async with _service(
            window_ms=80.0, tenant_quota=2, breaker_cooldown_s=0.1,
            prewarm=False,
        ) as service:
            admitted = [
                asyncio.ensure_future(service.submit(
                    circuit, TOPOLOGY, seed=seed, tenant=tenant,
                    **REQUEST_KNOBS,
                ))
                for circuit, seed, tenant in LOAD
            ]
            await asyncio.sleep(0.02)  # all six admitted; window still open
            with pytest.raises(ServiceOverloadError, match="over quota") as info:
                await service.submit(
                    qft(4), TOPOLOGY, seed=99, tenant="alice", **REQUEST_KNOBS
                )
            assert info.value.retry_after_ms > 0
            results = await asyncio.gather(*admitted)
            stats_mid = service.stats()
            degraded = await service.submit(
                ghz(5), TOPOLOGY, seed=77, tenant="bob", **REQUEST_KNOBS
            )
            await asyncio.sleep(0.12)  # breaker cooldown elapses
            probe = await service.submit(
                qft(4), TOPOLOGY, seed=88, tenant="carol", **REQUEST_KNOBS
            )
            return results, degraded, probe, stats_mid, service.stats()

    results, degraded, probe, stats_mid, stats = _run(main())
    # Every in-quota response is byte-identical to a direct call --
    # including the window served while the breaker was tripping and
    # the degraded (serial in-process) and probe windows after it.
    assert [_fingerprint(result) for result in results] == expected
    assert _fingerprint(degraded) == degraded_expected
    assert _fingerprint(probe) == probe_expected
    # The over-quota submission shed; nothing else did.
    assert stats["shed"] == {"tenant_quota": 1}
    assert stats["shed_requests"] == 1
    assert stats["completed"] == len(LOAD) + 2
    assert stats["failed"] == 0
    # Breaker lifecycle: tripped by window 0, degraded window 1,
    # half-open probe window 2 closed it again.
    assert stats_mid["breaker"]["state"] == "open"
    assert stats["breaker"]["state"] == "closed"
    assert stats["breaker"]["trips"] == 1
    assert stats["degraded_windows"] == 1
    transitions = [
        (t["from"], t["to"]) for t in stats["breaker"]["transitions"]
    ]
    assert transitions == [
        ("closed", "open"), ("open", "half_open"), ("half_open", "closed"),
    ]
    first, second, third = stats["window_log"]
    assert first["tenants"] == {"alice": 2, "bob": 2, "carol": 2}
    assert "by_tenant" in first["queue_wait_seconds"]
    assert not first["degraded"]
    assert second["degraded"] and second["executor"] == "serial"
    assert third["probe"] and not third["degraded"]


def test_service_wide_pending_cap_sheds(monkeypatch):
    async def main():
        async with _service(
            window_ms=80.0, max_pending=1, prewarm=False
        ) as service:
            first = asyncio.ensure_future(
                service.submit(qft(4), TOPOLOGY, seed=3, **REQUEST_KNOBS)
            )
            await asyncio.sleep(0.01)
            with pytest.raises(ServiceOverloadError, match="queue is full"):
                await service.submit(
                    ghz(5), TOPOLOGY, seed=4, **REQUEST_KNOBS
                )
            return await first, service.stats()

    result, stats = _run(main())
    assert _fingerprint(result) == _fingerprint(_direct(qft(4), 3))
    assert stats["shed"] == {"queue_full": 1}
    assert stats["requests"] == 1  # the shed submission was never admitted


def test_fault_plan_sheds_targeted_submission(monkeypatch):
    """``shed:request:N`` deterministically sheds the Nth submission."""
    monkeypatch.setenv("MIRAGE_FAULT_PLAN", "shed:request:1")

    async def main():
        async with _service(window_ms=0.0, prewarm=False) as service:
            await service.submit(qft(4), TOPOLOGY, seed=1, **REQUEST_KNOBS)
            with pytest.raises(ServiceOverloadError, match="fault plan"):
                await service.submit(
                    qft(4), TOPOLOGY, seed=2, **REQUEST_KNOBS
                )
            await service.submit(qft(4), TOPOLOGY, seed=3, **REQUEST_KNOBS)
            return service.stats()

    stats = _run(main())
    assert stats["shed"] == {"injected": 1}
    assert stats["completed"] == 2


def test_malformed_fault_plan_fails_fast_at_construction(monkeypatch):
    """A bad ``MIRAGE_FAULT_PLAN`` refuses to construct the service,
    naming the accepted grammar — instead of crashing mid-window."""
    monkeypatch.setenv("MIRAGE_FAULT_PLAN", "shed:trial:1")
    with pytest.raises(TranspilerError, match="kind:stage:ordinal"):
        _service(prewarm=False)


# ---------------------------------------------------------------------------
# Guarantee 5b: deadlines fail only their own request, typed, never a hang
# ---------------------------------------------------------------------------


def test_expired_deadline_fails_only_its_own_request():
    expected = _fingerprint(_direct(ghz(5), 41))

    async def main():
        async with _service(window_ms=40.0, prewarm=False) as service:
            doomed = asyncio.ensure_future(service.submit(
                twolocal_full(4), TOPOLOGY, seed=5, deadline_ms=1.0,
                **REQUEST_KNOBS,
            ))
            sibling = asyncio.ensure_future(service.submit(
                ghz(5), TOPOLOGY, seed=41, **REQUEST_KNOBS,
            ))
            results = await asyncio.gather(
                doomed, sibling, return_exceptions=True
            )
            return results, service.stats()

    results, stats = _run(main())
    assert isinstance(results[0], DeadlineExceededError)
    assert _fingerprint(results[1]) == expected  # sibling untouched
    assert stats["deadline_expirations"] >= 1
    assert stats["completed"] == 1


def test_non_positive_deadline_expires_at_submission():
    async def main():
        async with _service(window_ms=0.0, prewarm=False) as service:
            with pytest.raises(DeadlineExceededError, match="at submission"):
                await service.submit(
                    qft(4), TOPOLOGY, seed=1, deadline_ms=0.0,
                    **REQUEST_KNOBS,
                )
            return service.stats()

    stats = _run(main())
    assert stats["deadline_expirations"] == 1
    assert stats["requests"] == 0  # never admitted


# ---------------------------------------------------------------------------
# Guarantee 5c: graceful drain -- typed rejection, nothing leaked
# ---------------------------------------------------------------------------


def test_submit_during_drain_raises_typed_closed_error():
    """A drain in progress rejects new work with ServiceClosedError
    while finishing what was already admitted."""
    expected = _fingerprint(_direct(qft(4), 13))

    async def main():
        service = _service(window_ms=30_000.0, prewarm=False)
        parked = asyncio.ensure_future(
            service.submit(qft(4), TOPOLOGY, seed=13, **REQUEST_KNOBS)
        )
        await asyncio.sleep(0.01)  # admitted, window still open
        closer = asyncio.ensure_future(service.aclose())
        await asyncio.sleep(0)  # drain begun, dispatch in flight
        assert service.closed
        with pytest.raises(ServiceClosedError, match="closed"):
            await service.submit(ghz(5), TOPOLOGY, seed=1, **REQUEST_KNOBS)
        result = await parked
        await closer
        return result, service.stats()

    result, stats = _run(main())
    assert _fingerprint(result) == expected
    assert stats["drain_abandoned"] == 0


def test_drain_under_injected_hang_leaks_nothing(monkeypatch):
    """aclose() during an injected worker hang waits out the recovery:
    admitted requests resolve byte-identically, zero leaked workers and
    segments."""
    monkeypatch.setenv("MIRAGE_FAULT_PLAN", "hang:trial:1")
    monkeypatch.setenv("MIRAGE_FAULT_HANG_SECONDS", "5")
    monkeypatch.setenv("MIRAGE_TASK_TIMEOUT", "1.0")
    expected = [_fingerprint(_direct(circuit, seed)) for circuit, seed, _ in LOAD[:2]]

    async def main():
        service = _service(executor="processes", window_ms=60.0)
        # Warm the pool up-front so admission (and the open window) is
        # not still parked behind the first submit's prewarm when the
        # drain begins.
        await asyncio.to_thread(service.executor.prewarm)
        futures = [
            asyncio.ensure_future(service.submit(
                circuit, TOPOLOGY, seed=seed, tenant=tenant, **REQUEST_KNOBS
            ))
            for circuit, seed, tenant in LOAD[:2]
        ]
        while service.stats()["pending"] < 2:
            await asyncio.sleep(0.005)
        pids = service.executor.worker_pids()
        await service.aclose()  # drains through the hang + respawn
        results = await asyncio.gather(*futures)
        return results, pids, service.stats()

    results, pids, stats = _run(main())
    assert [_fingerprint(result) for result in results] == expected
    assert stats["drain_abandoned"] == 0
    assert stats["executor"]["respawns"] >= 1
    assert _own_segments() == []
    _assert_workers_dead(pids)


# ---------------------------------------------------------------------------
# Registry eviction: LRU watermark, TTL expiry, env knobs
# ---------------------------------------------------------------------------


def test_registry_evicts_lru_beyond_max_entries():
    registry = CoverageRegistry(
        loader=lambda basis, **kwargs: COVERAGE, max_entries=2
    )
    registry.get("sqrt_iswap", num_samples=1)
    registry.get("sqrt_iswap", num_samples=2)
    registry.get("sqrt_iswap", num_samples=1)  # refresh 1: LRU order is [2, 1]
    registry.get("sqrt_iswap", num_samples=3)  # evicts 2, keeps the refreshed 1
    stats = registry.stats()
    assert stats["size"] == 2
    assert stats["evictions"] == 1
    registry.get("sqrt_iswap", num_samples=1)  # still resident
    assert registry.stats()["hits"] == 2
    registry.get("sqrt_iswap", num_samples=2)  # evicted, so rebuilt
    assert registry.stats()["builds"] == 4


def test_registry_ttl_expires_and_rebuilds():
    builds = {"count": 0}

    def loader(basis, **kwargs):
        builds["count"] += 1
        return COVERAGE

    registry = CoverageRegistry(loader=loader, ttl_seconds=0.05)
    assert registry.get("sqrt_iswap") is COVERAGE
    assert registry.get("sqrt_iswap") is COVERAGE  # hit inside the TTL
    time.sleep(0.06)
    assert registry.get("sqrt_iswap") is COVERAGE  # expired -> rebuilt
    stats = registry.stats()
    assert stats["expirations"] == 1
    assert builds["count"] == 2


def test_registry_byte_watermark_protects_newest_entry():
    """A watermark smaller than one set never thrash-evicts the entry a
    caller is about to use."""
    registry = CoverageRegistry(
        loader=lambda basis, **kwargs: COVERAGE, max_bytes=1
    )
    registry.get("sqrt_iswap", num_samples=1)
    registry.get("sqrt_iswap", num_samples=2)  # evicts 1; 2 itself is protected
    stats = registry.stats()
    assert stats["size"] == 1
    assert stats["evictions"] == 1
    assert stats["bytes"] > 1
    assert registry.get("sqrt_iswap", num_samples=2) is COVERAGE
    assert registry.stats()["hits"] == 1


def test_registry_limits_from_environment(monkeypatch):
    monkeypatch.setenv("MIRAGE_REGISTRY_MAX_ENTRIES", "1")
    registry = CoverageRegistry(loader=lambda basis, **kwargs: COVERAGE)
    registry.get("sqrt_iswap", num_samples=1)
    registry.get("sqrt_iswap", num_samples=2)
    stats = registry.stats()
    assert stats["size"] == 1
    assert stats["evictions"] == 1
