"""Tests for topologies, layouts, metrics, cleanup/unroll/consolidate passes."""

import numpy as np
import pytest

from repro.exceptions import TranspilerError
from repro.circuits import QuantumCircuit
from repro.circuits.library import ghz, qft
from repro.linalg import equal_up_to_global_phase
from repro.polytopes import CoordinateCache, get_coverage_set
from repro.transpiler import (
    CouplingMap,
    Layout,
    all_to_all_topology,
    evaluate,
    grid_topology,
    heavy_hex_topology,
    improvement,
    interaction_graph,
    line_topology,
    ring_topology,
    square_lattice_topology,
    topology_by_name,
    vf2_layout,
)
from repro.transpiler.passes import (
    clean_input,
    consolidate_blocks,
    elide_input_swaps,
    unroll_to_two_qubit,
)
from repro.transpiler.passmanager import PassManager


# ---------------------------------------------------------------------------
# Topologies
# ---------------------------------------------------------------------------


def test_line_ring_grid_shapes():
    line = line_topology(5)
    assert line.num_qubits == 5
    assert line.distance(0, 4) == 4
    ring = ring_topology(6)
    assert ring.distance(0, 3) == 3
    assert ring.distance(0, 5) == 1
    grid = grid_topology(3, 4)
    assert grid.num_qubits == 12
    assert grid.distance(0, 11) == 5


def test_square_lattice_default_size():
    lattice = square_lattice_topology()
    assert lattice.num_qubits == 36
    assert lattice.is_connected_graph()
    degrees = [lattice.degree(q) for q in range(36)]
    assert max(degrees) == 4


def test_heavy_hex_properties():
    heavy = heavy_hex_topology(57)
    assert heavy.num_qubits == 57
    assert heavy.is_connected_graph()
    # Heavy-hex is sparse: degree never exceeds 3.
    assert max(heavy.degree(q) for q in range(57)) <= 3


def test_all_to_all_distances():
    full = all_to_all_topology(5)
    assert full.distance(0, 4) == 1


def test_coupling_map_validation():
    with pytest.raises(TranspilerError):
        CouplingMap([(0, 0)])
    with pytest.raises(TranspilerError):
        CouplingMap([(0, 3)], num_qubits=2)
    with pytest.raises(TranspilerError):
        ring_topology(2)


def test_topology_by_name():
    assert topology_by_name("line", 5).num_qubits == 5
    assert topology_by_name("square", 30).num_qubits == 36
    assert topology_by_name("heavy-hex", 57).num_qubits == 57
    assert topology_by_name("a2a", 4).distance(0, 3) == 1
    with pytest.raises(TranspilerError):
        topology_by_name("torus", 9)


# ---------------------------------------------------------------------------
# Layout and VF2
# ---------------------------------------------------------------------------


def test_layout_swap_physical_and_virtual():
    layout = Layout([2, 0, 1], 4)
    assert layout.v2p(0) == 2
    assert layout.p2v(2) == 0
    layout.swap_physical(2, 3)
    assert layout.v2p(0) == 3
    assert layout.p2v(2) is None
    layout.swap_virtual(0, 1)
    assert layout.v2p(1) == 3
    assert layout.v2p(0) == 0


def test_layout_validation_and_copy():
    with pytest.raises(TranspilerError):
        Layout([0, 0], 2)
    with pytest.raises(TranspilerError):
        Layout([0, 5], 2)
    layout = Layout.trivial(3, 5)
    clone = layout.copy()
    clone.swap_physical(0, 1)
    assert layout.v2p(0) == 0
    assert clone != layout
    random_layout = Layout.random(3, 5, seed=1)
    assert len(set(random_layout.virtual_to_physical())) == 3


def test_interaction_graph_and_vf2_success():
    circuit = ghz(4)  # linear chain of CNOTs
    graph = interaction_graph(circuit)
    assert graph.number_of_edges() == 3
    layout = vf2_layout(circuit, line_topology(4))
    assert layout is not None
    # Every program edge must land on a hardware edge.
    coupling = line_topology(4)
    for a, b in graph.edges:
        assert coupling.are_connected(layout.v2p(a), layout.v2p(b))


def test_vf2_fails_for_star_on_line():
    circuit = QuantumCircuit(4)
    for target in range(1, 4):
        circuit.cx(0, target)
    assert vf2_layout(circuit, line_topology(4)) is None


def test_vf2_trivial_for_gate_free_circuit():
    circuit = QuantumCircuit(3)
    circuit.h(0)
    layout = vf2_layout(circuit, line_topology(3))
    assert layout is not None


def test_vf2_rejects_oversized_circuit():
    assert vf2_layout(ghz(5), line_topology(3)) is None


# ---------------------------------------------------------------------------
# Cleaning / unrolling / consolidation passes
# ---------------------------------------------------------------------------


def test_remove_identity_and_directives():
    circuit = QuantumCircuit(2)
    circuit.id(0).rz(0.0, 1).h(0).barrier().measure_all()
    cleaned = clean_input(circuit)
    assert cleaned.count_ops() == {"h": 1}


def test_elide_input_swaps_permutes_downstream():
    circuit = QuantumCircuit(3)
    circuit.cx(0, 1).swap(0, 2).cx(0, 1)
    elided = elide_input_swaps(circuit)
    assert "swap" not in elided.count_ops()
    assert elided.instructions[1].qubits == (2, 1)


def test_unroll_toffoli_matches_matrix():
    circuit = QuantumCircuit(3)
    circuit.ccx(0, 1, 2)
    unrolled = unroll_to_two_qubit(circuit)
    assert all(len(instr.qubits) <= 2 for instr in unrolled)
    assert equal_up_to_global_phase(unrolled.to_matrix(), circuit.to_matrix())


def test_unroll_fredkin_and_ccz_match_matrices():
    for builder in ("cswap", "ccz"):
        circuit = QuantumCircuit(3)
        getattr(circuit, builder)(0, 1, 2)
        unrolled = unroll_to_two_qubit(circuit)
        assert equal_up_to_global_phase(
            unrolled.to_matrix(), circuit.to_matrix(), atol=1e-7
        )


def test_consolidate_blocks_preserves_unitary_and_annotates():
    circuit = QuantumCircuit(3)
    circuit.h(0).cx(0, 1).rz(0.3, 1).cx(0, 1).cx(1, 2).h(2)
    cache = CoordinateCache()
    blocks = consolidate_blocks(circuit, cache=cache)
    assert equal_up_to_global_phase(blocks.to_matrix(), circuit.to_matrix())
    block_gates = [instr.gate for instr in blocks if instr.is_two_qubit]
    # cx(0,1) rz cx(0,1) merge into one block; cx(1,2) h(2) into another.
    assert len(block_gates) == 2
    assert all(gate.coordinate is not None for gate in block_gates)


def test_consolidate_reduces_two_qubit_count_on_qft():
    circuit = qft(5)
    blocks = consolidate_blocks(circuit)
    assert blocks.num_two_qubit_gates() <= circuit.num_two_qubit_gates()


def test_pass_manager_records_stages():
    manager = PassManager(
        [("clean", clean_input), ("unroll", unroll_to_two_qubit)]
    )
    circuit = QuantumCircuit(3)
    circuit.ccx(0, 1, 2).barrier()
    result = manager.run(circuit)
    assert len(manager.records) == 2
    assert manager.total_seconds() >= 0
    assert result.count_ops()["cx"] > 0
    assert manager.report()[0]["name"] == "clean"


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


def test_metrics_known_costs_in_sqrt_iswap_basis():
    coverage = get_coverage_set("sqrt_iswap", num_samples=250, seed=3)
    circuit = QuantumCircuit(2)
    circuit.cx(0, 1)
    metrics = evaluate(circuit, coverage=coverage)
    assert metrics.depth == pytest.approx(1.0)
    assert metrics.total_cost == pytest.approx(1.0)
    assert metrics.swap_count == 0

    swap_circuit = QuantumCircuit(2)
    swap_circuit.swap(0, 1)
    swap_metrics = evaluate(swap_circuit, coverage=coverage)
    assert swap_metrics.depth == pytest.approx(1.5)
    assert swap_metrics.swap_count == 1


def test_metrics_depth_accounts_for_parallelism():
    coverage = get_coverage_set("sqrt_iswap", num_samples=250, seed=3)
    circuit = QuantumCircuit(4)
    circuit.cx(0, 1).cx(2, 3)  # parallel pair
    metrics = evaluate(circuit, coverage=coverage)
    assert metrics.depth == pytest.approx(1.0)
    assert metrics.total_cost == pytest.approx(2.0)
    assert metrics.gate_depth == 1


def test_improvement_report():
    coverage = get_coverage_set("sqrt_iswap", num_samples=250, seed=3)
    a = QuantumCircuit(2)
    a.cx(0, 1).swap(0, 1)
    b = QuantumCircuit(2)
    b.cx(0, 1)
    before = evaluate(a, coverage=coverage)
    after = evaluate(b, coverage=coverage)
    gains = improvement(before, after)
    assert gains["depth"] > 0
    assert gains["swap_count"] == 1.0
