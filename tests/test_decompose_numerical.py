"""Tests for the numerical ansatz decomposer."""

import numpy as np
import pytest

from repro.decompose import (
    best_approximation_fidelity,
    interleaved_ansatz_matrix,
    is_reachable,
    middle_local_matrix,
    optimize_to_coordinate,
)
from repro.exceptions import DecompositionError
from repro.linalg import SQRT_ISWAP, is_unitary
from repro.weyl import CNOT_COORD, ISWAP_COORD, SQRT_ISWAP_COORD, SWAP_COORD


def test_middle_local_matrix_is_unitary():
    assert is_unitary(middle_local_matrix([0.1, 0.2, 0.3, 0.4, 0.5, 0.6]))


def test_interleaved_ansatz_depth_one():
    product = interleaved_ansatz_matrix(SQRT_ISWAP, [])
    assert np.allclose(product, SQRT_ISWAP)


def test_interleaved_ansatz_rejects_bad_length():
    with pytest.raises(DecompositionError):
        interleaved_ansatz_matrix(SQRT_ISWAP, [0.1, 0.2])


def test_interleaved_ansatz_identity_locals_gives_power():
    product = interleaved_ansatz_matrix(SQRT_ISWAP, [0.0] * 6)
    assert np.allclose(product, SQRT_ISWAP @ SQRT_ISWAP)


def test_depth_one_optimization_matches_basis_class():
    result = optimize_to_coordinate(SQRT_ISWAP_COORD, "sqrt_iswap", 1)
    assert result.success
    assert result.parameters == ()


def test_depth_one_cannot_reach_cnot():
    result = optimize_to_coordinate(CNOT_COORD, "sqrt_iswap", 1)
    assert not result.success


def test_cnot_reachable_with_two_sqrt_iswap():
    # Huang et al. / paper Fig. 1a: CNOT decomposes into two sqrt(iSWAP).
    assert is_reachable(CNOT_COORD, "sqrt_iswap", 2, seed=1)


def test_iswap_reachable_with_two_sqrt_iswap():
    assert is_reachable(ISWAP_COORD, "sqrt_iswap", 2, seed=1)


def test_swap_not_reachable_with_two_sqrt_iswap():
    assert not is_reachable(SWAP_COORD, "sqrt_iswap", 2, seed=1, trials=6)


def test_swap_reachable_with_three_sqrt_iswap():
    assert is_reachable(SWAP_COORD, "sqrt_iswap", 3, seed=1, trials=6)


def test_invalid_depth_raises():
    with pytest.raises(DecompositionError):
        optimize_to_coordinate(CNOT_COORD, "sqrt_iswap", 0)


def test_best_approximation_is_exact_when_reachable():
    fidelity, realised = best_approximation_fidelity(
        CNOT_COORD, "sqrt_iswap", 2, seed=2, trials=4, maxiter=400
    )
    assert fidelity > 0.999


def test_best_approximation_below_one_when_unreachable():
    fidelity, realised = best_approximation_fidelity(
        SWAP_COORD, "sqrt_iswap", 1, seed=2
    )
    assert fidelity < 0.999
    assert np.allclose(realised, SQRT_ISWAP_COORD.to_tuple(), atol=1e-6)
