"""Tests for the staged pipeline, trial executors and the batch API."""

import pytest

from repro.exceptions import TranspilerError
from repro.circuits import QuantumCircuit
from repro.circuits.library import ghz, qft, twolocal_full
from repro.core import (
    build_mirage_pipeline,
    prepare_circuit,
    transpile,
    transpile_many,
)
from repro.polytopes import get_coverage_set
from repro.transpiler import (
    BasePass,
    PassManager,
    ProcessExecutor,
    PropertySet,
    SerialExecutor,
    ThreadExecutor,
    TrialExecutor,
    line_topology,
    resolve_executor,
)
from repro.transpiler.passes import (
    DepthMetric,
    SabreLayout,
    run_layout_trial,
    swap_count_metric,
)

COVERAGE = get_coverage_set("sqrt_iswap", num_samples=250, seed=3)


def _fingerprint(result):
    """Byte-level identity of a transpile result, modulo wall-clock."""
    return (
        [(instr.gate.name, instr.qubits) for instr in result.circuit],
        result.initial_layout.virtual_to_physical(),
        result.final_layout.virtual_to_physical(),
        result.swaps_added,
        result.mirrors_accepted,
        result.trial_index,
        round(result.metrics.depth, 9),
    )


# ---------------------------------------------------------------------------
# PassManager / PropertySet
# ---------------------------------------------------------------------------


class _ProducerPass(BasePass):
    name = "producer"

    def run(self, state):
        state.properties["token"] = state.circuit.num_qubits * 10


class _ConsumerPass(BasePass):
    name = "consumer"

    def run(self, state):
        state.properties["echo"] = state.properties.require("token") + 1


class _ConditionalPass(BasePass):
    name = "conditional"

    def should_run(self, state):
        return state.properties.get("enabled", False)

    def run(self, state):  # pragma: no cover - never enabled in the test
        state.properties["ran"] = True


def test_property_set_handoff_between_stages():
    manager = PassManager([_ProducerPass(), _ConsumerPass()])
    state = manager.execute(ghz(3))
    assert state.properties["token"] == 30
    assert state.properties["echo"] == 31


def test_property_set_require_raises_for_missing_key():
    with pytest.raises(TranspilerError):
        PropertySet().require("nope")
    manager = PassManager([_ConsumerPass()])
    with pytest.raises(TranspilerError):
        manager.execute(ghz(2))


def test_skipped_stage_is_recorded():
    manager = PassManager([_ConditionalPass(), _ProducerPass()])
    state = manager.execute(ghz(2))
    assert [record.skipped for record in state.records] == [True, False]
    report = manager.report()
    assert report[0]["name"] == "conditional"
    assert report[0]["seconds"] == 0.0
    assert "ran" not in state.properties


def test_pass_manager_records_gate_counts_and_timings():
    circuit = QuantumCircuit(3)
    circuit.ccx(0, 1, 2).barrier()
    manager = build_mirage_pipeline(
        line_topology(3), coverage=COVERAGE, use_vf2=False, layout_trials=1, seed=1
    )
    state = manager.execute(circuit)
    by_name = {record.name: record for record in state.records}
    assert set(by_name) == {
        "clean", "unroll", "reclean", "consolidate", "coupling",
        "coverage", "analyze", "vf2", "route", "select",
    }
    # Unrolling a Toffoli grows the circuit; analysis stages leave it alone.
    assert by_name["unroll"].gates_after > by_name["unroll"].gates_before
    assert by_name["coverage"].gates_after == by_name["coverage"].gates_before
    assert manager.total_seconds() == pytest.approx(
        sum(row["seconds"] for row in manager.report())
    )
    assert all(row["seconds"] >= 0 for row in manager.report())
    # Initial properties are visible to every stage.
    assert state.properties["result"].method == "mirage"


def test_records_survive_stage_failure():
    """A stage that raises must not discard the records of earlier stages."""
    manager = build_mirage_pipeline(line_topology(3), coverage=COVERAGE, seed=1)
    with pytest.raises(TranspilerError):
        manager.execute(qft(5))  # device too small: the coupling stage raises
    assert [r.name for r in manager.records] == [
        "clean", "unroll", "reclean", "consolidate"
    ]


def test_pipeline_rejects_unknown_method_and_selection():
    with pytest.raises(TranspilerError):
        build_mirage_pipeline(line_topology(3), method="magic")
    with pytest.raises(TranspilerError):
        build_mirage_pipeline(line_topology(3), selection="volume")


def test_vf2_embedding_skips_routing():
    result = transpile(ghz(4), line_topology(4), coverage=COVERAGE, seed=1)
    assert result.method == "vf2"
    report = {rec["name"]: rec for rec in result.pipeline_report}
    assert report["route"]["skipped"] is True
    assert report["vf2"]["skipped"] is False
    assert result.stage_seconds()["route"] == 0.0


def test_prepare_circuit_still_pipeline_backed():
    circuit = QuantumCircuit(3)
    circuit.ccx(0, 1, 2).barrier()
    prepared = prepare_circuit(circuit)
    assert all(len(instr.qubits) <= 2 for instr in prepared)


# ---------------------------------------------------------------------------
# Trial executors
# ---------------------------------------------------------------------------


class _ReversedExecutor(TrialExecutor):
    """Runs tasks in reverse order — results must still come back in order."""

    name = "reversed"

    def map(self, fn, tasks):
        tasks = list(tasks)
        outcomes = [fn(task) for task in reversed(tasks)]
        return list(reversed(outcomes))


def test_resolve_executor_specs():
    assert isinstance(resolve_executor(None), SerialExecutor)
    assert isinstance(resolve_executor("serial"), SerialExecutor)
    assert isinstance(resolve_executor("threads", 2), ThreadExecutor)
    assert isinstance(resolve_executor("processes", 2), ProcessExecutor)
    instance = ThreadExecutor(max_workers=1)
    assert resolve_executor(instance) is instance
    with pytest.raises(TranspilerError):
        resolve_executor("quantum")
    with pytest.raises(TranspilerError):
        ThreadExecutor(max_workers=0)


def test_executors_preserve_order():
    tasks = list(range(7))
    for executor in (SerialExecutor(), ThreadExecutor(max_workers=3)):
        with executor:
            assert executor.map(lambda x: x * x, tasks) == [x * x for x in tasks]


def test_sabre_layout_deterministic_across_executor_order():
    dag = prepare_circuit(qft(5)).to_dag()
    outcomes = {}
    for name, executor in (
        ("serial", SerialExecutor()),
        ("reversed", _ReversedExecutor()),
        ("threads", ThreadExecutor(max_workers=2)),
    ):
        driver = SabreLayout(
            line_topology(5),
            layout_trials=3,
            refinement_rounds=1,
            selection_metric=swap_count_metric,
            seed=2,
            executor=executor,
        )
        best = driver.run(dag)
        outcomes[name] = (
            best.score,
            best.trial_index,
            best.trial_scores,
            [(n.gate.name, n.qubits) for n in best.routing.dag.topological_nodes()],
        )
    assert outcomes["serial"] == outcomes["reversed"] == outcomes["threads"]


def test_sabre_layout_same_seed_same_result():
    dag = prepare_circuit(qft(4)).to_dag()
    runs = [
        SabreLayout(line_topology(4), layout_trials=2, seed=5).run(dag)
        for _ in range(2)
    ]
    assert runs[0].score == runs[1].score
    assert runs[0].trial_index == runs[1].trial_index
    assert runs[0].trial_scores == runs[1].trial_scores


def test_run_layout_trial_is_self_contained():
    driver = SabreLayout(
        line_topology(4),
        layout_trials=2,
        selection_metric=DepthMetric(coverage=COVERAGE),
        seed=8,
    )
    tasks = driver.trial_tasks(prepare_circuit(qft(4)).to_dag())
    first = run_layout_trial(tasks[0])
    again = run_layout_trial(tasks[0])
    assert first.score == again.score
    assert first.trial_index == 0


# ---------------------------------------------------------------------------
# transpile() determinism across executors
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("method", ["sabre", "mirage"])
def test_transpile_identical_across_executors(method):
    circuit = qft(5)
    selection = "swaps" if method == "sabre" else "depth"
    reference = transpile(
        circuit, line_topology(5), method=method, selection=selection,
        layout_trials=3, coverage=COVERAGE, use_vf2=False, seed=9,
    )
    for executor in ("serial", "threads", "processes"):
        result = transpile(
            circuit, line_topology(5), method=method, selection=selection,
            layout_trials=3, coverage=COVERAGE, use_vf2=False, seed=9,
            executor=executor, max_workers=2,
        )
        assert _fingerprint(result) == _fingerprint(reference), executor


def test_transpile_parity_with_direct_driver():
    """The pipeline-built transpile() matches driving SabreLayout by hand."""
    from repro.core import MirageRouterFactory, schedule_from_spec

    circuit = twolocal_full(4)
    coupling = line_topology(4)
    result = transpile(
        circuit, coupling, method="mirage", selection="depth",
        layout_trials=4, coverage=COVERAGE, use_vf2=False, seed=3,
    )

    prepared = prepare_circuit(circuit)
    schedule = tuple(schedule_from_spec(4, None))
    driver = SabreLayout(
        coupling,
        MirageRouterFactory(coupling, COVERAGE, schedule),
        layout_trials=4,
        refinement_rounds=2,
        routing_trials=1,
        selection_metric=DepthMetric(coverage=COVERAGE),
        metric_name="depth",
        seed=3,
    )
    best = driver.run(prepared.to_dag())
    assert best.trial_index == result.trial_index
    assert [(i.gate.name, i.qubits) for i in best.routing.to_circuit()] == [
        (i.gate.name, i.qubits) for i in result.circuit
    ]


def test_transpile_seed_still_produces_mirage_gains():
    """Behavioural parity with the seed suite's Fig. 8 expectation."""
    circuit = twolocal_full(4)
    sabre = transpile(circuit, line_topology(4), method="sabre",
                      selection="swaps", layout_trials=4, coverage=COVERAGE,
                      use_vf2=False, seed=3)
    mirage = transpile(circuit, line_topology(4), method="mirage",
                       selection="depth", layout_trials=4, coverage=COVERAGE,
                       use_vf2=False, seed=3)
    assert mirage.metrics.depth < sabre.metrics.depth
    assert mirage.mirrors_accepted > 0


# ---------------------------------------------------------------------------
# transpile_many batch API
# ---------------------------------------------------------------------------


def test_transpile_many_returns_per_circuit_results():
    circuits = [qft(4), ghz(5), twolocal_full(4)]
    batch = transpile_many(
        circuits, line_topology(5), coverage=COVERAGE, use_vf2=False,
        layout_trials=2, seed=7,
    )
    assert len(batch) == 3
    assert [r.circuit.num_qubits for r in batch] == [5, 5, 5]
    assert batch.executor == "serial"
    summary = batch.summary()
    assert summary["circuits"] == 3
    assert summary["mean_depth"] > 0
    assert len(batch.summaries()) == 3
    assert batch[0].pipeline_report is not None


def test_transpile_many_aggregates_stage_timings():
    batch = transpile_many(
        [qft(4), ghz(4)], line_topology(4), coverage=COVERAGE,
        use_vf2=False, layout_trials=1, seed=7,
    )
    stage_seconds = batch.stage_seconds()
    assert set(stage_seconds) >= {"clean", "unroll", "route", "select"}
    assert stage_seconds["route"] > 0
    total = sum(stage_seconds.values())
    assert total <= batch.runtime_seconds


def test_transpile_many_identical_across_executors():
    circuits = [qft(4), twolocal_full(4)]
    serial = transpile_many(
        circuits, line_topology(4), coverage=COVERAGE, use_vf2=False,
        layout_trials=2, seed=11,
    )
    with ThreadExecutor(max_workers=2) as executor:
        threaded = transpile_many(
            circuits, line_topology(4), coverage=COVERAGE, use_vf2=False,
            layout_trials=2, seed=11, executor=executor,
        )
    assert [_fingerprint(r) for r in serial] == [_fingerprint(r) for r in threaded]


def test_seed_sequence_instance_is_reusable():
    """Passing the same SeedSequence object twice gives identical results
    (spawn state must not leak back into the caller's instance)."""
    import numpy as np

    seed = np.random.SeedSequence(9)
    runs = [
        transpile(qft(5), line_topology(5), coverage=COVERAGE, use_vf2=False,
                  layout_trials=3, seed=seed)
        for _ in range(2)
    ]
    assert _fingerprint(runs[0]) == _fingerprint(runs[1])
    # ... and matches the equivalent integer seed.
    from_int = transpile(qft(5), line_topology(5), coverage=COVERAGE,
                         use_vf2=False, layout_trials=3, seed=9)
    assert _fingerprint(runs[0]) == _fingerprint(from_int)


def test_transpile_many_accepts_generator_seed():
    """Seed coercion matches transpile(): Generators are accepted."""
    import numpy as np

    batch = transpile_many(
        [qft(4)], line_topology(4), coverage=COVERAGE, use_vf2=False,
        layout_trials=2, seed=np.random.default_rng(3),
    )
    assert len(batch) == 1
    assert batch[0].metrics.depth > 0


def test_transpile_many_empty_batch():
    batch = transpile_many([], line_topology(4), coverage=COVERAGE, seed=1)
    assert len(batch) == 0
    assert batch.summary()["circuits"] == 0
    assert batch.stage_seconds() == {}


def test_transpile_many_validates_before_running():
    """Typos fail fast — even with an empty batch, before any real work."""
    with pytest.raises(TranspilerError):
        transpile_many([], line_topology(4), coverage=COVERAGE, method="sabrre")
    with pytest.raises(TranspilerError):
        transpile_many([], line_topology(4), coverage=COVERAGE,
                       selection="volume")
    with pytest.raises(TranspilerError):
        transpile_many([qft(4)], line_topology(4), coverage=COVERAGE,
                       executor="procesess")


def test_coordinate_cache_thread_safe_under_eviction():
    """Concurrent hits and evicting inserts must not corrupt the LRU."""
    import threading

    from repro.polytopes import CoordinateCache
    from repro.linalg import haar_unitary

    cache = CoordinateCache(maxsize=8)
    unitaries = [haar_unitary(4, seed=i) for i in range(32)]
    expected = {i: cache.coordinate(u) for i, u in enumerate(unitaries[:4])}
    errors = []

    def worker(offset):
        try:
            for _ in range(50):
                for i, u in enumerate(unitaries):
                    value = cache.coordinate(u)
                    if i in expected:
                        assert value == expected[i]
        except Exception as exc:  # pragma: no cover - only on regression
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(k,)) for k in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert len(cache) <= 8
