"""Tests for repro.linalg.constants."""

import numpy as np
import pytest

from repro.linalg import (
    CNOT,
    CNOT_REVERSED,
    CZ,
    H,
    ID,
    ISWAP,
    MAGIC,
    S,
    SQRT_ISWAP,
    SWAP,
    SX,
    T,
    X,
    Y,
    Z,
    cphase,
    is_unitary,
    iswap_power,
    pswap,
    xx_yy_interaction,
)


ALL_CONSTANTS = {
    "ID": ID,
    "X": X,
    "Y": Y,
    "Z": Z,
    "H": H,
    "S": S,
    "T": T,
    "SX": SX,
    "CNOT": CNOT,
    "CNOT_REVERSED": CNOT_REVERSED,
    "CZ": CZ,
    "SWAP": SWAP,
    "ISWAP": ISWAP,
    "SQRT_ISWAP": SQRT_ISWAP,
    "MAGIC": MAGIC,
}


@pytest.mark.parametrize("name", sorted(ALL_CONSTANTS))
def test_constants_are_unitary(name):
    assert is_unitary(ALL_CONSTANTS[name])


def test_pauli_algebra():
    assert np.allclose(X @ X, ID)
    assert np.allclose(Y @ Y, ID)
    assert np.allclose(Z @ Z, ID)
    assert np.allclose(X @ Y, 1j * Z)
    assert np.allclose(Y @ Z, 1j * X)
    assert np.allclose(Z @ X, 1j * Y)


def test_hadamard_conjugation():
    assert np.allclose(H @ X @ H, Z)
    assert np.allclose(H @ Z @ H, X)


def test_sx_squares_to_x():
    assert np.allclose(SX @ SX, X)


def test_s_squares_to_z():
    assert np.allclose(S @ S, Z)


def test_t_squares_to_s():
    assert np.allclose(T @ T, S)


def test_cnot_action_on_basis():
    # |10> (q0=0, q1=1) stays, |01> (q0=1) flips target q1.
    basis = np.eye(4)
    assert np.allclose(CNOT @ basis[:, 0], basis[:, 0])
    assert np.allclose(CNOT @ basis[:, 1], basis[:, 3])
    assert np.allclose(CNOT @ basis[:, 2], basis[:, 2])
    assert np.allclose(CNOT @ basis[:, 3], basis[:, 1])


def test_swap_exchanges_basis_states():
    basis = np.eye(4)
    assert np.allclose(SWAP @ basis[:, 1], basis[:, 2])
    assert np.allclose(SWAP @ basis[:, 2], basis[:, 1])
    assert np.allclose(SWAP @ basis[:, 0], basis[:, 0])
    assert np.allclose(SWAP @ basis[:, 3], basis[:, 3])


def test_iswap_phases():
    basis = np.eye(4)
    assert np.allclose(ISWAP @ basis[:, 1], 1j * basis[:, 2])
    assert np.allclose(ISWAP @ basis[:, 2], 1j * basis[:, 1])


def test_iswap_power_composition():
    half = iswap_power(0.5)
    assert np.allclose(half @ half, ISWAP)
    third = iswap_power(1.0 / 3.0)
    assert np.allclose(third @ third @ third, ISWAP)
    quarter = iswap_power(0.25)
    assert np.allclose(np.linalg.matrix_power(quarter, 4), ISWAP)


def test_iswap_power_identity_and_full():
    assert np.allclose(iswap_power(0.0), np.eye(4))
    assert np.allclose(iswap_power(1.0), ISWAP)


def test_sqrt_iswap_constant_matches_power():
    assert np.allclose(SQRT_ISWAP, iswap_power(0.5))


def test_cphase_diagonal():
    theta = 0.37
    gate = cphase(theta)
    assert np.allclose(np.diag(gate), [1, 1, 1, np.exp(1j * theta)])
    assert np.allclose(gate - np.diag(np.diag(gate)), 0)


def test_cphase_pi_is_cz():
    assert np.allclose(cphase(np.pi), CZ)


def test_pswap_zero_is_swap():
    assert np.allclose(pswap(0.0), SWAP)


def test_pswap_is_unitary_for_any_angle():
    for theta in np.linspace(-np.pi, np.pi, 7):
        assert is_unitary(pswap(theta))


def test_xx_yy_interaction_builds_iswap():
    gate = xx_yy_interaction(np.pi / 4, np.pi / 4, 0.0)
    # Locally equivalent matrices need not be equal, but this construction is
    # exactly iSWAP in the computational basis.
    assert np.allclose(gate, ISWAP)


def test_xx_yy_interaction_identity():
    assert np.allclose(xx_yy_interaction(0, 0, 0), np.eye(4))


def test_magic_basis_maps_pauli_products_to_diagonal():
    for pauli in (np.kron(X, X), np.kron(Y, Y), np.kron(Z, Z)):
        transformed = MAGIC.conj().T @ pauli @ MAGIC
        off_diagonal = transformed - np.diag(np.diag(transformed))
        assert np.allclose(off_diagonal, 0, atol=1e-12)
