"""Tests for the Table III benchmark circuit generators."""

import math

import numpy as np
import pytest

from repro.circuits.library import (
    amplitude_estimation,
    benchmark_circuit,
    benchmark_suite,
    bernstein_vazirani,
    bigadder,
    efficient_su2,
    ghz,
    knn,
    portfolio_qaoa,
    qaoa_maxcut,
    qec9xz,
    qft,
    qft_entangled,
    qpe_exact,
    qram,
    sat,
    seca,
    swap_test,
    twolocal_full,
    wstate,
)
from repro.circuits.library.suite import suite_inventory
from repro.transpiler.passes.unroll import unroll_to_two_qubit


def test_table_iii_suite_builds_with_expected_sizes():
    rows = suite_inventory()
    assert len(rows) == 15
    by_name = {row["name"]: row for row in rows}
    assert by_name["wstate_n27"]["qubits"] == 27
    assert by_name["qft_n18"]["qubits"] == 18
    assert by_name["bv_n30"]["qubits"] == 30
    # Every circuit must actually contain two-qubit work for the router.
    assert all(row["two_qubit_gates"] > 0 for row in rows)


def test_benchmark_circuit_lookup():
    circuit = benchmark_circuit("qft", 6)
    assert circuit.num_qubits == 6
    with pytest.raises(ValueError):
        benchmark_circuit("not_a_benchmark")


def test_benchmark_suite_subset():
    subset = benchmark_suite(["qft", "bv"])
    assert {c.name.split("_n")[0] for c in subset} == {"qft", "bv"}


def test_ghz_statevector():
    state = ghz(3).statevector()
    assert np.isclose(abs(state[0]) ** 2, 0.5)
    assert np.isclose(abs(state[-1]) ** 2, 0.5)


def test_wstate_statevector_is_w_state():
    state = wstate(4).statevector()
    probabilities = np.abs(state) ** 2
    single_excitation = [1 << k for k in range(4)]
    assert np.isclose(sum(probabilities[i] for i in single_excitation), 1.0, atol=1e-9)
    assert np.allclose(
        [probabilities[i] for i in single_excitation], 0.25, atol=1e-9
    )


def test_qft_matrix_matches_dft():
    num_qubits = 3
    matrix = qft(num_qubits, do_swaps=True).to_matrix()
    dim = 2**num_qubits
    omega = np.exp(2j * np.pi / dim)
    dft = np.array(
        [[omega ** (row * col) for col in range(dim)] for row in range(dim)]
    ) / math.sqrt(dim)
    assert np.allclose(matrix, dft, atol=1e-9)


def test_qft_approximation_degree_reduces_gates():
    exact = qft(8)
    approximate = qft(8, approximation_degree=4)
    assert approximate.num_two_qubit_gates() < exact.num_two_qubit_gates()


def test_qft_entangled_contains_qft_and_ghz_prefix():
    circuit = qft_entangled(5)
    names = [instr.gate.name for instr in circuit]
    assert names[0] == "h"
    assert "cp" in names and "swap" in names


def test_bernstein_vazirani_measures_secret():
    secret = 0b101
    circuit = bernstein_vazirani(4, secret=secret)
    state = circuit.statevector()
    probabilities = np.abs(state) ** 2
    # The data register (qubits 0-2) should hold the secret; ancilla is in |->.
    data_distribution = np.zeros(8)
    for index, p in enumerate(probabilities):
        data_distribution[index & 0b111] += p
    assert np.isclose(data_distribution[secret], 1.0, atol=1e-9)


def test_qpe_exact_structure():
    circuit = qpe_exact(6)
    assert circuit.num_qubits == 6
    assert circuit.num_two_qubit_gates() > 5


def test_amplitude_estimation_structure():
    circuit = amplitude_estimation(8)
    assert circuit.num_qubits == 8
    assert circuit.num_two_qubit_gates() > 10
    with pytest.raises(ValueError):
        amplitude_estimation(2)


def test_arithmetic_circuits_unroll_cleanly():
    for circuit in (bigadder(12), benchmark_circuit("multiplier", 9)):
        unrolled = unroll_to_two_qubit(circuit)
        assert unrolled.num_two_qubit_gates() > 0
        assert all(len(instr.qubits) <= 2 for instr in unrolled)


def test_error_correction_circuits():
    assert qec9xz(17).num_qubits == 17
    assert seca(11).num_two_qubit_gates() > 5


def test_qram_and_validation():
    circuit = qram(16)
    assert circuit.num_qubits == 16
    with pytest.raises(ValueError):
        qram(4)


def test_qml_circuits():
    assert swap_test(9).num_qubits == 9
    assert knn(9).count_ops()["cswap"] == 4
    assert sat(11).num_two_qubit_gates() > 10
    dense = portfolio_qaoa(6, layers=1)
    assert dense.count_ops()["rzz"] == 15  # fully connected cost layer


def test_qaoa_maxcut_regular_graph():
    circuit = qaoa_maxcut(8, layers=2, degree=3, seed=1)
    assert circuit.count_ops()["rzz"] == 2 * (8 * 3 // 2)


def test_twolocal_and_efficient_su2():
    full = twolocal_full(4)
    assert full.count_ops()["cx"] == 6
    linear = efficient_su2(5, reps=2)
    assert linear.count_ops()["cx"] == 8


def test_generators_reject_tiny_sizes():
    with pytest.raises(ValueError):
        wstate(1)
    with pytest.raises(ValueError):
        bernstein_vazirani(1)
    with pytest.raises(ValueError):
        swap_test(2)
    with pytest.raises(ValueError):
        sat(3)
