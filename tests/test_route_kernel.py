"""Tests for the flat routing kernel (``repro.transpiler.kernel``).

Covers the PR-6 guarantees:

* ``MIRAGE_ROUTE_KERNEL`` resolution (flat default, object opt-out,
  unknown values rejected);
* fixed-seed byte-identity between the flat and object kernels across
  seeds x topologies x executors, for SABRE and MIRAGE, plus a pinned
  digest so *both* kernels drifting together is caught;
* ``IntDAG`` round-trip properties (op table, CSR adjacency, front
  layer, interpreter-cache hygiene under pickle);
* the decay-reset ordering regression at the ``DECAY_RESET_INTERVAL``
  boundary (reset-on-execute vs. reset-on-interval must interleave
  identically in both kernels).
"""

import hashlib
import pickle

import numpy as np
import pytest

from repro.exceptions import TranspilerError
from repro.circuits.circuit import random_two_qubit_block_circuit
from repro.circuits.dag import DAGCircuit
from repro.circuits.library import ghz, qft, twolocal_full
from repro.core import MirageSwap, transpile
from repro.polytopes import get_coverage_set
from repro.transpiler import (
    CouplingMap,
    Layout,
    grid_topology,
    heavy_hex_topology,
    line_topology,
    ring_topology,
)
from repro.transpiler.kernel import (
    IntDAG,
    adopt_intdag,
    int_dag,
    neighbor_table,
    route_kernel_mode,
)
from repro.transpiler.passes import SabreSwap

COVERAGE = get_coverage_set("sqrt_iswap", num_samples=250, seed=3)

#: Digest of the fixed reference config in :func:`test_pinned_digest` —
#: gate names, qubits and params of the routed circuit (matrices are
#: excluded so the pin is libm-independent).  Both kernels must produce
#: it; a change here means routing behaviour changed for everyone.
PINNED_SHA256 = (
    "6ca10f054205fb28db1a48fbbbd75f071d4084b047ba826d1f365d377a8c7413"
)


def _op_stream(result, with_matrices: bool = True):
    stream = []
    for instr in result.circuit.instructions:
        entry = (instr.gate.name, tuple(instr.qubits), tuple(instr.gate.params))
        if with_matrices:
            try:
                entry += (instr.gate.matrix().tobytes(),)
            except Exception:
                pass
        stream.append(entry)
    return stream


def _digest(result, with_matrices: bool = True) -> str:
    payload = hashlib.sha256()
    for entry in _op_stream(result, with_matrices):
        payload.update(repr(entry).encode())
    return payload.hexdigest()


def _transpile_both(monkeypatch, *args, **kwargs):
    monkeypatch.setenv("MIRAGE_ROUTE_KERNEL", "flat")
    flat = transpile(*args, **kwargs)
    monkeypatch.setenv("MIRAGE_ROUTE_KERNEL", "object")
    obj = transpile(*args, **kwargs)
    monkeypatch.delenv("MIRAGE_ROUTE_KERNEL")
    return flat, obj


# ---------------------------------------------------------------------------
# Kernel switch
# ---------------------------------------------------------------------------


def test_route_kernel_mode_resolution(monkeypatch):
    monkeypatch.delenv("MIRAGE_ROUTE_KERNEL", raising=False)
    assert route_kernel_mode() == "flat"
    for value in ("flat", "default", "", "  FLAT "):
        monkeypatch.setenv("MIRAGE_ROUTE_KERNEL", value)
        assert route_kernel_mode() == "flat"
    for value in ("object", "legacy", "OBJECT"):
        monkeypatch.setenv("MIRAGE_ROUTE_KERNEL", value)
        assert route_kernel_mode() == "object"
    monkeypatch.setenv("MIRAGE_ROUTE_KERNEL", "turbo")
    with pytest.raises(TranspilerError, match="MIRAGE_ROUTE_KERNEL"):
        route_kernel_mode()


def test_object_mode_skips_the_flat_kernel(monkeypatch):
    """``object`` must dispatch to the object-path router, not the kernel."""
    from repro.transpiler.passes import sabre_swap as sabre_mod

    def _boom(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("flat kernel invoked in object mode")

    monkeypatch.setattr(sabre_mod, "route_kernel", _boom)
    monkeypatch.setenv("MIRAGE_ROUTE_KERNEL", "object")
    coupling = line_topology(4)
    router = SabreSwap(coupling)
    dag = DAGCircuit.from_circuit(ghz(4))
    result = router.run(dag, Layout.trivial(4, 4), seed=2)
    assert result.swaps_added >= 0

    monkeypatch.setenv("MIRAGE_ROUTE_KERNEL", "flat")
    with pytest.raises(AssertionError, match="flat kernel"):
        router.run(dag, Layout.trivial(4, 4), seed=2)


# ---------------------------------------------------------------------------
# Flat vs object identity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [3, 11, 29])
@pytest.mark.parametrize(
    "topology",
    [
        line_topology(5),
        ring_topology(6),
        grid_topology(2, 3),
        heavy_hex_topology(12),
    ],
    ids=["line5", "ring6", "grid23", "hh12"],
)
def test_flat_object_identity_across_seeds_and_topologies(
    monkeypatch, topology, seed
):
    circuit = qft(5)
    flat, obj = _transpile_both(
        monkeypatch,
        circuit,
        topology,
        method="mirage",
        layout_trials=2,
        use_vf2=False,
        coverage=COVERAGE,
        seed=seed,
    )
    assert _digest(flat) == _digest(obj)
    assert flat.metrics.swap_count == obj.metrics.swap_count
    assert flat.metrics.depth == obj.metrics.depth


@pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
@pytest.mark.parametrize("method", ["sabre", "mirage"])
def test_flat_object_identity_across_executors(monkeypatch, method, executor):
    flat, obj = _transpile_both(
        monkeypatch,
        twolocal_full(5),
        grid_topology(2, 3),
        method=method,
        layout_trials=3,
        use_vf2=False,
        coverage=COVERAGE,
        seed=17,
        executor=executor,
    )
    assert _digest(flat) == _digest(obj)


def test_pinned_digest(monkeypatch):
    """Both kernels must reproduce the pinned reference digest.

    The identity tests above would pass if flat and object drifted
    *together*; this pin detects that.  Matrices are excluded from the
    digest (gate parameters are exact binary fractions of pi, so their
    reprs are platform-stable; matrix entries go through libm).
    """
    flat, obj = _transpile_both(
        monkeypatch,
        qft(5),
        grid_topology(2, 3),
        method="mirage",
        layout_trials=2,
        use_vf2=False,
        coverage=COVERAGE,
        seed=7,
    )
    assert _digest(flat, with_matrices=False) == PINNED_SHA256
    assert _digest(obj, with_matrices=False) == PINNED_SHA256


def test_direct_router_identity_with_aggressions(monkeypatch):
    """Router-level identity: full op streams, layouts and stats."""
    coupling = heavy_hex_topology(12)
    dag = DAGCircuit.from_circuit(qft(6))
    rng = np.random.default_rng(9)
    layout = Layout.random(dag.num_qubits, coupling.num_qubits, rng)

    def run(mode, aggression):
        monkeypatch.setenv("MIRAGE_ROUTE_KERNEL", mode)
        router = MirageSwap(coupling, coverage=COVERAGE, aggression=aggression)
        result = router.run(dag, layout.copy(), seed=13)
        ops = [
            (node.gate.name, tuple(node.qubits), node.gate.matrix().tobytes())
            for node_id in sorted(result.dag.nodes)
            for node in (result.dag.nodes[node_id],)
        ]
        return (
            ops,
            result.final_layout.virtual_to_physical(),
            result.swaps_added,
            result.mirrors_accepted,
            result.mirror_candidates,
        )

    for aggression in (0, 1, 2, 3):
        assert run("flat", aggression) == run("object", aggression)


# ---------------------------------------------------------------------------
# IntDAG round-trip properties
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "circuit", [ghz(5), qft(4), twolocal_full(4)], ids=["ghz5", "qft4", "tl4"]
)
def test_intdag_round_trip(circuit):
    dag = DAGCircuit.from_circuit(circuit)
    lowered = int_dag(dag)

    assert lowered.num_qubits == dag.num_qubits
    assert lowered.num_nodes == len(dag.nodes)
    for node_id, node in dag.nodes.items():
        assert lowered.gate(node_id) is node.gate
        assert lowered.node_qubits(node_id) == tuple(node.qubits)
        assert lowered.successor_ids(node_id) == dag._successors[node_id]
        assert lowered.predecessor_ids(node_id) == dag._predecessors[node_id]
        assert bool(lowered.two_qubit[node_id]) == node.is_two_qubit
    assert lowered.front_ids() == [n.node_id for n in dag.front_layer()]

    rebuilt = lowered.to_dag(dag.name)
    assert len(rebuilt.nodes) == len(dag.nodes)
    for node_id, node in dag.nodes.items():
        clone = rebuilt.nodes[node_id]
        assert clone.gate is node.gate
        assert tuple(clone.qubits) == tuple(node.qubits)
    assert rebuilt._successors == dag._successors
    assert rebuilt._predecessors == dag._predecessors


def test_intdag_csr_consistency():
    dag = DAGCircuit.from_circuit(qft(5))
    lowered = int_dag(dag)
    # CSR pointers are monotone and the in-degree vector matches the
    # predecessor table (what the kernel's front advance relies on).
    assert list(lowered.succ_indptr) == sorted(lowered.succ_indptr)
    assert list(lowered.pred_indptr) == sorted(lowered.pred_indptr)
    assert lowered.succ_indptr[-1] == len(lowered.succ_ids)
    for node_id in range(lowered.num_nodes):
        assert lowered.indegree[node_id] == len(dag._predecessors[node_id])
    lists = lowered.lists()
    assert lists.succ_tuples == tuple(
        tuple(dag._successors[i]) for i in range(lowered.num_nodes)
    )


def test_intdag_memo_and_adoption():
    dag = DAGCircuit.from_circuit(ghz(4))
    lowered = int_dag(dag)
    assert int_dag(dag) is lowered  # memoised on the DAG

    fresh = DAGCircuit.from_circuit(ghz(4))
    adopt_intdag(fresh, lowered)
    assert int_dag(fresh) is lowered  # adopted table wins

    # A stale table (node-count mismatch) is refused.
    smaller = DAGCircuit.from_circuit(ghz(3))
    adopt_intdag(smaller, lowered)
    assert int_dag(smaller) is not lowered


def test_intdag_pickle_drops_interpreter_caches():
    dag = DAGCircuit.from_circuit(qft(4))
    lowered = int_dag(dag)
    lowered.lists()  # populate the cache
    assert "_lists" in lowered.__dict__
    clone = pickle.loads(pickle.dumps(lowered))
    assert "_lists" not in clone.__dict__
    assert clone.num_nodes == lowered.num_nodes
    assert np.array_equal(clone.qubit0, lowered.qubit0)
    assert np.array_equal(clone.succ_ids, lowered.succ_ids)
    assert clone.lists().qubit_tuples == lowered.lists().qubit_tuples


def test_intdag_requires_dense_node_ids():
    dag = DAGCircuit.from_circuit(ghz(4))
    del dag.nodes[0]
    with pytest.raises(TranspilerError, match="densely numbered"):
        IntDAG.from_dag(dag)


def test_neighbor_table_matches_coupling():
    coupling = heavy_hex_topology(12)
    table = neighbor_table(coupling)
    assert neighbor_table(coupling) is table  # memoised
    assert table.num_qubits == coupling.num_qubits
    edges = sorted(set(coupling.edges))
    assert list(zip(table.edges_a, table.edges_b)) == edges
    for qubit in range(coupling.num_qubits):
        start, stop = table.indptr[qubit], table.indptr[qubit + 1]
        assert list(table.neighbor_ids[start:stop]) == coupling.neighbors(qubit)
        assert [edges[e] for e in table.incident[qubit]] == [
            edge for edge in edges if qubit in edge
        ]
    assert table.connected
    assert np.array_equal(
        table.dist_int.astype(float), coupling.distance_matrix
    )


# ---------------------------------------------------------------------------
# Property-based differential fuzzing: random DAGs x couplings x seeds
# ---------------------------------------------------------------------------
#
# A seeded generator rather than hypothesis keeps every case exactly
# reproducible from its index (no shrinking, no example database) while
# still sweeping structurally random inputs: Haar-random two-qubit block
# circuits, random connected couplings (random spanning tree plus random
# chords), random layouts, seeds and aggressions.


def _random_connected_coupling(rng, num_qubits):
    """Random connected topology: a spanning tree plus random chords."""
    order = rng.permutation(num_qubits)
    edges = set()
    for position in range(1, num_qubits):
        anchor = order[int(rng.integers(0, position))]
        edges.add(tuple(sorted((int(order[position]), int(anchor)))))
    for _ in range(int(rng.integers(0, num_qubits))):
        a, b = rng.choice(num_qubits, size=2, replace=False)
        edges.add(tuple(sorted((int(a), int(b)))))
    return CouplingMap(
        sorted(edges), num_qubits=num_qubits, name=f"random-{num_qubits}"
    )


def _routing_stream(result):
    return (
        [
            (node.gate.name, tuple(node.qubits))
            for node_id in sorted(result.dag.nodes)
            for node in (result.dag.nodes[node_id],)
        ],
        result.final_layout.virtual_to_physical(),
        result.swaps_added,
    )


@pytest.mark.parametrize("case", range(10))
def test_property_random_dag_coupling_seed_identity(monkeypatch, case):
    """Differential fuzz: both kernels route every random instance
    identically — op stream, final layout and SWAP count."""
    rng = np.random.default_rng(0xC0FFEE + case)
    num_qubits = int(rng.integers(4, 8))
    circuit = random_two_qubit_block_circuit(
        num_qubits, int(rng.integers(5, 16)), rng
    )
    coupling = _random_connected_coupling(
        rng, num_qubits + int(rng.integers(0, 3))
    )
    dag = DAGCircuit.from_circuit(circuit)
    layout = Layout.random(dag.num_qubits, coupling.num_qubits, rng)
    seed = int(rng.integers(0, 2**31))
    aggression = int(rng.integers(0, 4))

    def run(mode, router_factory):
        monkeypatch.setenv("MIRAGE_ROUTE_KERNEL", mode)
        return _routing_stream(
            router_factory().run(dag, layout.copy(), seed=seed)
        )

    sabre = lambda: SabreSwap(coupling)  # noqa: E731 - tiny local factories
    mirage = lambda: MirageSwap(  # noqa: E731
        coupling, coverage=COVERAGE, aggression=aggression
    )
    assert run("flat", sabre) == run("object", sabre)
    assert run("flat", mirage) == run("object", mirage)


@pytest.mark.parametrize("case", range(3))
def test_property_full_transpile_identity_on_random_couplings(
    monkeypatch, case
):
    """End-to-end digests agree on random couplings (layout trials,
    selection and routing all downstream of the kernel switch)."""
    rng = np.random.default_rng(1729 + case)
    circuit = random_two_qubit_block_circuit(5, int(rng.integers(6, 12)), rng)
    coupling = _random_connected_coupling(rng, 6)
    seed = int(rng.integers(0, 2**31))
    flat, obj = _transpile_both(
        monkeypatch,
        circuit,
        coupling,
        method="mirage",
        layout_trials=2,
        use_vf2=False,
        coverage=COVERAGE,
        seed=seed,
    )
    assert _digest(flat) == _digest(obj)
    assert flat.metrics.depth == obj.metrics.depth


# ---------------------------------------------------------------------------
# Decay-reset ordering at the DECAY_RESET_INTERVAL boundary
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("interval", [1, 2, 5])
def test_decay_reset_boundary_identity(monkeypatch, interval):
    """Interval-reset and execute-reset must interleave identically.

    Small ``decay_reset_interval`` values force resets *between*
    consecutive stalls (the interval branch) as well as after execution
    sweeps (the dirty-flag branch); any ordering difference between the
    kernels shifts decay factors and changes the SWAP stream.
    """
    coupling = line_topology(6)  # line = stall-heavy
    dag = DAGCircuit.from_circuit(qft(6))
    layout = Layout.random(6, 6, np.random.default_rng(21))

    def run(mode):
        monkeypatch.setenv("MIRAGE_ROUTE_KERNEL", mode)
        router = SabreSwap(coupling, decay_reset_interval=interval)
        result = router.run(dag, layout.copy(), seed=33)
        return (
            [
                (node.gate.name, tuple(node.qubits))
                for node_id in sorted(result.dag.nodes)
                for node in (result.dag.nodes[node_id],)
            ],
            result.final_layout.virtual_to_physical(),
            result.swaps_added,
        )

    assert run("flat") == run("object")
