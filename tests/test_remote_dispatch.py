"""Tests for multi-host dispatch over the chaos-hardened remote transport.

Covers the remote tier end to end:

* the framed wire protocol — CRC-checked frame round trips, incremental
  :class:`FrameReader` reassembly from sliced reads, garble detection,
  host address parsing and the version handshake;
* digest-pinned byte identity — fixed-seed ``transpile_many`` outputs
  through a :class:`RemoteExecutor` (two in-process worker hosts) are
  identical to the serial executor's, across seeds, topologies and
  injected network fault plans (``drop_conn`` / ``garble`` /
  ``partition`` / ``slow_net`` / host kill);
* the recovery ladder — reconnect-with-backoff replays only lost
  chunks, stale hosts (suppressed heartbeats) are detected and their
  chunks replayed, partitioned hosts are marked down without consuming
  retry budget on their chunks, and with every host dark the session
  degrades to local execution — all visible in the ``reconnects`` /
  ``host_downgrades`` / ``frames_garbled`` counters, which are exactly
  zero on clean runs;
* resource hygiene — no leaked sockets, spool directories, shared
  memory segments or host processes after ``close()``, after a
  mid-dispatch SIGKILL of a real worker-host process, and the janitor
  reclaims what a killed host leaves behind.
"""

import glob
import hashlib
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

import pytest

from repro.circuits.library import ghz, qft
from repro.core import transpile_many
from repro.exceptions import (
    DeadlineExceededError,
    GarbledFrameError,
    ProtocolVersionError,
    RemoteTransportError,
    TranspilerError,
    TransportError,
)
from repro.polytopes import get_coverage_set
from repro.transpiler import (
    HostAddress,
    RemoteExecutor,
    WorkerHost,
    line_topology,
    ring_topology,
)
from repro.transpiler.executors import (
    SHM_SEGMENT_PREFIX,
    _retry_backoff,
    resolve_executor,
)
from repro.transpiler.faults import HOST_SOCKET_PREFIX, SPOOL_PREFIX
from repro.transpiler.remote import protocol
from repro.transpiler.remote.protocol import (
    CHUNK,
    HELLO,
    HELLO_ACK,
    PROTOCOL_VERSION,
    FrameReader,
    pack_message,
    parse_host,
    parse_hosts,
    read_frame,
    unpack_message,
    write_frame,
)

COVERAGE = get_coverage_set("sqrt_iswap", num_samples=250, seed=3)


def _own_segments() -> list[str]:
    return glob.glob(f"/dev/shm/{SHM_SEGMENT_PREFIX}{os.getpid()}_*")


def _own_host_files() -> list[str]:
    tmp = tempfile.gettempdir()
    return glob.glob(
        os.path.join(tmp, f"{HOST_SOCKET_PREFIX}{os.getpid()}_*")
    ) + glob.glob(os.path.join(tmp, f"{SPOOL_PREFIX}{os.getpid()}_*"))


def _scale(shared, task):
    return shared * task


def _slow_scale(shared, task):
    time.sleep(0.2)
    return shared * task


def _digest(batch) -> str:
    hasher = hashlib.sha256()
    for result in batch:
        for instruction in result.circuit:
            params = ",".join(f"{p:.12e}" for p in instruction.gate.params)
            hasher.update(
                f"{instruction.gate.name}({params})@{instruction.qubits}\n"
                .encode()
            )
        hasher.update(
            f"{result.trial_index}|{result.swaps_added}|"
            f"{result.mirrors_accepted}\n".encode()
        )
    return hasher.hexdigest()


def _batch(executor, topology, seed):
    return transpile_many(
        [qft(4), ghz(5)],
        topology,
        coverage=COVERAGE,
        use_vf2=False,
        layout_trials=2,
        seed=seed,
        fanout="circuits",
        executor=executor,
    )


@pytest.fixture
def two_hosts():
    hosts = [WorkerHost(heartbeat_s=0.1), WorkerHost(heartbeat_s=0.1)]
    for host in hosts:
        host.start()
    yield hosts
    for host in hosts:
        host.close()


@pytest.fixture
def fast_recovery(monkeypatch):
    """Tight network timing so fault scenarios finish in test time."""
    monkeypatch.setenv("MIRAGE_REMOTE_HEARTBEAT_S", "0.1")
    monkeypatch.setenv("MIRAGE_REMOTE_CONNECT_S", "2.0")
    monkeypatch.setenv("MIRAGE_FAULT_SLOW_SECONDS", "1.0")
    return monkeypatch


def _nonzero(stats: dict) -> dict:
    return {key: value for key, value in stats.items() if value}


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------


def test_frame_round_trip_over_socketpair():
    left, right = socket.socketpair()
    try:
        message = {"digest": "abc", "blob": b"x" * 1000}
        sent = write_frame(left, CHUNK, pack_message(message))
        assert sent > 1000
        ftype, payload = read_frame(right)
        assert ftype == CHUNK
        assert unpack_message(payload) == message
    finally:
        left.close()
        right.close()


def test_frame_reader_reassembles_from_single_byte_slices():
    left, right = socket.socketpair()
    try:
        write_frame(left, HELLO, pack_message({"n": 1}))
        write_frame(left, HELLO_ACK, pack_message({"n": 2}))
        left.close()
        data = b""
        while True:
            piece = right.recv(4096)
            if not piece:
                break
            data += piece
    finally:
        right.close()
    reader = FrameReader()
    frames = []
    for index in range(len(data)):
        reader.feed(data[index:index + 1])
        while True:
            frame = reader.next_frame()
            if frame is None:
                break
            frames.append(frame)
    assert [frame[0] for frame in frames] == [HELLO, HELLO_ACK]
    assert unpack_message(frames[0][1]) == {"n": 1}
    assert unpack_message(frames[1][1]) == {"n": 2}


def test_garbled_frame_fails_crc():
    left, right = socket.socketpair()
    try:
        write_frame(left, CHUNK, pack_message({"k": 3}), garble=True)
        with pytest.raises(GarbledFrameError):
            read_frame(right)
    finally:
        left.close()
        right.close()


def test_frame_reader_rejects_foreign_magic():
    reader = FrameReader()
    reader.feed(b"HTTP/1.1 200 OK\r\n")
    with pytest.raises(GarbledFrameError):
        reader.next_frame()


def test_parse_host_addresses():
    assert parse_host("/tmp/foo.sock") == HostAddress(unix_path="/tmp/foo.sock")
    assert parse_host("relative.sock") == HostAddress(unix_path="relative.sock")
    assert parse_host("127.0.0.1:7421") == HostAddress(
        tcp_host="127.0.0.1", tcp_port=7421
    )
    assert parse_hosts("a.sock, 10.0.0.2:99 ,") == [
        HostAddress(unix_path="a.sock"),
        HostAddress(tcp_host="10.0.0.2", tcp_port=99),
    ]
    with pytest.raises(TranspilerError):
        parse_host("not-an-address")
    with pytest.raises(TranspilerError):
        parse_host("")


def test_version_mismatch_marks_host_down(fast_recovery):
    """A host speaking a different protocol version is not retried."""

    def fake_host(listener: socket.socket) -> None:
        conn, _ = listener.accept()
        with conn:
            read_frame(conn)
            write_frame(
                conn,
                HELLO_ACK,
                pack_message({"version": 999, "pid": 1, "cpu_count": 1}),
            )

    path = protocol.default_socket_path()
    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    listener.bind(path)
    listener.listen()
    thread = threading.Thread(target=fake_host, args=(listener,), daemon=True)
    thread.start()
    try:
        executor = RemoteExecutor(hosts=[path], max_streams=1)
        results = executor.map_shared(_scale, 2, [1, 2, 3])
        assert results == [2, 4, 6]
        stats = executor.dispatch_stats
        # The mismatched host went down without consuming retry budget;
        # with no host left the chunks degraded to local execution.
        assert stats["host_downgrades"] == 1
        assert stats["reconnects"] == 0
        executor.close()
    finally:
        listener.close()
        if os.path.exists(path):
            os.unlink(path)


# ---------------------------------------------------------------------------
# Round trips and clean-run counters
# ---------------------------------------------------------------------------


def test_map_shared_round_trip_and_clean_counters(two_hosts):
    executor = RemoteExecutor(
        hosts=[host.address for host in two_hosts], max_streams=2
    )
    assert executor.prewarm() == 2
    results = executor.map_shared(_scale, 3, list(range(40)))
    assert results == [3 * task for task in range(40)]
    stats = executor.dispatch_stats
    assert stats["tasks"] == 40
    assert stats["chunks"] >= 2
    assert stats["bytes_shipped"] > 0
    # The whole recovery family is exactly zero on a clean run.
    for counter in (
        "retries", "lost_tasks", "reconnects", "host_downgrades",
        "frames_garbled", "executor_downgrades", "deadline_expirations",
    ):
        assert stats[counter] == 0, (counter, _nonzero(stats))
    pids = executor.worker_pids()
    assert pids == [os.getpid(), os.getpid()]  # in-process hosts
    meta = executor.host_meta()
    assert len(meta) == 2 and all(m["cpu_count"] >= 1 for m in meta)
    executor.close()


def test_payloads_ship_once_per_host(two_hosts):
    executor = RemoteExecutor(
        hosts=[host.address for host in two_hosts], max_streams=2
    )
    with executor.open_dispatch(_scale) as session:
        slot = session.add_payload(5)
        futures = session.submit(slot, list(range(30)))
        assert [
            value for future in futures for value in future.result()
        ] == [5 * task for task in range(30)]
    shipped_once = executor.dispatch_stats["bytes_shipped"]
    # A second session re-ships nothing: the hosts answer HAS with HAVE.
    executor2 = RemoteExecutor(
        hosts=[host.address for host in two_hosts], max_streams=2
    )
    with executor2.open_dispatch(_scale) as session:
        slot = session.add_payload(5)
        futures = session.submit(slot, list(range(30)))
        [future.result() for future in futures]
    assert executor2.dispatch_stats["bytes_shipped"] < shipped_once
    executor.close()
    executor2.close()


def test_remote_executor_requires_hosts(monkeypatch):
    monkeypatch.delenv("MIRAGE_REMOTE_HOSTS", raising=False)
    with pytest.raises(TranspilerError):
        RemoteExecutor()


def test_resolve_executor_remote(two_hosts, monkeypatch):
    monkeypatch.setenv(
        "MIRAGE_REMOTE_HOSTS",
        ",".join(str(host.address) for host in two_hosts),
    )
    executor = resolve_executor("remote")
    assert isinstance(executor, RemoteExecutor)
    assert executor.map_shared(_scale, 2, [4, 5]) == [8, 10]
    executor.close()


def test_deadline_expiry_is_counted_and_not_retried(two_hosts):
    executor = RemoteExecutor(
        hosts=[host.address for host in two_hosts], max_streams=1
    )
    with executor.open_dispatch(_slow_scale) as session:
        slot = session.add_payload(1)
        deadline = time.monotonic() + 0.05
        futures = session.submit(slot, list(range(8)), deadline=deadline)
        with pytest.raises(DeadlineExceededError):
            for future in futures:
                future.result()
    stats = executor.dispatch_stats
    assert stats["deadline_expirations"] >= 1
    assert stats["retries"] == 0
    executor.close()


# ---------------------------------------------------------------------------
# Digest-pinned identity: serial vs remote, clean and under fault plans
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [7, 23])
@pytest.mark.parametrize(
    "topology", [line_topology(5), ring_topology(5)], ids=["line", "ring"]
)
def test_remote_digest_matches_serial(two_hosts, seed, topology):
    reference = _digest(_batch(None, topology, seed))
    executor = RemoteExecutor(hosts=[host.address for host in two_hosts])
    fanned = _batch(executor, topology, seed)
    assert _digest(fanned) == reference
    for counter in ("reconnects", "host_downgrades", "frames_garbled"):
        assert fanned.dispatch[counter] == 0
    executor.close()
    assert _own_segments() == []


@pytest.mark.parametrize(
    "plan, expected",
    [
        ("drop_conn:chunk:1", {"reconnects": 1, "retries": 1}),
        ("garble:frame:2", {"frames_garbled": 1, "retries": 1}),
        ("partition:host:0", {"host_downgrades": 1, "reconnects": 0}),
        ("slow_net:chunk:3", {"reconnects": 1, "retries": 1}),
        ("kill:trial:1", {"retries": 1}),
    ],
    ids=["drop_conn", "garble", "partition", "slow_net", "kill"],
)
def test_remote_digest_survives_network_faults(
    two_hosts, fast_recovery, plan, expected
):
    topology = line_topology(5)
    reference = _digest(_batch(None, topology, 7))
    fast_recovery.setenv("MIRAGE_FAULT_PLAN", plan)
    executor = RemoteExecutor(hosts=[host.address for host in two_hosts])
    fanned = _batch(executor, topology, 7)
    assert _digest(fanned) == reference
    for counter, value in expected.items():
        assert fanned.dispatch[counter] == value, (
            counter,
            {k: v for k, v in fanned.dispatch.items() if isinstance(v, int) and v},
        )
    # Replays touch only the lost chunks: every retry re-ships exactly
    # one chunk's tasks.
    assert fanned.dispatch["lost_tasks"] <= fanned.dispatch["retries"] * (
        fanned.dispatch["tasks"] + fanned.dispatch["plan_tasks"]
    )
    executor.close()
    assert _own_segments() == []


def test_all_hosts_partitioned_degrades_locally(two_hosts, fast_recovery):
    fast_recovery.setenv(
        "MIRAGE_FAULT_PLAN", "partition:host:0,partition:host:1"
    )
    executor = RemoteExecutor(hosts=[host.address for host in two_hosts])
    results = executor.map_shared(_scale, 4, list(range(12)))
    assert results == [4 * task for task in range(12)]
    stats = executor.dispatch_stats
    assert stats["host_downgrades"] == 2
    assert stats["executor_downgrades"] >= 1
    assert stats["reconnects"] == 0
    executor.close()


# ---------------------------------------------------------------------------
# Heartbeats, backoff, budget
# ---------------------------------------------------------------------------


def test_heartbeat_timeout_triggers_replay(two_hosts, fast_recovery):
    """A silent host (slow_net suppresses heartbeats) is declared stale
    and its chunk replayed — while a merely *slow* chunk with flowing
    heartbeats is not."""
    fast_recovery.setenv("MIRAGE_FAULT_PLAN", "slow_net:chunk:0")
    executor = RemoteExecutor(
        hosts=[host.address for host in two_hosts], max_streams=1
    )
    results = executor.map_shared(_scale, 2, list(range(10)))
    assert results == [2 * task for task in range(10)]
    stats = executor.dispatch_stats
    assert stats["retries"] == 1
    assert stats["reconnects"] == 1
    executor.close()


def test_slow_chunk_with_heartbeats_is_not_replayed(two_hosts, fast_recovery):
    executor = RemoteExecutor(
        hosts=[host.address for host in two_hosts], max_streams=1
    )
    # 0.2s of compute against a 0.1s heartbeat interval and a 0.3s
    # staleness budget: only the heartbeats keep the chunk alive.
    results = executor.map_shared(_slow_scale, 2, list(range(4)))
    assert results == [2 * task for task in range(4)]
    assert executor.dispatch_stats["retries"] == 0
    executor.close()


def test_reconnect_backoff_caps():
    assert _retry_backoff(1) == pytest.approx(0.05)
    assert _retry_backoff(2) == pytest.approx(0.1)
    previous = 0.0
    for attempt in range(1, 12):
        backoff = _retry_backoff(attempt)
        assert backoff <= 1.0
        assert backoff >= previous or backoff == 1.0
        previous = backoff
    assert _retry_backoff(50) == 1.0


def test_unreachable_host_exhausts_budget_and_downgrades(
    fast_recovery, tmp_path
):
    fast_recovery.setenv("MIRAGE_TASK_RETRIES", "1")
    dead = str(tmp_path / "nobody-home.sock")
    live = WorkerHost(heartbeat_s=0.1)
    live.start()
    try:
        executor = RemoteExecutor(hosts=[dead, live.address])
        results = executor.map_shared(_scale, 6, list(range(8)))
        assert results == [6 * task for task in range(8)]
        stats = executor.dispatch_stats
        assert stats["host_downgrades"] == 1
        assert stats["executor_downgrades"] == 0  # live host absorbed all
        executor.close()
    finally:
        live.close()


# ---------------------------------------------------------------------------
# Real worker-host processes: kill mid-dispatch, leak hygiene
# ---------------------------------------------------------------------------


def _spawn_host_process(socket_path: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src")]
        + env.get("PYTHONPATH", "").split(os.pathsep)
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.transpiler.remote.host",
            "--socket",
            socket_path,
            "--heartbeat",
            "0.1",
        ],
        env=env,
        stdout=subprocess.PIPE,
        text=True,
    )
    ready = process.stdout.readline()
    assert ready.startswith("MIRAGE-HOST-READY"), ready
    return process


def test_host_process_killed_mid_dispatch_recovers(fast_recovery, tmp_path):
    victim_path = str(tmp_path / "victim.sock")
    victim = _spawn_host_process(victim_path)
    survivor = WorkerHost(heartbeat_s=0.1)
    survivor.start()
    try:
        executor = RemoteExecutor(
            hosts=[victim_path, survivor.address], max_streams=1
        )
        with executor.open_dispatch(_slow_scale) as session:
            slot = session.add_payload(9)
            futures = session.submit(slot, list(range(12)))
            time.sleep(0.3)  # let chunks land on both hosts
            os.kill(victim.pid, signal.SIGKILL)
            results = [
                value for future in futures for value in future.result()
            ]
        assert results == [9 * task for task in range(12)]
        stats = executor.dispatch_stats
        assert stats["retries"] >= 1  # the killed host's chunk replayed
        assert stats["host_downgrades"] == 1
        executor.close()
    finally:
        survivor.close()
        victim.wait(timeout=10)
    # The kill left a socket file (and possibly a spool) behind; a
    # janitor pass — e.g. any new host starting — reclaims them.
    from repro.transpiler.faults import reap_stale_segments

    reap_stale_segments()
    assert not os.path.exists(victim_path) or not glob.glob(
        os.path.join(tempfile.gettempdir(), f"{SPOOL_PREFIX}{victim.pid}_*")
    )
    assert _own_segments() == []


def test_graceful_shutdown_leaves_no_resources(tmp_path):
    host_path = str(tmp_path / "tidy.sock")
    process = _spawn_host_process(host_path)
    try:
        executor = RemoteExecutor(hosts=[host_path])
        assert executor.map_shared(_scale, 7, [1, 2, 3]) == [7, 14, 21]
        executor.close()
    finally:
        process.send_signal(signal.SIGTERM)
        process.wait(timeout=10)
    assert not os.path.exists(host_path)
    assert glob.glob(
        os.path.join(tempfile.gettempdir(), f"{SPOOL_PREFIX}{process.pid}_*")
    ) == []
    assert _own_segments() == []


def test_in_process_host_close_removes_socket_and_spool():
    before = set(_own_host_files())
    host = WorkerHost(heartbeat_s=0.1)
    host.start()
    created = set(_own_host_files()) - before
    assert created  # socket file and spool directory exist while serving
    host.close()
    assert set(_own_host_files()) - before == set()


def test_remote_errors_are_typed():
    assert issubclass(RemoteTransportError, TransportError)
    assert issubclass(GarbledFrameError, RemoteTransportError)
    # A version mismatch is a deployment bug, not retriable transport loss.
    assert not issubclass(ProtocolVersionError, TransportError)
