"""Tier-1 wiring for the executable-documentation checks.

``tools/check_docs.py`` executes every python snippet in ``README.md``
and ``docs/*.md`` and lints docstring coverage on the public API; these
tests run the same checks under pytest so documented examples cannot rot
even without the dedicated CI job.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs", module)
    spec.loader.exec_module(module)
    return module


CHECK_DOCS = _load_check_docs()


def test_documentation_files_exist():
    for path in CHECK_DOCS.documentation_files():
        assert path.exists(), path


def test_readme_snippets_execute():
    readme = REPO_ROOT / "README.md"
    blocks = CHECK_DOCS.extract_blocks(readme)
    assert blocks, "README must carry at least one runnable snippet"
    assert CHECK_DOCS.run_document(readme) == []


def test_docs_snippets_execute():
    for path in sorted((REPO_ROOT / "docs").glob("*.md")):
        assert CHECK_DOCS.run_document(path) == [], path


def test_public_api_docstrings():
    assert CHECK_DOCS.lint_docstrings() == []
