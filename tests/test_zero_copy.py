"""Tests for the zero-copy (out-of-band) shared-memory payload layout.

Covers the transport guarantees of the protocol-5 segment layout:

* payloads published while the shm transport is active are laid out as
  out-of-band sections and unpickled as **read-only numpy views** over
  the attached segment — worker processes materialise only the index
  header, never the payload bytes;
* view lifetime: arrays stay valid while their payload is memoised,
  survive the dispatcher unlinking the segment name (POSIX semantics),
  and the mapping is released only after the last detach;
* ``MIRAGE_ZEROCOPY_DISABLE=1`` degrades to the copy-on-attach blob
  layout with identical results, and the inline-blob fallback still
  works without shm at all;
* worker crashes (raising chunks and hard process death) never leak
  segments.
"""

import glob
import os
import pickle

import numpy as np
import pytest

from repro.exceptions import TranspilerError
from repro.transpiler import ProcessExecutor
from repro.transpiler.executors import (
    SHM_SEGMENT_PREFIX,
    _load_payload,
    _publish_object,
    _segment_attachments,
    _shared_cache,
    _unlink_segment,
    reset_worker_state,
    shm_transport_enabled,
    zero_copy_enabled,
    zero_copy_inline_max,
)

needs_shm = pytest.mark.skipif(
    not shm_transport_enabled(),
    reason="POSIX shared memory unavailable on this platform",
)


def _own_segments() -> list[str]:
    return glob.glob(f"/dev/shm/{SHM_SEGMENT_PREFIX}{os.getpid()}_*")


def _payload(rows: int = 256) -> dict:
    return {
        "matrix": np.arange(rows * 8, dtype=float).reshape(rows, 8),
        "offsets": np.arange(rows, dtype=np.int64),
        "label": ("coverage", rows),
    }


def _probe_arrays(shared, task):
    """Worker probe: writability flag and checksum of the shared arrays."""
    matrix = shared["matrix"]
    return (
        bool(matrix.flags.writeable),
        float(matrix.sum()),
        int(shared["offsets"][task]),
    )


def _explode(shared, task):
    raise ValueError(f"task {task} exploded")


# ---------------------------------------------------------------------------
# In-process layout round trip and view lifetime
# ---------------------------------------------------------------------------


@needs_shm
def test_publish_object_uses_oob_layout():
    handle = _publish_object(_payload())
    try:
        assert handle.segment is not None
        assert handle.header > 0
        # O(1) transport bytes per chunk regardless of payload size.
        assert handle.shipped_bytes < 256
    finally:
        _unlink_segment(handle.segment)
        reset_worker_state()


@needs_shm
def test_oob_arrays_are_readonly_views_and_survive_unlink():
    """Arrays view the segment; the name unlinking does not kill them.

    This is the dispatcher's lifecycle: the parent unlinks a payload's
    segment as soon as its futures drain, while workers may still hold
    memoised views — POSIX keeps the mapping alive until the last
    detach.
    """
    payload = _payload()
    expected = float(payload["matrix"].sum())
    handle = _publish_object(payload)
    loaded = _load_payload(handle)
    assert loaded["matrix"].flags.writeable is False
    assert loaded["offsets"].flags.writeable is False
    assert np.array_equal(loaded["matrix"], payload["matrix"])
    assert loaded["label"] == payload["label"]
    with pytest.raises((ValueError, RuntimeError)):
        loaded["matrix"][0, 0] = 99.0
    assert handle.segment in {p.rsplit("/", 1)[-1] for p in _own_segments()}
    # The attachment is refcounted and pinned to the payload memo.
    assert handle.segment in _segment_attachments

    _unlink_segment(handle.segment)
    assert _own_segments() == []  # name gone ...
    assert float(loaded["matrix"].sum()) == expected  # ... views still valid

    # Last detach: the memo entry is evicted, releasing the attachment;
    # the views themselves keep the mapping readable until they die.
    reset_worker_state()
    assert handle.segment not in _segment_attachments
    assert float(loaded["matrix"].sum()) == expected


@needs_shm
def test_oob_handle_refuses_fetch():
    handle = _publish_object(_payload())
    try:
        with pytest.raises(TranspilerError):
            handle.fetch()
    finally:
        _unlink_segment(handle.segment)


@needs_shm
def test_payload_memo_loads_segment_once():
    handle = _publish_object(_payload())
    try:
        first = _load_payload(handle)
        second = _load_payload(handle)
        assert first is second
        assert _segment_attachments[handle.segment].refs == 1
    finally:
        _unlink_segment(handle.segment)
        reset_worker_state()


def test_zero_copy_disable_falls_back_to_blob_layout(monkeypatch):
    monkeypatch.setenv("MIRAGE_ZEROCOPY_DISABLE", "1")
    assert not zero_copy_enabled()
    payload = _payload()
    handle = _publish_object(payload)
    try:
        assert handle.header == 0  # whole-blob layout
        loaded = _load_payload(handle)
        # Copy-on-attach materialises plain (writable) arrays.
        assert loaded["matrix"].flags.writeable is True
        assert np.array_equal(loaded["matrix"], payload["matrix"])
    finally:
        if handle.segment is not None:
            _unlink_segment(handle.segment)
        reset_worker_state()


@needs_shm
def test_segment_creation_failure_ships_oob_sections_inline(monkeypatch):
    """Shm pressure mid-publish must not re-run the object-graph pickle.

    When the segment cannot be created, the already-serialised pickle
    body and its protocol-5 buffers ship inline on the handle instead.
    """
    from repro.transpiler import executors as executors_mod

    monkeypatch.setattr(executors_mod, "_new_segment", lambda size: None)
    payload = _payload()
    handle = _publish_object(payload)
    assert handle.segment is None
    assert handle.header == 0
    assert handle.oob_buffers  # out-of-band sections travelled inline
    clone = pickle.loads(pickle.dumps(handle))
    loaded = _load_payload(clone)
    assert np.array_equal(loaded["matrix"], payload["matrix"])
    assert loaded["label"] == payload["label"]
    reset_worker_state()


def test_blob_fallback_without_shm(monkeypatch):
    monkeypatch.setenv("MIRAGE_SHM_DISABLE", "1")
    payload = _payload()
    handle = _publish_object(payload)
    assert handle.segment is None
    assert handle.header == 0
    loaded = _load_payload(handle)
    assert np.array_equal(loaded["matrix"], payload["matrix"])
    reset_worker_state()


@needs_shm
def test_oob_layout_roundtrips_through_pickled_handle():
    """Worker-side handles arrive pickled; the layout must survive that."""
    payload = _payload()
    handle = _publish_object(payload)
    try:
        clone = pickle.loads(pickle.dumps(handle))
        loaded = _load_payload(clone)
        assert np.array_equal(loaded["matrix"], payload["matrix"])
    finally:
        _unlink_segment(handle.segment)
        reset_worker_state()


# ---------------------------------------------------------------------------
# Cross-process: zero worker copies, accounting, crash hygiene
# ---------------------------------------------------------------------------


@needs_shm
def test_workers_get_readonly_views_without_copying():
    payload = _payload(rows=4096)  # ~256 KiB of array data
    expected = float(payload["matrix"].sum())
    with ProcessExecutor(max_workers=2) as executor:
        results = executor.map_shared(_probe_arrays, payload, list(range(16)))
        stats = dict(executor.dispatch_stats)
    assert all(not writeable for writeable, _, _ in results)
    assert all(checksum == expected for _, checksum, _ in results)
    assert [value for _, _, value in results] == list(range(16))
    assert stats["shm_segments"] == 1
    assert stats["header_bytes"] > 0
    # Each worker materialises the index header exactly once — never the
    # payload bytes (the arrays are views into the segment).
    assert 0 < stats["bytes_copied"] <= 2 * stats["header_bytes"]
    assert _own_segments() == []


@needs_shm
def test_copy_on_attach_fallback_counts_payload_bytes(monkeypatch):
    monkeypatch.setenv("MIRAGE_ZEROCOPY_DISABLE", "1")
    payload = _payload(rows=4096)
    with ProcessExecutor(max_workers=2) as executor:
        results = executor.map_shared(_probe_arrays, payload, list(range(16)))
        stats = dict(executor.dispatch_stats)
    # Copied arrays are writable, and the copy count reflects real
    # payload bytes (at least one full payload per attaching worker).
    assert all(writeable for writeable, _, _ in results)
    assert stats["header_bytes"] == 0
    assert stats["bytes_copied"] > payload["matrix"].nbytes
    assert _own_segments() == []


@needs_shm
def test_no_segment_leak_after_worker_exception_with_zero_copy():
    with ProcessExecutor(max_workers=2) as executor:
        with pytest.raises(ValueError, match="exploded"):
            executor.map_shared(_explode, _payload(), list(range(8)))
    assert _own_segments() == []


@needs_shm
def test_no_segment_leak_after_worker_death_mid_dispatch(monkeypatch):
    """A worker dying outright is replayed — no abort, no leaked segments.

    The fault plan kills the worker executing global trial ordinal 2 at
    exact dispatch position; the session detects the broken pool,
    respawns it and replays only the lost chunk (with the injected fault
    disarmed), so the batch completes with results identical to an
    undisturbed run and every segment is reclaimed.
    """
    monkeypatch.setenv("MIRAGE_FAULT_PLAN", "kill:trial:2")
    tasks = list(range(8))
    payload = _payload(rows=64)
    expected = [_probe_arrays(payload, task)[1:] for task in tasks]
    with ProcessExecutor(max_workers=2) as executor:
        session = executor.open_dispatch(_probe_arrays, anchors=(_payload(),))
        assert session is not None
        slot = session.add_payload(payload)
        futures = session.submit(slot, tasks)
        results = [r for future in futures for r in future.result()]
        session.close()
        stats = executor.dispatch_stats
        assert stats["retries"] >= 1
        assert stats["respawns"] >= 1
        assert stats["lost_tasks"] >= 1
    assert [r[1:] for r in results] == expected
    assert _own_segments() == []


@needs_shm
def test_zero_copy_and_copy_results_identical():
    tasks = list(range(12))
    payload = _payload(rows=512)
    with ProcessExecutor(max_workers=2) as executor:
        zero_copy = executor.map_shared(_probe_arrays, payload, tasks)
    os.environ["MIRAGE_ZEROCOPY_DISABLE"] = "1"
    try:
        with ProcessExecutor(max_workers=2) as executor:
            copied = executor.map_shared(_probe_arrays, payload, tasks)
    finally:
        del os.environ["MIRAGE_ZEROCOPY_DISABLE"]
    # Identical values; only the writability flag may differ.
    assert [r[1:] for r in zero_copy] == [r[1:] for r in copied]
    assert _own_segments() == []


@needs_shm
def test_coverage_set_arrays_become_shared_views():
    """A published coverage set answers queries through zero-copy views.

    Arrays at or above the in-band threshold must arrive as read-only
    segment views; smaller ones ride inside the pickle body as ordinary
    (writable) copies — cheaper than an index entry plus padding.
    """
    from repro.polytopes import get_coverage_set

    coverage = get_coverage_set("sqrt_iswap", num_samples=250, seed=3)
    probes = np.array([
        [0.0, 0.0, 0.0],
        [np.pi / 4, 0.0, 0.0],
        [np.pi / 8, np.pi / 16, 0.0],
    ])
    expected = coverage.cost_of_many(probes)
    threshold = zero_copy_inline_max()
    handle = _publish_object(coverage)
    try:
        loaded = _load_payload(handle)
        views = 0
        for polytope in loaded.polytopes:
            for piece in polytope.pieces:
                lin_a, _ = piece.halfspaces
                for array in (piece.points, lin_a):
                    if array.nbytes >= threshold:
                        assert array.flags.writeable is False
                        views += 1
        assert views > 0
        # The view-backed set answers exactly as the original.
        assert np.array_equal(loaded.cost_of_many(probes), expected)
    finally:
        _unlink_segment(handle.segment)
        reset_worker_state()
    assert _own_segments() == []


@needs_shm
def test_tiny_arrays_stay_in_band_and_shrink_the_header(monkeypatch):
    """Sub-threshold arrays must not earn index-header entries.

    A payload with one big array and many tiny ones gets a header sized
    for the big sections only; forcing the threshold to 0 restores the
    export-everything layout and the header grows accordingly.
    """
    tiny = {f"t{i}": np.arange(4, dtype=np.int64) for i in range(32)}
    payload = {"big": np.arange(512, dtype=float), **tiny}

    handle = _publish_object(payload)
    try:
        # Sections: pickle body + the one big array.
        assert handle.header == 16 + 16 * 2
        loaded = _load_payload(handle)
        assert loaded["big"].flags.writeable is False
        for i in range(32):
            array = loaded[f"t{i}"]
            assert array.flags.writeable is True  # in-band copy
            assert np.array_equal(array, tiny[f"t{i}"])
    finally:
        _unlink_segment(handle.segment)
        reset_worker_state()

    monkeypatch.setenv("MIRAGE_ZEROCOPY_INLINE_MAX", "0")
    assert zero_copy_inline_max() == 0
    handle = _publish_object(payload)
    try:
        # Every contiguous buffer exported: body + big + 32 tiny arrays.
        assert handle.header == 16 + 16 * 34
        loaded = _load_payload(handle)
        assert loaded["t0"].flags.writeable is False
    finally:
        _unlink_segment(handle.segment)
        reset_worker_state()
    assert _own_segments() == []


def test_shared_cache_eviction_releases_attachments():
    """Evicted payloads drop their attachment references."""
    from repro.transpiler import executors as executors_mod

    if not shm_transport_enabled():
        pytest.skip("POSIX shared memory unavailable on this platform")
    reset_worker_state()
    limit = executors_mod._SHARED_CACHE_LIMIT
    handles = []
    try:
        executors_mod._SHARED_CACHE_LIMIT = 2
        for index in range(3):
            handle = _publish_object({"index": np.full(16, index)})
            handles.append(handle)
            _load_payload(handle)
        assert len(_shared_cache) == 2
        # The first payload was evicted, releasing its attachment.
        assert handles[0].segment not in _segment_attachments
        assert handles[2].segment in _segment_attachments
    finally:
        executors_mod._SHARED_CACHE_LIMIT = limit
        for handle in handles:
            if handle.segment is not None:
                _unlink_segment(handle.segment)
        reset_worker_state()
    assert _own_segments() == []
