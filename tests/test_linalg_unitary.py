"""Tests for repro.linalg.unitary and repro.linalg.random."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CircuitError
from repro.linalg import (
    CNOT,
    SWAP,
    X,
    apply_unitary_to_state,
    average_gate_fidelity,
    closest_unitary,
    embed_unitary,
    equal_up_to_global_phase,
    haar_unitary,
    hilbert_schmidt_distance,
    is_hermitian,
    is_unitary,
    kron_all,
    random_statevector,
    remove_global_phase,
    unitary_entanglement_fidelity,
)


def test_is_unitary_rejects_non_square():
    assert not is_unitary(np.ones((2, 3)))


def test_is_unitary_rejects_non_unitary():
    assert not is_unitary(np.array([[1, 1], [0, 1]], dtype=complex))


def test_is_hermitian():
    assert is_hermitian(X)
    assert not is_hermitian(np.array([[0, 1], [0, 0]], dtype=complex))


@pytest.mark.parametrize("seed", range(5))
def test_haar_unitary_is_unitary(seed):
    assert is_unitary(haar_unitary(4, seed))


def test_haar_unitary_distinct_seeds_differ():
    assert not np.allclose(haar_unitary(4, 1), haar_unitary(4, 2))


def test_haar_unitary_same_seed_reproducible():
    assert np.allclose(haar_unitary(4, 7), haar_unitary(4, 7))


def test_equal_up_to_global_phase():
    u = haar_unitary(4, 3)
    assert equal_up_to_global_phase(u, np.exp(1j * 0.321) * u)
    assert not equal_up_to_global_phase(u, haar_unitary(4, 4))


def test_remove_global_phase_gives_unit_determinant():
    u = haar_unitary(4, 5)
    su = remove_global_phase(u)
    assert np.isclose(np.linalg.det(su), 1.0)


def test_fidelity_of_identical_unitaries_is_one():
    u = haar_unitary(4, 11)
    assert np.isclose(unitary_entanglement_fidelity(u, u), 1.0)
    assert np.isclose(average_gate_fidelity(u, u), 1.0)
    assert np.isclose(hilbert_schmidt_distance(u, u), 0.0)


def test_fidelity_is_phase_invariant():
    u = haar_unitary(4, 12)
    assert np.isclose(
        unitary_entanglement_fidelity(u, np.exp(1j * 1.1) * u), 1.0
    )


def test_average_gate_fidelity_between_different_gates():
    fid = average_gate_fidelity(np.eye(4), SWAP)
    assert 0.0 < fid < 1.0


def test_closest_unitary_projects():
    noisy = haar_unitary(4, 9) + 0.01 * np.ones((4, 4))
    projected = closest_unitary(noisy)
    assert is_unitary(projected)


def test_kron_all_empty_and_single():
    assert np.allclose(kron_all([]), np.eye(1))
    assert np.allclose(kron_all([X]), X)


def test_kron_all_two_factors():
    assert np.allclose(kron_all([X, X]), np.kron(X, X))


def test_embed_unitary_single_qubit():
    embedded = embed_unitary(X, [0], 2)
    state = np.zeros(4)
    state[0] = 1.0
    assert np.allclose(embedded @ state, np.eye(4)[:, 1])


def test_embed_unitary_respects_qubit_order():
    # CNOT with control q0 target q1 embedded on (0, 1) of 2 qubits is CNOT.
    assert np.allclose(embed_unitary(CNOT, [0, 1], 2), CNOT)
    # Reversing the qubit order gives the reversed CNOT.
    reversed_cnot = embed_unitary(CNOT, [1, 0], 2)
    state = np.zeros(4)
    state[2] = 1.0  # |q1=1, q0=0>
    expected = np.zeros(4)
    expected[3] = 1.0
    assert np.allclose(reversed_cnot @ state, expected)


def test_embed_unitary_errors():
    with pytest.raises(CircuitError):
        embed_unitary(CNOT, [0], 2)
    with pytest.raises(CircuitError):
        embed_unitary(CNOT, [0, 0], 2)
    with pytest.raises(CircuitError):
        embed_unitary(CNOT, [0, 5], 2)


def test_apply_unitary_matches_embedding_random():
    rng = np.random.default_rng(42)
    for _ in range(10):
        num_qubits = 4
        gate = haar_unitary(4, rng)
        qubits = list(rng.choice(num_qubits, size=2, replace=False))
        state = random_statevector(num_qubits, rng)
        via_matrix = embed_unitary(gate, qubits, num_qubits) @ state
        via_tensor = apply_unitary_to_state(state, gate, qubits, num_qubits)
        assert np.allclose(via_matrix, via_tensor)


def test_apply_unitary_wrong_state_length():
    with pytest.raises(CircuitError):
        apply_unitary_to_state(np.zeros(3), X, [0], 2)


def test_random_statevector_normalised():
    state = random_statevector(3, 1)
    assert np.isclose(np.linalg.norm(state), 1.0)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_haar_unitary_property_unitarity(seed):
    u = haar_unitary(4, seed)
    assert is_unitary(u)
    assert np.isclose(abs(np.linalg.det(u)), 1.0)
