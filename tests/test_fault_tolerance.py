"""Tests for fault-tolerant dispatch: crash recovery, injection, janitor.

Covers the reliability layer end to end:

* the ``MIRAGE_FAULT_PLAN`` grammar and its error reporting;
* digest-pinned retry determinism — fixed-seed ``transpile_many``
  outputs are byte-identical with and without injected worker kills,
  hangs and corrupt results, across serial/thread/process executors and
  both transports, with the recovery recorded in dispatch provenance;
* deadline-driven respawn of hung workers (``MIRAGE_TASK_TIMEOUT``);
* graceful degradation down the executor ladder
  (``MIRAGE_TASK_RETRIES=0``) and the transport ladder (``corrupt_shm``);
* typed :class:`~repro.exceptions.TransportError` on vanished segments;
* the shared-memory janitor (:func:`reap_stale_segments`), idempotent
  ``_cleanup_segments`` teardown, and orphan-free exception paths
  through ``transpile_many``.
"""

import glob
import multiprocessing
import os
import pickle
import time

import pytest

from repro.circuits.library import ghz, qft
from repro.core import transpile_many
from repro.exceptions import (
    DeadlineExceededError,
    InvalidModeError,
    TranspilerError,
    TransportError,
)
from repro.polytopes import get_coverage_set
from repro.transpiler import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    line_topology,
)
from repro.transpiler.executors import (
    SHM_SEGMENT_PREFIX,
    _attach_segment,
    _cleanup_segments,
    _created_segments,
    _publish_object,
    shm_transport_enabled,
)
from repro.transpiler.faults import (
    ChunkFaults,
    CorruptResult,
    CorruptResultError,
    FaultPlan,
    InjectedWorkerCrash,
    parse_fault_plan,
    reap_stale_segments,
)

COVERAGE = get_coverage_set("sqrt_iswap", num_samples=250, seed=3)

needs_shm = pytest.mark.skipif(
    not shm_transport_enabled(),
    reason="POSIX shared memory unavailable on this platform",
)


def _own_segments() -> list[str]:
    return glob.glob(f"/dev/shm/{SHM_SEGMENT_PREFIX}{os.getpid()}_*")


def _fingerprint(result):
    """Byte-level identity of a transpile result, modulo wall-clock."""
    return (
        [(instr.gate.name, instr.qubits) for instr in result.circuit],
        result.initial_layout.virtual_to_physical(),
        result.final_layout.virtual_to_physical(),
        result.swaps_added,
        result.mirrors_accepted,
        result.trial_index,
        round(result.metrics.depth, 9),
    )


def _batch(executor=None, **kwargs):
    return transpile_many(
        [qft(4), ghz(5)],
        line_topology(5),
        coverage=COVERAGE,
        use_vf2=False,
        layout_trials=3,
        seed=7,
        fanout="circuits",
        executor=executor,
        **kwargs,
    )


@pytest.fixture
def quick_recovery(monkeypatch):
    """Short hangs/backoffs so fault scenarios finish in test time."""
    monkeypatch.setenv("MIRAGE_FAULT_HANG_SECONDS", "5")
    monkeypatch.setenv("MIRAGE_TASK_TIMEOUT", "1.0")
    return monkeypatch


# ---------------------------------------------------------------------------
# Fault-plan grammar
# ---------------------------------------------------------------------------


def test_fault_plan_parses_task_and_chunk_entries():
    plan = parse_fault_plan("kill:trial:7, hang:plan:2 ,corrupt_shm:1")
    assert bool(plan)
    faults = plan.chunk_faults("trial", start=4, count=8, chunk_ordinal=0)
    assert faults.kills == (3,)
    assert plan.chunk_faults("plan", start=2, count=1, chunk_ordinal=1)
    by_chunk = plan.chunk_faults("trial", start=100, count=2, chunk_ordinal=1)
    assert by_chunk.corrupt_shm


def test_fault_plan_misses_return_none():
    plan = parse_fault_plan("corrupt:trial:50")
    assert plan.chunk_faults("trial", start=0, count=50, chunk_ordinal=0) is None
    assert plan.chunk_faults("plan", start=0, count=100, chunk_ordinal=0) is None


def test_fault_plan_empty_spec_is_empty():
    assert not parse_fault_plan("")
    assert not parse_fault_plan(" , ")
    assert FaultPlan([]).chunk_faults("trial", 0, 10, 0) is None


@pytest.mark.parametrize("spec", [
    "explode:trial:1",          # unknown action
    "kill:route:1",             # unknown kind
    "kill:trial",               # missing index
    "kill:trial:x",             # non-integer index
    "corrupt_shm",              # missing chunk ordinal
    "shed:trial:1",             # shed only targets the request stage
    "trip_breaker:request:0",   # trip_breaker only targets windows
    "slow:request:1",           # slow is a task fault, not a service one
])
def test_fault_plan_rejects_bad_entries(spec):
    with pytest.raises(TranspilerError, match="MIRAGE_FAULT_PLAN"):
        parse_fault_plan(spec)


def test_fault_plan_errors_name_the_grammar():
    """A parse failure tells the operator what shapes are accepted."""
    with pytest.raises(TranspilerError, match="kind:stage:ordinal"):
        parse_fault_plan("shed:request")


def test_fault_plan_parses_service_entries():
    plan = parse_fault_plan("shed:request:3, trip_breaker:window:0, slow:trial:2")
    assert bool(plan)
    assert plan.service_fault("shed", 3)
    assert not plan.service_fault("shed", 2)
    assert plan.service_fault("trip_breaker", 0)
    assert not plan.service_fault("trip_breaker", 1)
    faults = plan.chunk_faults("trial", start=0, count=8, chunk_ordinal=0)
    assert faults.slows == (2,)


def test_fault_plan_parses_network_entries():
    plan = parse_fault_plan(
        "drop_conn:chunk:2, garble:frame:0, partition:host:1, slow_net:chunk:4"
    )
    assert bool(plan)
    assert plan.network_fault("drop_conn", 2)
    assert not plan.network_fault("drop_conn", 1)
    assert plan.network_fault("garble", 0)
    assert plan.network_fault("partition", 1)
    assert not plan.network_fault("partition", 0)
    assert plan.network_fault("slow_net", 4)
    # Network entries never leak into the task/chunk fault resolution.
    assert plan.chunk_faults("trial", start=0, count=50, chunk_ordinal=2) is None


@pytest.mark.parametrize("spec", [
    "drop_conn:frame:1",     # drop_conn counts chunks, not frames
    "garble:chunk:1",        # garble counts frames
    "partition:chunk:0",     # partition targets host indices
    "slow_net:host:0",       # slow_net counts chunks
    "drop_conn:chunk",       # missing ordinal
    "partition:host:x",      # non-integer ordinal
])
def test_fault_plan_rejects_bad_network_entries(spec):
    with pytest.raises(TranspilerError, match="MIRAGE_FAULT_PLAN"):
        parse_fault_plan(spec)


def test_chunk_faults_fire_positionally():
    faults = ChunkFaults(
        kills=(1,), corrupts=(2,), dispatcher_pid=os.getpid()
    )
    faults.before_task(0)  # no fault at offset 0
    with pytest.raises(InjectedWorkerCrash):
        faults.before_task(1)
    assert isinstance(faults.after_task(2, "real"), CorruptResult)
    assert faults.after_task(0, "real") == "real"
    with pytest.raises(TransportError):
        ChunkFaults(corrupt_shm=True).check_transport()


def test_corrupt_result_pickles():
    marker = pickle.loads(pickle.dumps(CorruptResult(5)))
    assert isinstance(marker, CorruptResult)
    assert marker.ordinal == 5


# ---------------------------------------------------------------------------
# Digest-pinned retry determinism across executors, transports and faults
# ---------------------------------------------------------------------------


BASELINE = None


def _baseline():
    global BASELINE
    if BASELINE is None:
        BASELINE = [_fingerprint(r) for r in _batch()]
    return BASELINE


@pytest.mark.parametrize("make_executor", [
    SerialExecutor,
    ThreadExecutor,
    lambda: ProcessExecutor(max_workers=2),
])
@pytest.mark.parametrize("fault_spec", [
    "kill:trial:2",
    "corrupt:trial:4",
    "kill:trial:1,corrupt:trial:5",
])
def test_injected_faults_preserve_digests(
    monkeypatch, make_executor, fault_spec
):
    """Recovered batches are byte-identical to undisturbed ones."""
    expected = _baseline()
    monkeypatch.setenv("MIRAGE_FAULT_PLAN", fault_spec)
    with make_executor() as executor:
        faulted = _batch(executor)
        stats = dict(executor.dispatch_stats)
    assert [_fingerprint(r) for r in faulted] == expected
    assert stats["retries"] >= 1
    assert stats["lost_tasks"] >= 1
    assert faulted.dispatch["retries"] >= 1
    assert _own_segments() == []


@pytest.mark.parametrize("fault_spec", ["kill:trial:3", "corrupt:trial:2"])
def test_injected_faults_preserve_digests_inline_transport(
    monkeypatch, fault_spec
):
    """The inline-pickle transport recovers identically to shm."""
    expected = _baseline()
    monkeypatch.setenv("MIRAGE_SHM_DISABLE", "1")
    monkeypatch.setenv("MIRAGE_FAULT_PLAN", fault_spec)
    with ProcessExecutor(max_workers=2) as executor:
        faulted = _batch(executor)
        stats = dict(executor.dispatch_stats)
    assert [_fingerprint(r) for r in faulted] == expected
    assert stats["retries"] >= 1
    assert _own_segments() == []


def test_injected_plan_fault_preserves_digests(monkeypatch):
    """A killed executor-side planning task is replayed deterministically."""
    expected = _baseline()
    monkeypatch.setenv("MIRAGE_FAULT_PLAN", "kill:plan:1")
    with ProcessExecutor(max_workers=2) as executor:
        faulted = _batch(executor, plan="executor")
        stats = dict(executor.dispatch_stats)
    assert [_fingerprint(r) for r in faulted] == expected
    assert stats["retries"] >= 1
    assert _own_segments() == []


def test_clean_run_reports_zero_fault_counters(monkeypatch):
    # CI's fault-injection job exports a global MIRAGE_FAULT_PLAN; a
    # *clean*-run assertion must explicitly run without one.
    monkeypatch.delenv("MIRAGE_FAULT_PLAN", raising=False)
    result = _batch()
    for key in (
        "retries", "respawns", "lost_tasks",
        "executor_downgrades", "transport_downgrades",
        "deadline_expirations",
    ):
        assert result.dispatch[key] == 0


def test_injected_slow_tasks_preserve_digests(monkeypatch):
    """Slowed tasks delay delivery but never lose work or change bits."""
    expected = _baseline()
    monkeypatch.setenv("MIRAGE_FAULT_PLAN", "slow:trial:1,slow:trial:3")
    monkeypatch.setenv("MIRAGE_FAULT_SLOW_SECONDS", "0.05")
    with ThreadExecutor(max_workers=2) as executor:
        faulted = _batch(executor)
    assert [_fingerprint(r) for r in faulted] == expected
    assert faulted.dispatch["retries"] == 0
    assert faulted.dispatch["lost_tasks"] == 0


#: The recovery-provenance subset of the dispatch counters — the part a
#: deterministic fault plan must reproduce exactly run over run.
RECOVERY_COUNTERS = (
    "retries", "respawns", "lost_tasks",
    "executor_downgrades", "transport_downgrades",
    "deadline_expirations",
)


# The process pool runs one worker: in-process injections fail exactly
# one chunk, but a *real* worker kill takes down every chunk in flight,
# and with >1 worker the sibling's progress at kill time is a race.  One
# sequential worker makes the lost-chunk set — and so the counters —
# a pure function of the plan.
@pytest.mark.parametrize("make_executor", [
    lambda: ThreadExecutor(max_workers=2),
    lambda: ProcessExecutor(max_workers=1),
])
def test_recovery_counters_reproducible_across_runs(monkeypatch, make_executor):
    """Same fault plan + same seed => byte-identical results AND
    byte-identical recovery counters across two runs of one executor."""
    monkeypatch.setenv("MIRAGE_FAULT_PLAN", "kill:trial:1,corrupt:trial:4")
    runs = []
    for _ in range(2):
        with make_executor() as executor:
            batch = _batch(executor)
        runs.append((
            [_fingerprint(r) for r in batch],
            {key: batch.dispatch[key] for key in RECOVERY_COUNTERS},
        ))
    assert runs[0] == runs[1]
    assert runs[0][1]["retries"] >= 1
    assert _own_segments() == []


def test_recovery_results_identical_across_executors(monkeypatch):
    """The same plan recovered on different executors converges on the
    same bytes, whatever each executor's recovery path counted."""
    monkeypatch.setenv("MIRAGE_FAULT_PLAN", "kill:trial:2")
    fingerprints = []
    for make_executor in (
        lambda: ThreadExecutor(max_workers=2),
        lambda: ProcessExecutor(max_workers=2),
    ):
        with make_executor() as executor:
            batch = _batch(executor)
            assert dict(executor.dispatch_stats)["retries"] >= 1
        fingerprints.append([_fingerprint(r) for r in batch])
    assert fingerprints[0] == fingerprints[1] == _baseline()


# ---------------------------------------------------------------------------
# Deadline propagation: typed expiry, sibling isolation, counters
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("make_executor", [
    SerialExecutor,
    lambda: ThreadExecutor(max_workers=2),
    lambda: ProcessExecutor(max_workers=2),
])
def test_expired_deadline_fails_one_circuit_not_its_siblings(make_executor):
    """on_error="return" places a typed error at the expired circuit's
    position; siblings stay byte-identical and nothing leaks."""
    expected = _baseline()
    with make_executor() as executor:
        batch = _batch(
            executor,
            circuit_deadlines=[time.monotonic() - 1.0, None],
            on_error="return",
        )
        stats = dict(executor.dispatch_stats)
    assert isinstance(batch.results[0], DeadlineExceededError)
    assert _fingerprint(batch.results[1]) == expected[1]
    assert stats["deadline_expirations"] >= 1
    assert batch.dispatch["deadline_expirations"] >= 1
    # Aggregate helpers skip the placeholder instead of crashing.
    assert batch.summary()["circuits"] == 2
    assert batch.circuit_seconds()[0] == 0.0
    assert _own_segments() == []


def test_expired_deadline_raises_by_default():
    with pytest.raises(DeadlineExceededError):
        _batch(circuit_deadlines=[time.monotonic() - 1.0, None])


def test_on_error_rejects_unknown_mode():
    with pytest.raises(InvalidModeError, match="on_error"):
        _batch(on_error="bogus")


def test_circuit_deadlines_length_must_match():
    with pytest.raises(TranspilerError, match="circuit_deadlines"):
        _batch(circuit_deadlines=[None])


# ---------------------------------------------------------------------------
# Hung workers: deadline, pool respawn, replay
# ---------------------------------------------------------------------------


@needs_shm
def test_hung_worker_is_respawned_and_replayed(quick_recovery):
    """A hang outliving MIRAGE_TASK_TIMEOUT is killed and re-dispatched."""
    quick_recovery.setenv("MIRAGE_FAULT_PLAN", "hang:trial:2")
    expected = _baseline()
    with ProcessExecutor(max_workers=2) as executor:
        faulted = _batch(executor)
        stats = dict(executor.dispatch_stats)
    assert [_fingerprint(r) for r in faulted] == expected
    assert stats["retries"] >= 1
    assert stats["respawns"] >= 1
    assert _own_segments() == []


# ---------------------------------------------------------------------------
# Degradation ladders
# ---------------------------------------------------------------------------


def test_exhausted_retries_degrade_to_in_process(monkeypatch):
    """With a zero retry budget the chunk runs on the dispatcher itself."""
    expected = _baseline()
    monkeypatch.setenv("MIRAGE_TASK_RETRIES", "0")
    monkeypatch.setenv("MIRAGE_FAULT_PLAN", "kill:trial:2")
    with ProcessExecutor(max_workers=2) as executor:
        faulted = _batch(executor)
        stats = dict(executor.dispatch_stats)
    assert [_fingerprint(r) for r in faulted] == expected
    assert stats["executor_downgrades"] >= 1
    assert _own_segments() == []


@needs_shm
def test_transport_fault_downgrades_to_inline(monkeypatch):
    """An injected segment loss republishes the payload inline."""
    expected = _baseline()
    monkeypatch.setenv("MIRAGE_FAULT_PLAN", "corrupt_shm:1")
    with ProcessExecutor(max_workers=2) as executor:
        faulted = _batch(executor)
        stats = dict(executor.dispatch_stats)
    assert [_fingerprint(r) for r in faulted] == expected
    assert stats["transport_downgrades"] >= 1
    assert _own_segments() == []


# ---------------------------------------------------------------------------
# Typed transport errors
# ---------------------------------------------------------------------------


@needs_shm
def test_vanished_segment_raises_transport_error(monkeypatch):
    # Whole-blob segment layout: the only one `fetch` applies to.
    monkeypatch.setenv("MIRAGE_ZEROCOPY_DISABLE", "1")
    handle = _publish_object({"x": list(range(256))})
    assert handle.segment is not None
    from repro.transpiler.executors import _unlink_segment

    _unlink_segment(handle.segment)
    with pytest.raises(TransportError, match="vanished"):
        handle.fetch()
    with pytest.raises(TransportError):
        _attach_segment(f"{SHM_SEGMENT_PREFIX}{os.getpid()}_deadbeef")
    assert _own_segments() == []


def test_corrupt_result_error_is_transport_error():
    # The retry layer catches TransportError; corruption must ride that
    # path (replay) while NOT triggering a transport downgrade — the
    # distinction the isinstance checks in the dispatcher rely on.
    assert issubclass(CorruptResultError, TransportError)
    assert issubclass(TransportError, TranspilerError)


# ---------------------------------------------------------------------------
# Janitor and teardown
# ---------------------------------------------------------------------------


def _publish_and_die(conn):
    """Child: publish a segment, signal, then die without cleanup."""
    from repro.transpiler.executors import _publish_object as publish

    handle = publish({"payload": list(range(512))})
    conn.send(handle.segment)
    conn.close()
    os._exit(1)  # hard death: no finally, no atexit


@needs_shm
def test_reaper_reclaims_segments_of_dead_process():
    ctx = multiprocessing.get_context("fork")
    parent_conn, child_conn = ctx.Pipe()
    child = ctx.Process(target=_publish_and_die, args=(child_conn,))
    child.start()
    assert parent_conn.poll(30)
    segment = parent_conn.recv()
    child.join(timeout=30)
    assert segment is not None
    leaked = f"/dev/shm/{segment}"
    assert os.path.exists(leaked)
    reclaimed = reap_stale_segments()
    assert segment in reclaimed
    assert not os.path.exists(leaked)


@needs_shm
def test_reaper_never_touches_live_segments():
    handle = _publish_object({"x": list(range(256))})
    assert handle.segment is not None
    try:
        assert handle.segment not in reap_stale_segments()
        assert os.path.exists(f"/dev/shm/{handle.segment}")
    finally:
        from repro.transpiler.executors import _unlink_segment

        _unlink_segment(handle.segment)


def test_reaper_ignores_foreign_names(tmp_path):
    assert reap_stale_segments(prefix="no_such_prefix_") == []


def test_reaper_sweeps_dead_host_sockets_and_spools():
    """The janitor reclaims socket files and spool dirs of dead hosts."""
    import shutil
    import subprocess
    import sys
    import tempfile

    from repro.transpiler.faults import HOST_SOCKET_PREFIX, SPOOL_PREFIX

    # Create host artefacts owned by a real, now-dead pid.
    probe = subprocess.run(
        [sys.executable, "-c", "import os; print(os.getpid())"],
        capture_output=True,
        text=True,
        check=True,
    )
    dead_pid = int(probe.stdout)
    tmp = tempfile.gettempdir()
    socket_file = os.path.join(tmp, f"{HOST_SOCKET_PREFIX}{dead_pid}_t.sock")
    spool_dir = os.path.join(tmp, f"{SPOOL_PREFIX}{dead_pid}_t")
    open(socket_file, "w").close()
    os.makedirs(spool_dir, exist_ok=True)
    open(os.path.join(spool_dir, "payload"), "w").close()
    # And artefacts owned by this live process, which must survive.
    live_socket = os.path.join(
        tmp, f"{HOST_SOCKET_PREFIX}{os.getpid()}_t.sock"
    )
    live_spool = os.path.join(tmp, f"{SPOOL_PREFIX}{os.getpid()}_t")
    open(live_socket, "w").close()
    os.makedirs(live_spool, exist_ok=True)
    try:
        reclaimed = reap_stale_segments()
        assert os.path.basename(socket_file) in reclaimed
        assert os.path.basename(spool_dir) in reclaimed
        assert not os.path.exists(socket_file)
        assert not os.path.exists(spool_dir)
        assert os.path.exists(live_socket)
        assert os.path.exists(live_spool)
    finally:
        for path in (socket_file, live_socket):
            if os.path.exists(path):
                os.unlink(path)
        for path in (spool_dir, live_spool):
            shutil.rmtree(path, ignore_errors=True)


@needs_shm
def test_cleanup_segments_is_idempotent():
    handle = _publish_object({"x": list(range(256))})
    assert handle.segment is not None
    assert handle.segment in _created_segments
    # Unlink behind the guard's back: cleanup must tolerate it.
    os.unlink(f"/dev/shm/{handle.segment}")
    _cleanup_segments()
    assert handle.segment not in _created_segments
    _cleanup_segments()  # second call: nothing left, still no error
    assert _own_segments() == []


# ---------------------------------------------------------------------------
# Exception paths through transpile_many leave no orphans
# ---------------------------------------------------------------------------


def test_failing_batch_leaves_no_orphan_segments(monkeypatch):
    """A mid-batch planning failure closes the session and segments."""
    import importlib

    # `repro.core` re-exports a `transpile` *function*, which shadows the
    # submodule under plain attribute-style import.
    transpile_mod = importlib.import_module("repro.core.transpile")
    real_run_plan = transpile_mod.run_plan
    calls = {"n": 0}

    def failing_run_plan(spec, task):
        calls["n"] += 1
        if calls["n"] >= 2:
            raise TranspilerError("injected mid-batch planning failure")
        return real_run_plan(spec, task)

    monkeypatch.setattr(transpile_mod, "run_plan", failing_run_plan)
    with ProcessExecutor(max_workers=2) as executor:
        with pytest.raises(TranspilerError, match="mid-batch"):
            _batch(executor, plan="local")
    assert _own_segments() == []


def test_failing_trials_leave_no_orphan_segments():
    """A task exception drains the dispatch and unlinks every segment."""

    with ProcessExecutor(max_workers=2) as executor:
        with pytest.raises(ZeroDivisionError):
            executor.map_shared(_divide, {"d": 0}, list(range(8)))
    assert _own_segments() == []


def _divide(shared, task):
    return task // shared["d"]
