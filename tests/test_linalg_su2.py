"""Tests for the single-qubit rotation / Euler-angle helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    H,
    S,
    T,
    X,
    Y,
    Z,
    equal_up_to_global_phase,
    haar_unitary,
    is_unitary,
    rx,
    ry,
    rz,
    so3_rotation,
    u3,
    zyz_angles,
    zyz_matrix,
)


@pytest.mark.parametrize("theta", np.linspace(-2 * np.pi, 2 * np.pi, 9))
def test_rotations_are_unitary(theta):
    assert is_unitary(rx(theta))
    assert is_unitary(ry(theta))
    assert is_unitary(rz(theta))


def test_rotation_special_values():
    assert equal_up_to_global_phase(rx(np.pi), X)
    assert equal_up_to_global_phase(ry(np.pi), Y)
    assert equal_up_to_global_phase(rz(np.pi), Z)
    assert np.allclose(rx(0), np.eye(2))


def test_u3_special_cases():
    assert equal_up_to_global_phase(u3(np.pi / 2, 0, np.pi), H)
    assert equal_up_to_global_phase(u3(0, 0, np.pi / 2), S)
    assert equal_up_to_global_phase(u3(0, 0, np.pi / 4), T)
    assert equal_up_to_global_phase(u3(np.pi, 0, np.pi), X)


def test_u3_is_unitary_generic():
    assert is_unitary(u3(0.3, -1.2, 2.5))


@pytest.mark.parametrize("gate", [X, Y, Z, H, S, T, np.eye(2)])
def test_zyz_roundtrip_named_gates(gate):
    theta, phi, lam, alpha = zyz_angles(gate)
    rebuilt = zyz_matrix(theta, phi, lam, alpha)
    assert np.allclose(rebuilt, gate, atol=1e-9)


@pytest.mark.parametrize("seed", range(20))
def test_zyz_roundtrip_random(seed):
    gate = haar_unitary(2, seed)
    theta, phi, lam, alpha = zyz_angles(gate)
    rebuilt = zyz_matrix(theta, phi, lam, alpha)
    assert np.allclose(rebuilt, gate, atol=1e-8)


def test_zyz_matches_u3_up_to_phase():
    gate = haar_unitary(2, 123)
    theta, phi, lam, _ = zyz_angles(gate)
    assert equal_up_to_global_phase(u3(theta, phi, lam), gate, atol=1e-8)


def test_so3_rotation_axes():
    assert np.allclose(so3_rotation([1, 0, 0], 0.7), rx(0.7))
    assert np.allclose(so3_rotation([0, 1, 0], 0.7), ry(0.7))
    assert np.allclose(so3_rotation([0, 0, 1], 0.7), rz(0.7))


def test_so3_rotation_normalises_axis():
    assert np.allclose(so3_rotation([2, 0, 0], 0.5), rx(0.5))


@settings(max_examples=40, deadline=None)
@given(
    st.floats(min_value=-6.0, max_value=6.0),
    st.floats(min_value=-6.0, max_value=6.0),
    st.floats(min_value=-6.0, max_value=6.0),
)
def test_property_zyz_roundtrip(theta, phi, lam):
    gate = zyz_matrix(theta, phi, lam)
    t2, p2, l2, a2 = zyz_angles(gate)
    assert np.allclose(zyz_matrix(t2, p2, l2, a2), gate, atol=1e-8)
