"""Equivalence tests for the vectorized hot paths.

Every batched API must match its scalar counterpart element-wise (bitwise,
in fact — the vectorized code replicates the scalar IEEE operations), the
delta-scored SWAP selection must choose the same edges as a full rescore,
and a disk-cached coverage set must answer queries identically to a fresh
build.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.circuits.library import benchmark_circuit, twolocal_full
from repro.linalg.random import haar_unitary
from repro.polytopes.cache import CoordinateCache
from repro.polytopes.coverage import (
    build_coverage_set,
    load_or_build_coverage_set,
)
from repro.transpiler.layout import Layout
from repro.transpiler.passes.consolidate import consolidate_blocks
from repro.transpiler.passes.sabre_swap import SabreSwap
from repro.transpiler.topologies import topology_by_name
from repro.weyl.canonical import (
    PI4,
    canonicalize_coordinate,
    canonicalize_coordinates_many,
)
from repro.weyl.coordinates import weyl_coordinates, weyl_coordinates_many
from repro.weyl.haar import cached_haar_samples
from repro.weyl.mirror import mirror_coordinate, mirror_coordinates_many


@pytest.fixture(scope="module")
def coverage():
    return build_coverage_set(
        "sqrt_iswap", num_samples=250, seed=7, mirror=True, anchor=False
    )


@pytest.fixture(scope="module")
def haar_points():
    return cached_haar_samples(300, 2024)


LANDMARKS = np.array(
    [
        [0.0, 0.0, 0.0],
        [PI4, 0.0, 0.0],
        [PI4, PI4, 0.0],
        [PI4, PI4, PI4],
        [PI4 / 2, PI4 / 2, 0.0],
        [PI4, PI4 / 2, 0.0],
    ]
)


# -- weyl machinery ----------------------------------------------------------


def test_canonicalize_many_matches_scalar():
    rng = np.random.default_rng(11)
    raw = rng.normal(scale=3.0, size=(2000, 3))
    scalar = np.array([canonicalize_coordinate(row) for row in raw])
    batched = canonicalize_coordinates_many(raw)
    assert np.array_equal(scalar, batched)


def test_canonicalize_many_handles_boundaries():
    boundary = np.vstack([LANDMARKS, -LANDMARKS, LANDMARKS + np.pi / 2])
    scalar = np.array([canonicalize_coordinate(row) for row in boundary])
    batched = canonicalize_coordinates_many(boundary)
    assert np.array_equal(scalar, batched)


def test_mirror_many_matches_scalar(haar_points):
    scalar = np.array([mirror_coordinate(row) for row in haar_points])
    batched = mirror_coordinates_many(haar_points)
    assert np.array_equal(scalar, batched)
    assert np.array_equal(
        mirror_coordinates_many(LANDMARKS),
        np.array([mirror_coordinate(row) for row in LANDMARKS]),
    )


def test_weyl_many_matches_scalar():
    rng = np.random.default_rng(23)
    unitaries = np.stack([haar_unitary(4, rng) for _ in range(60)])
    scalar = np.array([weyl_coordinates(u) for u in unitaries])
    batched = weyl_coordinates_many(unitaries)
    assert np.array_equal(scalar, batched)


def test_weyl_many_degenerate_spectra():
    from repro.weyl.canonical import canonical_gate

    specials = np.stack(
        [
            np.eye(4, dtype=complex),
            canonical_gate(PI4, 0.0, 0.0),
            canonical_gate(PI4, PI4, 0.0),
            canonical_gate(PI4, PI4, PI4),
            canonical_gate(PI4 / 2, PI4 / 2, PI4 / 2),
        ]
    )
    scalar = np.array([weyl_coordinates(u) for u in specials])
    batched = weyl_coordinates_many(specials)
    assert np.array_equal(scalar, batched)


def test_batched_apis_accept_empty_input(coverage):
    assert canonicalize_coordinates_many([]).shape == (0, 3)
    assert mirror_coordinates_many([]).shape == (0, 3)
    assert coverage.cost_of_many([]).shape == (0,)
    assert coverage.mirror_cost_of_many([]).shape == (0,)
    assert coverage.depth_of_many([]).shape == (0,)


def test_scalar_contains_agrees_with_mask_on_facets(coverage):
    # Points exactly on hull facets (convex combinations of vertices) are
    # the worst case for floating-point association differences; scalar
    # contains() and the batched mask share the half-space form, so they
    # must agree everywhere.
    rng = np.random.default_rng(7)
    for polytope in coverage.polytopes:
        for piece in polytope.pieces:
            vertices = piece.vertices
            if len(vertices) < 2:
                continue
            weights = rng.dirichlet(np.ones(min(3, len(vertices))), size=50)
            points = weights @ vertices[: weights.shape[1]]
            mask = piece.contains_mask(points)
            scalar = np.array([piece.contains(row) for row in points])
            assert np.array_equal(mask, scalar)


def test_cost_of_many_duplicate_keys_reuse_first_result(coverage):
    coverage.clear_cache()
    point = np.array([0.3, 0.2, 0.1])
    batch = np.vstack([point, point + 1e-9, point])  # same rounded key
    costs = coverage.cost_of_many(batch)
    assert costs[0] == costs[1] == costs[2]
    info = coverage.cache_info()
    assert info["misses"] == 1 and info["hits"] == 2


def test_weyl_many_shape_validation():
    from repro.exceptions import WeylError

    with pytest.raises(WeylError):
        weyl_coordinates_many(np.zeros((2, 3, 3)))
    assert weyl_coordinates_many(np.zeros((0, 4, 4))).shape == (0, 3)


def test_weyl_many_stacked_rounding_matches_exact():
    """The fully stacked extraction agrees with the bit-exact default.

    ``exact_scalar_rounding=False`` replaces the per-row scalar Makhlin
    divisions with one complex array division; the candidate values the
    targets select among are identical in both modes, so the chosen
    coordinates must stay within one ulp — and, the match tolerance
    being ~1e-6, equal in practice.
    """
    from repro.weyl.canonical import canonical_gate

    rng = np.random.default_rng(31)
    unitaries = np.stack(
        [haar_unitary(4, rng) for _ in range(80)]
        + [
            np.eye(4, dtype=complex),
            canonical_gate(PI4, 0.0, 0.0),
            canonical_gate(PI4, PI4, PI4),
        ]
    )
    exact = weyl_coordinates_many(unitaries)
    stacked = weyl_coordinates_many(unitaries, exact_scalar_rounding=False)
    ulp = np.spacing(np.maximum(np.abs(exact), 1.0))
    assert np.all(np.abs(exact - stacked) <= ulp)


def test_weyl_stacked_rounding_targets_within_one_ulp():
    """The array-division Makhlin targets drift by at most one ulp.

    This pins the *reason* ``exact_scalar_rounding`` exists: numpy's
    complex array-division ufunc and scalar complex division may round
    the invariant targets differently, but never by more than one ulp —
    ten orders of magnitude inside the 1e-6 candidate-match tolerance.
    """
    from repro.linalg.constants import MAGIC, MAGIC_DAG

    rng = np.random.default_rng(37)
    stack = np.stack([haar_unitary(4, rng) for _ in range(200)])
    determinants = np.linalg.det(stack)
    um = MAGIC_DAG @ stack @ MAGIC
    gamma = np.transpose(um, (0, 2, 1)) @ um
    traces = np.trace(gamma, axis1=1, axis2=2)
    traces_sq = np.trace(gamma @ gamma, axis1=1, axis2=2)

    g12_array = traces**2 / (16 * determinants)
    g3_array = (traces**2 - traces_sq) / (4 * determinants)
    for index in range(len(stack)):
        g12 = traces[index] ** 2 / (16 * determinants[index])
        g3 = (
            traces[index] ** 2 - traces_sq[index]
        ) / (4 * determinants[index])
        for scalar, stacked in (
            (g12.real, g12_array[index].real),
            (g12.imag, g12_array[index].imag),
            (g3.real, g3_array[index].real),
        ):
            assert abs(scalar - stacked) <= np.spacing(max(abs(scalar), 1.0))


# -- batched coverage queries ------------------------------------------------


def test_cost_of_many_matches_scalar(coverage, haar_points):
    points = np.vstack([haar_points, LANDMARKS])
    coverage.clear_cache()
    scalar = np.array([coverage.cost_of(row) for row in points])
    coverage.clear_cache()
    batched = coverage.cost_of_many(points)
    assert np.array_equal(scalar, batched)


def test_cost_of_many_uses_the_memo_table(coverage, haar_points):
    coverage.clear_cache()
    first = coverage.cost_of_many(haar_points)
    info = coverage.cache_info()
    assert info["misses"] == len(haar_points)
    second = coverage.cost_of_many(haar_points)
    assert coverage.cache_info()["hits"] >= len(haar_points)
    assert np.array_equal(first, second)


def test_mirror_and_depth_many_match_scalar(coverage, haar_points):
    mirror_scalar = np.array(
        [coverage.mirror_cost_of(row) for row in haar_points]
    )
    assert np.array_equal(
        mirror_scalar, coverage.mirror_cost_of_many(haar_points)
    )
    depth_scalar = np.array([coverage.depth_of(row) for row in haar_points])
    assert np.array_equal(depth_scalar, coverage.depth_of_many(haar_points))


def test_circuit_polytope_mask_matches_contains(coverage, haar_points):
    for polytope in coverage.polytopes:
        mask = polytope.contains_mask(haar_points, atol=coverage.atol)
        scalar = np.array(
            [polytope.contains(row, atol=coverage.atol) for row in haar_points]
        )
        assert np.array_equal(mask, scalar)


def test_coverage_pickle_drops_cost_cache(coverage, haar_points):
    coverage.clear_cache()
    expected = coverage.cost_of_many(haar_points)
    assert coverage.cache_info()["size"] > 0
    state = coverage.__getstate__()
    assert "_cost_cache" not in state
    assert "_cache_hits" not in state
    restored = pickle.loads(pickle.dumps(coverage))
    assert restored.cache_info() == {"hits": 0, "misses": 0, "size": 0}
    assert np.array_equal(restored.cost_of_many(haar_points), expected)


# -- persistent disk cache ---------------------------------------------------


def test_disk_cache_round_trip(tmp_path, monkeypatch, haar_points):
    monkeypatch.setenv("MIRAGE_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("MIRAGE_CACHE_DISABLE", raising=False)
    kwargs = dict(num_samples=200, seed=7, mirror=True, anchor=False)
    first = load_or_build_coverage_set("sqrt_iswap", **kwargs)
    entries = list(tmp_path.glob("coverage-v*.pkl"))
    assert len(entries) == 1
    second = load_or_build_coverage_set("sqrt_iswap", **kwargs)
    fresh = build_coverage_set("sqrt_iswap", **kwargs)
    assert np.array_equal(
        second.cost_of_many(haar_points), fresh.cost_of_many(haar_points)
    )
    assert np.array_equal(
        first.cost_of_many(haar_points), fresh.cost_of_many(haar_points)
    )


def test_disk_cache_key_separates_configs(tmp_path, monkeypatch):
    monkeypatch.setenv("MIRAGE_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("MIRAGE_CACHE_DISABLE", raising=False)
    load_or_build_coverage_set(
        "sqrt_iswap", num_samples=150, seed=7, mirror=False, anchor=False
    )
    load_or_build_coverage_set(
        "sqrt_iswap", num_samples=150, seed=8, mirror=False, anchor=False
    )
    assert len(list(tmp_path.glob("coverage-v*.pkl"))) == 2


def test_disk_cache_corrupt_entry_rebuilds(tmp_path, monkeypatch):
    monkeypatch.setenv("MIRAGE_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("MIRAGE_CACHE_DISABLE", raising=False)
    kwargs = dict(num_samples=150, seed=7, mirror=False, anchor=False)
    load_or_build_coverage_set("sqrt_iswap", **kwargs)
    entry = next(tmp_path.glob("coverage-v*.pkl"))
    entry.write_bytes(b"not a pickle")
    rebuilt = load_or_build_coverage_set("sqrt_iswap", **kwargs)
    assert rebuilt.basis == "sqrt_iswap"
    # The corrupt entry was replaced with a fresh, loadable one.
    with open(next(tmp_path.glob("coverage-v*.pkl")), "rb") as handle:
        assert pickle.load(handle).basis == "sqrt_iswap"


def test_disk_cache_truncated_entry_rebuilds(tmp_path, monkeypatch):
    """A writer crash mid-pickle must read as a miss, not an error."""
    monkeypatch.setenv("MIRAGE_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("MIRAGE_CACHE_DISABLE", raising=False)
    kwargs = dict(num_samples=150, seed=7, mirror=False, anchor=False)
    load_or_build_coverage_set("sqrt_iswap", **kwargs)
    entry = next(tmp_path.glob("coverage-v*.pkl"))
    payload = entry.read_bytes()
    entry.write_bytes(payload[: len(payload) // 2])
    rebuilt = load_or_build_coverage_set("sqrt_iswap", **kwargs)
    assert rebuilt.basis == "sqrt_iswap"
    # The truncated entry was atomically replaced with a loadable one.
    restored = next(tmp_path.glob("coverage-v*.pkl")).read_bytes()
    assert pickle.loads(restored).basis == "sqrt_iswap"
    assert len(restored) == len(payload)


def test_disk_cache_wrong_object_entry_rebuilds(tmp_path, monkeypatch):
    """A well-formed pickle of the wrong thing is poison, not a hit."""
    monkeypatch.setenv("MIRAGE_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("MIRAGE_CACHE_DISABLE", raising=False)
    kwargs = dict(num_samples=150, seed=7, mirror=False, anchor=False)
    load_or_build_coverage_set("sqrt_iswap", **kwargs)
    entry = next(tmp_path.glob("coverage-v*.pkl"))
    entry.write_bytes(pickle.dumps({"looks": "plausible", "is": "not"}))
    rebuilt = load_or_build_coverage_set("sqrt_iswap", **kwargs)
    assert rebuilt.basis == "sqrt_iswap"
    assert pickle.loads(entry.read_bytes()).basis == "sqrt_iswap"


def test_disk_cache_mismatched_entry_rebuilds(tmp_path, monkeypatch):
    """An entry whose contents contradict its key is rejected."""
    monkeypatch.setenv("MIRAGE_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("MIRAGE_CACHE_DISABLE", raising=False)
    kwargs = dict(num_samples=150, seed=7, mirror=False, anchor=False)
    load_or_build_coverage_set("sqrt_iswap", **kwargs)
    entry = next(tmp_path.glob("coverage-v*.pkl"))
    other = load_or_build_coverage_set("cnot", **kwargs)
    entry.write_bytes(pickle.dumps(other))
    rebuilt = load_or_build_coverage_set("sqrt_iswap", **kwargs)
    assert rebuilt.basis == "sqrt_iswap"
    assert pickle.loads(entry.read_bytes()).basis == "sqrt_iswap"


def test_disk_cache_disable(tmp_path, monkeypatch):
    monkeypatch.setenv("MIRAGE_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("MIRAGE_CACHE_DISABLE", "1")
    load_or_build_coverage_set(
        "sqrt_iswap", num_samples=150, seed=7, mirror=False, anchor=False
    )
    assert not list(tmp_path.glob("coverage-v*.pkl"))


def test_disk_cache_key_tracks_construction_fingerprint(monkeypatch):
    from repro.polytopes import cache as cache_mod

    params = dict(
        basis="sqrt_iswap",
        max_depth=None,
        num_samples=100,
        seed=7,
        mirror=False,
        anchor=False,
        atol=1e-6,
    )
    original = cache_mod.coverage_cache_key(**params)
    monkeypatch.setattr(cache_mod, "_CONSTRUCTION_FINGERPRINT", "different")
    assert cache_mod.coverage_cache_key(**params) != original


def test_clear_coverage_cache_sweeps_orphan_tmp_files(tmp_path, monkeypatch):
    from repro.polytopes import clear_coverage_cache

    monkeypatch.setenv("MIRAGE_CACHE_DIR", str(tmp_path))
    (tmp_path / "tmp-coverage-orphan123").write_bytes(b"partial write")
    (tmp_path / "coverage-v1-deadbeef.pkl").write_bytes(b"stale")
    assert clear_coverage_cache() == 2
    assert not list(tmp_path.iterdir())


# -- coordinate cache batching ----------------------------------------------


def test_coordinates_many_matches_scalar_and_dedupes():
    rng = np.random.default_rng(3)
    unitaries = [haar_unitary(4, rng) for _ in range(20)]
    unitaries += unitaries[:5]  # duplicates within one batch

    scalar_cache = CoordinateCache()
    scalar = [scalar_cache.coordinate(u) for u in unitaries]

    batch_cache = CoordinateCache()
    batched = batch_cache.coordinates_many(unitaries)
    assert batched == scalar
    # Only distinct matrices were extracted.
    assert batch_cache.info()["misses"] == 20
    assert batch_cache.info()["hits"] == 5
    # A second batch is served fully from the cache.
    again = batch_cache.coordinates_many(unitaries[:10])
    assert again == scalar[:10]
    assert batch_cache.info()["misses"] == 20


def test_consolidate_batched_annotations_match_scalar():
    circuit = twolocal_full(5, reps=2)
    batched = consolidate_blocks(circuit, cache=CoordinateCache())

    scalar_cache = CoordinateCache()
    for instruction in batched:
        gate = instruction.gate
        if len(instruction.qubits) == 2 and gate.coordinate is not None:
            assert gate.coordinate == scalar_cache.coordinate(gate.matrix())


# -- delta-scored SWAP selection --------------------------------------------


class _FullRescoreSwap(SabreSwap):
    """Reference router using the historical copy-layout-and-rescore loop."""

    def _choose_swap(self, front, layout, dag, rng):
        candidates = self._swap_candidates(front, layout)
        assert candidates
        extended = self._extended_set(front, dag)
        best_score = np.inf
        best_edges = []
        for edge in candidates:
            trial = layout.copy()
            trial.swap_physical(*edge)
            score = self.routing_heuristic(front, extended, trial)
            score *= max(self._decay[edge[0]], self._decay[edge[1]])
            if score < best_score - 1e-12:
                best_score = score
                best_edges = [edge]
            elif abs(score - best_score) <= 1e-12:
                best_edges.append(edge)
        return best_edges[int(rng.integers(len(best_edges)))]


def _route_stream(router, dag, layout, seed):
    result = router.run(dag, layout, seed=seed)
    return (
        result.swaps_added,
        [(i.gate.name, i.qubits) for i in result.dag.to_circuit()],
    )


@pytest.mark.parametrize("seed", [3, 17])
@pytest.mark.parametrize("topology", ["line", "square"])
def test_delta_swap_choice_matches_full_rescore(seed, topology):
    width = 9
    coupling = topology_by_name(topology, width)
    dag = benchmark_circuit("qft", width).to_dag()
    layout = Layout.trivial(width, coupling.num_qubits)

    fast = SabreSwap(coupling, seed=seed)
    reference = _FullRescoreSwap(coupling, seed=seed)
    assert _route_stream(fast, dag, layout.copy(), seed) == _route_stream(
        reference, dag, layout.copy(), seed
    )


def test_delta_swap_choice_matches_on_random_layouts():
    coupling = topology_by_name("heavy_hex", 57)
    dag = benchmark_circuit("qft", 12).to_dag()
    for seed in (1, 2):
        layout = Layout.random(12, coupling.num_qubits, seed=seed)
        fast = SabreSwap(coupling, seed=seed)
        reference = _FullRescoreSwap(coupling, seed=seed)
        assert _route_stream(fast, dag, layout.copy(), seed) == _route_stream(
            reference, dag, layout.copy(), seed
        )
