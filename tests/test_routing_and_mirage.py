"""Tests for SABRE routing, the MIRAGE pass and the top-level transpile API."""

import pytest

from repro.exceptions import TranspilerError
from repro.circuits import QuantumCircuit
from repro.circuits.library import ghz, qft, twolocal_full
from repro.core import (
    Aggression,
    MirageSwap,
    accept_mirror,
    aggression_schedule,
    compare_methods,
    fixed_schedule,
    prepare_circuit,
    schedule_from_spec,
    transpile,
)
from repro.linalg import equal_up_to_global_phase
from repro.polytopes import get_coverage_set
from repro.transpiler import Layout, grid_topology, line_topology, ring_topology
from repro.transpiler.passes import SabreLayout, SabreSwap, depth_metric, swap_count_metric

COVERAGE = get_coverage_set("sqrt_iswap", num_samples=250, seed=3)


def _route_and_verify(circuit, coupling, router_cls=SabreSwap, **router_kwargs):
    """Route with a trivial layout and verify unitary equivalence."""
    prepared = prepare_circuit(circuit)
    dag = prepared.to_dag()
    router = router_cls(coupling, **router_kwargs)
    layout = Layout.trivial(prepared.num_qubits, coupling.num_qubits)
    result = router.run(dag, layout, seed=5)

    routed = result.to_circuit()
    assert routed.num_qubits == coupling.num_qubits
    # Every two-qubit gate must respect the coupling graph.
    for instr in routed:
        if instr.is_two_qubit:
            assert coupling.are_connected(*instr.qubits)

    # Unitary correctness up to the final layout permutation.
    embedded = prepared.remap(
        [result.initial_layout.v2p(q) for q in range(prepared.num_qubits)],
        coupling.num_qubits,
    )
    fixup = QuantumCircuit(coupling.num_qubits)
    position = {v: result.final_layout.v2p(v) for v in range(prepared.num_qubits)}
    target = {v: result.initial_layout.v2p(v) for v in range(prepared.num_qubits)}
    for virtual in range(prepared.num_qubits):
        if position[virtual] != target[virtual]:
            other = next(
                (w for w, p in position.items() if p == target[virtual]), None
            )
            fixup.swap(position[virtual], target[virtual])
            if other is not None:
                position[other] = position[virtual]
            position[virtual] = target[virtual]
    total = fixup.to_matrix() @ routed.to_matrix()
    assert equal_up_to_global_phase(total, embedded.to_matrix(), atol=1e-6)
    return result


# ---------------------------------------------------------------------------
# SABRE baseline
# ---------------------------------------------------------------------------


def test_sabre_routes_connected_circuit_without_swaps():
    result = _route_and_verify(ghz(4), line_topology(4))
    assert result.swaps_added == 0


def test_sabre_inserts_swaps_when_needed():
    circuit = QuantumCircuit(4)
    circuit.cx(0, 3)
    result = _route_and_verify(circuit, line_topology(4))
    assert result.swaps_added >= 1


def test_sabre_routes_qft_on_line_correctly():
    result = _route_and_verify(qft(5), line_topology(5))
    assert result.swaps_added > 0


def test_sabre_routes_on_ring_and_grid():
    _route_and_verify(qft(5), ring_topology(5))
    _route_and_verify(twolocal_full(6), grid_topology(2, 3))


def test_sabre_rejects_disconnected_stall():
    from repro.transpiler import CouplingMap

    disconnected = CouplingMap([(0, 1), (2, 3)], 4)
    circuit = QuantumCircuit(4)
    circuit.cx(0, 2)
    with pytest.raises(TranspilerError):
        SabreSwap(disconnected).run(
            prepare_circuit(circuit).to_dag(), Layout.trivial(4, 4), seed=1
        )


def test_sabre_rejects_wide_gates():
    circuit = QuantumCircuit(3)
    circuit.ccx(0, 1, 2)  # not unrolled on purpose
    with pytest.raises(TranspilerError):
        SabreSwap(line_topology(3)).run(circuit.to_dag(), Layout.trivial(3, 3))


# ---------------------------------------------------------------------------
# MIRAGE router
# ---------------------------------------------------------------------------


def test_mirage_routes_correctly_with_mirrors():
    result = _route_and_verify(
        twolocal_full(4),
        line_topology(4),
        router_cls=MirageSwap,
        coverage=COVERAGE,
        aggression=Aggression.NEUTRAL,
    )
    assert result.mirrors_accepted > 0
    assert result.mirror_candidates >= result.mirrors_accepted


def test_mirage_aggression_zero_matches_sabre_swap_count():
    circuit = twolocal_full(4)
    sabre = _route_and_verify(circuit, line_topology(4))
    mirage0 = _route_and_verify(
        circuit,
        line_topology(4),
        router_cls=MirageSwap,
        coverage=COVERAGE,
        aggression=Aggression.NEVER,
    )
    assert mirage0.mirrors_accepted == 0
    assert mirage0.swaps_added == sabre.swaps_added


def test_mirage_reduces_depth_on_twolocal_line():
    """Paper Fig. 8: MIRAGE absorbs all SWAPs of the fully-entangling ansatz."""
    circuit = twolocal_full(4)
    sabre = transpile(circuit, line_topology(4), method="sabre",
                      selection="swaps", layout_trials=4, use_vf2=False, seed=3)
    mirage = transpile(circuit, line_topology(4), method="mirage",
                       selection="depth", layout_trials=4, use_vf2=False, seed=3)
    assert mirage.metrics.depth < sabre.metrics.depth
    assert mirage.swaps_added <= sabre.swaps_added
    assert mirage.mirrors_accepted > 0


def test_mirage_correct_on_random_circuits():
    from repro.circuits import random_two_qubit_block_circuit

    for seed in range(3):
        circuit = random_two_qubit_block_circuit(5, 10, seed=seed)
        _route_and_verify(
            circuit,
            line_topology(5),
            router_cls=MirageSwap,
            coverage=COVERAGE,
            aggression=Aggression.IMPROVE,
        )


# ---------------------------------------------------------------------------
# Aggression policy
# ---------------------------------------------------------------------------


def test_accept_mirror_levels():
    assert not accept_mirror(1.0, 0.5, 0)
    assert accept_mirror(1.0, 0.5, 1)
    assert not accept_mirror(1.0, 1.0, 1)
    assert accept_mirror(1.0, 1.0, 2)
    assert not accept_mirror(1.0, 1.5, 2)
    assert accept_mirror(1.0, 99.0, 3)
    with pytest.raises(ValueError):
        accept_mirror(1.0, 1.0, 7)


def test_aggression_schedule_distribution():
    schedule = aggression_schedule(20)
    counts = {level: schedule.count(level) for level in Aggression}
    assert counts[Aggression.IMPROVE] == 9
    assert counts[Aggression.NEUTRAL] == 9
    assert counts[Aggression.NEVER] == 1
    assert counts[Aggression.ALWAYS] == 1


def test_aggression_schedule_small_budget():
    schedule = aggression_schedule(4)
    assert len(schedule) == 4
    assert set(schedule) <= set(Aggression)


def test_schedule_from_spec_variants():
    assert schedule_from_spec(3, 2) == fixed_schedule(3, 2)
    assert len(schedule_from_spec(5, "mixed")) == 5
    assert schedule_from_spec(4, [1, 3]) == [1, 3, 1, 3]
    with pytest.raises(ValueError):
        schedule_from_spec(3, "bogus")
    with pytest.raises(ValueError):
        schedule_from_spec(3, [])
    with pytest.raises(ValueError):
        aggression_schedule(0)


# ---------------------------------------------------------------------------
# SabreLayout driver and transpile API
# ---------------------------------------------------------------------------


def test_sabre_layout_picks_best_trial():
    circuit = prepare_circuit(qft(5))
    driver = SabreLayout(
        line_topology(5),
        layout_trials=3,
        refinement_rounds=1,
        selection_metric=swap_count_metric,
        seed=2,
    )
    best = driver.run(circuit.to_dag())
    assert best.score == best.routing.swaps_added
    assert best.trial_index in range(3)


def test_depth_metric_factory():
    metric = depth_metric(coverage=COVERAGE)
    circuit = prepare_circuit(ghz(3))
    router = SabreSwap(line_topology(3))
    result = router.run(circuit.to_dag(), Layout.trivial(3, 3), seed=0)
    assert metric(result) > 0


def test_transpile_vf2_short_circuit():
    result = transpile(ghz(4), line_topology(4), method="mirage", seed=1)
    assert result.method == "vf2"
    assert result.swaps_added == 0


def test_transpile_validation_errors():
    with pytest.raises(TranspilerError):
        transpile(ghz(4), line_topology(3), seed=1)
    with pytest.raises(TranspilerError):
        transpile(ghz(3), line_topology(3), method="magic", seed=1)
    with pytest.raises(TranspilerError):
        transpile(ghz(3), line_topology(3), selection="volume", seed=1)


def test_transpile_by_topology_name():
    result = transpile(qft(4), "line", method="mirage", layout_trials=2,
                       use_vf2=False, seed=4)
    assert result.circuit.num_qubits == 4
    assert result.metrics.depth > 0


def test_compare_methods_returns_all_variants():
    results = compare_methods(
        twolocal_full(4), line_topology(4), layout_trials=2, seed=5
    )
    assert set(results) == {"sabre", "mirage-swaps", "mirage-depth"}
    summary = results["mirage-depth"].summary()
    assert summary["method"] == "mirage"
    assert results["mirage-depth"].metrics.depth <= results["sabre"].metrics.depth
