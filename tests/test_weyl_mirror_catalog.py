"""Tests for the mirror transform (paper Eq. 1) and the gate catalog."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import CNOT, ISWAP, SWAP, haar_unitary, pswap
from repro.weyl import (
    B_GATE_COORD,
    CNOT_COORD,
    IDENTITY_COORD,
    ISWAP_COORD,
    PI4,
    SQRT_ISWAP_COORD,
    SWAP_COORD,
    WeylCoordinate,
    basis_gate_coordinate,
    basis_gate_cost,
    basis_gate_matrix,
    coordinate_of_named_gate,
    cphase_coordinate,
    in_weyl_chamber,
    is_self_mirror,
    iswap_fraction_coordinate,
    max_exact_depth,
    mirror_coordinate,
    mirror_unitary,
    mirror_weyl,
    nth_root_iswap_coordinate,
    pswap_coordinate,
    weyl_coordinates,
)


def test_mirror_of_cnot_is_iswap():
    assert np.allclose(mirror_coordinate(CNOT_COORD), ISWAP_COORD.to_tuple(), atol=1e-9)


def test_mirror_of_iswap_is_cnot():
    assert np.allclose(mirror_coordinate(ISWAP_COORD), CNOT_COORD.to_tuple(), atol=1e-9)


def test_mirror_of_identity_is_swap():
    assert np.allclose(mirror_coordinate((0, 0, 0)), SWAP_COORD.to_tuple(), atol=1e-9)


def test_mirror_of_swap_is_identity():
    assert np.allclose(mirror_coordinate(SWAP_COORD), (0, 0, 0), atol=1e-9)


def test_mirror_is_an_involution_on_landmarks():
    for coord in (CNOT_COORD, ISWAP_COORD, SQRT_ISWAP_COORD, B_GATE_COORD):
        twice = mirror_coordinate(mirror_coordinate(coord))
        assert np.allclose(twice, coord.to_tuple(), atol=1e-9)


def test_b_gate_is_self_mirror():
    assert is_self_mirror(B_GATE_COORD)
    assert not is_self_mirror(CNOT_COORD)


def test_mirror_matches_swap_composition_random():
    rng = np.random.default_rng(7)
    for _ in range(20):
        unitary = haar_unitary(4, rng)
        via_formula = mirror_coordinate(weyl_coordinates(unitary))
        via_matrix = weyl_coordinates(SWAP @ unitary)
        assert np.allclose(via_formula, via_matrix, atol=1e-5)


def test_mirror_unitary_is_swap_product():
    unitary = haar_unitary(4, 19)
    assert np.allclose(mirror_unitary(unitary), SWAP @ unitary)


def test_mirror_weyl_returns_weyl_coordinate():
    mirrored = mirror_weyl(CNOT_COORD)
    assert isinstance(mirrored, WeylCoordinate)
    assert mirrored.isclose(ISWAP_COORD)


def test_cphase_mirrors_into_pswap_family():
    # Paper Fig. 6: mirror(CPHASE(theta)) == pSWAP(theta') for every theta.
    for theta in np.linspace(0.1, np.pi, 7):
        mirrored = mirror_coordinate(cphase_coordinate(theta))
        direct = weyl_coordinates(SWAP @ np.diag([1, 1, 1, np.exp(1j * theta)]))
        assert np.allclose(mirrored, direct, atol=1e-6)
        # pSWAP coordinates sit on the (pi/4, pi/4, c) edge of the chamber.
        assert np.isclose(mirrored[0], PI4, atol=1e-7)
        assert np.isclose(mirrored[1], PI4, atol=1e-7)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_mirror_involution_random(seed):
    unitary = haar_unitary(4, seed)
    coord = weyl_coordinates(unitary)
    assert np.allclose(
        mirror_coordinate(mirror_coordinate(coord)), coord, atol=1e-7
    )
    assert in_weyl_chamber(mirror_coordinate(coord), atol=1e-6)


# ---------------------------------------------------------------------------
# Catalog
# ---------------------------------------------------------------------------


def test_named_coordinates():
    assert basis_gate_coordinate("cx").isclose(CNOT_COORD)
    assert basis_gate_coordinate("iswap").isclose(ISWAP_COORD)
    assert basis_gate_coordinate("sqrt_iswap").isclose(SQRT_ISWAP_COORD)
    assert basis_gate_coordinate("iswap_1_3").isclose(nth_root_iswap_coordinate(3))
    assert basis_gate_coordinate("iswap_1_4").isclose(
        WeylCoordinate(PI4 / 4, PI4 / 4, 0.0)
    )


def test_basis_gate_cost_convention():
    assert basis_gate_cost("iswap") == 1.0
    assert basis_gate_cost("sqrt_iswap") == 0.5
    assert basis_gate_cost("iswap_1_3") == pytest.approx(1 / 3)
    assert basis_gate_cost("iswap_1_4") == 0.25
    assert basis_gate_cost("cx") == 1.0
    with pytest.raises(ValueError):
        basis_gate_cost("nope")


def test_max_exact_depth():
    assert max_exact_depth("cx") == 3
    assert max_exact_depth("iswap") == 3
    assert max_exact_depth("sqrt_iswap") == 3
    assert max_exact_depth("iswap_1_3") == 5
    assert max_exact_depth("iswap_1_4") == 6


def test_basis_gate_matrix_consistent_with_coordinate():
    for name in ("cx", "iswap", "sqrt_iswap", "iswap_1_4"):
        matrix = basis_gate_matrix(name)
        coord = basis_gate_coordinate(name)
        assert np.allclose(weyl_coordinates(matrix), coord.to_tuple(), atol=1e-7)


def test_iswap_fraction_validation():
    with pytest.raises(ValueError):
        iswap_fraction_coordinate(1.5)
    with pytest.raises(ValueError):
        nth_root_iswap_coordinate(0)


def test_pswap_coordinate_on_swap_edge():
    coord = pswap_coordinate(0.9)
    assert np.isclose(coord.a, PI4, atol=1e-7)
    assert np.isclose(coord.b, PI4, atol=1e-7)
    assert coord.c > 0


def test_coordinate_of_named_gate_parametrics():
    assert coordinate_of_named_gate("cp", np.pi).isclose(CNOT_COORD)
    assert coordinate_of_named_gate("rzz", np.pi / 2).isclose(CNOT_COORD)
    assert coordinate_of_named_gate("swap").isclose(SWAP_COORD)
    assert coordinate_of_named_gate("xx_plus_yy", np.pi).isclose(ISWAP_COORD)
    assert coordinate_of_named_gate("xy", np.pi / 2).isclose(SQRT_ISWAP_COORD)
    with pytest.raises(ValueError):
        coordinate_of_named_gate("unknown_gate")


def test_identity_coordinate_catalog():
    assert IDENTITY_COORD.is_identity()
    assert coordinate_of_named_gate("id").is_identity()
