"""Tests for the circuit-level batch fan-out engine and shared dispatch.

Covers the three hard guarantees of the batch engine:

* fixed-seed :func:`repro.core.transpile.transpile_many` outputs are
  byte-identical across the sequential (``"trials"``) and circuit-level
  (``"circuits"``) fan-out modes, and across all three executors;
* the chunked shared-payload dispatch pickles the coverage set exactly
  once per batch (the re-pickling regression check);
* the delta-based :class:`repro.core.mirage_pass.MirageSwap` commit is
  byte-identical to the historical copy-layout-and-rescore decision.
"""

import pickle

import pytest

from repro.exceptions import TranspilerError
from repro.circuits.library import ghz, qft, twolocal_full
from repro.core import transpile_many
from repro.core.mirage_pass import MirageSwap
from repro.core.transpile import prepare_circuit
from repro.polytopes import get_coverage_set
from repro.polytopes.coverage import CoverageSet
from repro.transpiler import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    line_topology,
)
from repro.transpiler.layout import Layout
from repro.transpiler.passes import SabreLayout, run_layout_trial, run_trial

COVERAGE = get_coverage_set("sqrt_iswap", num_samples=250, seed=3)


def _fingerprint(result):
    """Byte-level identity of a transpile result, modulo wall-clock."""
    return (
        [(instr.gate.name, instr.qubits) for instr in result.circuit],
        result.initial_layout.virtual_to_physical(),
        result.final_layout.virtual_to_physical(),
        result.swaps_added,
        result.mirrors_accepted,
        result.trial_index,
        round(result.metrics.depth, 9),
    )


def _batch(fanout, executor=None, circuits=None, **kwargs):
    return transpile_many(
        circuits if circuits is not None else [qft(4), ghz(5), twolocal_full(4)],
        line_topology(5),
        coverage=COVERAGE,
        use_vf2=False,
        layout_trials=3,
        seed=7,
        fanout=fanout,
        executor=executor,
        **kwargs,
    )


# ---------------------------------------------------------------------------
# Byte-identical results across fan-out modes and executors
# ---------------------------------------------------------------------------


def test_circuit_fanout_matches_sequential():
    sequential = _batch("trials")
    fanned = _batch("circuits")
    assert sequential.fanout == "trials"
    assert fanned.fanout == "circuits"
    assert [_fingerprint(r) for r in sequential] == [
        _fingerprint(r) for r in fanned
    ]


@pytest.mark.parametrize("make_executor", [
    SerialExecutor,
    lambda: ThreadExecutor(max_workers=2),
    lambda: ProcessExecutor(max_workers=2),
], ids=["serial", "threads", "processes"])
def test_circuit_fanout_identical_across_executors(make_executor):
    reference = _batch("trials")
    with make_executor() as executor:
        fanned = _batch("circuits", executor=executor)
    assert [_fingerprint(r) for r in reference] == [
        _fingerprint(r) for r in fanned
    ]


def test_fanout_auto_picks_circuits_for_real_batches():
    assert _batch("auto").fanout == "circuits"
    single = _batch("auto", circuits=[qft(4)])
    assert single.fanout == "trials"
    # "sequential" is an accepted alias for "trials".
    assert _batch("sequential").fanout == "trials"


def test_fanout_rejects_unknown_mode():
    with pytest.raises(TranspilerError):
        _batch("galaxies")


@pytest.mark.parametrize("knob, value", [
    ("fanout", "galaxies"),
    ("fanout", "TRIALS "),
    ("fanout", 3),
    ("scheduler", "warp"),
    ("scheduler", "streaming"),
    ("scheduler", None),
    ("plan", "remote"),
    ("plan", "exec"),
    ("plan", 1.5),
])
def test_string_knobs_rejected_up_front_with_accepted_values(knob, value):
    """Typos in ``fanout=``/``scheduler=``/``plan=`` fail fast as
    ``ValueError`` naming the accepted modes — before any coverage-set
    build or executor spawn (an empty batch and no coverage set: if
    validation were not first, this would try to build one)."""
    with pytest.raises(ValueError, match="accepted:") as excinfo:
        transpile_many([], line_topology(4), **{knob: value})
    assert f"unknown {knob} mode" in str(excinfo.value)


def test_mode_error_is_both_transpiler_and_value_error():
    """Callers catching either historical type keep working."""
    with pytest.raises(TranspilerError):
        transpile_many([], line_topology(4), coverage=COVERAGE, scheduler="warp")
    with pytest.raises(ValueError):
        transpile_many([], line_topology(4), coverage=COVERAGE, fanout="warp")


def test_explicit_circuit_seeds_match_direct_transpile():
    """``circuit_seeds`` pins each slot to its own seed root: position i
    is byte-identical to ``transpile(seed=circuit_seeds[i])``, which is
    what lets the service tier coalesce requests without changing any
    output bit."""
    from repro.core.transpile import transpile

    seeds = [5, 91, 17]
    circuits = [qft(4), ghz(5), twolocal_full(4)]
    batch = _batch("circuits", circuits=circuits, circuit_seeds=seeds,
                   scheduler="stream")
    direct = [
        transpile(circuit, line_topology(5), coverage=COVERAGE,
                  use_vf2=False, layout_trials=3, seed=seed)
        for circuit, seed in zip(circuits, seeds)
    ]
    assert [_fingerprint(r) for r in batch] == [
        _fingerprint(r) for r in direct
    ]


def test_circuit_seeds_length_mismatch_rejected():
    with pytest.raises(TranspilerError, match="circuit_seeds"):
        _batch("circuits", circuits=[qft(4), ghz(5)], circuit_seeds=[1])


def test_circuit_fanout_handles_vf2_embedded_circuits():
    """Circuits VF2 embeds contribute no trials but keep their slot."""
    circuits = [ghz(4), qft(4), ghz(3)]
    sequential = transpile_many(
        circuits, line_topology(4), coverage=COVERAGE, layout_trials=2,
        seed=5, fanout="trials",
    )
    fanned = transpile_many(
        circuits, line_topology(4), coverage=COVERAGE, layout_trials=2,
        seed=5, fanout="circuits",
    )
    assert [r.method for r in fanned] == ["vf2", "mirage", "vf2"]
    assert [_fingerprint(r) for r in sequential] == [
        _fingerprint(r) for r in fanned
    ]
    assert fanned.dispatch["routed"] == 1
    assert fanned.dispatch["circuits"] == 3


def test_circuit_fanout_empty_batch():
    batch = transpile_many(
        [], line_topology(4), coverage=COVERAGE, seed=1, fanout="circuits"
    )
    assert len(batch) == 0
    assert batch.summary()["circuits"] == 0
    assert batch.stage_seconds() == {}


def test_circuit_fanout_reports_and_provenance():
    fanned = _batch("circuits")
    # Per-circuit reports show the full front pipeline plus route/select.
    names = [rec["name"] for rec in fanned[0].pipeline_report]
    assert names == [
        "clean", "unroll", "reclean", "consolidate", "coupling",
        "coverage", "analyze", "vf2", "plan", "route", "select",
    ]
    assert all(r.trial_seconds is not None and r.trial_seconds > 0
               for r in fanned)
    assert all(r.runtime_seconds > 0 for r in fanned)
    assert fanned.trial_seconds() > 0
    assert len(fanned.circuit_seconds()) == 3
    assert fanned.dispatch["tasks"] == 9  # 3 circuits x 3 layout trials
    assert fanned.summary()["fanout"] == "circuits"


# ---------------------------------------------------------------------------
# Chunked shared-payload dispatch: re-pickling regression checks
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("scheduler", ["stream", "barrier"])
def test_process_fanout_pickles_coverage_once(monkeypatch, scheduler):
    """One batch dispatch must serialise the coverage set exactly once.

    Before the shared-payload dispatch, process-pool trials re-pickled
    the coverage set (inside the router factory / metric) once per chunk
    of every circuit; the barrier engine serialises it once inside the
    pooled spec tuple, the streaming engine once as the session anchor.
    """
    calls = {"count": 0}
    original = CoverageSet.__getstate__

    def counting_getstate(self):
        calls["count"] += 1
        return original(self)

    monkeypatch.setattr(CoverageSet, "__getstate__", counting_getstate)
    with ProcessExecutor(max_workers=2) as executor:
        fanned = _batch("circuits", executor=executor, scheduler=scheduler)
    assert fanned.dispatch["shared_pickles"] == 1
    assert calls["count"] == 1
    assert fanned.dispatch["chunks"] >= 1
    assert fanned.dispatch["tasks"] == 9


def test_trial_refs_are_light():
    """The per-trial records must not drag the DAG or coverage along."""
    driver = SabreLayout(line_topology(5), layout_trials=4, seed=2)
    refs = driver.trial_refs()
    payload = pickle.dumps(refs, protocol=pickle.HIGHEST_PROTOCOL)
    # A SeedSequence plus an int pickles to well under a kilobyte each.
    assert len(payload) < 1024 * len(refs)
    assert b"CoverageSet" not in payload
    assert b"DAGCircuit" not in payload


def test_map_shared_preserves_order_and_results():
    tasks = list(range(23))
    expected = [x * 3 for x in tasks]
    serial = SerialExecutor()
    assert serial.map_shared(lambda s, x: x * s, 3, tasks) == expected
    with ThreadExecutor(max_workers=3) as threads:
        assert threads.map_shared(lambda s, x: x * s, 3, tasks) == expected
    with ProcessExecutor(max_workers=2) as processes:
        assert processes.map_shared(_times, 3, tasks) == expected
        stats = processes.dispatch_stats
        assert stats["shared_pickles"] == 1
        assert stats["tasks"] == 23
        assert stats["chunks"] >= 2


def _times(shared, task):
    return task * shared


def test_map_shared_single_task_stays_inline():
    with ProcessExecutor(max_workers=2) as processes:
        assert processes.map_shared(_times, 5, [7]) == [35]
        assert processes.dispatch_stats["shared_pickles"] == 0


def test_run_trial_matches_legacy_task_form():
    driver = SabreLayout(line_topology(4), layout_trials=2, seed=8)
    dag = prepare_circuit(qft(4)).to_dag()
    spec = driver.trial_spec(dag)
    refs = driver.trial_refs()
    tasks = driver.trial_tasks(dag)
    for ref, task in zip(refs, tasks):
        split = run_trial(spec, ref)
        legacy = run_layout_trial(task)
        assert split.score == legacy.score
        assert split.trial_index == legacy.trial_index


# ---------------------------------------------------------------------------
# Delta MirageSwap commit: digest parity with copy-and-rescore
# ---------------------------------------------------------------------------


class _ReferenceMirage(MirageSwap):
    """The historical copy-layout-and-rescore mirror decision."""

    def _mirror_routing_costs(self, lookahead, layout, physical):
        current = self.routing_heuristic([], lookahead, layout)
        trial_layout = layout.copy()
        trial_layout.swap_physical(*physical)
        mirrored = self.routing_heuristic([], lookahead, trial_layout)
        return current, mirrored


def _routing_digest(result):
    return [
        (node.gate.name, tuple(node.qubits))
        for node in result.dag.topological_nodes()
    ]


@pytest.mark.parametrize("aggression", [1, 2, 3])
@pytest.mark.parametrize("circuit", [qft(6), twolocal_full(5)],
                         ids=["qft6", "twolocal5"])
def test_delta_mirror_commit_matches_copy_rescore(circuit, aggression):
    dag = prepare_circuit(circuit).to_dag()
    coupling = line_topology(dag.num_qubits)
    for seed in (1, 5):
        layout = Layout.random(dag.num_qubits, coupling.num_qubits, seed=seed)
        fast = MirageSwap(coupling, COVERAGE, aggression=aggression).run(
            dag, layout, seed=seed
        )
        reference = _ReferenceMirage(
            coupling, COVERAGE, aggression=aggression
        ).run(dag, layout, seed=seed)
        assert _routing_digest(fast) == _routing_digest(reference)
        assert fast.mirrors_accepted == reference.mirrors_accepted
        assert fast.final_layout == reference.final_layout
