"""Tests for the circuit IR: gates, QuantumCircuit, DAG, QASM export."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CircuitError, DAGError, QASMError
from repro.circuits import (
    DAGCircuit,
    Gate,
    QuantumCircuit,
    UnitaryGate,
    gate_names,
    random_two_qubit_block_circuit,
    standard_gate,
    to_qasm,
)
from repro.linalg import (
    CNOT,
    equal_up_to_global_phase,
    haar_unitary,
    is_unitary,
)


# ---------------------------------------------------------------------------
# Gates
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", gate_names())
def test_every_standard_gate_has_unitary_matrix(name):
    needs_params = {
        "rx": (0.3,), "ry": (0.3,), "rz": (0.3,), "p": (0.3,), "cp": (0.3,),
        "crx": (0.3,), "cry": (0.3,), "crz": (0.3,), "rxx": (0.3,),
        "ryy": (0.3,), "rzz": (0.3,), "u": (0.1, 0.2, 0.3), "u3": (0.1, 0.2, 0.3),
        "iswap_power": (0.5,), "pswap": (0.4,), "xx_plus_yy": (0.7,),
    }
    gate = standard_gate(name, *needs_params.get(name, ()))
    assert is_unitary(gate.matrix())
    assert gate.num_qubits in (1, 2, 3)


def test_standard_gate_validation():
    with pytest.raises(CircuitError):
        standard_gate("nonexistent")
    with pytest.raises(CircuitError):
        standard_gate("rx")  # missing parameter
    with pytest.raises(CircuitError):
        standard_gate("x", 0.1)  # spurious parameter
    with pytest.raises(CircuitError):
        standard_gate("barrier")


def test_gate_inverse_roundtrip():
    for name, params in [("s", ()), ("t", ()), ("rx", (0.7,)), ("cp", (0.3,)),
                         ("u", (0.1, 0.2, 0.3)), ("iswap", ()), ("siswap", ())]:
        gate = standard_gate(name, *params)
        product = gate.inverse().matrix() @ gate.matrix()
        assert equal_up_to_global_phase(product, np.eye(2**gate.num_qubits))


def test_directive_gate_has_no_matrix():
    barrier = Gate("barrier", 2)
    assert barrier.is_directive
    with pytest.raises(CircuitError):
        barrier.matrix()
    with pytest.raises(CircuitError):
        barrier.inverse()


def test_unitary_gate_checks_and_annotations():
    gate = UnitaryGate(CNOT)
    assert gate.num_qubits == 2
    assert np.allclose(gate.matrix(), CNOT)
    with pytest.raises(CircuitError):
        UnitaryGate(np.ones((4, 4)))
    with pytest.raises(CircuitError):
        UnitaryGate(np.ones((3, 3)))
    annotated = gate.with_coordinate((0.1, 0.0, 0.0))
    assert annotated.coordinate == (0.1, 0.0, 0.0)
    assert np.allclose(gate.inverse().matrix(), CNOT.conj().T)


def test_unitary_gate_skip_check_allows_fast_path():
    # check=False must not validate (mirrors the paper's hot-path shortcut).
    gate = UnitaryGate(np.ones((4, 4)), check=False)
    assert gate.num_qubits == 2


# ---------------------------------------------------------------------------
# QuantumCircuit
# ---------------------------------------------------------------------------


def test_circuit_builders_and_counts():
    qc = QuantumCircuit(3)
    qc.h(0).cx(0, 1).rz(0.3, 1).cp(0.2, 1, 2).swap(0, 2).ccx(0, 1, 2)
    assert len(qc) == 6
    assert qc.count_ops()["cx"] == 1
    assert qc.num_two_qubit_gates() == 3
    assert qc.depth() == 6
    assert qc.active_qubits() == {0, 1, 2}


def test_circuit_qubit_validation():
    qc = QuantumCircuit(2)
    with pytest.raises(CircuitError):
        qc.x(2)
    with pytest.raises(CircuitError):
        qc.cx(0, 0)
    with pytest.raises(CircuitError):
        QuantumCircuit(0)


def test_circuit_depth_two_qubit_only():
    qc = QuantumCircuit(2)
    qc.h(0).h(1).cx(0, 1).h(0).cx(0, 1)
    assert qc.depth(two_qubit_only=True) == 2


def test_circuit_copy_is_independent():
    qc = QuantumCircuit(2)
    qc.h(0)
    other = qc.copy()
    other.x(1)
    assert len(qc) == 1
    assert len(other) == 2


def test_circuit_inverse_is_inverse():
    qc = QuantumCircuit(2)
    qc.h(0).cx(0, 1).t(1).rz(0.4, 0)
    product = qc.inverse().to_matrix() @ qc.to_matrix()
    assert equal_up_to_global_phase(product, np.eye(4))


def test_circuit_compose_and_remap():
    inner = QuantumCircuit(2)
    inner.cx(0, 1)
    outer = QuantumCircuit(3)
    combined = outer.compose(inner, qubits=[2, 0])
    assert combined[0].qubits == (2, 0)
    remapped = combined.remap([1, 2, 0])
    assert remapped[0].qubits == (0, 1)


def test_compose_rejects_narrow_mapping():
    inner = QuantumCircuit(2)
    inner.cx(0, 1)
    with pytest.raises(CircuitError):
        QuantumCircuit(3).compose(inner, qubits=[0])


def test_statevector_ghz():
    qc = QuantumCircuit(3)
    qc.h(0).cx(0, 1).cx(1, 2)
    state = qc.statevector()
    assert np.isclose(abs(state[0]) ** 2, 0.5)
    assert np.isclose(abs(state[7]) ** 2, 0.5)


def test_statevector_initial_state_validation():
    qc = QuantumCircuit(2)
    with pytest.raises(CircuitError):
        qc.statevector(initial=np.zeros(3))


def test_to_matrix_limits_width():
    qc = QuantumCircuit(13)
    with pytest.raises(CircuitError):
        qc.to_matrix()


def test_measure_and_barrier_are_ignored_by_simulation():
    qc = QuantumCircuit(2)
    qc.h(0).barrier().cx(0, 1).measure_all()
    bare = QuantumCircuit(2)
    bare.h(0).cx(0, 1)
    assert np.allclose(qc.statevector(), bare.statevector())
    assert len(qc.without_directives()) == 2


def test_random_block_circuit():
    qc = random_two_qubit_block_circuit(5, 8, seed=3)
    assert qc.num_two_qubit_gates() == 8
    assert all(len(instr.qubits) == 2 for instr in qc)


# ---------------------------------------------------------------------------
# DAG
# ---------------------------------------------------------------------------


def test_dag_structure_and_front_layer():
    qc = QuantumCircuit(3)
    qc.h(0).cx(0, 1).cx(1, 2).x(2)
    dag = qc.to_dag()
    assert len(dag) == 4
    front = dag.front_layer()
    assert [node.gate.name for node in front] == ["h"]
    names = [node.gate.name for node in dag.topological_nodes()]
    assert names == ["h", "cx", "cx", "x"]


def test_dag_successors_predecessors():
    qc = QuantumCircuit(2)
    qc.h(0).cx(0, 1).x(1)
    dag = qc.to_dag()
    nodes = list(dag.topological_nodes())
    assert [n.gate.name for n in dag.successors(nodes[0])] == ["cx"]
    assert [n.gate.name for n in dag.predecessors(nodes[2])] == ["cx"]


def test_dag_longest_path_weighted():
    qc = QuantumCircuit(2)
    qc.h(0).cx(0, 1).h(1)
    dag = qc.to_dag()
    assert dag.depth() == 3
    two_qubit_only = dag.longest_path_length(
        lambda node: 1.0 if node.is_two_qubit else 0.0
    )
    assert two_qubit_only == 1.0


def test_dag_roundtrip_preserves_unitary():
    qc = random_two_qubit_block_circuit(4, 6, seed=1)
    back = qc.to_dag().to_circuit()
    assert equal_up_to_global_phase(qc.to_matrix(), back.to_matrix())


def test_dag_add_node_validation():
    dag = DAGCircuit(2)
    with pytest.raises(DAGError):
        dag.add_node(Gate("x", 1), [5])


def test_dag_copy_independent():
    qc = QuantumCircuit(2)
    qc.cx(0, 1)
    dag = qc.to_dag()
    clone = dag.copy()
    clone.add_node(Gate("x", 1), [0])
    assert len(dag) == 1
    assert len(clone) == 2


def test_dag_count_ops():
    qc = QuantumCircuit(2)
    qc.cx(0, 1).cx(0, 1).h(0)
    assert qc.to_dag().count_ops() == {"cx": 2, "h": 1}


# ---------------------------------------------------------------------------
# QASM
# ---------------------------------------------------------------------------


def test_qasm_export_basic():
    qc = QuantumCircuit(2)
    qc.h(0).cx(0, 1).rz(0.25, 1).barrier().measure_all()
    text = to_qasm(qc)
    assert "OPENQASM 2.0;" in text
    assert "cx q[0], q[1];" in text
    assert "measure q[0] -> c[0];" in text


def test_qasm_rejects_raw_unitary_blocks():
    qc = QuantumCircuit(2)
    qc.unitary(haar_unitary(4, 1), [0, 1])
    with pytest.raises(QASMError):
        to_qasm(qc)


def test_qasm_siswap_emitted_as_xy_rotations():
    qc = QuantumCircuit(2)
    qc.siswap(0, 1)
    text = to_qasm(qc)
    assert "rxx(-pi/4)" in text and "ryy(-pi/4)" in text


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=5), st.integers(min_value=1, max_value=8),
       st.integers(min_value=0, max_value=1000))
def test_property_random_circuit_dag_depth_consistency(num_qubits, blocks, seed):
    qc = random_two_qubit_block_circuit(num_qubits, blocks, seed=seed)
    dag = qc.to_dag()
    assert dag.depth() == qc.depth()
    assert len(dag) == len(qc)
