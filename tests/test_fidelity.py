"""Tests for the error model and the Algorithm-1 Monte Carlo."""

import numpy as np
import pytest

from repro.fidelity import (
    ErrorModel,
    MonteCarloResult,
    approximate_gate_costs,
    relative_infidelity_reduction,
    strategy_comparison,
)
from repro.polytopes import build_coverage_set
from repro.weyl.haar import cached_haar_samples


@pytest.fixture(scope="module")
def coverage_pair():
    exact = build_coverage_set("sqrt_iswap", num_samples=250, seed=3)
    mirrored = build_coverage_set("sqrt_iswap", num_samples=250, seed=3, mirror=True)
    return exact, mirrored


@pytest.fixture(scope="module")
def samples():
    return cached_haar_samples(200, 5)


def test_error_model_calibration():
    model = ErrorModel()
    assert model.gate_fidelity(1.0) == pytest.approx(0.99)
    assert model.gate_fidelity(0.0) == pytest.approx(1.0)
    assert model.gate_fidelity(2.0) == pytest.approx(0.9801)
    assert model.infidelity(1.0) == pytest.approx(0.01)
    assert model.decay_rate == pytest.approx(-np.log(0.99))


def test_error_model_combined_fidelity():
    model = ErrorModel()
    assert model.combined_fidelity(1.0, 0.95) == pytest.approx(0.99 * 0.95)


def test_relative_infidelity_reduction():
    assert relative_infidelity_reduction(0.99, 0.995) == pytest.approx(0.5)
    assert relative_infidelity_reduction(1.0, 0.9) == 0.0


def test_exact_monte_carlo_matches_haar_score(coverage_pair, samples):
    exact, _ = coverage_pair
    result = approximate_gate_costs(
        exact, samples=samples, allow_approximation=False
    )
    assert isinstance(result, MonteCarloResult)
    assert result.approximations_accepted == 0
    assert 1.0 <= result.haar_score <= 1.5
    assert result.average_fidelity == pytest.approx(
        float(np.mean(0.99 ** result.costs)), abs=1e-12
    )


def test_approximation_never_hurts(coverage_pair, samples):
    exact, _ = coverage_pair
    without = approximate_gate_costs(
        exact, samples=samples, allow_approximation=False
    )
    with_approx = approximate_gate_costs(
        exact, samples=samples, allow_approximation=True
    )
    assert with_approx.haar_score <= without.haar_score + 1e-12
    assert with_approx.average_fidelity >= without.average_fidelity - 1e-12


def test_mirrors_improve_haar_score(coverage_pair, samples):
    exact, mirrored = coverage_pair
    exact_result = approximate_gate_costs(
        exact, samples=samples, allow_approximation=False
    )
    mirror_result = approximate_gate_costs(
        mirrored, samples=samples, allow_approximation=False
    )
    assert mirror_result.haar_score <= exact_result.haar_score
    assert mirror_result.average_fidelity >= exact_result.average_fidelity


def test_running_mean_converges_to_score(coverage_pair, samples):
    exact, _ = coverage_pair
    result = approximate_gate_costs(
        exact, samples=samples, allow_approximation=False
    )
    trace = result.running_mean()
    assert len(trace) == len(samples)
    assert trace[-1] == pytest.approx(result.haar_score)


def test_strategy_comparison_ordering(coverage_pair):
    exact, mirrored = coverage_pair
    strategies = strategy_comparison(exact, mirrored, num_samples=150, seed=5)
    assert set(strategies) == {
        "exact",
        "approximate",
        "exact+mirrors",
        "approximate+mirrors",
    }
    # Combining mirrors and approximation is the best strategy (paper Fig. 5).
    assert (
        strategies["approximate+mirrors"].haar_score
        <= strategies["exact"].haar_score
    )
