"""Tests for the shared-memory trial transport and streaming scheduler.

Covers the transport guarantees introduced with the zero-copy dispatch
layer:

* :meth:`ProcessExecutor.map_shared` publishes the payload through one
  shared-memory segment and ships O(1) bytes per chunk; with
  ``MIRAGE_SHM_DISABLE=1`` (or without POSIX shm) it degrades to the
  blob-per-chunk path with identical results;
* segments never leak — not after a clean dispatch, not after a worker
  exception mid-batch, not after an abandoned streaming session;
* the streaming overlap scheduler of
  :func:`repro.core.transpile.transpile_many` is byte-identical to the
  barrier scheduler (and to sequential fan-out) on every executor, and
  falls back to the barrier engine when the transport is unavailable;
* anchored streaming payloads serialise the batch's coverage set exactly
  once.
"""

import glob
import os
import pickle

import pytest

from repro.exceptions import TranspilerError
from repro.circuits.library import ghz, qft, twolocal_full
from repro.core import transpile_many
from repro.polytopes import get_coverage_set
from repro.polytopes.coverage import CoverageSet
from repro.transpiler import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    line_topology,
)
from repro.transpiler.executors import (
    SHM_SEGMENT_PREFIX,
    PayloadHandle,
    _publish_payload,
    _unlink_segment,
    shm_transport_enabled,
)

COVERAGE = get_coverage_set("sqrt_iswap", num_samples=250, seed=3)

#: An O(1) per-chunk transport budget: segment name + digest + slack.
#: Any full payload (coverage set + DAGs) is megabytes, so an accidental
#: regression to blob shipping trips this immediately.
SHM_CHUNK_BYTE_BUDGET = 256

needs_shm = pytest.mark.skipif(
    not shm_transport_enabled(),
    reason="POSIX shared memory unavailable on this platform",
)


def _own_segments() -> list[str]:
    """Shared-memory segments created by this process and still linked."""
    return glob.glob(f"/dev/shm/{SHM_SEGMENT_PREFIX}{os.getpid()}_*")


def _times(shared, task):
    return task * shared


def _explode(shared, task):
    if task == shared:
        raise ValueError(f"task {task} exploded")
    return task


def _fingerprint(result):
    """Byte-level identity of a transpile result, modulo wall-clock."""
    return (
        [(instr.gate.name, instr.qubits) for instr in result.circuit],
        result.initial_layout.virtual_to_physical(),
        result.final_layout.virtual_to_physical(),
        result.swaps_added,
        result.mirrors_accepted,
        result.trial_index,
        round(result.metrics.depth, 9),
    )


def _batch(fanout, scheduler="auto", executor=None, **kwargs):
    return transpile_many(
        [qft(4), ghz(5), twolocal_full(4)],
        line_topology(5),
        coverage=COVERAGE,
        use_vf2=False,
        layout_trials=3,
        seed=7,
        fanout=fanout,
        scheduler=scheduler,
        executor=executor,
        **kwargs,
    )


# ---------------------------------------------------------------------------
# map_shared over shared memory: O(1) transport, blob fallback
# ---------------------------------------------------------------------------


@needs_shm
def test_map_shared_uses_shm_and_ships_constant_bytes():
    with ProcessExecutor(max_workers=2) as executor:
        results = executor.map_shared(_times, 3, list(range(23)))
        stats = executor.dispatch_stats
    assert results == [task * 3 for task in range(23)]
    assert stats["shared_pickles"] == 1
    assert stats["shm_segments"] == 1
    assert stats["chunks"] >= 2
    assert stats["bytes_shipped"] <= SHM_CHUNK_BYTE_BUDGET * stats["chunks"]
    assert _own_segments() == []


@needs_shm
def test_map_shared_shm_transport_is_payload_size_independent():
    """Per-chunk transport stays O(1) even for a megabyte payload."""
    payload = b"x" * (1 << 20)
    with ProcessExecutor(max_workers=2) as executor:
        results = executor.map_shared(_len_of, payload, list(range(16)))
        stats = executor.dispatch_stats
    assert results == [len(payload)] * 16
    assert stats["bytes_shipped"] <= SHM_CHUNK_BYTE_BUDGET * stats["chunks"]
    assert _own_segments() == []


def _len_of(shared, task):
    return len(shared)


def test_map_shared_blob_fallback_when_disabled(monkeypatch):
    monkeypatch.setenv("MIRAGE_SHM_DISABLE", "1")
    assert not shm_transport_enabled()
    with ProcessExecutor(max_workers=2) as executor:
        results = executor.map_shared(_times, 3, list(range(23)))
        stats = executor.dispatch_stats
    assert results == [task * 3 for task in range(23)]
    assert stats["shared_pickles"] == 1
    assert stats["shm_segments"] == 0
    # Blob mode ships the payload bytes with every chunk.
    payload_size = len(pickle.dumps(3, protocol=pickle.HIGHEST_PROTOCOL))
    assert stats["bytes_shipped"] >= payload_size * stats["chunks"]
    assert _own_segments() == []


def test_serial_and_thread_map_shared_never_touch_transport():
    serial = SerialExecutor()
    assert serial.map_shared(_times, 3, [1, 2, 3]) == [3, 6, 9]
    with ThreadExecutor(max_workers=2) as threads:
        assert threads.map_shared(_times, 3, [1, 2, 3]) == [3, 6, 9]
        assert threads.dispatch_stats["shm_segments"] == 0
        assert threads.dispatch_stats["bytes_shipped"] == 0
    assert serial.dispatch_stats["shm_segments"] == 0


@needs_shm
def test_payload_handle_roundtrip_and_shipped_bytes():
    handle = _publish_payload(b"hello payload")
    try:
        assert handle.segment is not None
        assert handle.shipped_bytes <= SHM_CHUNK_BYTE_BUDGET
        clone = pickle.loads(pickle.dumps(handle))
        assert clone.fetch() == b"hello payload"
    finally:
        _unlink_segment(handle.segment)
    assert _own_segments() == []


def test_payload_handle_blob_mode(monkeypatch):
    monkeypatch.setenv("MIRAGE_SHM_DISABLE", "1")
    handle = _publish_payload(b"hello payload")
    assert handle.segment is None
    assert handle.fetch() == b"hello payload"
    assert isinstance(handle, PayloadHandle)


# ---------------------------------------------------------------------------
# Cleanup guarantees
# ---------------------------------------------------------------------------


@needs_shm
def test_no_segment_leak_after_worker_exception():
    """A worker raising mid-batch must not leave a segment behind."""
    with ProcessExecutor(max_workers=2) as executor:
        with pytest.raises(ValueError, match="exploded"):
            executor.map_shared(_explode, 7, list(range(16)))
    assert _own_segments() == []


@needs_shm
def test_no_segment_leak_after_session_worker_exception():
    """A streaming session closed after a worker error unlinks segments."""
    with ProcessExecutor(max_workers=2) as executor:
        session = executor.open_dispatch(_explode, anchors=(object(),))
        assert session is not None
        slot = session.add_payload(7)
        futures = session.submit(slot, list(range(12)))
        with pytest.raises(ValueError, match="exploded"):
            for future in futures:
                future.result()
        session.close()
    assert _own_segments() == []


@needs_shm
def test_session_close_is_idempotent_and_unlinks():
    with ProcessExecutor(max_workers=2) as executor:
        session = executor.open_dispatch(_times)
        slot = session.add_payload(2)
        futures = session.submit(slot, [1, 2, 3])
        assert [r for f in futures for r in f.result()] == [2, 4, 6]
        assert _own_segments() != []  # payload segment live while open
        session.close()
        session.close()
    assert _own_segments() == []


@needs_shm
def test_session_release_unlinks_drained_payload_segments():
    """Streamed payload segments are unlinked per circuit, not at close.

    A long batch would otherwise accumulate one segment per circuit in
    ``/dev/shm`` until the session closed, defeating the bounded
    in-flight window.
    """
    with ProcessExecutor(max_workers=2) as executor:
        session = executor.open_dispatch(_times, anchors=(object(),))
        before = len(_own_segments())  # anchor segment only
        slot = session.add_payload(3)
        assert len(_own_segments()) == before + 1
        futures = session.submit(slot, [1, 2, 3])
        assert [r for f in futures for r in f.result()] == [3, 6, 9]
        session.release(slot)
        session.release(slot)  # idempotent
        assert len(_own_segments()) == before
        session.close()
    assert _own_segments() == []


@needs_shm
def test_atexit_guard_unlinks_created_segments():
    """The parent-side atexit guard sweeps segments a crash left behind."""
    from repro.transpiler.executors import _cleanup_segments

    handle = _publish_payload(b"orphan")
    assert _own_segments() != []
    _cleanup_segments()
    assert _own_segments() == []
    assert handle.segment is not None


# ---------------------------------------------------------------------------
# Streaming scheduler: byte identity and fallback parity
# ---------------------------------------------------------------------------


def test_stream_matches_barrier_and_sequential_serial():
    reference = [_fingerprint(r) for r in _batch("trials")]
    stream = _batch("circuits", "stream")
    barrier = _batch("circuits", "barrier")
    assert [_fingerprint(r) for r in stream] == reference
    assert [_fingerprint(r) for r in barrier] == reference
    assert stream.dispatch["scheduler"] == "stream"
    assert barrier.dispatch["scheduler"] == "barrier"
    assert barrier.dispatch["overlap_seconds"] == 0.0


@pytest.mark.parametrize("make_executor", [
    SerialExecutor,
    lambda: ThreadExecutor(max_workers=2),
    lambda: ProcessExecutor(max_workers=2),
], ids=["serial", "threads", "processes"])
def test_stream_identical_across_executors(make_executor):
    reference = [_fingerprint(r) for r in _batch("trials")]
    with make_executor() as executor:
        stream = _batch("circuits", "stream", executor)
    assert [_fingerprint(r) for r in stream] == reference
    assert _own_segments() == []


def test_stream_falls_back_to_barrier_without_shm(monkeypatch):
    reference = [_fingerprint(r) for r in _batch("trials")]
    monkeypatch.setenv("MIRAGE_SHM_DISABLE", "1")
    with ProcessExecutor(max_workers=2) as executor:
        fanned = _batch("circuits", "stream", executor)
    assert [_fingerprint(r) for r in fanned] == reference
    assert fanned.dispatch["scheduler"] == "barrier"
    assert fanned.dispatch["shm_segments"] == 0


@needs_shm
def test_stream_process_dispatch_ships_constant_bytes():
    with ProcessExecutor(max_workers=2) as executor:
        fanned = _batch("circuits", "stream", executor)
    dispatch = fanned.dispatch
    assert dispatch["scheduler"] == "stream"
    assert dispatch["shm_segments"] >= 1
    assert dispatch["chunks"] >= 1
    # O(1) transport per chunk: two handles (anchor + spec), never blobs.
    assert dispatch["bytes_shipped"] <= (
        2 * SHM_CHUNK_BYTE_BUDGET * dispatch["chunks"]
    )
    assert _own_segments() == []


@needs_shm
def test_stream_pickles_coverage_once(monkeypatch):
    """The anchored streaming dispatch serialises the coverage set once."""
    calls = {"count": 0}
    original = CoverageSet.__getstate__

    def counting_getstate(self):
        calls["count"] += 1
        return original(self)

    monkeypatch.setattr(CoverageSet, "__getstate__", counting_getstate)
    with ProcessExecutor(max_workers=2) as executor:
        fanned = _batch("circuits", "stream", executor)
    assert fanned.dispatch["shared_pickles"] == 1
    assert calls["count"] == 1
    assert fanned.dispatch["payload_pickles"] == 3  # one spec per circuit


def test_stream_handles_vf2_embedded_circuits():
    circuits = [ghz(4), qft(4), ghz(3)]
    kwargs = dict(coverage=COVERAGE, layout_trials=2, seed=5)
    sequential = transpile_many(
        circuits, line_topology(4), fanout="trials", **kwargs
    )
    stream = transpile_many(
        circuits, line_topology(4), fanout="circuits", scheduler="stream",
        **kwargs,
    )
    assert [r.method for r in stream] == ["vf2", "mirage", "vf2"]
    assert [_fingerprint(r) for r in sequential] == [
        _fingerprint(r) for r in stream
    ]
    assert stream.dispatch["routed"] == 1
    assert stream.dispatch["circuits"] == 3


def test_stream_reports_overlap_provenance():
    fanned = _batch("circuits", "stream")
    assert "overlap_seconds" in fanned.dispatch
    assert fanned.dispatch["overlap_seconds"] >= 0.0
    # Streamed circuits keep the full per-circuit pipeline reports.
    names = [record["name"] for record in fanned[0].pipeline_report]
    assert names == [
        "clean", "unroll", "reclean", "consolidate", "coupling",
        "coverage", "analyze", "vf2", "plan", "route", "select",
    ]


def test_scheduler_rejects_unknown_mode():
    with pytest.raises(TranspilerError):
        _batch("circuits", "teleport")
