"""Tests for Weyl-coordinate extraction, canonicalisation and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import WeylError
from repro.linalg import (
    CNOT,
    CZ,
    ISWAP,
    SQRT_ISWAP,
    SWAP,
    cphase,
    haar_unitary,
    iswap_power,
    random_local_pair,
)
from repro.weyl import (
    PI4,
    PI8,
    WeylCoordinate,
    canonical_gate,
    canonical_trace_fidelity,
    canonicalize_coordinate,
    chamber_volume,
    coordinate_distance,
    coordinates_close,
    in_weyl_chamber,
    locally_equivalent,
    makhlin_from_coordinate,
    makhlin_invariants,
    weyl_coordinates,
)

LANDMARKS = [
    (np.eye(4), (0.0, 0.0, 0.0)),
    (CNOT, (PI4, 0.0, 0.0)),
    (CZ, (PI4, 0.0, 0.0)),
    (ISWAP, (PI4, PI4, 0.0)),
    (SWAP, (PI4, PI4, PI4)),
    (SQRT_ISWAP, (PI8, PI8, 0.0)),
    (iswap_power(0.25), (PI8 / 2, PI8 / 2, 0.0)),
    (cphase(np.pi / 3), (np.pi / 12, 0.0, 0.0)),
]


@pytest.mark.parametrize("unitary, expected", LANDMARKS)
def test_landmark_coordinates(unitary, expected):
    assert np.allclose(weyl_coordinates(unitary), expected, atol=1e-7)


def test_weyl_rejects_wrong_shape():
    with pytest.raises(WeylError):
        weyl_coordinates(np.eye(2))


def test_weyl_rejects_non_unitary():
    with pytest.raises(WeylError):
        weyl_coordinates(np.ones((4, 4)))


def test_coordinates_invariant_under_local_gates():
    rng = np.random.default_rng(5)
    for _ in range(10):
        unitary = haar_unitary(4, rng)
        local_before = random_local_pair(rng)
        local_after = random_local_pair(rng)
        original = weyl_coordinates(unitary)
        dressed = weyl_coordinates(local_after @ unitary @ local_before)
        assert np.allclose(original, dressed, atol=1e-6)


def test_coordinates_invariant_under_global_phase():
    unitary = haar_unitary(4, 17)
    original = weyl_coordinates(unitary)
    rotated = weyl_coordinates(np.exp(1j * 0.7) * unitary)
    assert np.allclose(original, rotated, atol=1e-7)


def test_canonical_gate_roundtrip_interior_points():
    rng = np.random.default_rng(11)
    for _ in range(25):
        a = rng.uniform(0, PI4)
        b = rng.uniform(0, a)
        c = rng.uniform(0, b)
        recovered = weyl_coordinates(canonical_gate(a, b, c))
        assert np.allclose(recovered, (a, b, c), atol=1e-6)


def test_canonical_gate_roundtrip_high_a_region():
    rng = np.random.default_rng(13)
    for _ in range(25):
        a = rng.uniform(PI4, np.pi / 2)
        b = rng.uniform(0, np.pi / 2 - a)
        c = rng.uniform(0, b)
        recovered = weyl_coordinates(canonical_gate(a, b, c))
        assert np.allclose(recovered, (a, b, c), atol=1e-6)


def test_chamber_membership_of_landmarks():
    assert in_weyl_chamber((0, 0, 0))
    assert in_weyl_chamber((PI4, PI4, PI4))
    assert in_weyl_chamber((PI4, PI8, 0))
    assert not in_weyl_chamber((0.1, 0.2, 0.0))  # unsorted
    assert not in_weyl_chamber((PI4 + 0.2, 0.0, 0.0))  # base identification
    assert not in_weyl_chamber((0.3, 0.2, -0.1))


def test_canonicalize_base_plane_identification():
    # (a, b, 0) with a > pi/4 folds back to (pi/2 - a, b, 0) resorted.
    point = canonicalize_coordinate((0.6 * math.pi / 2, 0.1, 0.0))
    assert in_weyl_chamber(point)
    assert point[0] <= PI4 + 1e-9


def test_canonicalize_handles_negative_inputs():
    point = canonicalize_coordinate((-0.3, 0.2, -0.1))
    assert in_weyl_chamber(point)


def test_canonicalize_is_idempotent():
    rng = np.random.default_rng(3)
    for _ in range(50):
        raw = rng.uniform(-2, 2, size=3)
        once = canonicalize_coordinate(raw)
        twice = canonicalize_coordinate(once)
        assert np.allclose(once, twice, atol=1e-9)


def test_coordinates_close_accepts_equivalent_raw_triples():
    assert coordinates_close((PI4, 0, 0), (PI4 + np.pi / 2, 0, 0))
    assert not coordinates_close((PI4, 0, 0), (PI4, PI4, 0))


def test_chamber_volume_value():
    assert np.isclose(chamber_volume(), (np.pi / 2) ** 3 / 24.0)


def test_weyl_coordinate_dataclass_validation():
    with pytest.raises(WeylError):
        WeylCoordinate(0.1, 0.2, 0.3)  # unsorted -> outside chamber


def test_weyl_coordinate_helpers():
    coord = WeylCoordinate(PI4, PI4, PI4)
    assert coord.is_swap()
    assert not coord.is_identity()
    assert WeylCoordinate(0, 0, 0).is_identity()
    assert coord.rounded(4) == (round(PI4, 4),) * 3
    assert len(list(iter(coord))) == 3


def test_weyl_coordinate_from_unitary_matches_function():
    unitary = haar_unitary(4, 23)
    via_class = WeylCoordinate.from_unitary(unitary)
    via_function = weyl_coordinates(unitary)
    assert np.allclose(via_class.to_tuple(), via_function, atol=1e-9)


def test_makhlin_invariants_known_values():
    assert np.allclose(makhlin_invariants(np.eye(4)), (1, 0, 3), atol=1e-9)
    assert np.allclose(makhlin_invariants(CNOT), (0, 0, 1), atol=1e-9)
    assert np.allclose(makhlin_invariants(ISWAP), (0, 0, -1), atol=1e-9)
    assert np.allclose(makhlin_invariants(SWAP), (-1, 0, -3), atol=1e-9)


def test_makhlin_from_coordinate_matches_matrix_form():
    rng = np.random.default_rng(31)
    for _ in range(20):
        unitary = haar_unitary(4, rng)
        coord = weyl_coordinates(unitary)
        assert np.allclose(
            makhlin_invariants(unitary),
            makhlin_from_coordinate(coord),
            atol=1e-6,
        )


def test_locally_equivalent():
    assert locally_equivalent(CNOT, CZ)
    assert not locally_equivalent(CNOT, ISWAP)


def test_coordinate_distance_and_trace_fidelity():
    assert coordinate_distance((0, 0, 0), (0, 0, 0)) == 0
    assert coordinate_distance((PI4, 0, 0), (0, 0, 0)) == pytest.approx(PI4)
    assert canonical_trace_fidelity((0.3, 0.2, 0.1), (0.3, 0.2, 0.1)) == pytest.approx(1.0)
    # CAN trace overlap between SWAP and identity gives F_avg = 0.4 exactly.
    assert canonical_trace_fidelity((PI4, PI4, PI4), (0, 0, 0)) == pytest.approx(0.4)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_property_extraction_verifies_invariants(seed):
    unitary = haar_unitary(4, seed)
    coord = weyl_coordinates(unitary)
    assert in_weyl_chamber(coord, atol=1e-6)
    assert np.allclose(
        makhlin_invariants(unitary), makhlin_from_coordinate(coord), atol=1e-5
    )
