"""Tests for distributed (executor-side) plan-stage fan-out.

Covers the guarantees of the ``plan="local"|"executor"`` knob of
:func:`repro.core.transpile.transpile_many`:

* fixed-seed outputs are **byte-identical** across plan modes, schedulers,
  transports and executors (one shared digest pins every variant);
* plan provenance lands on ``BatchResult.dispatch`` (``plan_mode``,
  ``plan_tasks``, ``plan_seconds``, worker-side ``bytes_copied``);
* ``"auto"`` resolves to executor planning exactly when the dispatch
  session runs concurrently with the producer, and executor planning
  falls back to local when the transport cannot stream;
* a worker failing mid-plan propagates the error without leaking
  shared-memory segments;
* the coverage set still crosses the process boundary exactly once per
  batch — planning tasks reference it through the session anchor in both
  directions.
"""

import glob
import hashlib
import os

import pytest

from repro.exceptions import TranspilerError
from repro.circuits.library import ghz, qft, twolocal_full
from repro.core import transpile_many
from repro.polytopes import get_coverage_set
from repro.polytopes.coverage import CoverageSet
from repro.transpiler import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    line_topology,
)
from repro.transpiler.executors import SHM_SEGMENT_PREFIX, shm_transport_enabled

COVERAGE = get_coverage_set("sqrt_iswap", num_samples=250, seed=3)

needs_shm = pytest.mark.skipif(
    not shm_transport_enabled(),
    reason="POSIX shared memory unavailable on this platform",
)


def _own_segments() -> list[str]:
    return glob.glob(f"/dev/shm/{SHM_SEGMENT_PREFIX}{os.getpid()}_*")


def _digest(batch) -> str:
    """One digest pinning the byte-level identity of a whole batch."""
    hasher = hashlib.sha256()
    for result in batch:
        for instruction in result.circuit:
            params = ",".join(f"{p:.12e}" for p in instruction.gate.params)
            hasher.update(
                f"{instruction.gate.name}({params})@{instruction.qubits}\n"
                .encode()
            )
        hasher.update(
            f"{result.trial_index}|{result.swaps_added}|"
            f"{result.mirrors_accepted}\n".encode()
        )
    return hasher.hexdigest()


def _batch(executor=None, **kwargs):
    return transpile_many(
        [qft(4), ghz(5), twolocal_full(4)],
        line_topology(5),
        coverage=COVERAGE,
        use_vf2=False,
        layout_trials=3,
        seed=7,
        fanout="circuits",
        executor=executor,
        **kwargs,
    )


REFERENCE_DIGEST = _digest(
    transpile_many(
        [qft(4), ghz(5), twolocal_full(4)],
        line_topology(5),
        coverage=COVERAGE,
        use_vf2=False,
        layout_trials=3,
        seed=7,
        fanout="trials",
    )
)


# ---------------------------------------------------------------------------
# Digest-pinned byte identity across plan modes / schedulers / executors
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("plan", ["local", "executor", "auto"])
@pytest.mark.parametrize("make_executor", [
    SerialExecutor,
    lambda: ThreadExecutor(max_workers=2),
    lambda: ProcessExecutor(max_workers=2),
], ids=["serial", "threads", "processes"])
def test_plan_modes_digest_identical_across_executors(make_executor, plan):
    with make_executor() as executor:
        fanned = _batch(executor, scheduler="stream", plan=plan)
    assert _digest(fanned) == REFERENCE_DIGEST
    assert _own_segments() == []


@pytest.mark.parametrize("scheduler", ["stream", "barrier"])
def test_plan_digest_identical_across_schedulers(scheduler):
    fanned = _batch(scheduler=scheduler, plan="auto")
    assert _digest(fanned) == REFERENCE_DIGEST


def test_plan_digest_identical_without_shm(monkeypatch):
    monkeypatch.setenv("MIRAGE_SHM_DISABLE", "1")
    with ProcessExecutor(max_workers=2) as executor:
        fanned = _batch(executor, scheduler="stream", plan="executor")
    assert _digest(fanned) == REFERENCE_DIGEST
    # No streaming transport: the engine fell back to the barrier
    # scheduler, which always plans locally.
    assert fanned.dispatch["scheduler"] == "barrier"
    assert fanned.dispatch["plan_mode"] == "local"


@needs_shm
def test_plan_digest_identical_without_zero_copy(monkeypatch):
    monkeypatch.setenv("MIRAGE_ZEROCOPY_DISABLE", "1")
    with ProcessExecutor(max_workers=2) as executor:
        fanned = _batch(executor, scheduler="stream", plan="executor")
    assert _digest(fanned) == REFERENCE_DIGEST
    assert fanned.dispatch["plan_mode"] == "executor"
    assert fanned.dispatch["header_bytes"] == 0  # copy-on-attach layout
    assert _own_segments() == []


# ---------------------------------------------------------------------------
# Plan-mode resolution and provenance
# ---------------------------------------------------------------------------


def test_plan_auto_resolution():
    serial = _batch(plan="auto")
    assert serial.dispatch["plan_mode"] == "local"  # inline session
    with ThreadExecutor(max_workers=2) as threads:
        threaded = _batch(threads, plan="auto")
    assert threaded.dispatch["plan_mode"] == "executor"


def test_plan_rejects_unknown_mode():
    with pytest.raises(TranspilerError):
        _batch(plan="telepathic")


def test_plan_provenance_local():
    fanned = _batch(plan="local")
    dispatch = fanned.dispatch
    assert dispatch["plan_mode"] == "local"
    assert dispatch["plan_tasks"] == 0
    assert dispatch["plan_payloads"] == 0
    assert dispatch["plan_seconds"] > 0.0


def test_plan_provenance_executor():
    with ThreadExecutor(max_workers=2) as threads:
        fanned = _batch(threads, plan="executor")
    dispatch = fanned.dispatch
    assert dispatch["plan_mode"] == "executor"
    assert dispatch["plan_tasks"] == 3  # one plan task per circuit
    assert dispatch["plan_seconds"] > 0.0
    # Trial accounting is untouched by planning tasks.
    assert dispatch["tasks"] == 9  # 3 circuits x 3 layout trials


@needs_shm
def test_plan_executor_process_provenance_and_transport():
    with ProcessExecutor(max_workers=2) as executor:
        fanned = _batch(executor, plan="executor")
    dispatch = fanned.dispatch
    assert dispatch["plan_mode"] == "executor"
    assert dispatch["plan_tasks"] == 3
    assert dispatch["plan_payloads"] == 1  # the one shared PlanSpec
    assert dispatch["payload_pickles"] == 3  # one trial spec per circuit
    assert dispatch["shared_pickles"] == 1  # the coverage anchor
    # Zero-copy transport: workers materialised index headers only.
    assert dispatch["header_bytes"] > 0
    assert 0 < dispatch["bytes_copied"] <= 2 * dispatch["header_bytes"]
    assert _own_segments() == []


@needs_shm
def test_plan_executor_pickles_coverage_once(monkeypatch):
    """Planning on the executor must not re-serialise the coverage set.

    Outbound it rides the session anchor; inbound the planned states are
    anchor-encoded, so the worker's copy is never pickled back either.
    """
    calls = {"count": 0}
    original = CoverageSet.__getstate__

    def counting_getstate(self):
        calls["count"] += 1
        return original(self)

    monkeypatch.setattr(CoverageSet, "__getstate__", counting_getstate)
    with ProcessExecutor(max_workers=2) as executor:
        fanned = _batch(executor, plan="executor")
    assert _digest(fanned) == REFERENCE_DIGEST
    assert calls["count"] == 1
    assert fanned.dispatch["shared_pickles"] == 1


# ---------------------------------------------------------------------------
# Worker-side plan park (MIRAGE_PLAN_PARK)
# ---------------------------------------------------------------------------


@needs_shm
def test_plan_park_digest_identical_and_returns_shrink(monkeypatch):
    """Parking the planned spec worker-side keeps outputs byte-identical
    while the plan return path carries the spec handle instead of the
    spec — pinned by ``plan_return_bytes``."""
    with ProcessExecutor(max_workers=2) as executor:
        unparked = _batch(executor, scheduler="stream", plan="executor")
    assert _digest(unparked) == REFERENCE_DIGEST
    monkeypatch.setenv("MIRAGE_PLAN_PARK", "1")
    with ProcessExecutor(max_workers=2) as executor:
        parked = _batch(executor, scheduler="stream", plan="executor")
    assert _digest(parked) == REFERENCE_DIGEST
    assert 0 < parked.dispatch["plan_return_bytes"]
    assert (
        parked.dispatch["plan_return_bytes"]
        < unparked.dispatch["plan_return_bytes"]
    )
    assert _own_segments() == []


def test_plan_park_is_off_by_default():
    from repro.transpiler import plan_park_enabled

    assert not plan_park_enabled()


@needs_shm
def test_plan_park_survives_vanished_segment(monkeypatch):
    """If an adopted parked segment vanishes before its trials load,
    the parent regenerates the identical spec via the loader."""
    from repro.transpiler import executors as executors_mod

    monkeypatch.setenv("MIRAGE_PLAN_PARK", "1")
    original = executors_mod._ShmDispatchSession.adopt_payload

    def sabotaging_adopt(self, handle, kind="payload", loader=None):
        slot = original(self, handle, kind=kind, loader=loader)
        # Unlink the worker-parked segment immediately: every read of
        # this payload must fall back to the regeneration loader.
        if handle.segment is not None:
            executors_mod._unlink_segment(handle.segment)
        return slot

    monkeypatch.setattr(
        executors_mod._ShmDispatchSession, "adopt_payload", sabotaging_adopt
    )
    with ProcessExecutor(max_workers=2) as executor:
        fanned = _batch(executor, scheduler="stream", plan="executor")
    assert _digest(fanned) == REFERENCE_DIGEST
    assert _own_segments() == []


def test_plan_executor_handles_vf2_embedded_circuits():
    circuits = [ghz(4), qft(4), ghz(3)]
    kwargs = dict(coverage=COVERAGE, layout_trials=2, seed=5)
    sequential = transpile_many(
        circuits, line_topology(4), fanout="trials", **kwargs
    )
    with ThreadExecutor(max_workers=2) as threads:
        fanned = transpile_many(
            circuits, line_topology(4), fanout="circuits",
            scheduler="stream", plan="executor", executor=threads, **kwargs,
        )
    assert [r.method for r in fanned] == ["vf2", "mirage", "vf2"]
    assert _digest(fanned) == _digest(sequential)
    assert fanned.dispatch["plan_tasks"] == 3  # every circuit is planned
    assert fanned.dispatch["routed"] == 1  # but only one needed trials


def test_plan_executor_reports_full_pipeline():
    with ThreadExecutor(max_workers=2) as threads:
        fanned = _batch(threads, plan="executor")
    names = [record["name"] for record in fanned[0].pipeline_report]
    assert names == [
        "clean", "unroll", "reclean", "consolidate", "coupling",
        "coverage", "analyze", "vf2", "plan", "route", "select",
    ]
    assert all(r.trial_seconds is not None and r.trial_seconds > 0
               for r in fanned)
    assert all(r.runtime_seconds > 0 for r in fanned)


def test_plan_executor_long_batch_bounded_window():
    """A batch far larger than the stream window drains correctly."""
    circuits = [qft(4), ghz(5), twolocal_full(4)] * 8  # 24 circuits
    sequential = transpile_many(
        circuits, line_topology(5), coverage=COVERAGE, use_vf2=False,
        layout_trials=2, seed=11, fanout="trials",
    )
    with ThreadExecutor(max_workers=2) as threads:
        fanned = transpile_many(
            circuits, line_topology(5), coverage=COVERAGE, use_vf2=False,
            layout_trials=2, seed=11, fanout="circuits", scheduler="stream",
            plan="executor", executor=threads,
        )
    assert _digest(fanned) == _digest(sequential)
    assert fanned.dispatch["plan_tasks"] == len(circuits)


# ---------------------------------------------------------------------------
# Failure hygiene
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("plan", ["local", "executor"])
def test_plan_failure_propagates_without_segment_leak(plan):
    """A circuit failing mid-plan surfaces the error and leaks nothing.

    The 9-qubit circuit cannot fit the 5-qubit device, so its front
    pipeline raises — in a worker process under ``plan="executor"``,
    on the producer thread under ``plan="local"``.
    """
    circuits = [qft(4), qft(9), ghz(5)]
    with ProcessExecutor(max_workers=2) as executor:
        with pytest.raises(TranspilerError, match="9 qubits"):
            transpile_many(
                circuits, line_topology(5), coverage=COVERAGE,
                use_vf2=False, layout_trials=2, seed=3, fanout="circuits",
                scheduler="stream", plan=plan, executor=executor,
            )
    assert _own_segments() == []
