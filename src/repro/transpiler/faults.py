"""Deterministic fault injection for the dispatch stack, plus a janitor.

The fault-tolerance machinery in :mod:`repro.transpiler.executors` (chunk
retries, pool respawn, executor/transport degradation) is only credible
if it can be exercised on demand, at exact task positions, on every
executor and transport.  This module is that harness:

* ``MIRAGE_FAULT_PLAN`` — a comma-separated spec parsed by
  :func:`parse_fault_plan` / :meth:`FaultPlan.from_env`.  Every entry
  follows the ``kind:stage:ordinal`` grammar.  Task faults are
  ``action:kind:index`` with ``action`` one of ``kill`` / ``hang`` /
  ``corrupt`` / ``slow`` and ``kind`` one of ``trial`` / ``plan``;
  ``index`` is the zero-based *global submission ordinal* of that kind
  within one dispatch (a session, or one ``map_shared`` call).
  ``corrupt_shm:index`` targets the chunk with that global chunk
  ordinal instead, raising a :class:`~repro.exceptions.TransportError`
  before the payload loads — exactly what a vanished segment looks
  like.  Two further kinds target the *service* tier rather than the
  dispatcher: ``shed:request:N`` makes :class:`MirageService` treat
  its ``N``-th submission (global, zero-based) as over quota, and
  ``trip_breaker:window:N`` makes the service's circuit breaker count
  its ``N``-th dispatched window as a threshold-worth of executor
  failures.  Example::

      MIRAGE_FAULT_PLAN="kill:trial:7,slow:plan:2,corrupt_shm:1,shed:request:5"

* The dispatcher resolves the plan into per-chunk :class:`ChunkFaults`
  records at submit time (workers never count anything, so work stealing
  cannot move a fault), and **disarms faults on replay**: a retried chunk
  is re-dispatched without its fault record, modelling the transient
  failures the recovery layer exists for.  Fixed-seed outputs are
  therefore byte-identical with and without an active fault plan.

* ``kill`` terminates the worker process (``os._exit``) when it runs in
  a real worker, and raises :class:`InjectedWorkerCrash` when the chunk
  executes in the dispatching process (serial/thread executors), so the
  in-process retry path sees the same recoverable signal.  ``hang``
  sleeps for ``MIRAGE_FAULT_HANG_SECONDS`` (default 30), long enough for
  a configured ``MIRAGE_TASK_TIMEOUT`` to fire.  ``corrupt`` replaces
  the task's result with a :class:`CorruptResult` marker — the stand-in
  for a checksum mismatch — which the dispatcher detects and converts
  into :class:`CorruptResultError`, retrying the chunk.

* Four *network* kinds target the remote transport
  (:mod:`repro.transpiler.remote`) rather than the local dispatcher:
  ``drop_conn:chunk:N`` closes the client connection right after the
  ``N``-th first-send chunk frame leaves, ``garble:frame:N`` flips a
  byte inside the ``N``-th first-send chunk frame after its CRC was
  stamped, ``partition:host:N`` makes the host at index ``N``
  unreachable for the whole session, and ``slow_net:chunk:N`` makes
  the host sit on the ``N``-th chunk for ``MIRAGE_FAULT_SLOW_SECONDS``
  with its heartbeats suppressed — the deterministic way to exercise
  heartbeat-timeout replay.  Like every other kind, network faults
  target *first* dispatches only: replays travel disarmed.

* :func:`reap_stale_segments` is the dispatch janitor: it scans
  ``/dev/shm`` for ``mirage_shm_<pid>_…`` segments, and the temp
  directory for ``mirage_host_<pid>_…`` worker-host socket files and
  ``mirage_spool_<pid>_…`` payload spool directories, whose creating
  process is gone, and removes them — reclaiming whatever a killed run
  (or killed worker host) left behind.  The executor layer calls it
  after every pool respawn; worker hosts call it at startup.
"""

from __future__ import annotations

import dataclasses
import os
import shutil
import tempfile
import time
from typing import Iterable

from repro.exceptions import TranspilerError, TransportError

#: Prefix of the dispatch layer's shared-memory segments.  Kept in sync
#: with :data:`repro.transpiler.executors.SHM_SEGMENT_PREFIX` (defined
#: here too so this module never imports the executor layer).
SEGMENT_PREFIX = "mirage_shm_"

#: Prefix of worker-host Unix socket files (``mirage_host_<pid>_<token>``
#: under the temp directory); kept in sync with
#: :mod:`repro.transpiler.remote.protocol`.
HOST_SOCKET_PREFIX = "mirage_host_"

#: Prefix of worker-host payload spool directories
#: (``mirage_spool_<pid>_<token>`` under the temp directory).
SPOOL_PREFIX = "mirage_spool_"

#: Actions a task fault may take, in the worker that draws the task.
_TASK_ACTIONS = ("kill", "hang", "corrupt", "slow")

#: Service-tier fault kinds: action → the stage name its ordinal counts.
_SERVICE_ACTIONS = {"shed": "request", "trip_breaker": "window"}

#: Network fault kinds: action → the stage name its ordinal counts.
#: All of them are resolved client-side against *first* sends, so a
#: replayed chunk can never re-trigger the fault that lost it.
_NETWORK_ACTIONS = {
    "drop_conn": "chunk",
    "garble": "frame",
    "partition": "host",
    "slow_net": "chunk",
}

#: Exit status used by injected worker kills — distinctive in logs.
KILL_EXIT_CODE = 86

#: Default sleep of an injected hang (seconds); override with
#: ``MIRAGE_FAULT_HANG_SECONDS``.  Long enough that any sane
#: ``MIRAGE_TASK_TIMEOUT`` expires first.
_HANG_SECONDS_DEFAULT = 30.0

#: Default delay of an injected ``slow`` fault (seconds); override with
#: ``MIRAGE_FAULT_SLOW_SECONDS``.  Deliberately *shorter* than any sane
#: ``MIRAGE_TASK_TIMEOUT``: a slow task must blow a tight per-request
#: deadline without tripping the hang watchdog, so deadline expiry can
#: be exercised independently of hang recovery.
_SLOW_SECONDS_DEFAULT = 0.25


class InjectedWorkerCrash(TranspilerError):
    """A ``kill`` fault fired in-process (serial/thread execution).

    Worker processes die for real (``os._exit``); in-process chunks
    cannot, so the crash surfaces as this exception instead — the
    dispatcher treats both as the same recoverable worker loss.
    """


class CorruptResultError(TransportError):
    """A chunk returned :class:`CorruptResult` garbage.

    Modelled as a transport-integrity failure (the real-world analogue
    is a payload/result checksum mismatch), so the retry layer replays
    the chunk rather than propagating garbage into the batch.
    """


class CorruptResult:
    """Marker object an injected ``corrupt`` fault returns as a result.

    Deliberately unlike any real task outcome; the dispatcher scans chunk
    results for instances and converts them into
    :class:`CorruptResultError` before anything downstream can consume
    them.  Picklable so it survives the process-pool return path.
    """

    __slots__ = ("ordinal",)

    def __init__(self, ordinal: int = -1) -> None:
        self.ordinal = ordinal

    def __reduce__(self):  # noqa: D105 - picklability
        return (CorruptResult, (self.ordinal,))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CorruptResult(ordinal={self.ordinal})"


def fault_hang_seconds() -> float:
    """How long an injected ``hang`` fault sleeps (seconds).

    Read from ``MIRAGE_FAULT_HANG_SECONDS`` per call (default 30.0) so
    tests can keep hangs short while still outlasting their configured
    ``MIRAGE_TASK_TIMEOUT``.
    """
    value = os.environ.get("MIRAGE_FAULT_HANG_SECONDS", "").strip()
    if not value:
        return _HANG_SECONDS_DEFAULT
    try:
        return max(0.0, float(value))
    except ValueError:
        return _HANG_SECONDS_DEFAULT


def fault_slow_seconds() -> float:
    """How long an injected ``slow`` fault delays its task (seconds).

    Read from ``MIRAGE_FAULT_SLOW_SECONDS`` per call (default 0.25).
    Keep it below the configured ``MIRAGE_TASK_TIMEOUT`` — a slow task
    is meant to outlive a request *deadline*, not the hang watchdog.
    """
    value = os.environ.get("MIRAGE_FAULT_SLOW_SECONDS", "").strip()
    if not value:
        return _SLOW_SECONDS_DEFAULT
    try:
        return max(0.0, float(value))
    except ValueError:
        return _SLOW_SECONDS_DEFAULT


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One parsed fault-plan entry (action, task kind, global index)."""

    action: str
    kind: str
    index: int


@dataclasses.dataclass(frozen=True)
class ChunkFaults:
    """The faults one dispatched chunk must inject, resolved to offsets.

    Built dispatcher-side by :meth:`FaultPlan.chunk_faults` so the worker
    applies faults positionally (``kills``/``hangs``/``corrupts`` are
    offsets into the chunk's task list) without any cross-process
    counting.  ``dispatcher_pid`` distinguishes in-process execution —
    where ``kill`` must raise instead of exiting — from a real worker.
    Picklable; rides the chunk submission only while a plan is active.
    """

    kills: tuple[int, ...] = ()
    hangs: tuple[int, ...] = ()
    corrupts: tuple[int, ...] = ()
    slows: tuple[int, ...] = ()
    corrupt_shm: bool = False
    hang_seconds: float = _HANG_SECONDS_DEFAULT
    slow_seconds: float = _SLOW_SECONDS_DEFAULT
    dispatcher_pid: int = -1

    def check_transport(self) -> None:
        """Raise the injected segment loss, if this chunk carries one."""
        if self.corrupt_shm:
            raise TransportError(
                "fault injection: payload segment reported lost (corrupt_shm)"
            )

    def before_task(self, offset: int) -> None:
        """Fire any ``kill``/``hang`` fault aimed at the task at ``offset``."""
        if offset in self.kills:
            if self.dispatcher_pid >= 0 and os.getpid() != self.dispatcher_pid:
                os._exit(KILL_EXIT_CODE)
            raise InjectedWorkerCrash(
                f"fault injection: worker killed at chunk offset {offset}"
            )
        if offset in self.hangs:
            time.sleep(self.hang_seconds)
        if offset in self.slows:
            time.sleep(self.slow_seconds)

    def after_task(self, offset: int, result: object) -> object:
        """Swap the task's result for garbage if a ``corrupt`` fault aims here."""
        if offset in self.corrupts:
            return CorruptResult(offset)
        return result


#: The accepted entry grammar, named verbatim by every parse error so a
#: malformed plan fails fast with the full contract in the message.
FAULT_PLAN_GRAMMAR = (
    "kind:stage:ordinal — one of "
    "'kill|hang|corrupt|slow:trial|plan:<ordinal>', "
    "'corrupt_shm:<ordinal>', 'shed:request:<ordinal>', "
    "'trip_breaker:window:<ordinal>', 'drop_conn:chunk:<ordinal>', "
    "'garble:frame:<ordinal>', 'partition:host:<ordinal>' or "
    "'slow_net:chunk:<ordinal>'"
)


def parse_fault_plan(spec: str) -> "FaultPlan":
    """Parse a ``MIRAGE_FAULT_PLAN`` string into a :class:`FaultPlan`.

    Grammar: comma-separated ``kind:stage:ordinal`` entries — task
    faults ``action:kind:index`` (``action`` in ``kill``/``hang``/
    ``corrupt``/``slow``, ``kind`` in ``trial``/``plan``), chunk faults
    ``corrupt_shm:index``, and service faults ``shed:request:index`` /
    ``trip_breaker:window:index``.  Whitespace around entries is
    ignored; an empty spec yields an empty plan.  Anything else raises
    :class:`~repro.exceptions.TranspilerError` *at parse time* — the
    error names the accepted grammar so a typo fails fast instead of
    surfacing mid-dispatch.
    """
    entries: list[FaultSpec] = []
    for raw in spec.split(","):
        part = raw.strip()
        if not part:
            continue
        fields = part.split(":")
        try:
            if fields[0] == "corrupt_shm" and len(fields) == 2:
                entries.append(
                    FaultSpec("corrupt_shm", "chunk", int(fields[1]))
                )
                continue
            if len(fields) == 3 and fields[0] in _TASK_ACTIONS:
                action, kind, index = fields
                if kind not in ("trial", "plan"):
                    raise ValueError(kind)
                entries.append(FaultSpec(action, kind, int(index)))
                continue
            if len(fields) == 3 and fields[0] in _SERVICE_ACTIONS:
                action, kind, index = fields
                if kind != _SERVICE_ACTIONS[action]:
                    raise ValueError(kind)
                entries.append(FaultSpec(action, kind, int(index)))
                continue
            if len(fields) == 3 and fields[0] in _NETWORK_ACTIONS:
                action, kind, index = fields
                if kind != _NETWORK_ACTIONS[action]:
                    raise ValueError(kind)
                entries.append(FaultSpec(action, kind, int(index)))
                continue
            raise ValueError(part)
        except ValueError:
            raise TranspilerError(
                f"bad MIRAGE_FAULT_PLAN entry {part!r} — expected "
                f"{FAULT_PLAN_GRAMMAR}"
            ) from None
    return FaultPlan(entries)


class FaultPlan:
    """A parsed fault plan, queried by the dispatcher at submit time.

    Holds the task faults grouped by kind (``trial``/``plan``) and the
    set of chunk ordinals whose payload attach must fail.  The plan
    itself is immutable; the *dispatcher* owns the ordinal counters (one
    per kind, plus a global chunk counter) so that fault positions are
    exact and independent of worker scheduling.
    """

    def __init__(self, specs: Iterable[FaultSpec]) -> None:
        self._by_kind: dict[str, dict[int, str]] = {"trial": {}, "plan": {}}
        self._corrupt_chunks: set[int] = set()
        self._service: dict[str, set[int]] = {
            action: set() for action in _SERVICE_ACTIONS
        }
        self._network: dict[str, set[int]] = {
            action: set() for action in _NETWORK_ACTIONS
        }
        for spec in specs:
            if spec.action == "corrupt_shm":
                self._corrupt_chunks.add(spec.index)
            elif spec.action in _SERVICE_ACTIONS:
                self._service[spec.action].add(spec.index)
            elif spec.action in _NETWORK_ACTIONS:
                self._network[spec.action].add(spec.index)
            else:
                self._by_kind[spec.kind][spec.index] = spec.action

    def __bool__(self) -> bool:
        return bool(
            self._corrupt_chunks
            or any(self._by_kind[kind] for kind in self._by_kind)
            or any(self._service[action] for action in self._service)
            or any(self._network[action] for action in self._network)
        )

    def service_fault(self, action: str, ordinal: int) -> bool:
        """Whether a service fault of ``action`` targets this ordinal.

        ``action`` is ``"shed"`` (queried with the service's global
        submission ordinal) or ``"trip_breaker"`` (queried with the
        global dispatched-window ordinal).  The service owns both
        counters, mirroring how the dispatcher owns task ordinals.
        """
        return ordinal in self._service.get(action, ())

    def network_fault(self, action: str, ordinal: int) -> bool:
        """Whether a network fault of ``action`` targets this ordinal.

        ``action`` is one of ``"drop_conn"``/``"slow_net"`` (queried
        with the session's first-send chunk ordinal), ``"garble"``
        (queried with the first-send chunk-frame ordinal — identical
        numbering, counted at the socket write), or ``"partition"``
        (queried with the host's index in the session's host list).
        The remote client owns every one of these counters, mirroring
        how the dispatcher owns task ordinals, so injected network
        failures strike exact wire positions regardless of host
        scheduling — and never strike a replay.
        """
        return ordinal in self._network.get(action, ())

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """Parse ``MIRAGE_FAULT_PLAN``; ``None`` when unset or empty.

        Checked per dispatch (session open, or one ``map_shared`` call)
        like the other transport switches, so tests and operators can
        toggle fault plans without re-importing anything.
        """
        spec = os.environ.get("MIRAGE_FAULT_PLAN", "").strip()
        if not spec:
            return None
        plan = parse_fault_plan(spec)
        return plan if plan else None

    def chunk_faults(
        self, kind: str, start: int, count: int, chunk_ordinal: int
    ) -> ChunkFaults | None:
        """Resolve the faults hitting tasks ``[start, start+count)``.

        ``kind`` is the task kind the chunk carries, ``start`` the global
        ordinal of its first task within that kind, and ``chunk_ordinal``
        the global chunk counter (for ``corrupt_shm``).  Returns ``None``
        when no fault lands in the chunk — the common case, keeping the
        wire format of unaffected chunks unchanged.
        """
        planned = self._by_kind.get(kind, {})
        kills: list[int] = []
        hangs: list[int] = []
        corrupts: list[int] = []
        slows: list[int] = []
        for index, action in planned.items():
            if start <= index < start + count:
                offset = index - start
                if action == "kill":
                    kills.append(offset)
                elif action == "hang":
                    hangs.append(offset)
                elif action == "slow":
                    slows.append(offset)
                else:
                    corrupts.append(offset)
        corrupt_shm = chunk_ordinal in self._corrupt_chunks
        if not (kills or hangs or corrupts or slows or corrupt_shm):
            return None
        return ChunkFaults(
            kills=tuple(sorted(kills)),
            hangs=tuple(sorted(hangs)),
            corrupts=tuple(sorted(corrupts)),
            slows=tuple(sorted(slows)),
            corrupt_shm=corrupt_shm,
            hang_seconds=fault_hang_seconds(),
            slow_seconds=fault_slow_seconds(),
            dispatcher_pid=os.getpid(),
        )


def _pid_alive(pid: int) -> bool:
    """Whether a process with this pid currently exists."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid reused by another user
        return True
    return True


def _stale_owner(name: str, prefix: str) -> bool:
    """Whether ``name`` is ``<prefix><pid>_…`` with a dead owner pid."""
    if not name.startswith(prefix):
        return False
    pid_text = name[len(prefix):].split("_", 1)[0]
    try:
        pid = int(pid_text)
    except ValueError:
        return False
    return not _pid_alive(pid)


def reap_stale_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Remove dispatch debris whose creating process is dead.

    The full janitor behind every recovery path.  Three sweeps, all
    keyed on the pid embedded in the resource name:

    * ``/dev/shm`` — shared-memory segments ``<prefix><pid>_<token>``
      left by a killed dispatcher, or by a worker that died between
      publish and unlink;
    * the temp directory — worker-host socket files
      ``mirage_host_<pid>_<token>.sock`` left by a killed
      ``mirage-worker-host``;
    * the temp directory — remote payload spool directories
      ``mirage_spool_<pid>_<token>`` of the same dead hosts.

    Resources owned by live processes, including this one, are never
    touched.  Returns the reclaimed names (segment names and basenames
    of removed sockets/spools); the shm sweep is a no-op on hosts
    without ``/dev/shm``.  The executor layer runs the janitor after
    every pool respawn; worker hosts run it at startup.
    """
    reclaimed: list[str] = []
    shm_root = "/dev/shm"
    try:
        names = os.listdir(shm_root)
    except OSError:
        names = []
    for name in names:
        if not _stale_owner(name, prefix):
            continue
        try:
            os.unlink(os.path.join(shm_root, name))
        except FileNotFoundError:
            continue
        except OSError:  # pragma: no cover - permissions on shared hosts
            continue
        reclaimed.append(name)
    tmp_root = tempfile.gettempdir()
    try:
        tmp_names = os.listdir(tmp_root)
    except OSError:  # pragma: no cover - unreadable tempdir
        tmp_names = []
    for name in tmp_names:
        path = os.path.join(tmp_root, name)
        if _stale_owner(name, HOST_SOCKET_PREFIX) and not os.path.isdir(path):
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - racing another janitor
                continue
            reclaimed.append(name)
        elif _stale_owner(name, SPOOL_PREFIX) and os.path.isdir(path):
            shutil.rmtree(path, ignore_errors=True)
            reclaimed.append(name)
    return reclaimed
