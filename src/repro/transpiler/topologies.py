"""Quantum-machine topologies (coupling maps).

The paper evaluates MIRAGE on a 57-qubit heavy-hex lattice and a 6x6 square
lattice; the 4-qubit line of Fig. 8 and all-to-all connectivity also appear
in the analysis sections.  :class:`CouplingMap` wraps a ``networkx`` graph
with the distance queries routing needs.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable

import networkx as nx
import numpy as np

from repro.exceptions import TranspilerError


class CouplingMap:
    """Undirected qubit-connectivity graph of a target machine.

    Args:
        edges: iterable of physical-qubit pairs.
        num_qubits: total qubit count (inferred from edges when omitted).
        name: label used in reports.
    """

    def __init__(
        self,
        edges: Iterable[tuple[int, int]],
        num_qubits: int | None = None,
        name: str = "custom",
    ) -> None:
        edge_list = [(int(a), int(b)) for a, b in edges]
        if any(a == b for a, b in edge_list):
            raise TranspilerError("coupling map contains a self-loop")
        inferred = max((max(a, b) for a, b in edge_list), default=-1) + 1
        self.num_qubits = int(num_qubits) if num_qubits is not None else inferred
        if self.num_qubits < inferred:
            raise TranspilerError("num_qubits smaller than the largest edge index")
        self.name = name
        self.graph = nx.Graph()
        self.graph.add_nodes_from(range(self.num_qubits))
        self.graph.add_edges_from(edge_list)

    # -- basic queries ------------------------------------------------------

    @property
    def edges(self) -> list[tuple[int, int]]:
        return [tuple(sorted(edge)) for edge in self.graph.edges]

    def neighbors(self, qubit: int) -> list[int]:
        return sorted(self.graph.neighbors(qubit))

    def degree(self, qubit: int) -> int:
        return self.graph.degree[qubit]

    def are_connected(self, qubit_a: int, qubit_b: int) -> bool:
        return self.graph.has_edge(qubit_a, qubit_b)

    def is_connected_graph(self) -> bool:
        return nx.is_connected(self.graph)

    @cached_property
    def distance_matrix(self) -> np.ndarray:
        """All-pairs shortest-path distances (hops)."""
        matrix = np.full((self.num_qubits, self.num_qubits), np.inf)
        lengths = dict(nx.all_pairs_shortest_path_length(self.graph))
        for source, targets in lengths.items():
            for target, distance in targets.items():
                matrix[source, target] = distance
        np.fill_diagonal(matrix, 0.0)
        return matrix

    def distance(self, qubit_a: int, qubit_b: int) -> float:
        return float(self.distance_matrix[qubit_a, qubit_b])

    def shortest_path(self, qubit_a: int, qubit_b: int) -> list[int]:
        return nx.shortest_path(self.graph, qubit_a, qubit_b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CouplingMap(name={self.name!r}, qubits={self.num_qubits}, "
            f"edges={self.graph.number_of_edges()})"
        )


# ---------------------------------------------------------------------------
# Standard topology constructors
# ---------------------------------------------------------------------------


def line_topology(num_qubits: int) -> CouplingMap:
    """A 1-D chain of qubits."""
    edges = [(i, i + 1) for i in range(num_qubits - 1)]
    return CouplingMap(edges, num_qubits, name=f"line-{num_qubits}")


def ring_topology(num_qubits: int) -> CouplingMap:
    """A 1-D chain with periodic boundary."""
    if num_qubits < 3:
        raise TranspilerError("a ring needs at least three qubits")
    edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
    return CouplingMap(edges, num_qubits, name=f"ring-{num_qubits}")


def grid_topology(rows: int, cols: int) -> CouplingMap:
    """A rows x cols square lattice (the paper's 6x6 Square-Lattice)."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            index = r * cols + c
            if c + 1 < cols:
                edges.append((index, index + 1))
            if r + 1 < rows:
                edges.append((index, index + cols))
    return CouplingMap(edges, rows * cols, name=f"grid-{rows}x{cols}")


def square_lattice_topology(side: int = 6) -> CouplingMap:
    """Square lattice with ``side x side`` qubits (default 6x6 = 36Q)."""
    coupling = grid_topology(side, side)
    coupling.name = f"square-lattice-{side}x{side}"
    return coupling


def all_to_all_topology(num_qubits: int) -> CouplingMap:
    """Fully connected topology (used for pure-decomposition analyses)."""
    edges = [
        (a, b) for a in range(num_qubits) for b in range(a + 1, num_qubits)
    ]
    return CouplingMap(edges, num_qubits, name=f"a2a-{num_qubits}")


def heavy_hex_topology(num_qubits: int = 57) -> CouplingMap:
    """Heavy-hex lattice with (at least) ``num_qubits`` qubits, trimmed to size.

    The heavy-hexagon graph is a hexagonal lattice with an extra qubit on
    every edge (IBM's standard layout).  We generate a hexagonal lattice
    large enough, subdivide each edge, then keep a connected
    breadth-first-search region of exactly ``num_qubits`` qubits, which
    reproduces the low average degree (2 - 2.4) that makes routing on
    heavy-hex hard.
    """
    if num_qubits < 5:
        raise TranspilerError("heavy-hex needs at least five qubits")
    rows = cols = 1
    while True:
        base = nx.hexagonal_lattice_graph(rows, cols)
        subdivided = nx.Graph()
        mapping = {node: i for i, node in enumerate(base.nodes)}
        next_index = len(mapping)
        for u, v in base.edges:
            midpoint = next_index
            next_index += 1
            subdivided.add_edge(mapping[u], midpoint)
            subdivided.add_edge(midpoint, mapping[v])
        if subdivided.number_of_nodes() >= num_qubits:
            break
        if rows <= cols:
            rows += 1
        else:
            cols += 1

    start = next(iter(subdivided.nodes))
    selected: list[int] = []
    for node in nx.bfs_tree(subdivided, start):
        selected.append(node)
        if len(selected) == num_qubits:
            break
    region = subdivided.subgraph(selected)
    relabel = {node: index for index, node in enumerate(selected)}
    edges = [(relabel[a], relabel[b]) for a, b in region.edges]
    coupling = CouplingMap(edges, num_qubits, name=f"heavy-hex-{num_qubits}")
    if not coupling.is_connected_graph():
        raise TranspilerError("heavy-hex trimming produced a disconnected graph")
    return coupling


def topology_by_name(name: str, num_qubits: int) -> CouplingMap:
    """Look up a topology constructor by name.

    Supported names: ``line``, ``ring``, ``grid``/``square``, ``heavy_hex``,
    ``a2a``/``full``.
    """
    lowered = name.lower().replace("-", "_")
    if lowered == "line":
        return line_topology(num_qubits)
    if lowered == "ring":
        return ring_topology(num_qubits)
    if lowered in {"grid", "square", "square_lattice"}:
        side = int(np.ceil(np.sqrt(num_qubits)))
        return square_lattice_topology(side)
    if lowered in {"heavy_hex", "heavyhex"}:
        return heavy_hex_topology(max(num_qubits, 5))
    if lowered in {"a2a", "full", "all_to_all"}:
        return all_to_all_topology(num_qubits)
    raise TranspilerError(f"unknown topology {name!r}")
