"""Layouts: mappings between virtual (program) and physical (device) qubits.

Routing passes permute the layout as they insert SWAP gates (or accept
mirror gates); the layout object therefore supports cheap in-place swapping
in both directions plus the VF2-style search for a SWAP-free embedding that
the paper runs before invoking SABRE / MIRAGE.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.exceptions import TranspilerError
from repro.circuits.circuit import QuantumCircuit
from repro.transpiler.topologies import CouplingMap


class Layout:
    """A bijection between virtual qubits ``0..n-1`` and physical qubits.

    Physical registers may be wider than the program; unused physical qubits
    simply have no virtual owner.
    """

    def __init__(self, virtual_to_physical: Sequence[int], num_physical: int) -> None:
        v2p = [int(p) for p in virtual_to_physical]
        if len(set(v2p)) != len(v2p):
            raise TranspilerError("layout maps two virtual qubits to one physical qubit")
        if any(p < 0 or p >= num_physical for p in v2p):
            raise TranspilerError("layout physical index out of range")
        self.num_physical = num_physical
        self._v2p = list(v2p)
        self._p2v: dict[int, int] = {p: v for v, p in enumerate(v2p)}

    # -- constructors -----------------------------------------------------

    @classmethod
    def trivial(cls, num_virtual: int, num_physical: int | None = None) -> "Layout":
        num_physical = num_physical if num_physical is not None else num_virtual
        return cls(list(range(num_virtual)), num_physical)

    @classmethod
    def random(
        cls,
        num_virtual: int,
        num_physical: int,
        seed: int | np.random.Generator | None = None,
    ) -> "Layout":
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        physical = rng.permutation(num_physical)[:num_virtual]
        return cls([int(p) for p in physical], num_physical)

    # -- queries ----------------------------------------------------------

    @property
    def num_virtual(self) -> int:
        return len(self._v2p)

    def v2p(self, virtual: int) -> int:
        return self._v2p[virtual]

    def p2v(self, physical: int) -> int | None:
        return self._p2v.get(physical)

    def virtual_to_physical(self) -> list[int]:
        return list(self._v2p)

    # -- mutation -----------------------------------------------------------

    def swap_physical(self, physical_a: int, physical_b: int) -> None:
        """Exchange the virtual qubits living on two physical qubits."""
        va = self._p2v.get(physical_a)
        vb = self._p2v.get(physical_b)
        if va is not None:
            self._v2p[va] = physical_b
            self._p2v[physical_b] = va
        else:
            self._p2v.pop(physical_b, None)
        if vb is not None:
            self._v2p[vb] = physical_a
            self._p2v[physical_a] = vb
        else:
            self._p2v.pop(physical_a, None)

    def swap_virtual(self, virtual_a: int, virtual_b: int) -> None:
        """Exchange the physical homes of two virtual qubits."""
        pa, pb = self._v2p[virtual_a], self._v2p[virtual_b]
        self._v2p[virtual_a], self._v2p[virtual_b] = pb, pa
        self._p2v[pa], self._p2v[pb] = virtual_b, virtual_a

    def copy(self) -> "Layout":
        return Layout(list(self._v2p), self.num_physical)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Layout) and self._v2p == other._v2p

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Layout({self._v2p})"


def interaction_graph(circuit: QuantumCircuit) -> nx.Graph:
    """Graph whose edges are the qubit pairs coupled by two-qubit gates."""
    graph = nx.Graph()
    graph.add_nodes_from(range(circuit.num_qubits))
    for instruction in circuit:
        if instruction.is_two_qubit:
            graph.add_edge(*instruction.qubits)
    return graph


def vf2_layout(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    *,
    max_program_edges: int = 64,
) -> Layout | None:
    """Search for a SWAP-free embedding of the circuit interaction graph.

    Returns a :class:`Layout` if the interaction graph is subgraph-monomorphic
    to the coupling graph (every program edge lands on a hardware edge), or
    ``None`` otherwise.  This mirrors Qiskit's ``VF2Layout`` gate-free check
    described in the paper's experimental setup.

    Cheap necessary conditions (qubit count, edge count, maximum degree) are
    checked first, and dense interaction graphs above ``max_program_edges``
    are rejected without invoking the exponential VF2 search — such circuits
    need SWAPs on any sparse hardware graph anyway.
    """
    program = interaction_graph(circuit)
    if program.number_of_edges() == 0:
        return Layout.trivial(circuit.num_qubits, coupling.num_qubits)
    if circuit.num_qubits > coupling.num_qubits:
        return None
    if program.number_of_edges() > coupling.graph.number_of_edges():
        return None
    max_program_degree = max(degree for _, degree in program.degree)
    max_coupling_degree = max(degree for _, degree in coupling.graph.degree)
    if max_program_degree > max_coupling_degree:
        return None
    if program.number_of_edges() > max_program_edges:
        return None

    matcher = nx.algorithms.isomorphism.GraphMatcher(coupling.graph, program)
    for mapping in matcher.subgraph_monomorphisms_iter():
        physical_by_virtual = {v: p for p, v in mapping.items()}
        used = set(physical_by_virtual.values())
        free = (p for p in range(coupling.num_qubits) if p not in used)
        virtual_to_physical = [
            physical_by_virtual.get(virtual, None) for virtual in range(circuit.num_qubits)
        ]
        virtual_to_physical = [
            p if p is not None else next(free) for p in virtual_to_physical
        ]
        return Layout(virtual_to_physical, coupling.num_qubits)
    return None


def apply_layout(circuit: QuantumCircuit, layout: Layout, num_physical: int) -> QuantumCircuit:
    """Relabel a circuit's virtual qubits onto physical qubits."""
    return circuit.remap(
        [layout.v2p(q) for q in range(circuit.num_qubits)], num_physical
    )
