"""``build_swap_map``-style flat routing loop.

:func:`route_kernel` walks an :class:`~repro.transpiler.kernel.intdag.IntDAG`
with a :class:`~repro.transpiler.kernel.neighbors.NeighborTable`, keeping all
per-run state — layout, in-degrees, decay — in flat int/float containers.
Candidate scoring keeps the incremental per-edge deltas over the flat
arrays: window sums are accumulated once per stall, and each candidate edge
re-evaluates only the pairs touching its two endpoints via a per-qubit
pair-id index.  Hop distances are integer-valued, so on connected graphs
the whole scorer runs in exact Python int arithmetic over a flat row-major
distance list and produces exactly the floats the object path computes.

Only tie-breaking is kept as a sequential scan: the object path compares
each score against the running best with a ``1e-12`` tolerance, and that
recurrence is order-dependent — a vectorised argmin-with-tolerance can keep
a different near-tie set.  The scan draws from the same per-trial
``SeedSequence`` stream in the same order, so fixed-seed outputs are
byte-identical to ``MIRAGE_ROUTE_KERNEL=object``.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Callable

import numpy as np

from repro.exceptions import TranspilerError
from repro.circuits.gates import Gate
from repro.transpiler.kernel.intdag import KIND_CHECK2, KIND_FREE, IntDAG
from repro.transpiler.kernel.neighbors import NeighborTable

#: Values accepted by ``MIRAGE_ROUTE_KERNEL``.
_FLAT_VALUES = frozenset({"", "flat", "default"})
_OBJECT_VALUES = frozenset({"object", "legacy"})


def route_kernel_mode() -> str:
    """Resolve the active kernel (``flat`` default, ``object`` opt-out)."""
    value = os.environ.get("MIRAGE_ROUTE_KERNEL", "").strip().lower()
    if value in _FLAT_VALUES:
        return "flat"
    if value in _OBJECT_VALUES:
        return "object"
    raise TranspilerError(
        f"unknown MIRAGE_ROUTE_KERNEL value {value!r} (use 'flat' or 'object')"
    )


class KernelState:
    """Mutable flat state of one routing run — the commit hooks' view.

    ``MirageSwap``'s intermediate layer runs against this object: it reads
    gates by int id, queries the lookahead window as physical-qubit pairs,
    appends to ``ops`` and applies virtual swaps, never touching ``DAGNode``
    or ``Layout`` objects.
    """

    __slots__ = (
        "intdag",
        "table",
        "v2p",
        "p2v",
        "ops",
        "swaps_added",
        "extended_set_size",
        "_lists",
        "_touch",
    )

    def __init__(
        self,
        intdag: IntDAG,
        table: NeighborTable,
        initial_v2p: list[int],
        extended_set_size: int,
    ) -> None:
        self.intdag = intdag
        self.table = table
        self.v2p = [int(p) for p in initial_v2p]
        self.p2v = [-1] * table.num_qubits
        for virtual, physical in enumerate(self.v2p):
            self.p2v[physical] = virtual
        self.ops: list[tuple[Gate, tuple[int, ...]]] = []
        self.swaps_added = 0
        self.extended_set_size = extended_set_size
        self._lists = intdag.lists()
        # Scratch per-qubit pair-id lists for the scorer (reset after use).
        self._touch: list[list[int] | None] = [None] * table.num_qubits

    # -- hook API -----------------------------------------------------------

    def gate(self, node_id: int) -> Gate:
        return self.intdag.gates[self._lists.gate_ids[node_id]]

    def emit(self, node_id: int, physical: tuple[int, ...]) -> None:
        self.ops.append((self.gate(node_id), physical))

    def swap_physical(self, physical_a: int, physical_b: int) -> None:
        v2p, p2v = self.v2p, self.p2v
        va = p2v[physical_a]
        vb = p2v[physical_b]
        if va >= 0:
            v2p[va] = physical_b
        if vb >= 0:
            v2p[vb] = physical_a
        p2v[physical_a] = vb
        p2v[physical_b] = va

    def extended_ids(self, roots: list[int]) -> list[int]:
        """Lookahead BFS: upcoming two-qubit node ids after ``roots``.

        Byte-compatible with the object path's ``_extended_set`` — same
        visit order, same dedup, same early-exit at the window size.
        """
        limit = self.extended_set_size
        lists = self._lists
        succ_tuples = lists.succ_tuples
        kind = lists.kind
        extended: list[int] = []
        queue = deque(roots)
        seen = bytearray(self.intdag.num_nodes)
        for root in roots:
            seen[root] = 1
        while queue and len(extended) < limit:
            node_id = queue.popleft()
            for successor in succ_tuples[node_id]:
                if seen[successor]:
                    continue
                seen[successor] = 1
                queue.append(successor)
                if kind[successor] == KIND_CHECK2:
                    extended.append(successor)
                    if len(extended) >= limit:
                        break
        return extended

    def lookahead_pairs(self, node_id: int) -> list[tuple[int, int]]:
        """Physical qubit pairs of the lookahead window after one node.

        The window ids depend only on the DAG and the window size — never
        the layout — so they are memoised on the ``IntDAG`` and shared by
        every run over the same lowering (forward refinement rounds, all
        routing trials of a batch).
        """
        cache = self.intdag.__dict__.setdefault("_lookahead_cache", {})
        key = (self.extended_set_size, node_id)
        ids = cache.get(key)
        if ids is None:
            ids = self.extended_ids([node_id])
            cache[key] = ids
        lists = self._lists
        qubit0 = lists.qubit0
        qubit1 = lists.qubit1
        v2p = self.v2p
        return [(v2p[qubit0[i]], v2p[qubit1[i]]) for i in ids]


def route_kernel(
    intdag: IntDAG,
    table: NeighborTable,
    initial_v2p: list[int],
    rng: np.random.Generator,
    *,
    extended_set_size: int,
    extended_set_weight: float,
    decay_delta: float,
    decay_reset_interval: int,
    stall_limit: int,
    commit: Callable[[KernelState, int, tuple[int, int]], None],
) -> KernelState:
    """Route one lowered circuit; returns the finished :class:`KernelState`.

    ``commit`` is called for every executable two-qubit gate with
    ``(state, node_id, physical_pair)`` — the flat twin of the object
    path's ``_commit_two_qubit`` hook.
    """
    state = KernelState(intdag, table, initial_v2p, extended_set_size)
    lists = state._lists
    qubit0 = lists.qubit0
    qubit1 = lists.qubit1
    kind = lists.kind
    qubit_tuples = lists.qubit_tuples
    gate_ids = lists.gate_ids
    gates = intdag.gates
    succ_tuples = lists.succ_tuples
    indegree = list(lists.indegree)
    adjacency = table.adjacency()
    v2p = state.v2p
    ops = state.ops

    num_physical = table.num_qubits
    decay = [1.0] * num_physical
    decay_dirty = False
    decay_steps = 0
    stall_counter = 0
    extended_cache: list[int] | None = None

    front = [i for i in range(intdag.num_nodes) if not indegree[i]]
    while front:
        executed_any = False
        still_blocked: list[int] = []
        for node_id in front:
            node_kind = kind[node_id]
            if node_kind == KIND_CHECK2:
                left = v2p[qubit0[node_id]]
                right = v2p[qubit1[node_id]]
                if adjacency[left][right]:
                    commit(state, node_id, (left, right))
                else:
                    still_blocked.append(node_id)
                    continue
            elif node_kind == KIND_FREE:
                physical = tuple(v2p[q] for q in qubit_tuples[node_id])
                ops.append((gates[gate_ids[node_id]], physical))
            else:
                raise TranspilerError(
                    "router requires gates with at most two qubits"
                )
            executed_any = True
            for successor in succ_tuples[node_id]:
                indegree[successor] -= 1
                if not indegree[successor]:
                    still_blocked.append(successor)
        front = still_blocked
        if executed_any:
            if decay_dirty:
                decay = [1.0] * num_physical
                decay_dirty = False
            decay_steps = 0
            stall_counter = 0
            extended_cache = None
            continue
        if not front:
            break

        # Stalled: insert the best-scoring SWAP.  Consecutive stalls keep
        # the same front layer, and the lookahead window depends only on
        # the front and the DAG — never the layout — so it is recomputed
        # only after a sweep that executed something.
        stall_counter += 1
        if stall_counter > stall_limit:
            raise TranspilerError("router failed to make progress")
        if extended_cache is None:
            extended_cache = state.extended_ids(front)
        edge = _choose_swap(
            state, front, extended_cache, decay, rng, extended_set_weight
        )
        ops.append((Gate("swap", 2), edge))
        state.swap_physical(*edge)
        decay[edge[0]] += decay_delta
        decay[edge[1]] += decay_delta
        decay_dirty = True
        decay_steps += 1
        if decay_steps >= decay_reset_interval:
            decay = [1.0] * num_physical
            decay_dirty = False
            decay_steps = 0
        state.swaps_added += 1

    return state


def _choose_swap(
    state: KernelState,
    front: list[int],
    extended: list[int],
    decay: list[float],
    rng: np.random.Generator,
    extended_set_weight: float,
) -> tuple[int, int]:
    """Pick the SWAP edge, byte-compatible with the object ``_choose_swap``.

    Scoring keeps the PR-2 incremental per-edge deltas, but over the flat
    arrays: the window sums are accumulated once per stall, and each
    candidate edge re-evaluates only the pairs touching its two physical
    qubits.  On connected graphs all of it runs in exact int arithmetic
    over the nested hop-distance lists, so the delta-adjusted sums equal
    a full rescore bit-for-bit; the float path (possible infinities)
    replicates the object scorer including its direct-sum fallback.  The
    tolerance tie-break is an order-dependent recurrence and stays a
    sequential scan; its single RNG draw happens in the same position of
    the per-trial stream.
    """
    lists = state._lists
    table = state.table
    v2p = state.v2p
    qubit0 = lists.qubit0
    qubit1 = lists.qubit1

    # Candidate edges: union of the edges incident to the stalled gates'
    # physical qubits.  Edge ids are lex-sorted (a, b) pairs, so sorting
    # ids reproduces the object path's sorted-tuple candidate order.
    incident = table.incident
    candidate_ids: set[int] = set()
    for node_id in front:
        candidate_ids.update(incident[v2p[qubit0[node_id]]])
        candidate_ids.update(incident[v2p[qubit1[node_id]]])
    if not candidate_ids:
        raise TranspilerError(
            "no SWAP candidates: the coupling graph is likely disconnected"
        )
    candidates = sorted(candidate_ids)

    if not table.connected:
        return _choose_swap_float(
            state, front, extended, decay, rng, extended_set_weight, candidates
        )

    # Connected fast path: exact int arithmetic over the flat row-major
    # hop-distance list.  Pairs live in two parallel endpoint lists; per
    # physical qubit a scratch list of pair ids (``state._touch``, reset
    # before returning) replaces the dict-of-tuples used by the float
    # fallback.  Pair ids below ``num_front`` belong to the front group.
    num_front = len(front)
    num_pairs = num_front + len(extended)
    pair_left = [0] * num_pairs
    pair_right = [0] * num_pairs
    pair_row = [0] * num_pairs  # left * stride, for one-mul lookups
    stride = table.num_qubits
    distance = table.dist_int_flat()
    touch = state._touch
    touched: list[int] = []
    front_sum0 = 0
    extended_sum0 = 0
    pair_id = 0
    for group_nodes in (front, extended):
        for node_id in group_nodes:
            left = v2p[qubit0[node_id]]
            right = v2p[qubit1[node_id]]
            pair_left[pair_id] = left
            pair_right[pair_id] = right
            pair_row[pair_id] = row = left * stride
            if pair_id < num_front:
                front_sum0 += distance[row + right]
            else:
                extended_sum0 += distance[row + right]
            bucket = touch[left]
            if bucket is None:
                touch[left] = bucket = []
                touched.append(left)
            bucket.append(pair_id)
            if right != left:
                bucket = touch[right]
                if bucket is None:
                    touch[right] = bucket = []
                    touched.append(right)
                bucket.append(pair_id)
            pair_id += 1

    num_extended = len(extended)
    edges_a_list, edges_b_list = table.edge_lists()
    best_score = np.inf
    best_edges: list[tuple[int, int]] = []
    for edge_id in candidates:
        edge_a = edges_a_list[edge_id]
        edge_b = edges_b_list[edge_id]
        row_a = edge_a * stride
        row_b = edge_b * stride
        front_sum = front_sum0
        extended_sum = extended_sum0
        # A pair in a bucket touches that endpoint on exactly one side, so
        # the remap is one-sided; pairs touching both endpoints keep their
        # distance and are skipped.
        bucket = touch[edge_a]
        if bucket is not None:
            for pair_id in bucket:
                left = pair_left[pair_id]
                right = pair_right[pair_id]
                if left == edge_a:
                    if right == edge_b:
                        continue
                    delta = distance[row_b + right] - distance[row_a + right]
                else:  # right == edge_a
                    if left == edge_b:
                        continue
                    row = pair_row[pair_id]
                    delta = distance[row + edge_b] - distance[row + edge_a]
                if pair_id < num_front:
                    front_sum += delta
                else:
                    extended_sum += delta
        bucket = touch[edge_b]
        if bucket is not None:
            for pair_id in bucket:
                left = pair_left[pair_id]
                right = pair_right[pair_id]
                if left == edge_b:
                    if right == edge_a:
                        continue
                    delta = distance[row_a + right] - distance[row_b + right]
                else:  # right == edge_b
                    if left == edge_a:
                        continue
                    row = pair_row[pair_id]
                    delta = distance[row + edge_a] - distance[row + edge_b]
                if pair_id < num_front:
                    front_sum += delta
                else:
                    extended_sum += delta
        # At a stall the front is never empty, so the front term is
        # unconditional (the object path's `if front:` guard adds 0.0
        # otherwise, which never happens here).
        score = front_sum / num_front
        if num_extended:
            score += extended_set_weight * extended_sum / num_extended
        decay_a = decay[edge_a]
        decay_b = decay[edge_b]
        score = score * (decay_a if decay_a >= decay_b else decay_b)
        diff = score - best_score
        if diff < -1e-12:
            best_score = score
            best_edges = [(edge_a, edge_b)]
        elif diff <= 1e-12:
            best_edges.append((edge_a, edge_b))
    for qubit in touched:
        touch[qubit] = None
    if not best_edges:
        raise TranspilerError(
            "cannot route: some target qubits are unreachable on this coupling map"
        )
    return best_edges[int(rng.integers(len(best_edges)))]


def _choose_swap_float(
    state: KernelState,
    front: list[int],
    extended: list[int],
    decay: list[float],
    rng: np.random.Generator,
    extended_set_weight: float,
    candidates: list[int],
) -> tuple[int, int]:
    """Disconnected-coupling scorer: float distances with inf propagation.

    Mirrors the object path exactly, including its direct-sum fallback once
    a window sum goes infinite (``inf - inf`` would poison the deltas).
    """
    lists = state._lists
    table = state.table
    v2p = state.v2p
    qubit0 = lists.qubit0
    qubit1 = lists.qubit1

    front_pairs = [(v2p[qubit0[i]], v2p[qubit1[i]]) for i in front]
    extended_pairs = [(v2p[qubit0[i]], v2p[qubit1[i]]) for i in extended]

    distance = table.dist_lists()
    front_sum0 = 0.0
    extended_sum0 = 0.0
    touching: dict[int, list[tuple[int, int, int]]] = {}
    for group, pairs in ((0, front_pairs), (1, extended_pairs)):
        for left, right in pairs:
            if group:
                extended_sum0 += distance[left][right]
            else:
                front_sum0 += distance[left][right]
            touching.setdefault(left, []).append((group, left, right))
            if right != left:
                touching.setdefault(right, []).append((group, left, right))
    finite = front_sum0 != np.inf and extended_sum0 != np.inf

    num_front = len(front_pairs)
    num_extended = len(extended_pairs)
    edges_a_list, edges_b_list = table.edge_lists()
    empty: tuple = ()
    best_score = np.inf
    best_edges: list[tuple[int, int]] = []
    for edge_id in candidates:
        edge_a = edges_a_list[edge_id]
        edge_b = edges_b_list[edge_id]
        if finite:
            front_sum = front_sum0
            extended_sum = extended_sum0
            for group, left, right in touching.get(edge_a, empty):
                if left == edge_b or right == edge_b:
                    continue  # both endpoints swap; distance unchanged
                new_left = edge_b if left == edge_a else left
                new_right = edge_b if right == edge_a else right
                delta = distance[new_left][new_right] - distance[left][right]
                if group:
                    extended_sum += delta
                else:
                    front_sum += delta
            for group, left, right in touching.get(edge_b, empty):
                if left == edge_a or right == edge_a:
                    continue
                new_left = edge_a if left == edge_b else left
                new_right = edge_a if right == edge_b else right
                delta = distance[new_left][new_right] - distance[left][right]
                if group:
                    extended_sum += delta
                else:
                    front_sum += delta
        else:
            # Infinite distances (disconnected coupling) poison the delta
            # arithmetic with inf - inf; fall back to direct sums.
            front_sum = sum(
                distance[
                    edge_b if left == edge_a else edge_a if left == edge_b else left
                ][
                    edge_b if right == edge_a else edge_a if right == edge_b else right
                ]
                for left, right in front_pairs
            )
            extended_sum = sum(
                distance[
                    edge_b if left == edge_a else edge_a if left == edge_b else left
                ][
                    edge_b if right == edge_a else edge_a if right == edge_b else right
                ]
                for left, right in extended_pairs
            )
        score = 0.0
        if num_front:
            score += front_sum / num_front
        if num_extended:
            score += extended_set_weight * extended_sum / num_extended
        decay_a = decay[edge_a]
        decay_b = decay[edge_b]
        score = score * (decay_a if decay_a >= decay_b else decay_b)
        if score < best_score - 1e-12:
            best_score = score
            best_edges = [(edge_a, edge_b)]
        elif abs(score - best_score) <= 1e-12:
            best_edges.append((edge_a, edge_b))
    if not best_edges:
        raise TranspilerError(
            "cannot route: some target qubits are unreachable on this coupling map"
        )
    return best_edges[int(rng.integers(len(best_edges)))]
