"""``NeighborTable``: flat adjacency + integer hop distances of a coupling map.

Extends the integer-valued hop distances the scorer already relies on with
the index structures the flat kernel gathers over:

* CSR neighbour lists (sorted, matching ``CouplingMap.neighbors``);
* the lexicographically sorted undirected edge list as two parallel int
  arrays, so a candidate set is a sorted list of *edge ids* and its
  endpoints are a fancy-index gather;
* a per-qubit incident-edge index, so ``_swap_candidates`` is set-union of
  precomputed tuples instead of per-stall neighbour walks;
* ``dist_int``: the hop-distance matrix as ``int64`` (``-1`` where
  unreachable) for exact integer scoring on connected graphs, next to the
  float matrix (shared with ``CouplingMap.distance_matrix``) used verbatim
  when infinities are possible.

Tables are memoised per ``CouplingMap`` in a weak-keyed registry rather
than on the object, so pickled coupling maps never drag the table along.
"""

from __future__ import annotations

import dataclasses
import weakref
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.transpiler.topologies import CouplingMap


@dataclasses.dataclass
class NeighborTable:
    """Flat neighbour/edge/distance view of one :class:`CouplingMap`."""

    num_qubits: int
    indptr: np.ndarray
    neighbor_ids: np.ndarray
    edges_a: np.ndarray
    edges_b: np.ndarray
    incident: tuple[tuple[int, ...], ...]
    dist: np.ndarray
    dist_int: np.ndarray
    connected: bool

    @classmethod
    def from_coupling(cls, coupling: "CouplingMap") -> "NeighborTable":
        num_qubits = coupling.num_qubits
        indptr = np.empty(num_qubits + 1, dtype=np.int64)
        indptr[0] = 0
        flat: list[int] = []
        for qubit in range(num_qubits):
            flat.extend(coupling.neighbors(qubit))
            indptr[qubit + 1] = len(flat)
        edges = sorted(set(coupling.edges))
        edges_a = np.asarray([a for a, _ in edges], dtype=np.int64)
        edges_b = np.asarray([b for _, b in edges], dtype=np.int64)
        incident: list[list[int]] = [[] for _ in range(num_qubits)]
        for edge_id, (a, b) in enumerate(edges):
            incident[a].append(edge_id)
            incident[b].append(edge_id)
        dist = coupling.distance_matrix
        finite = np.isfinite(dist)
        connected = bool(finite.all())
        dist_int = np.where(finite, dist, -1.0).astype(np.int64)
        return cls(
            num_qubits=num_qubits,
            indptr=indptr,
            neighbor_ids=np.asarray(flat, dtype=np.int32),
            edges_a=edges_a,
            edges_b=edges_b,
            incident=tuple(tuple(ids) for ids in incident),
            dist=dist,
            dist_int=dist_int,
            connected=connected,
        )

    # -- memoised interpreter mirrors ---------------------------------------

    def adjacency(self) -> list[list[bool]]:
        """Dense boolean adjacency as nested lists (O(1) scalar lookups)."""
        cached = self.__dict__.get("_adjacency")
        if cached is None:
            cached = [
                [False] * self.num_qubits for _ in range(self.num_qubits)
            ]
            for a, b in zip(self.edges_a.tolist(), self.edges_b.tolist()):
                cached[a][b] = True
                cached[b][a] = True
            self.__dict__["_adjacency"] = cached
        return cached

    def edge_lists(self) -> tuple[list[int], list[int]]:
        cached = self.__dict__.get("_edge_lists")
        if cached is None:
            cached = (self.edges_a.tolist(), self.edges_b.tolist())
            self.__dict__["_edge_lists"] = cached
        return cached

    def dist_int_lists(self) -> list[list[int]]:
        cached = self.__dict__.get("_dist_int_lists")
        if cached is None:
            cached = self.dist_int.tolist()
            self.__dict__["_dist_int_lists"] = cached
        return cached

    def dist_int_flat(self) -> list[int]:
        """Row-major flat hop distances (index ``a * num_qubits + b``)."""
        cached = self.__dict__.get("_dist_int_flat")
        if cached is None:
            cached = self.dist_int.ravel().tolist()
            self.__dict__["_dist_int_flat"] = cached
        return cached

    def dist_lists(self) -> list[list[float]]:
        cached = self.__dict__.get("_dist_lists")
        if cached is None:
            cached = self.dist.tolist()
            self.__dict__["_dist_lists"] = cached
        return cached


_TABLES: "weakref.WeakKeyDictionary[CouplingMap, NeighborTable]" = (
    weakref.WeakKeyDictionary()
)


def neighbor_table(coupling: "CouplingMap") -> NeighborTable:
    """Memoised :class:`NeighborTable` of ``coupling``."""
    table = _TABLES.get(coupling)
    if table is None:
        table = NeighborTable.from_coupling(coupling)
        _TABLES[coupling] = table
    return table
