"""Flat int-array routing kernel (pure python/numpy ``build_swap_map`` shape).

The package mirrors the structure qiskit uses when it delegates Sabre to
``qiskit._accelerate.sabre_swap`` — a :class:`~repro.transpiler.kernel.intdag.IntDAG`
lowering of the circuit DAG, a
:class:`~repro.transpiler.kernel.neighbors.NeighborTable` over the coupling
map, and a :func:`~repro.transpiler.kernel.route.route_kernel` inner loop
over preallocated int/float arrays — so the routing loop is flat data a
later JIT/C extension can lift wholesale.  Outputs are bit-identical to
the object-path router (``MIRAGE_ROUTE_KERNEL=object``) at a fixed seed.
"""

from repro.transpiler.kernel.intdag import IntDAG, adopt_intdag, int_dag
from repro.transpiler.kernel.neighbors import NeighborTable, neighbor_table
from repro.transpiler.kernel.route import (
    KernelState,
    route_kernel,
    route_kernel_mode,
)

__all__ = [
    "IntDAG",
    "KernelState",
    "NeighborTable",
    "adopt_intdag",
    "int_dag",
    "neighbor_table",
    "route_kernel",
    "route_kernel_mode",
]
