"""``IntDAG``: a flat integer lowering of :class:`~repro.circuits.dag.DAGCircuit`.

The routing inner loop never needs the :class:`DAGNode` objects themselves —
only qubit indices, a two-qubit flag, dependency edges, and (at emission
time) the gate object.  ``IntDAG`` packs exactly that into plain ndarrays:

* an op table (``qubit0``/``qubit1`` with ``-1`` sentinels, a ``kind`` code,
  a ``gate_ids`` index into the deduplicated ``gates`` tuple, and a CSR
  ``qargs`` table for wide directives such as barriers);
* CSR successor/predecessor adjacency plus the in-degree vector, so
  front-layer advance is array bookkeeping instead of node-set mutation.

Being plain ndarrays, the whole structure ships through the zero-copy
shared-memory transport as out-of-band buffers; the ``gates`` tuple is the
only object payload and is deduplicated against the owning DAG by the
pickle memo.  Workers adopt the shipped table via :func:`adopt_intdag`
instead of re-lowering the DAG per trial.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import TranspilerError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.circuits.dag import DAGCircuit
    from repro.circuits.gates import Gate

#: Attribute under which a lowered table is memoised on the source DAG.
_CACHE_ATTR = "_intdag_cache"

#: Node kinds.  ``KIND_CHECK2`` gates gate executability on coupling
#: adjacency; ``KIND_FREE`` nodes (directives and single-qubit gates) are
#: always executable; ``KIND_REJECT`` marks >2-qubit non-directive gates the
#: router must refuse, exactly like the object path's ``_is_executable``.
KIND_CHECK2 = 0
KIND_FREE = 1
KIND_REJECT = 2


@dataclasses.dataclass(frozen=True)
class IntDAGLists:
    """Python-list mirror of an :class:`IntDAG` for the interpreter hot loop.

    Scalar indexing of python lists is several times faster than scalar
    indexing of ndarrays under CPython; the kernel walks these, while the
    vectorised scoring walks the ndarrays.
    """

    qubit0: list[int]
    qubit1: list[int]
    kind: list[int]
    gate_ids: list[int]
    qubit_tuples: tuple[tuple[int, ...], ...]
    succ_tuples: tuple[tuple[int, ...], ...]
    indegree: list[int]


@dataclasses.dataclass
class IntDAG:
    """Int-encoded op table + CSR dependency arrays of a ``DAGCircuit``.

    Attributes:
        num_qubits: virtual-qubit count of the source DAG.
        num_nodes: node count; node ids are exactly ``0..num_nodes-1``.
        qubit0/qubit1: first/second qarg per node (``-1`` when absent).
        kind: per-node ``KIND_*`` code.
        two_qubit: 1 where the node is a routable two-qubit gate.
        gate_ids: index into ``gates`` per node.
        gates: deduplicated gate objects (the op/unitary table).
        qarg_indptr/qargs: CSR qarg lists (covers wide directives).
        succ_indptr/succ_ids: CSR successor adjacency, program order.
        pred_indptr/pred_ids: CSR predecessor adjacency, program order.
        indegree: number of predecessors per node.
    """

    num_qubits: int
    num_nodes: int
    qubit0: np.ndarray
    qubit1: np.ndarray
    kind: np.ndarray
    two_qubit: np.ndarray
    gate_ids: np.ndarray
    gates: tuple
    qarg_indptr: np.ndarray
    qargs: np.ndarray
    succ_indptr: np.ndarray
    succ_ids: np.ndarray
    pred_indptr: np.ndarray
    pred_ids: np.ndarray
    indegree: np.ndarray

    # -- construction -------------------------------------------------------

    @classmethod
    def from_dag(cls, dag: "DAGCircuit") -> "IntDAG":
        num_nodes = len(dag.nodes)
        if sorted(dag.nodes) != list(range(num_nodes)):
            raise TranspilerError(
                "IntDAG requires densely numbered DAG nodes (0..n-1)"
            )
        qubit0 = np.full(num_nodes, -1, dtype=np.int32)
        qubit1 = np.full(num_nodes, -1, dtype=np.int32)
        kind = np.empty(num_nodes, dtype=np.uint8)
        two_qubit = np.zeros(num_nodes, dtype=np.uint8)
        gate_ids = np.empty(num_nodes, dtype=np.int32)
        gates: list[Gate] = []
        gate_index: dict[int, int] = {}
        qarg_indptr = np.empty(num_nodes + 1, dtype=np.int64)
        qarg_indptr[0] = 0
        qargs: list[int] = []
        for node_id in range(num_nodes):
            node = dag.nodes[node_id]
            qubits = node.qubits
            if len(qubits) >= 1:
                qubit0[node_id] = qubits[0]
            if len(qubits) >= 2:
                qubit1[node_id] = qubits[1]
            if node.is_two_qubit:
                kind[node_id] = KIND_CHECK2
                two_qubit[node_id] = 1
            elif node.is_directive or len(qubits) == 1:
                kind[node_id] = KIND_FREE
            else:
                kind[node_id] = KIND_REJECT
            key = id(node.gate)
            slot = gate_index.get(key)
            if slot is None:
                slot = len(gates)
                gate_index[key] = slot
                gates.append(node.gate)
            gate_ids[node_id] = slot
            qargs.extend(qubits)
            qarg_indptr[node_id + 1] = len(qargs)

        succ_indptr, succ_ids = _csr(dag._successors, num_nodes)
        pred_indptr, pred_ids = _csr(dag._predecessors, num_nodes)
        indegree = np.diff(pred_indptr).astype(np.int32)
        return cls(
            num_qubits=dag.num_qubits,
            num_nodes=num_nodes,
            qubit0=qubit0,
            qubit1=qubit1,
            kind=kind,
            two_qubit=two_qubit,
            gate_ids=gate_ids,
            gates=tuple(gates),
            qarg_indptr=qarg_indptr,
            qargs=np.asarray(qargs, dtype=np.int32),
            succ_indptr=succ_indptr,
            succ_ids=succ_ids,
            pred_indptr=pred_indptr,
            pred_ids=pred_ids,
            indegree=indegree,
        )

    # -- queries ------------------------------------------------------------

    def gate(self, node_id: int) -> "Gate":
        return self.gates[self.gate_ids[node_id]]

    def node_qubits(self, node_id: int) -> tuple[int, ...]:
        start, stop = self.qarg_indptr[node_id], self.qarg_indptr[node_id + 1]
        return tuple(int(q) for q in self.qargs[start:stop])

    def successor_ids(self, node_id: int) -> list[int]:
        start, stop = self.succ_indptr[node_id], self.succ_indptr[node_id + 1]
        return [int(s) for s in self.succ_ids[start:stop]]

    def predecessor_ids(self, node_id: int) -> list[int]:
        start, stop = self.pred_indptr[node_id], self.pred_indptr[node_id + 1]
        return [int(p) for p in self.pred_ids[start:stop]]

    def front_ids(self) -> list[int]:
        """Node ids with no predecessors, ascending (= ``front_layer`` order)."""
        return [i for i in range(self.num_nodes) if not self.indegree[i]]

    def to_dag(self, name: str = "dag") -> "DAGCircuit":
        """Rebuild an equivalent :class:`DAGCircuit` (round-trip check)."""
        from repro.circuits.dag import DAGCircuit

        out = DAGCircuit(self.num_qubits, name)
        for node_id in range(self.num_nodes):
            out.add_node(self.gate(node_id), self.node_qubits(node_id))
        return out

    def lists(self) -> IntDAGLists:
        """Memoised python-list mirror (see :class:`IntDAGLists`)."""
        cached = self.__dict__.get("_lists")
        if cached is None:
            qarg_indptr = self.qarg_indptr.tolist()
            qargs = self.qargs.tolist()
            succ_indptr = self.succ_indptr.tolist()
            succ_ids = self.succ_ids.tolist()
            cached = IntDAGLists(
                qubit0=self.qubit0.tolist(),
                qubit1=self.qubit1.tolist(),
                kind=self.kind.tolist(),
                gate_ids=self.gate_ids.tolist(),
                qubit_tuples=tuple(
                    tuple(qargs[qarg_indptr[i]:qarg_indptr[i + 1]])
                    for i in range(self.num_nodes)
                ),
                succ_tuples=tuple(
                    tuple(succ_ids[succ_indptr[i]:succ_indptr[i + 1]])
                    for i in range(self.num_nodes)
                ),
                indegree=self.indegree.tolist(),
            )
            self.__dict__["_lists"] = cached
        return cached

    # -- pickling ------------------------------------------------------------

    def __getstate__(self) -> dict:
        # The list mirror and the lookahead memo are per-process interpreter
        # caches; shipping them would double the payload for no benefit.
        state = dict(self.__dict__)
        state.pop("_lists", None)
        state.pop("_lookahead_cache", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


def _csr(
    adjacency: dict[int, list[int]], num_nodes: int
) -> tuple[np.ndarray, np.ndarray]:
    indptr = np.empty(num_nodes + 1, dtype=np.int64)
    indptr[0] = 0
    flat: list[int] = []
    for node_id in range(num_nodes):
        flat.extend(adjacency[node_id])
        indptr[node_id + 1] = len(flat)
    return indptr, np.asarray(flat, dtype=np.int32)


def int_dag(dag: "DAGCircuit") -> IntDAG:
    """Lower ``dag``, memoising the table on the DAG itself.

    The memo rides the DAG's pickle, which is what ships a ``TrialSpec``'s
    lowering to workers exactly once (the spec's ``intdag`` field and the
    DAG attribute are the same object, deduplicated by the pickle memo).
    """
    cached = getattr(dag, _CACHE_ATTR, None)
    if cached is not None and cached.num_nodes == len(dag.nodes):
        return cached
    built = IntDAG.from_dag(dag)
    setattr(dag, _CACHE_ATTR, built)
    return built


def adopt_intdag(dag: "DAGCircuit", intdag: IntDAG | None) -> None:
    """Attach a pre-built lowering to ``dag`` (worker-side adoption)."""
    if intdag is not None and intdag.num_nodes == len(dag.nodes):
        setattr(dag, _CACHE_ATTR, intdag)
