"""The ``mirage-worker-host`` process: a remote trial-execution host.

A worker host is the multi-host analogue of one process-pool worker: it
listens on a Unix socket (default, pid-keyed under the temp directory)
or a TCP port, speaks the framed protocol of
:mod:`repro.transpiler.remote.protocol`, and evaluates chunks of trial
or plan tasks against digest-addressed payloads.

Content addressing mirrors the shared-memory transport: the client
ships the session's anchor tuple (the batch's coverage set) and each
circuit payload **once per host**, keyed by content digest; the host
spools the pickled bytes into a pid-keyed spool directory and memoises
deserialisation (LRU) exactly like a pool worker does — so chunks carry
only digests, O(1) transport bytes, and a reconnecting client can ask
``HAS`` instead of re-shipping.  Because the spool and the memo live in
the host *process*, payloads survive connection loss; they die with the
host, whereupon the janitor (:func:`reap_stale_segments`, run at every
host startup) reclaims the socket file and spool of any dead host.

While computing a chunk the host emits ``HEARTBEAT`` frames every
``MIRAGE_REMOTE_HEARTBEAT_S`` seconds, so the client can tell a slow
chunk (heartbeats flowing) from a dead or partitioned host (silence)
without bounding legitimate compute time.  Injected task faults ride
the chunk as :class:`~repro.transpiler.faults.ChunkFaults` records and
fire exactly as they would in a pool worker — ``kill`` terminates the
whole host process (``os._exit``), which is precisely the host-kill
chaos mode the recovery ladder must absorb.

Run one with::

    mirage-worker-host --socket /tmp/my-host.sock
    # or:  python -m repro.transpiler.remote.host --tcp 127.0.0.1:7421

The process prints ``MIRAGE-HOST-READY <address>`` once listening.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import pickle
import shutil
import signal
import socket
import threading
import time
from collections import OrderedDict

from repro.exceptions import (
    GarbledFrameError,
    RemoteTransportError,
    TranspilerError,
)
from repro.transpiler.executors import (
    _SHARED_CACHE_LIMIT,
    _dumps_anchored,
    _loads_anchored,
    _run_tasks,
)
from repro.transpiler.faults import CorruptResult, reap_stale_segments
from repro.transpiler.remote import protocol
from repro.transpiler.remote.protocol import (
    BYE,
    CHUNK,
    ERROR,
    HAS,
    HAVE,
    HELLO,
    HELLO_ACK,
    PAYLOAD,
    PAYLOAD_ACK,
    PING,
    PONG,
    PROTOCOL_VERSION,
    RESULT,
    HEARTBEAT,
    HostAddress,
    pack_message,
    read_frame,
    unpack_message,
    write_frame,
)


class WorkerHost:
    """One remote trial-execution host serving the framed protocol.

    Each accepted connection gets a dedicated handler thread; within a
    connection the protocol is strictly request/response (the client
    opens several connections — *streams* — per host for overlap).
    ``serve_forever`` blocks; :meth:`start` serves from a daemon thread
    for in-process use (tests); :meth:`close` stops the listener,
    removes the socket file and the spool directory.
    """

    def __init__(
        self,
        socket_path: str | None = None,
        *,
        tcp: "tuple[str, int] | None" = None,
        spool_dir: str | None = None,
        heartbeat_s: float | None = None,
    ) -> None:
        # Every host startup doubles as a janitor pass: dead siblings'
        # segments, socket files and spools are reclaimed before this
        # host adds its own.
        reap_stale_segments()
        self._heartbeat_s = (
            heartbeat_s
            if heartbeat_s is not None
            else protocol.remote_heartbeat_s()
        )
        self._spool_dir = spool_dir or protocol.default_spool_dir()
        os.makedirs(self._spool_dir, exist_ok=True)
        self._lock = threading.Lock()
        self._blobs: dict[str, str] = {}
        self._objects: "OrderedDict[str, object]" = OrderedDict()
        self._closed = False
        self._socket_path: str | None = None
        if tcp is not None:
            self._listener = socket.create_server(tcp)
            host, port = self._listener.getsockname()[:2]
            self.address = HostAddress(tcp_host=host, tcp_port=port)
        else:
            self._socket_path = socket_path or protocol.default_socket_path()
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self._socket_path)
            self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._listener.bind(self._socket_path)
            self._listener.listen()
            self.address = HostAddress(unix_path=self._socket_path)

    # -- payload store -------------------------------------------------------

    def has_payload(self, digest: str) -> bool:
        """Whether the spool already holds ``digest``'s bytes."""
        with self._lock:
            return digest in self._blobs

    def store_payload(self, digest: str, blob: bytes) -> None:
        """Spool one content-addressed payload (idempotent)."""
        with self._lock:
            if digest in self._blobs:
                return
            path = os.path.join(self._spool_dir, digest)
            temp = f"{path}.{threading.get_ident()}.tmp"
            with open(temp, "wb") as handle:
                handle.write(blob)
            os.replace(temp, path)
            self._blobs[digest] = path

    def _blob(self, digest: str) -> bytes:
        with self._lock:
            path = self._blobs.get(digest)
        if path is None:
            # A restarted host lost its spool; the client treats this
            # as recoverable transport loss and re-ships on replay.
            raise RemoteTransportError(
                f"payload {digest[:12]}… is not spooled on this host"
            )
        with open(path, "rb") as handle:
            return handle.read()

    def _memoised(self, key: str, loader) -> object:
        with self._lock:
            try:
                value = self._objects.pop(key)
                self._objects[key] = value
                return value
            except KeyError:
                pass
        value = loader()
        with self._lock:
            self._objects[key] = value
            while len(self._objects) > _SHARED_CACHE_LIMIT:
                self._objects.popitem(last=False)
        return value

    def _anchor_tuple(self, digest: str) -> tuple:
        """The deserialised anchor tuple for ``digest``, memoised."""
        return self._memoised(
            f"anchors:{digest}", lambda: tuple(pickle.loads(self._blob(digest)))
        )

    def _payload_object(self, digest: str, anchor_digest: str | None) -> object:
        anchors: tuple = ()
        if anchor_digest is not None:
            anchors = self._anchor_tuple(anchor_digest)
        key = f"{anchor_digest}:{digest}"
        return self._memoised(
            key, lambda: _loads_anchored(self._blob(digest), anchors)
        )

    # -- chunk execution -----------------------------------------------------

    def _execute(self, request: dict) -> list:
        """Run one chunk exactly as a pool worker would."""
        anchor_digest = request.get("anchor")
        anchors: tuple = ()
        if anchor_digest is not None:
            anchors = self._anchor_tuple(anchor_digest)
        faults = request.get("faults")
        if faults is not None:
            faults.check_transport()
        shared = self._payload_object(request["payload"], anchor_digest)
        deadline = None
        if request.get("deadline_s") is not None:
            deadline = time.monotonic() + max(0.0, request["deadline_s"])
        results = _run_tasks(
            request["fn"], shared, request["tasks"], faults, deadline
        )
        if request.get("encode"):
            results = [
                result
                if isinstance(result, CorruptResult)
                else _dumps_anchored(result, anchors)
                for result in results
            ]
        return results

    def _serve_chunk(self, conn: socket.socket, request: dict) -> None:
        """Compute one chunk, heartbeating until the result frame goes out."""
        delay = request.get("delay_s") or 0.0
        if delay > 0:
            # Injected slow_net: sit on the chunk in silence — no
            # heartbeats — so the client's staleness detector fires.
            time.sleep(delay)
        done = threading.Event()
        box: dict = {}

        def compute() -> None:
            try:
                box["results"] = self._execute(request)
            except BaseException as error:  # noqa: BLE001 - shipped to client
                box["error"] = error
            finally:
                done.set()

        worker = threading.Thread(
            target=compute, name="mirage-host-chunk", daemon=True
        )
        worker.start()
        while not done.wait(self._heartbeat_s):
            write_frame(
                conn, HEARTBEAT, pack_message({"chunk": request["chunk"]})
            )
        error = box.get("error")
        if error is None:
            reply = {
                "chunk": request["chunk"],
                "ok": True,
                "results": box["results"],
            }
            write_frame(conn, RESULT, pack_message(reply))
            return
        try:
            payload = pack_message(
                {"chunk": request["chunk"], "ok": False, "error": error}
            )
        except Exception:  # pragma: no cover - unpicklable task error
            payload = pack_message(
                {
                    "chunk": request["chunk"],
                    "ok": False,
                    "error": TranspilerError(repr(error)),
                }
            )
        write_frame(conn, RESULT, payload)

    # -- connection handling -------------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            ftype, payload = read_frame(conn)
            if ftype != HELLO:
                write_frame(
                    conn,
                    ERROR,
                    pack_message(
                        {"code": "protocol", "detail": "expected HELLO"}
                    ),
                )
                return
            hello = unpack_message(payload)
            write_frame(
                conn,
                HELLO_ACK,
                pack_message(
                    {
                        "version": PROTOCOL_VERSION,
                        "pid": os.getpid(),
                        "cpu_count": os.cpu_count() or 1,
                    }
                ),
            )
            if hello.get("version") != PROTOCOL_VERSION:
                # The client reads the ack, sees the mismatch and marks
                # this host down; nothing more to serve.
                return
            while True:
                try:
                    ftype, payload = read_frame(conn)
                except GarbledFrameError as error:
                    # The stream is unusable past a garbled frame; tell
                    # the client why, then drop the connection.
                    with contextlib.suppress(Exception):
                        write_frame(
                            conn,
                            ERROR,
                            pack_message(
                                {"code": "garbled", "detail": str(error)}
                            ),
                        )
                    return
                if ftype == BYE:
                    return
                if ftype == PING:
                    write_frame(conn, PONG, b"")
                elif ftype == HAS:
                    message = unpack_message(payload)
                    write_frame(
                        conn,
                        HAVE,
                        pack_message(
                            {
                                "digest": message["digest"],
                                "have": self.has_payload(message["digest"]),
                            }
                        ),
                    )
                elif ftype == PAYLOAD:
                    message = unpack_message(payload)
                    self.store_payload(message["digest"], message["blob"])
                    write_frame(
                        conn,
                        PAYLOAD_ACK,
                        pack_message({"digest": message["digest"]}),
                    )
                elif ftype == CHUNK:
                    self._serve_chunk(conn, unpack_message(payload))
                else:
                    write_frame(
                        conn,
                        ERROR,
                        pack_message(
                            {
                                "code": "protocol",
                                "detail": f"unexpected frame type {ftype}",
                            }
                        ),
                    )
                    return
        except RemoteTransportError:
            # Client went away (connection loss, injected drop) — the
            # client side owns recovery; this handler just retires.
            return
        finally:
            with contextlib.suppress(Exception):
                conn.close()

    def serve_forever(self) -> None:
        """Accept and serve connections until :meth:`close`."""
        while not self._closed:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="mirage-host-conn",
                daemon=True,
            )
            thread.start()

    def start(self) -> threading.Thread:
        """Serve from a daemon thread (in-process hosts for tests)."""
        thread = threading.Thread(
            target=self.serve_forever, name="mirage-host-accept", daemon=True
        )
        thread.start()
        return thread

    def close(self) -> None:
        """Stop listening and remove the socket file and spool directory."""
        if self._closed:
            return
        self._closed = True
        with contextlib.suppress(Exception):
            self._listener.close()
        if self._socket_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self._socket_path)
        shutil.rmtree(self._spool_dir, ignore_errors=True)

    def __enter__(self) -> "WorkerHost":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point — the ``mirage-worker-host`` console script."""
    parser = argparse.ArgumentParser(
        prog="mirage-worker-host",
        description=(
            "Serve MIRAGE transpilation trial chunks over the framed "
            "remote-dispatch protocol."
        ),
    )
    parser.add_argument(
        "--socket",
        default=None,
        help=(
            "Unix socket path to listen on (default: a fresh pid-keyed "
            "path under the temp directory)"
        ),
    )
    parser.add_argument(
        "--tcp",
        default=None,
        metavar="HOST:PORT",
        help="listen on TCP instead of a Unix socket (port 0 picks one)",
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=None,
        metavar="SECONDS",
        help="heartbeat interval (default: MIRAGE_REMOTE_HEARTBEAT_S or 2.0)",
    )
    args = parser.parse_args(argv)
    tcp = None
    if args.tcp is not None:
        address = protocol.parse_host(args.tcp)
        if address.tcp_host is None:
            parser.error("--tcp expects HOST:PORT")
        tcp = (address.tcp_host, address.tcp_port)
    host = WorkerHost(
        socket_path=args.socket, tcp=tcp, heartbeat_s=args.heartbeat
    )

    def _terminate(signum: int, frame: object) -> None:
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _terminate)
    print(f"MIRAGE-HOST-READY {host.address}", flush=True)
    try:
        host.serve_forever()
    except (KeyboardInterrupt, SystemExit):
        pass
    finally:
        host.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
