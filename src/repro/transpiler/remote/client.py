"""Client side of multi-host dispatch: ``RemoteExecutor``.

:class:`RemoteExecutor` is a :class:`~repro.transpiler.executors.TrialExecutor`
whose workers are ``mirage-worker-host`` processes, possibly on other
machines.  Its dispatch session keeps the exact contract of the local
transports — payloads registered once, chunks submitted as futures,
results in input order, byte-identical outputs — and adds the fault
ladder a network demands:

* **Content addressing** — the session's anchor tuple and every payload
  are pickled once (anchored persistent references, same bytes as the
  shm transport) and shipped to each host at most once, keyed by
  content digest; hosts memoise across connections *and sessions*, so
  a reconnect asks ``HAS`` before re-shipping.
* **Work stealing** — every host runs ``MIRAGE_REMOTE_STREAMS``
  connection threads that pull chunks from one shared session queue,
  so fast hosts drain more of the batch; results reassemble in input
  order through per-chunk futures regardless of which host ran what.
* **The fault ladder** — connection loss, garbled frames
  (CRC-detected), stale hosts (heartbeats silent for
  ``HEARTBEAT_MISSES`` × ``MIRAGE_REMOTE_HEARTBEAT_S``) and expired
  reads all surface as typed
  :class:`~repro.exceptions.RemoteTransportError`; the stream
  reconnects with capped exponential backoff and replays **only the
  lost chunk**, byte-identically, with injected faults disarmed.  A
  host that cannot be reached within the ``MIRAGE_TASK_RETRIES``
  budget is marked down (``host_downgrades``) and its work
  redistributes to the remaining hosts; when *no* host remains, chunks
  degrade to local execution — a shared-memory process session when
  available, else in-process threads — still byte-identical.
  Recovery is visible only through the ``reconnects`` /
  ``host_downgrades`` / ``frames_garbled`` dispatch counters (all zero
  on a clean run) next to the established ``retries`` /
  ``lost_tasks`` / ``executor_downgrades`` family.

Network fault injection (``drop_conn:chunk:N``, ``garble:frame:N``,
``partition:host:N``, ``slow_net:chunk:N`` in ``MIRAGE_FAULT_PLAN``)
is resolved client-side against first sends only, so replays can never
re-trigger the fault that lost them.
"""

from __future__ import annotations

import collections
import concurrent.futures
import hashlib
import math
import os
import pickle
import socket
import threading
import time
from typing import Any, Callable, Iterable, Sequence

from repro.exceptions import (
    DeadlineExceededError,
    GarbledFrameError,
    ProtocolVersionError,
    RemoteTransportError,
    TranspilerError,
    TransportError,
)
from repro.transpiler.executors import (
    CHUNKS_PER_WORKER,
    DispatchSession,
    ProcessExecutor,
    ThreadExecutor,
    TrialExecutor,
    _chunk,
    _dumps_anchored,
    _guard_chunk_results,
    _is_retryable,
    _loads_anchored,
    _retry_backoff,
    _run_local_chunk,
    task_retries,
    task_timeout,
)
from repro.transpiler.faults import fault_slow_seconds
from repro.transpiler.remote import protocol
from repro.transpiler.remote.protocol import (
    BYE,
    CHUNK,
    ERROR,
    HAS,
    HAVE,
    HEARTBEAT,
    HEARTBEAT_MISSES,
    HELLO,
    HELLO_ACK,
    PAYLOAD,
    PAYLOAD_ACK,
    PROTOCOL_VERSION,
    RESULT,
    FrameReader,
    HostAddress,
    pack_message,
    unpack_message,
    write_frame,
)

#: Socket receive slice while interleaving liveness checks (seconds).
_RECV_SLICE_S = 0.05


class _HostDown(TranspilerError):
    """Internal control flow: this stream's host is marked down."""


class _HostState:
    """Session-side bookkeeping of one worker host."""

    __slots__ = ("index", "address", "down", "pid", "cpu_count", "shipped",
                 "ship_lock")

    def __init__(self, index: int, address: HostAddress) -> None:
        self.index = index
        self.address = address
        self.down = False
        self.pid: int | None = None
        self.cpu_count: int | None = None
        #: Digests confirmed present on the current host *process*
        #: (cleared when a reconnect finds a different host pid).
        self.shipped: set[str] = set()
        #: Serialises payload shipping across this host's streams so
        #: each payload travels at most once per host.
        self.ship_lock = threading.Lock()


class _Stream:
    """One connection thread's state: socket, frame buffer, reconnect flag."""

    __slots__ = ("host", "conn", "reader", "reconnecting")

    def __init__(self, host: _HostState) -> None:
        self.host = host
        self.conn: socket.socket | None = None
        self.reader: FrameReader | None = None
        self.reconnecting = False

    def abandon(self) -> None:
        """Drop the connection; the next use re-establishes (a reconnect)."""
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover - close race
                pass
            self.conn = None
            self.reader = None
            self.reconnecting = True

    def goodbye(self) -> None:
        """Orderly close at session end — not counted as a reconnect."""
        if self.conn is not None:
            try:
                write_frame(self.conn, BYE, b"")
            except Exception:
                pass
            try:
                self.conn.close()
            except OSError:  # pragma: no cover - close race
                pass
            self.conn = None
            self.reader = None


class _RemoteSlot:
    """One registered payload: its anchored bytes, digest and object."""

    __slots__ = ("digest", "blob", "obj")

    def __init__(self, digest: str, blob: bytes, obj: object) -> None:
        self.digest = digest
        self.blob = blob
        self.obj = obj


class _RemoteChunk:
    """Dispatch bookkeeping of one remote chunk, across replays."""

    __slots__ = (
        "chunk_id", "slot", "fn", "tasks", "encode", "kind", "faults",
        "deadline", "attempts", "wrapped", "net_drop", "net_garble",
        "net_slow",
    )

    def __init__(
        self,
        chunk_id: int,
        slot: int,
        fn: Callable[[Any, Any], Any],
        tasks: Sequence[object],
        encode: bool,
        kind: str,
        faults: object,
        deadline: float | None,
        net_drop: bool = False,
        net_garble: bool = False,
        net_slow: bool = False,
    ) -> None:
        self.chunk_id = chunk_id
        self.slot = slot
        self.fn = fn
        self.tasks = tasks
        self.encode = encode
        self.kind = kind
        self.faults = faults
        self.deadline = deadline
        self.attempts = 0
        self.wrapped: concurrent.futures.Future = concurrent.futures.Future()
        self.net_drop = net_drop
        self.net_garble = net_garble
        self.net_slow = net_slow

    def disarm(self) -> None:
        """Replays run clean: task and network faults alike."""
        self.faults = None
        self.net_drop = False
        self.net_garble = False
        self.net_slow = False


class _RemoteDispatchSession(DispatchSession):
    """Streaming dispatch session over the framed host protocol."""

    parallel = True
    #: Remote sessions never park plan specs — a parked segment lives
    #: on one machine, and the trial chunks may run on another.
    plan_park = False

    def __init__(
        self,
        executor: "RemoteExecutor",
        fn: Callable[[Any, Any], Any],
        anchors: Sequence[object] = (),
    ) -> None:
        super().__init__(fn)
        self._executor = executor
        self._anchors = tuple(anchors)
        self._anchor_digest: str | None = None
        self._anchor_blob: bytes | None = None
        if self._anchors:
            self._anchor_blob = pickle.dumps(
                self._anchors, protocol=pickle.HIGHEST_PROTOCOL
            )
            self._anchor_digest = hashlib.sha1(self._anchor_blob).hexdigest()
            executor._count_dispatch(shared_pickles=1)
        self._slots: list[_RemoteSlot | None] = []
        self._hosts = [
            _HostState(index, address)
            for index, address in enumerate(executor.addresses)
        ]
        self._heartbeat_s = protocol.remote_heartbeat_s()
        self._queue: "collections.deque[_RemoteChunk]" = collections.deque()
        self._cv = threading.Condition()
        self._threads: list[threading.Thread] = []
        self._next_chunk_id = 0
        self._closing = False
        self._live_hosts = len(self._hosts)
        self._fallback_lock = threading.Lock()
        self._fallback_session: DispatchSession | None = None
        self._fallback_executor: TrialExecutor | None = None
        self._fallback_slots: dict[int, int] = {}

    # -- payload registration ------------------------------------------------

    def add_payload(self, payload: object, kind: str = "payload") -> int:
        blob = _dumps_anchored(payload, self._anchors)
        digest = hashlib.sha1(blob).hexdigest()
        self._slots.append(_RemoteSlot(digest, blob, payload))
        self._count_payload(kind)
        return len(self._slots) - 1

    def release(self, slot: int) -> None:
        self._slots[slot] = None
        fallback_slot = self._fallback_slots.pop(slot, None)
        if fallback_slot is not None and self._fallback_session is not None:
            self._fallback_session.release(fallback_slot)

    def decode(self, result: object) -> object:
        # Chunks that degraded to thread/serial execution return raw
        # objects; remote (and shm-fallback) chunks return anchored
        # bytes.  Accepting both keeps every rung of the ladder usable.
        if isinstance(result, (bytes, bytearray)):
            return _loads_anchored(bytes(result), self._anchors)
        return result

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        slot: int,
        tasks: Sequence[object],
        *,
        fn: Callable[[Any, Any], Any] | None = None,
        encode: bool = False,
        kind: str = "trial",
        deadline: float | None = None,
    ) -> list[concurrent.futures.Future]:
        batch = list(tasks)
        streams = max(1, self._executor.total_streams())
        size = max(1, math.ceil(len(batch) / (streams * CHUNKS_PER_WORKER)))
        futures: list[concurrent.futures.Future] = []
        records: list[_RemoteChunk] = []
        for chunk in _chunk(batch, size):
            # The network-fault ordinal is the same chunk ordinal the
            # corrupt_shm grammar counts; read it before the task-fault
            # resolution advances it.
            ordinal = self._fault_chunk_ordinal
            faults = self._next_chunk_faults(kind, len(chunk))
            plan = self._fault_plan
            record = _RemoteChunk(
                chunk_id=self._next_chunk_id,
                slot=slot,
                fn=fn or self.fn,
                tasks=chunk,
                encode=encode,
                kind=kind,
                faults=faults,
                deadline=deadline,
                net_drop=(
                    plan is not None
                    and plan.network_fault("drop_conn", ordinal)
                ),
                net_garble=(
                    plan is not None and plan.network_fault("garble", ordinal)
                ),
                net_slow=(
                    plan is not None
                    and plan.network_fault("slow_net", ordinal)
                ),
            )
            self._next_chunk_id += 1
            futures.append(record.wrapped)
            records.append(record)
        self._count_submit(kind, len(records), len(batch))
        self._futures.extend(futures)
        self._ensure_threads()
        with self._cv:
            no_hosts = self._live_hosts == 0
            if not no_hosts:
                self._queue.extend(records)
                self._cv.notify_all()
        if no_hosts:
            for record in records:
                self._degrade(record)
        return futures

    def _ensure_threads(self) -> None:
        if self._threads:
            return
        streams = self._executor.streams_per_host
        for host in self._hosts:
            for stream_index in range(streams):
                thread = threading.Thread(
                    target=self._stream_main,
                    args=(_Stream(host),),
                    name=f"mirage-remote-h{host.index}s{stream_index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)

    # -- stream threads ------------------------------------------------------

    def _stream_main(self, stream: _Stream) -> None:
        host = stream.host
        try:
            while True:
                with self._cv:
                    while (
                        not self._queue
                        and not self._closing
                        and not host.down
                    ):
                        self._cv.wait(0.1)
                    if host.down or (self._closing and not self._queue):
                        return
                    if not self._queue:
                        continue
                    record = self._queue.popleft()
                self._process(stream, record)
                if host.down:
                    return
        finally:
            stream.goodbye()

    def _requeue(self, record: _RemoteChunk) -> None:
        with self._cv:
            no_hosts = self._live_hosts == 0
            if not no_hosts:
                self._queue.appendleft(record)
                self._cv.notify_all()
        if no_hosts:
            self._degrade(record)

    def _process(self, stream: _Stream, record: _RemoteChunk) -> None:
        """One chunk's remote lifecycle on this stream, failures included."""
        if record.wrapped.done():
            return
        if (
            record.deadline is not None
            and time.monotonic() >= record.deadline
        ):
            self._executor._count_dispatch(deadline_expirations=1)
            self._settle_error(
                record,
                DeadlineExceededError(
                    "request deadline expired before its chunk was dispatched"
                ),
            )
            return
        try:
            results = self._execute_remote(stream, record)
        except DeadlineExceededError as error:
            self._executor._count_dispatch(deadline_expirations=1)
            self._settle_error(record, error)
        except _HostDown:
            # Host is gone (marked by us or a sibling stream): hand the
            # chunk back for the remaining hosts — not a chunk failure.
            self._requeue(record)
        except ProtocolVersionError:
            self._mark_host_down(stream.host)
            self._requeue(record)
        except BaseException as error:  # noqa: BLE001 - settle, don't lose
            if not isinstance(error, OSError) and not _is_retryable(error):
                # A genuine task bug (or unknown failure): propagate —
                # replaying it would fail identically.
                self._settle_error(record, error)
                return
            if isinstance(error, (OSError, RemoteTransportError)):
                # Connection-level loss: the stream is desynchronised.
                # Task-level retryables (a corrupt result, an injected
                # crash surfaced as an error) leave it synchronised and
                # reusable — no reconnect.
                stream.abandon()
            if isinstance(error, GarbledFrameError):
                self._executor._count_dispatch(frames_garbled=1)
            record.disarm()
            record.attempts += 1
            self._executor._count_dispatch(
                retries=1, lost_tasks=len(record.tasks)
            )
            if record.attempts > task_retries():
                self._degrade(record)
                return
            time.sleep(_retry_backoff(record.attempts))
            self._requeue(record)
        else:
            self._settle(record, results)

    def _settle(self, record: _RemoteChunk, results: list) -> None:
        if not record.wrapped.done():
            record.wrapped.set_result(results)

    def _settle_error(
        self, record: _RemoteChunk, error: BaseException
    ) -> None:
        if not record.wrapped.done():
            record.wrapped.set_exception(error)

    # -- connection management -----------------------------------------------

    def _mark_host_down(self, host: _HostState) -> None:
        drained: list[_RemoteChunk] = []
        with self._cv:
            if not host.down:
                host.down = True
                self._live_hosts -= 1
                self._executor._count_dispatch(host_downgrades=1)
            if self._live_hosts == 0:
                drained = list(self._queue)
                self._queue.clear()
            self._cv.notify_all()
        for record in drained:
            self._degrade(record)

    def _partition_injected(self, host: _HostState) -> bool:
        return self._fault_plan is not None and self._fault_plan.network_fault(
            "partition", host.index
        )

    def _ensure_connection(self, stream: _Stream) -> None:
        """Connect and handshake, with backoff; raises ``_HostDown`` when
        the host's connect budget is spent."""
        if stream.conn is not None:
            return
        host = stream.host
        attempts = 0
        while True:
            if host.down:
                raise _HostDown(str(host.address))
            error: Exception | None = None
            if self._partition_injected(host):
                error = RemoteTransportError(
                    f"fault injection: host {host.index} "
                    f"({host.address}) is partitioned"
                )
            else:
                try:
                    self._connect_once(stream)
                    return
                except (OSError, RemoteTransportError) as caught:
                    stream.abandon()
                    error = caught
            attempts += 1
            if attempts > task_retries():
                self._mark_host_down(host)
                raise _HostDown(f"{host.address}: {error}")
            time.sleep(_retry_backoff(attempts))

    def _connect_once(self, stream: _Stream) -> None:
        host = stream.host
        conn = host.address.connect(protocol.remote_connect_s())
        stream.conn = conn
        stream.reader = FrameReader()
        try:
            sent = write_frame(
                conn,
                HELLO,
                pack_message(
                    {"version": PROTOCOL_VERSION, "pid": os.getpid()}
                ),
            )
            self._executor._count_dispatch(bytes_shipped=sent)
            ftype, payload = self._read_reply(
                stream, protocol.remote_connect_s()
            )
            if ftype != HELLO_ACK:
                raise RemoteTransportError(
                    f"expected HELLO_ACK, got frame type {ftype}"
                )
            ack = unpack_message(payload)
            if ack.get("version") != PROTOCOL_VERSION:
                raise ProtocolVersionError(
                    f"host {host.address} speaks protocol "
                    f"{ack.get('version')!r}, this client speaks "
                    f"{PROTOCOL_VERSION}"
                )
        except BaseException:
            stream.conn = None
            stream.reader = None
            with contextlib_suppress_close(conn):
                pass
            raise
        pid = ack.get("pid")
        with self._cv:
            if host.pid != pid:
                # A different host process answered: whatever the old
                # one spooled is gone.
                host.shipped.clear()
                host.pid = pid
            host.cpu_count = ack.get("cpu_count")
        self._executor._note_host(host.index, pid, ack.get("cpu_count"))
        if stream.reconnecting:
            stream.reconnecting = False
            self._executor._count_dispatch(reconnects=1)

    def _read_reply(
        self, stream: _Stream, budget: float
    ) -> tuple[int, bytes]:
        """Next frame on this stream within ``budget`` seconds."""
        deadline = time.monotonic() + budget
        conn, reader = stream.conn, stream.reader
        while True:
            frame = reader.next_frame()
            if frame is not None:
                return frame
            if time.monotonic() >= deadline:
                raise RemoteTransportError(
                    f"host {stream.host.address} did not reply within "
                    f"{budget:.1f}s"
                )
            conn.settimeout(_RECV_SLICE_S)
            try:
                data = conn.recv(1 << 16)
            except socket.timeout:
                continue
            except OSError as error:
                raise RemoteTransportError(
                    f"connection lost while awaiting reply: {error}"
                ) from error
            if not data:
                raise RemoteTransportError("connection closed by host")
            reader.feed(data)

    def _ensure_hosted(
        self, stream: _Stream, digest: str, blob: bytes
    ) -> None:
        """Ship one content-addressed payload to this host at most once."""
        host = stream.host
        with host.ship_lock:
            if digest in host.shipped:
                return
            sent = write_frame(
                stream.conn, HAS, pack_message({"digest": digest})
            )
            ftype, payload = self._read_reply(
                stream, protocol.remote_connect_s()
            )
            if ftype != HAVE:
                raise RemoteTransportError(
                    f"expected HAVE, got frame type {ftype}"
                )
            if not unpack_message(payload).get("have"):
                sent += write_frame(
                    stream.conn,
                    PAYLOAD,
                    pack_message({"digest": digest, "blob": blob}),
                )
                ftype, _ = self._read_reply(
                    stream, protocol.remote_connect_s()
                )
                if ftype != PAYLOAD_ACK:
                    raise RemoteTransportError(
                        f"expected PAYLOAD_ACK, got frame type {ftype}"
                    )
            self._executor._count_dispatch(bytes_shipped=sent)
            host.shipped.add(digest)

    # -- the remote chunk round-trip -----------------------------------------

    def _execute_remote(
        self, stream: _Stream, record: _RemoteChunk
    ) -> list:
        self._ensure_connection(stream)
        slot = self._slots[record.slot]
        if slot is None:
            raise TranspilerError(
                "payload slot released with chunks still in flight"
            )
        if self._anchor_digest is not None:
            self._ensure_hosted(
                stream, self._anchor_digest, self._anchor_blob
            )
        self._ensure_hosted(stream, slot.digest, slot.blob)
        deadline_s = None
        if record.deadline is not None:
            deadline_s = max(0.0, record.deadline - time.monotonic())
        request = {
            "chunk": record.chunk_id,
            "anchor": self._anchor_digest,
            "payload": slot.digest,
            "fn": record.fn,
            "tasks": tuple(record.tasks),
            "encode": record.encode,
            "deadline_s": deadline_s,
            "faults": record.faults,
            "delay_s": fault_slow_seconds() if record.net_slow else 0.0,
        }
        garble = record.net_garble
        drop = record.net_drop
        sent = write_frame(
            stream.conn, CHUNK, pack_message(request), garble=garble
        )
        self._executor._count_dispatch(bytes_shipped=sent)
        if drop:
            stream.abandon()
            raise RemoteTransportError(
                "fault injection: connection dropped after chunk send "
                "(drop_conn)"
            )
        results = self._await_result(stream, record)
        return _guard_chunk_results(results)

    def _await_result(
        self, stream: _Stream, record: _RemoteChunk
    ) -> list:
        """Receive the chunk's result, policing heartbeats and deadlines."""
        conn, reader = stream.conn, stream.reader
        sent_at = time.monotonic()
        last_heard = sent_at
        stale_after = HEARTBEAT_MISSES * self._heartbeat_s
        timeout = task_timeout()
        while True:
            now = time.monotonic()
            if record.deadline is not None and now >= record.deadline:
                # The result would arrive late on a desynchronised
                # stream — abandon the connection along with the chunk.
                stream.abandon()
                raise DeadlineExceededError(
                    "request deadline expired with its chunk on a remote host"
                )
            if timeout is not None and now - sent_at > timeout:
                stream.abandon()
                raise RemoteTransportError(
                    f"chunk {record.chunk_id} exceeded MIRAGE_TASK_TIMEOUT "
                    f"({timeout:.1f}s) on host {stream.host.address}"
                )
            if now - last_heard > stale_after:
                stream.abandon()
                raise RemoteTransportError(
                    f"host {stream.host.address} went stale — no frame for "
                    f"{now - last_heard:.1f}s "
                    f"(heartbeat interval {self._heartbeat_s:.1f}s)"
                )
            frame = reader.next_frame()
            if frame is None:
                conn.settimeout(_RECV_SLICE_S)
                try:
                    data = conn.recv(1 << 16)
                except socket.timeout:
                    continue
                except OSError as error:
                    raise RemoteTransportError(
                        f"connection lost awaiting chunk result: {error}"
                    ) from error
                if not data:
                    raise RemoteTransportError(
                        "connection closed by host mid-chunk"
                    )
                reader.feed(data)
                continue
            ftype, payload = frame
            last_heard = time.monotonic()
            if ftype == HEARTBEAT:
                continue
            if ftype == ERROR:
                message = unpack_message(payload)
                stream.abandon()
                if message.get("code") == "garbled":
                    raise GarbledFrameError(
                        f"host reported a garbled frame: "
                        f"{message.get('detail')}"
                    )
                raise RemoteTransportError(
                    f"host protocol error: {message.get('detail')}"
                )
            if ftype == RESULT:
                message = unpack_message(payload)
                if message.get("chunk") != record.chunk_id:
                    stream.abandon()
                    raise RemoteTransportError(
                        "result frame for a different chunk — stream "
                        "desynchronised"
                    )
                if message.get("ok"):
                    return message["results"]
                raise message["error"]
            stream.abandon()
            raise RemoteTransportError(
                f"unexpected frame type {ftype} while awaiting a result"
            )

    # -- local degradation ---------------------------------------------------

    def _degrade(self, record: _RemoteChunk) -> None:
        """Run one chunk locally: shm process session when available,
        else in-process — the last rungs of the remote ladder."""
        self._executor._count_dispatch(executor_downgrades=1)
        session = self._ensure_fallback()
        if session is not None:
            try:
                fallback_slot = self._fallback_slot(session, record.slot)
                (future,) = session.submit(
                    fallback_slot,
                    record.tasks,
                    fn=record.fn,
                    encode=record.encode,
                    kind=record.kind,
                    deadline=record.deadline,
                )
            except BaseException:  # noqa: BLE001 - fall through to in-process
                pass
            else:
                def relay(done: concurrent.futures.Future) -> None:
                    error = done.exception()
                    if error is not None:
                        self._settle_error(record, error)
                    else:
                        self._settle(record, done.result())

                future.add_done_callback(relay)
                return
        try:
            thread = threading.Thread(
                target=self._run_degraded,
                args=(record,),
                name="mirage-remote-degraded",
                daemon=True,
            )
            thread.start()
        except RuntimeError:  # pragma: no cover - interpreter shutdown
            self._run_degraded(record)

    def _run_degraded(self, record: _RemoteChunk) -> None:
        try:
            slot = self._slots[record.slot]
            if slot is None:
                raise TranspilerError(
                    "payload slot released with chunks still in flight"
                )
            results = _guard_chunk_results(
                _run_local_chunk(
                    record.fn, slot.obj, record.tasks, None, record.deadline
                )
            )
        except DeadlineExceededError as error:
            self._executor._count_dispatch(deadline_expirations=1)
            self._settle_error(record, error)
        except BaseException as error:  # noqa: BLE001 - settle, don't lose
            self._settle_error(record, error)
        else:
            self._settle(record, results)

    def _ensure_fallback(self) -> DispatchSession | None:
        """The lazily-built local fallback session (shm → threads)."""
        with self._fallback_lock:
            if self._fallback_session is not None or self._closing:
                return self._fallback_session
            executor: TrialExecutor = ProcessExecutor()
            session = executor.open_dispatch(self.fn, self._anchors)
            if session is None:
                executor.close()
                executor = ThreadExecutor()
                session = executor.open_dispatch(self.fn, self._anchors)
            if session is not None:
                self._fallback_executor = executor
                self._fallback_session = session
            else:  # pragma: no cover - thread sessions always open
                executor.close()
            return self._fallback_session

    def _fallback_slot(self, session: DispatchSession, slot: int) -> int:
        with self._fallback_lock:
            mapped = self._fallback_slots.get(slot)
            if mapped is None:
                remote_slot = self._slots[slot]
                if remote_slot is None:
                    raise TranspilerError(
                        "payload slot released with chunks still in flight"
                    )
                mapped = session.add_payload(remote_slot.obj)
                self._fallback_slots[slot] = mapped
            return mapped

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        try:
            # Settle every outstanding future first (stream threads are
            # still consuming the queue), then stop the threads.
            super().close()
        finally:
            with self._cv:
                self._closing = True
                self._cv.notify_all()
            for thread in self._threads:
                thread.join(timeout=10.0)
            self._threads = []
            with self._fallback_lock:
                session = self._fallback_session
                executor = self._fallback_executor
                self._fallback_session = None
                self._fallback_executor = None
            if session is not None:
                session.close()
            if executor is not None:
                executor.close()


class contextlib_suppress_close:
    """Close ``conn`` on exit, swallowing errors (tiny local helper)."""

    def __init__(self, conn: socket.socket) -> None:
        self._conn = conn

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        try:
            self._conn.close()
        except OSError:
            pass
        return False


def _map_call(fn: Callable[[Any], Any], task: object) -> object:
    """Adapter making ``map`` ride the shared-payload path (fn as payload)."""
    return fn(task)


class RemoteExecutor(TrialExecutor):
    """Evaluate trials on remote ``mirage-worker-host`` processes.

    ``hosts`` is a list of host addresses (Unix socket paths or
    ``host:port`` strings, or :class:`HostAddress` instances); when
    omitted it comes from ``MIRAGE_REMOTE_HOSTS`` (comma-separated).
    ``max_streams`` bounds concurrent chunk streams per host (default
    ``MIRAGE_REMOTE_STREAMS``).  The mapped function and every task
    must be picklable, exactly as for :class:`ProcessExecutor`.

    Fixed-seed results are byte-identical to every local executor —
    including under connection loss, garbled frames, partitioned or
    killed hosts — because recovery replays lost chunks with their
    original tasks and seeds, and falls back to local execution only
    with the same function and payloads.
    """

    name = "remote"

    def __init__(
        self,
        hosts: "Sequence[HostAddress | str] | None" = None,
        *,
        max_streams: int | None = None,
    ) -> None:
        super().__init__()
        if hosts is None:
            addresses = protocol.remote_hosts()
        else:
            addresses = [
                host
                if isinstance(host, HostAddress)
                else protocol.parse_host(host)
                for host in hosts
            ]
        if not addresses:
            raise TranspilerError(
                "RemoteExecutor needs at least one worker host — pass "
                "hosts=[...] or set MIRAGE_REMOTE_HOSTS"
            )
        self.addresses: tuple[HostAddress, ...] = tuple(addresses)
        self.streams_per_host = (
            max(1, max_streams)
            if max_streams is not None
            else protocol.remote_streams()
        )
        self._host_meta: dict[int, dict] = {}

    @property
    def max_workers(self) -> int:
        """Total concurrent chunk streams (drives chunk sizing)."""
        return self.total_streams()

    def total_streams(self) -> int:
        return len(self.addresses) * self.streams_per_host

    def _note_host(
        self, index: int, pid: "int | None", cpu_count: "int | None"
    ) -> None:
        with self._stats_lock:
            self._host_meta[index] = {
                "address": str(self.addresses[index]),
                "pid": pid,
                "cpu_count": cpu_count,
            }

    def host_meta(self) -> list[dict]:
        """Metadata of every host this executor has handshaken with."""
        with self._stats_lock:
            return [
                dict(self._host_meta[index])
                for index in sorted(self._host_meta)
            ]

    def worker_pids(self) -> list[int]:
        """PIDs of handshaken worker hosts (not children of this process)."""
        return [
            meta["pid"]
            for meta in self.host_meta()
            if meta.get("pid") is not None
        ]

    def prewarm(self) -> int:
        """Handshake every configured host once; returns how many answered.

        Unreachable hosts are *not* marked down — they may come up
        before the first dispatch; the session-level connect budget
        deals with hosts that stay dark.
        """
        reachable = 0
        for index, address in enumerate(self.addresses):
            try:
                conn = address.connect(protocol.remote_connect_s())
            except OSError:
                continue
            try:
                write_frame(
                    conn,
                    HELLO,
                    pack_message(
                        {"version": PROTOCOL_VERSION, "pid": os.getpid()}
                    ),
                )
                conn.settimeout(protocol.remote_connect_s())
                ftype, payload = protocol.read_frame(conn)
                if ftype != HELLO_ACK:
                    continue
                ack = unpack_message(payload)
                if ack.get("version") != PROTOCOL_VERSION:
                    raise ProtocolVersionError(
                        f"host {address} speaks protocol "
                        f"{ack.get('version')!r}, this client speaks "
                        f"{PROTOCOL_VERSION}"
                    )
                self._note_host(index, ack.get("pid"), ack.get("cpu_count"))
                reachable += 1
                write_frame(conn, BYE, b"")
            except (OSError, RemoteTransportError):
                continue
            finally:
                with contextlib_suppress_close(conn):
                    pass
        return reachable

    def open_dispatch(
        self,
        fn: Callable[[Any, Any], Any],
        anchors: Sequence[object] = (),
    ) -> DispatchSession:
        return _RemoteDispatchSession(self, fn, anchors)

    def map_shared(
        self,
        fn: Callable[[Any, Any], Any],
        shared: object,
        tasks: Iterable[object],
    ) -> list:
        batch = list(tasks)
        if len(batch) <= 1:
            self._count_dispatch(chunks=len(batch), tasks=len(batch))
            return [fn(shared, task) for task in batch]
        session = self.open_dispatch(fn)
        try:
            slot = session.add_payload(shared)
            futures = session.submit(slot, batch)
            return [
                result for future in futures for result in future.result()
            ]
        finally:
            session.close()

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Iterable[object],
    ) -> list:
        batch = list(tasks)
        if len(batch) <= 1:
            return [fn(task) for task in batch]
        return self.map_shared(_map_call, fn, batch)
