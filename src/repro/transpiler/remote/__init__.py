"""Multi-host trial dispatch: a chaos-hardened remote transport.

The package splits along the wire: :mod:`~repro.transpiler.remote.protocol`
owns the framed protocol (CRC-checked length-prefixed frames, the
version handshake, host addressing and environment knobs),
:mod:`~repro.transpiler.remote.host` is the ``mirage-worker-host``
server process, and :mod:`~repro.transpiler.remote.client` is the
:class:`RemoteExecutor` the batch engine mounts like any other
:class:`~repro.transpiler.executors.TrialExecutor`
(``executor="remote"``).
"""

from repro.transpiler.remote.client import RemoteExecutor
from repro.transpiler.remote.host import WorkerHost
from repro.transpiler.remote.protocol import (
    HEARTBEAT_MISSES,
    PROTOCOL_VERSION,
    FrameReader,
    HostAddress,
    parse_host,
    parse_hosts,
    read_frame,
    remote_connect_s,
    remote_heartbeat_s,
    remote_hosts,
    remote_streams,
    write_frame,
)

__all__ = [
    "RemoteExecutor",
    "WorkerHost",
    "HostAddress",
    "FrameReader",
    "PROTOCOL_VERSION",
    "HEARTBEAT_MISSES",
    "parse_host",
    "parse_hosts",
    "read_frame",
    "write_frame",
    "remote_connect_s",
    "remote_heartbeat_s",
    "remote_hosts",
    "remote_streams",
]
