"""Framed wire protocol between the remote dispatcher and worker hosts.

Every message travelling a worker-host connection is one *frame*::

    MAGIC(4)  TYPE(1)  LENGTH(4, LE)  CRC32(4, LE)  PAYLOAD(LENGTH)

``MAGIC`` rejects cross-protocol garbage at the first byte, ``LENGTH``
prefixes the payload so frames can be reassembled from a byte stream,
and ``CRC32`` covers the payload so a corrupted frame is *detected*
rather than deserialised — a garbled frame surfaces as
:class:`~repro.exceptions.GarbledFrameError` on whichever side read it,
and the connection is abandoned (its state is unknowable).  Frame
payloads are pickled Python objects (:func:`pack_message` /
:func:`unpack_message`); the protocol is a trusted-cluster transport,
like the ``multiprocessing`` pipes it generalises, not an
internet-facing one.

Connections open with a version handshake: the client sends ``HELLO``
carrying :data:`PROTOCOL_VERSION` and the host answers ``HELLO_ACK``
with its own version, pid and core count.  A mismatch raises
:class:`~repro.exceptions.ProtocolVersionError` — a deployment bug, not
a retriable fault.

The module also owns the transport's environment knobs and the
naming scheme of worker-host socket files (``mirage_host_<pid>_<token>``
in the temp directory) and payload spool directories
(``mirage_spool_<pid>_<token>``), both pid-keyed so the janitor
(:func:`repro.transpiler.faults.reap_stale_segments`) can reclaim them
once their host dies.
"""

from __future__ import annotations

import dataclasses
import io
import os
import pickle
import secrets
import socket
import struct
import tempfile
import zlib

from repro.exceptions import (
    GarbledFrameError,
    RemoteTransportError,
    TranspilerError,
)
from repro.transpiler.faults import HOST_SOCKET_PREFIX, SPOOL_PREFIX

#: Protocol revision; bumped on any frame-format or message change.
PROTOCOL_VERSION = 1

#: First bytes of every frame.
MAGIC = b"MRGF"

_HEADER = struct.Struct("<4sBII")

#: Upper bound on one frame's payload — a sanity fence against reading
#: a corrupted length prefix as a multi-gigabyte allocation.
MAX_FRAME_BYTES = 1 << 31

# -- frame types -------------------------------------------------------------

HELLO = 1        # client → host: {"version", "pid"}
HELLO_ACK = 2    # host → client: {"version", "pid", "cpu_count", "smoke"}
PING = 3         # client → host: liveness probe
PONG = 4         # host → client: probe reply
HAS = 5          # client → host: {"digest"} — payload presence query
HAVE = 6         # host → client: {"digest", "have"}
PAYLOAD = 7      # client → host: {"digest", "blob", "oob"} — store payload
PAYLOAD_ACK = 8  # host → client: {"digest"}
CHUNK = 9        # client → host: one chunk of tasks to run
RESULT = 10      # host → client: {"chunk", "ok", "results"|"error"}
HEARTBEAT = 11   # host → client: {"chunk"} — compute still in progress
ERROR = 12       # host → client: {"code", "detail"} — protocol-level error
BYE = 13         # client → host: orderly goodbye


def pack_message(message: object) -> bytes:
    """Serialise one frame payload (highest-protocol pickle)."""
    return pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)


def unpack_message(payload: bytes) -> object:
    """Deserialise one frame payload."""
    return pickle.loads(payload)


def write_frame(
    sock: socket.socket, ftype: int, payload: bytes, garble: bool = False
) -> int:
    """Send one frame; returns the bytes written.

    With ``garble=True`` (fault injection only) one payload byte is
    flipped *after* the CRC was stamped, so the receiver's integrity
    check must catch it — exactly what line corruption looks like.
    Socket failures surface as
    :class:`~repro.exceptions.RemoteTransportError`.
    """
    crc = zlib.crc32(payload)
    data = bytearray(_HEADER.pack(MAGIC, ftype, len(payload), crc))
    data += payload
    if garble and payload:
        data[_HEADER.size + len(payload) // 2] ^= 0xFF
    try:
        sock.sendall(data)
    except OSError as error:
        raise RemoteTransportError(
            f"connection lost while sending frame: {error}"
        ) from error
    return len(data)


def _read_exact(sock: socket.socket, count: int) -> bytes:
    """Blocking read of exactly ``count`` bytes (host side)."""
    buffer = io.BytesIO()
    remaining = count
    while remaining:
        try:
            data = sock.recv(min(remaining, 1 << 20))
        except OSError as error:
            raise RemoteTransportError(
                f"connection lost while reading frame: {error}"
            ) from error
        if not data:
            raise RemoteTransportError(
                "connection closed mid-frame by the peer"
            )
        buffer.write(data)
        remaining -= len(data)
    return buffer.getvalue()


def _check_frame(
    magic: bytes, ftype: int, length: int, crc: int, payload: bytes
) -> tuple[int, bytes]:
    if magic != MAGIC:
        raise GarbledFrameError(
            f"bad frame magic {magic!r} — stream corrupt or foreign"
        )
    if zlib.crc32(payload) != crc:
        raise GarbledFrameError(
            f"frame type {ftype} failed its CRC check ({length} bytes)"
        )
    return ftype, payload


def read_frame(sock: socket.socket) -> tuple[int, bytes]:
    """Blocking read of one complete frame; returns ``(type, payload)``.

    Used host-side, where each connection is served by a dedicated
    thread.  A closed connection raises
    :class:`~repro.exceptions.RemoteTransportError`; a frame failing
    its magic or CRC check raises
    :class:`~repro.exceptions.GarbledFrameError`.
    """
    magic, ftype, length, crc = _HEADER.unpack(_read_exact(sock, _HEADER.size))
    if magic != MAGIC:
        raise GarbledFrameError(
            f"bad frame magic {magic!r} — stream corrupt or foreign"
        )
    if length > MAX_FRAME_BYTES:
        raise GarbledFrameError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    payload = _read_exact(sock, length) if length else b""
    return _check_frame(magic, ftype, length, crc, payload)


class FrameReader:
    """Incremental frame reassembly over a non-blocking byte stream.

    The client reads its sockets with short timeouts (it interleaves
    heartbeat/deadline bookkeeping with receiving), so a read may stop
    mid-frame; this buffer accumulates bytes via :meth:`feed` and
    yields complete frames via :meth:`next_frame` without ever losing a
    partial prefix.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        """Append freshly received bytes."""
        self._buffer += data

    def next_frame(self) -> tuple[int, bytes] | None:
        """Pop one complete frame, or ``None`` until more bytes arrive."""
        if len(self._buffer) < _HEADER.size:
            return None
        magic, ftype, length, crc = _HEADER.unpack_from(self._buffer)
        if magic != MAGIC:
            raise GarbledFrameError(
                f"bad frame magic {bytes(magic)!r} — stream corrupt or foreign"
            )
        if length > MAX_FRAME_BYTES:
            raise GarbledFrameError(
                f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap"
            )
        total = _HEADER.size + length
        if len(self._buffer) < total:
            return None
        payload = bytes(self._buffer[_HEADER.size:total])
        del self._buffer[:total]
        return _check_frame(magic, ftype, length, crc, payload)


# -- host addressing ---------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class HostAddress:
    """One worker-host endpoint: a Unix socket path or a TCP host:port."""

    unix_path: str | None = None
    tcp_host: str | None = None
    tcp_port: int | None = None

    def connect(self, timeout: float) -> socket.socket:
        """Open a connected socket to this host, or raise ``OSError``."""
        if self.unix_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                sock.settimeout(timeout)
                sock.connect(self.unix_path)
            except BaseException:
                sock.close()
                raise
            return sock
        return socket.create_connection(
            (self.tcp_host, self.tcp_port), timeout=timeout
        )

    def __str__(self) -> str:
        if self.unix_path is not None:
            return self.unix_path
        return f"{self.tcp_host}:{self.tcp_port}"


def parse_host(entry: str) -> HostAddress:
    """Parse one host spec: a socket path, or ``host:port`` for TCP.

    Anything containing a path separator (or ending in ``.sock``) is a
    Unix socket path; otherwise the entry must be ``host:port``.
    """
    spec = entry.strip()
    if not spec:
        raise TranspilerError("empty worker-host address")
    if os.sep in spec or spec.endswith(".sock"):
        return HostAddress(unix_path=spec)
    host, separator, port_text = spec.rpartition(":")
    try:
        if not separator or not host:
            raise ValueError(spec)
        return HostAddress(tcp_host=host, tcp_port=int(port_text))
    except ValueError:
        raise TranspilerError(
            f"bad worker-host address {spec!r} — expected a socket path "
            f"or host:port"
        ) from None


def parse_hosts(spec: str) -> list[HostAddress]:
    """Parse a comma-separated ``MIRAGE_REMOTE_HOSTS`` host list."""
    return [
        parse_host(entry) for entry in spec.split(",") if entry.strip()
    ]


def remote_hosts() -> list[HostAddress]:
    """Worker hosts from ``MIRAGE_REMOTE_HOSTS`` (empty when unset)."""
    return parse_hosts(os.environ.get("MIRAGE_REMOTE_HOSTS", ""))


# -- environment knobs -------------------------------------------------------

_HEARTBEAT_S_DEFAULT = 2.0

#: Consecutive missed heartbeats before a host is presumed stale.
HEARTBEAT_MISSES = 3


def remote_heartbeat_s() -> float:
    """Heartbeat interval in seconds (``MIRAGE_REMOTE_HEARTBEAT_S``).

    Hosts emit one ``HEARTBEAT`` frame per interval while computing a
    chunk; a client that hears nothing for :data:`HEARTBEAT_MISSES`
    intervals declares the host stale and replays the chunk elsewhere.
    Checked per session like the local transport switches.
    """
    value = os.environ.get("MIRAGE_REMOTE_HEARTBEAT_S", "").strip()
    if not value:
        return _HEARTBEAT_S_DEFAULT
    try:
        seconds = float(value)
    except ValueError:
        return _HEARTBEAT_S_DEFAULT
    return seconds if seconds > 0 else _HEARTBEAT_S_DEFAULT


_CONNECT_S_DEFAULT = 5.0


def remote_connect_s() -> float:
    """Connect/handshake deadline in seconds (``MIRAGE_REMOTE_CONNECT_S``)."""
    value = os.environ.get("MIRAGE_REMOTE_CONNECT_S", "").strip()
    if not value:
        return _CONNECT_S_DEFAULT
    try:
        seconds = float(value)
    except ValueError:
        return _CONNECT_S_DEFAULT
    return seconds if seconds > 0 else _CONNECT_S_DEFAULT


_STREAMS_DEFAULT = 2


def remote_streams() -> int:
    """Concurrent chunk streams per host (``MIRAGE_REMOTE_STREAMS``).

    Each stream is one connection pulling chunks work-stealing-style
    from the session queue, so a host runs at most this many chunks at
    once.  Default 2 — enough to overlap one chunk's compute with the
    next one's transfer.
    """
    value = os.environ.get("MIRAGE_REMOTE_STREAMS", "").strip()
    if not value:
        return _STREAMS_DEFAULT
    try:
        return max(1, int(value))
    except ValueError:
        return _STREAMS_DEFAULT


# -- host resource naming ----------------------------------------------------


def default_socket_path(token: str | None = None) -> str:
    """A fresh pid-keyed Unix socket path for a worker host."""
    token = token or secrets.token_hex(4)
    return os.path.join(
        tempfile.gettempdir(), f"{HOST_SOCKET_PREFIX}{os.getpid()}_{token}.sock"
    )


def default_spool_dir(token: str | None = None) -> str:
    """A fresh pid-keyed payload spool directory path for a worker host."""
    token = token or secrets.token_hex(4)
    return os.path.join(
        tempfile.gettempdir(), f"{SPOOL_PREFIX}{os.getpid()}_{token}"
    )
