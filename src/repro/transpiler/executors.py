"""Pluggable executors for independent transpilation trials.

The SABRE/MIRAGE layout search runs many independent trials (paper
Section V uses a 20 x 20 budget); each trial only needs the circuit DAG,
a router and its own RNG stream, so the trials are embarrassingly
parallel.  :class:`TrialExecutor` abstracts *how* a batch of such trials
is evaluated:

* :class:`SerialExecutor` — in-process loop (the reference behaviour);
* :class:`ThreadExecutor` — ``concurrent.futures.ThreadPoolExecutor``,
  useful when trials release the GIL or for IO-bound metric oracles;
* :class:`ProcessExecutor` — ``concurrent.futures.ProcessPoolExecutor``
  for real CPU parallelism.  The mapped function and its tasks must be
  picklable (the layout search uses module-level functions and frozen
  dataclasses for exactly this reason).

All executors preserve input order, so a deterministic per-task seeding
scheme yields results that are byte-identical no matter which executor —
or how many workers — ran the batch.  Pool-backed executors create their
pool lazily on first use and can be reused across circuits (the batch
API :func:`repro.core.transpile.transpile_many` shares one executor for
the whole batch); call :meth:`TrialExecutor.close` or use the executor
as a context manager to release workers.

Shared-payload dispatch
-----------------------

Routing trials share almost all of their input: the circuit DAGs, the
coupling map and — heaviest of all — the coverage set are identical for
every trial, only the ``(trial_index, seed)`` pair differs.  Mapping
``fn(task)`` with the shared state baked into each task forces the
process pool to re-pickle that state once per task (or, with
``chunksize``, once per chunk).  :meth:`TrialExecutor.map_shared`
separates the two:

* the *shared* payload is pickled **once per call** in the parent and the
  same byte blob is attached to every chunk;
* workers memoise deserialisation by blob digest, so each worker process
  unpickles a given payload at most once no matter how many chunks it
  pulls;
* the light per-task records are dispatched as many small chunks through
  a work-stealing-style future queue — idle workers pull the next chunk
  instead of being handed a fixed static share — while results are
  reassembled in input order, keeping deterministic seeding schemes
  executor-independent.

Each executor records how much serialisation the last calls cost in
:attr:`TrialExecutor.dispatch_stats` (``shared_pickles``, ``chunks``,
``tasks``), which the batch engine surfaces as provenance and the test
suite uses as a re-pickling regression check.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import functools
import hashlib
import math
import os
import pickle
from collections import OrderedDict
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

from repro.exceptions import TranspilerError

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")
_Shared = TypeVar("_Shared")

#: How many chunks each worker should get on average from
#: :meth:`TrialExecutor.map_shared`.  More chunks per worker improves load
#: balancing when trial durations vary (the work-stealing effect); fewer
#: chunks amortise the per-chunk payload shipping better.
CHUNKS_PER_WORKER = 4

#: Worker-side cap on memoised shared payloads (LRU).  Small: payloads are
#: keyed by content digest, and a batch run only ever has a handful live.
_SHARED_CACHE_LIMIT = 8

_shared_cache: "OrderedDict[str, object]" = OrderedDict()


def _load_shared(digest: str, blob: bytes) -> object:
    """Deserialise a shared payload, memoised by content digest.

    Runs inside worker processes.  The blob bytes still travel with every
    chunk (``ProcessPoolExecutor`` gives no control over worker affinity),
    but the expensive ``pickle.loads`` — rebuilding coverage-set polytopes,
    DAG nodes, numpy arrays — happens at most once per worker per payload.
    """
    try:
        shared = _shared_cache.pop(digest)
    except KeyError:
        shared = pickle.loads(blob)
    _shared_cache[digest] = shared
    while len(_shared_cache) > _SHARED_CACHE_LIMIT:
        _shared_cache.popitem(last=False)
    return shared


def _run_shared_chunk(
    digest: str,
    blob: bytes,
    fn: Callable[[object, object], object],
    tasks: Sequence[object],
) -> list[object]:
    """Evaluate one chunk of light tasks against the memoised payload."""
    shared = _load_shared(digest, blob)
    return [fn(shared, task) for task in tasks]


def _chunk(tasks: Sequence[_Task], size: int) -> Iterator[Sequence[_Task]]:
    for start in range(0, len(tasks), size):
        yield tasks[start:start + size]


class TrialExecutor:
    """Strategy object evaluating a function over a batch of trial tasks."""

    name: str = "executor"

    def __init__(self) -> None:
        self.dispatch_stats: dict[str, int] = {
            "shared_pickles": 0, "chunks": 0, "tasks": 0,
        }

    def map(
        self,
        fn: Callable[[_Task], _Result],
        tasks: Iterable[_Task],
    ) -> list[_Result]:
        """Apply ``fn`` to every task, returning results in input order."""
        raise NotImplementedError

    def map_shared(
        self,
        fn: Callable[[_Shared, _Task], _Result],
        shared: _Shared,
        tasks: Iterable[_Task],
    ) -> list[_Result]:
        """Apply ``fn(shared, task)`` to every task, in input order.

        ``shared`` is the heavy payload common to all tasks (DAGs, coverage
        set, router factory); ``tasks`` are the light per-trial records.
        The base implementation simply closes over ``shared`` — subclasses
        that cross a process boundary override this to serialise the
        payload once per call instead of once per task.
        """
        batch = list(tasks)
        self._count_dispatch(shared_pickles=0, chunks=1, tasks=len(batch))
        return self.map(functools.partial(fn, shared), batch)

    def _count_dispatch(
        self, *, shared_pickles: int, chunks: int, tasks: int
    ) -> None:
        self.dispatch_stats["shared_pickles"] += shared_pickles
        self.dispatch_stats["chunks"] += chunks
        self.dispatch_stats["tasks"] += tasks

    def close(self) -> None:
        """Release any worker resources.  Idempotent."""

    def __enter__(self) -> "TrialExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialExecutor(TrialExecutor):
    """Evaluate trials one after another in the calling process."""

    name = "serial"

    def map(
        self,
        fn: Callable[[_Task], _Result],
        tasks: Iterable[_Task],
    ) -> list[_Result]:
        return [fn(task) for task in tasks]


class _PoolExecutor(TrialExecutor):
    """Shared lazy-pool plumbing for the ``concurrent.futures`` backends."""

    def __init__(self, max_workers: int | None = None) -> None:
        super().__init__()
        if max_workers is not None and max_workers < 1:
            raise TranspilerError("max_workers must be a positive integer")
        self.max_workers = max_workers
        self._pool: concurrent.futures.Executor | None = None

    def _make_pool(self) -> concurrent.futures.Executor:
        raise NotImplementedError

    def map(
        self,
        fn: Callable[[_Task], _Result],
        tasks: Iterable[_Task],
    ) -> list[_Result]:
        batch: Sequence[_Task] = list(tasks)
        if len(batch) <= 1:
            # Not worth dispatching (and keeps single-trial runs pool-free).
            return [fn(task) for task in batch]
        if self._pool is None:
            self._pool = self._make_pool()
        # Chunked dispatch lets pickle memoise objects shared between the
        # tasks of a chunk (DAGs, coverage sets) instead of re-serialising
        # them once per task; harmless for the thread pool.
        workers = self.max_workers or os.cpu_count() or 1
        chunksize = max(1, math.ceil(len(batch) / workers))
        return list(self._pool.map(fn, batch, chunksize=chunksize))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class ThreadExecutor(_PoolExecutor):
    """Evaluate trials on a thread pool."""

    name = "threads"

    def _make_pool(self) -> concurrent.futures.Executor:
        return concurrent.futures.ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-trial"
        )


class ProcessExecutor(_PoolExecutor):
    """Evaluate trials on a process pool.

    The mapped function must be a module-level callable and every task
    must be picklable; :func:`repro.transpiler.passes.run_layout_trial`
    and :class:`repro.transpiler.passes.TrialTask` satisfy both.

    :meth:`map_shared` is the preferred entry point for trial batches: it
    pickles the shared payload exactly once per call, ships it once per
    chunk, and workers memoise deserialisation by content digest.
    """

    name = "processes"

    def _make_pool(self) -> concurrent.futures.Executor:
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.max_workers
        )

    def map_shared(
        self,
        fn: Callable[[_Shared, _Task], _Result],
        shared: _Shared,
        tasks: Iterable[_Task],
    ) -> list[_Result]:
        """Chunked shared-payload dispatch across worker processes.

        The shared payload is serialised once in the parent; the light
        tasks are split into ``~CHUNKS_PER_WORKER`` chunks per worker and
        submitted as individual futures, so idle workers keep pulling
        chunks (work stealing by queue) while slow ones finish.  Results
        are reassembled in input order regardless of completion order.
        """
        batch: Sequence[_Task] = list(tasks)
        if len(batch) <= 1:
            # Not worth a round-trip (keeps single-trial runs pool-free).
            self._count_dispatch(
                shared_pickles=0, chunks=len(batch), tasks=len(batch)
            )
            return [fn(shared, task) for task in batch]
        if self._pool is None:
            self._pool = self._make_pool()
        blob = pickle.dumps(shared, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha1(blob).hexdigest()
        workers = self.max_workers or os.cpu_count() or 1
        size = max(1, math.ceil(len(batch) / (workers * CHUNKS_PER_WORKER)))
        futures = [
            self._pool.submit(_run_shared_chunk, digest, blob, fn, chunk)
            for chunk in _chunk(batch, size)
        ]
        self._count_dispatch(
            shared_pickles=1, chunks=len(futures), tasks=len(batch)
        )
        results: list[_Result] = []
        for future in futures:
            results.extend(future.result())
        return results


#: Registry of executor names accepted by :func:`resolve_executor` (and by
#: the ``executor=`` argument of the transpile APIs).
EXECUTORS: dict[str, type[TrialExecutor]] = {
    "serial": SerialExecutor,
    "threads": ThreadExecutor,
    "thread": ThreadExecutor,
    "processes": ProcessExecutor,
    "process": ProcessExecutor,
}


def resolve_executor(
    executor: "str | TrialExecutor | None",
    max_workers: int | None = None,
) -> TrialExecutor:
    """Coerce an executor specification into a :class:`TrialExecutor`.

    ``None`` means serial; a string is looked up in :data:`EXECUTORS`; an
    existing executor instance is passed through unchanged (``max_workers``
    is ignored for instances — configure them at construction time).
    """
    if executor is None:
        return SerialExecutor()
    if isinstance(executor, TrialExecutor):
        return executor
    if isinstance(executor, str):
        try:
            cls = EXECUTORS[executor.lower()]
        except KeyError:
            known = ", ".join(sorted(set(EXECUTORS)))
            raise TranspilerError(
                f"unknown executor {executor!r} (known: {known})"
            ) from None
        if cls is SerialExecutor:
            return cls()
        return cls(max_workers=max_workers)
    raise TranspilerError(f"cannot interpret {executor!r} as a trial executor")


def owns_executor(executor: "str | TrialExecutor | None") -> bool:
    """Whether :func:`resolve_executor` would create (and thus own) a new
    executor for this specification, rather than borrow an instance."""
    return not isinstance(executor, TrialExecutor)


@contextlib.contextmanager
def executor_scope(
    executor: "str | TrialExecutor | None",
    max_workers: int | None = None,
) -> Iterator[TrialExecutor]:
    """Resolve an executor spec, closing on exit only executors we created.

    Borrowed :class:`TrialExecutor` instances are yielded untouched and
    left open for the caller to reuse; executors built from ``None`` or a
    string spec are closed when the scope exits.
    """
    resolved = resolve_executor(executor, max_workers)
    try:
        yield resolved
    finally:
        if owns_executor(executor):
            resolved.close()
