"""Pluggable executors for independent transpilation trials.

The SABRE/MIRAGE layout search runs many independent trials (paper
Section V uses a 20 x 20 budget); each trial only needs the circuit DAG,
a router and its own RNG stream, so the trials are embarrassingly
parallel.  :class:`TrialExecutor` abstracts *how* a batch of such trials
is evaluated:

* :class:`SerialExecutor` — in-process loop (the reference behaviour);
* :class:`ThreadExecutor` — ``concurrent.futures.ThreadPoolExecutor``,
  useful when trials release the GIL or for IO-bound metric oracles;
* :class:`ProcessExecutor` — ``concurrent.futures.ProcessPoolExecutor``
  for real CPU parallelism.  The mapped function and its tasks must be
  picklable (the layout search uses module-level functions and frozen
  dataclasses for exactly this reason).

All executors preserve input order, so a deterministic per-task seeding
scheme yields results that are byte-identical no matter which executor —
or how many workers — ran the batch.  Pool-backed executors create their
pool lazily on first use and can be reused across circuits (the batch
API :func:`repro.core.transpile.transpile_many` shares one executor for
the whole batch); call :meth:`TrialExecutor.close` or use the executor
as a context manager to release workers.

Shared-payload dispatch
-----------------------

Routing trials share almost all of their input: the circuit DAGs, the
coupling map and — heaviest of all — the coverage set are identical for
every trial, only the ``(trial_index, seed)`` pair differs.  Mapping
``fn(task)`` with the shared state baked into each task forces the
process pool to re-pickle that state once per task (or, with
``chunksize``, once per chunk).  :meth:`TrialExecutor.map_shared`
separates the two:

* the *shared* payload is pickled **once per call** in the parent;
* on hosts with POSIX shared memory the pickled bytes are published into
  a named ``multiprocessing.shared_memory`` segment and each chunk
  carries only a :class:`PayloadHandle` (segment name + content digest)
  — O(1) transport bytes per chunk no matter how large the payload;
* without shared memory (non-POSIX platforms, or
  ``MIRAGE_SHM_DISABLE=1``) the byte blob itself travels with every
  chunk, exactly the pre-shared-memory behaviour;
* workers memoise deserialisation by content digest, so each worker
  process unpickles (and, in shm mode, reads) a given payload at most
  once no matter how many chunks it pulls;
* the light per-task records are dispatched as many small chunks through
  a work-stealing-style future queue — idle workers pull the next chunk
  instead of being handed a fixed static share — while results are
  reassembled in input order, keeping deterministic seeding schemes
  executor-independent.

Segments are unlinked in a ``finally`` block once every chunk of the
dispatch has completed (worker exceptions included), an ``atexit`` guard
in the parent unlinks anything a crashed dispatch left behind, and a
matching worker-side guard closes attachments that never reached their
own ``finally``.

Streaming dispatch sessions
---------------------------

:meth:`TrialExecutor.open_dispatch` generalises :meth:`map_shared` for
the streaming batch scheduler: a :class:`DispatchSession` accepts heavy
payloads *incrementally* (:meth:`DispatchSession.add_payload`) and
returns futures per submitted chunk, so the producer can keep planning
circuits while earlier circuits' trials are already running.  Payloads
of one session may share *anchor* objects (the batch's one coverage
set): anchors are pickled exactly once into their own segment, and every
payload pickled afterwards stores a tiny persistent reference wherever
it contains an anchor object.  The process-backed session requires
shared memory and returns ``None`` from ``open_dispatch`` when the
transport is unavailable, letting callers fall back to the barrier
:meth:`map_shared` path.

Zero-copy payload views
-----------------------

On hosts where the shared-memory transport is active, payloads are laid
out in their segment as **pickle-protocol-5 out-of-band buffers**: the
pickle body and every exported buffer (numpy array data — the coverage
set's half-space ``(A, b)`` matrices, hull point clouds, consolidated
gate unitaries) are written side by side behind a small index header.
Workers unpickle with ``buffers=`` memoryviews over the attached
segment, so those arrays come back as **read-only numpy views of shared
memory** — no per-worker copy of the payload bytes, no matter how many
workers share one coverage set.  Worker attachments are refcounted and
pinned to the memoised payload (:func:`_load_payload`), so views stay
valid for as long as the payload is cached even after the dispatcher
unlinks the segment name (POSIX keeps the mapping alive).  Setting
``MIRAGE_ZEROCOPY_DISABLE=1`` falls back to the copy-on-attach layout
(whole pickled blob in the segment, workers copy then unpickle), and
hosts without shared memory keep the inline-blob transport; results are
byte-identical in every mode.

Each executor records how much serialisation and transport the last
calls cost in :attr:`TrialExecutor.dispatch_stats` (``shared_pickles``,
``payload_pickles``, ``plan_payloads``, ``chunks``, ``tasks``,
``plan_tasks``, ``shm_segments``, ``bytes_shipped``, ``header_bytes``
and worker-side ``bytes_copied``), which the batch engine surfaces as
provenance and the test suite uses as a re-pickling regression check.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import contextlib
import functools
import hashlib
import io
import math
import os
import pickle
import secrets
import struct
import threading
from collections import OrderedDict
from typing import Any, Callable, Iterable, Iterator, Sequence, TypeVar

from repro.exceptions import TranspilerError

try:  # POSIX shared memory is optional — everything degrades to blobs.
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic platforms only
    _shared_memory = None

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")
_Shared = TypeVar("_Shared")

#: How many chunks each worker should get on average from
#: :meth:`TrialExecutor.map_shared`.  More chunks per worker improves load
#: balancing when trial durations vary (the work-stealing effect); fewer
#: chunks amortise the per-chunk dispatch overhead better.
CHUNKS_PER_WORKER = 4

#: Worker-side cap on memoised shared payloads (LRU).  Sized to exceed
#: the streaming scheduler's in-flight window — ``max(4, 2 * workers)``
#: per-circuit payloads plus the session anchor — with headroom, because
#: evicting a live payload would silently re-pay the deserialisation the
#: memo exists to avoid.  Scaled from the host's core count since worker
#: pools default to it.
_SHARED_CACHE_LIMIT = max(64, 4 * (os.cpu_count() or 1) + 8)

#: Prefix of every shared-memory segment this module creates; the cleanup
#: regression tests scan ``/dev/shm`` for it.
SHM_SEGMENT_PREFIX = "mirage_shm_"

#: Magic bytes opening the out-of-band (zero-copy) segment layout; the
#: bytes that follow are the section count and the ``(offset, size)``
#: table (one entry per section, section 0 being the pickle body).
_OOB_MAGIC = b"MIRG5OOB"

#: Alignment of out-of-band sections inside a segment — generous enough
#: for any numpy dtype, so ``frombuffer`` views are always aligned.
_OOB_ALIGN = 64

#: Worker-side count of payload bytes materialised (copied) before
#: unpickling.  Zero-copy loads advance it by the index header only;
#: copy-on-attach and inline-blob loads advance it by the payload size.
#: Chunk runners snapshot it around execution and return the delta, so
#: the dispatcher can aggregate it into ``dispatch_stats``.
_worker_bytes_copied = 0

_shared_cache: "OrderedDict[str, tuple[object, object | None]]" = OrderedDict()

#: Dispatcher-side registry of live segment names (mapped to the pid that
#: created them — forked workers inherit a copy of this dict and must not
#: unlink their parent's segments), unlinked by the atexit guard if a
#: crash skipped the normal ``finally`` unlink.
_created_segments: dict[str, int] = {}

#: Worker-side registry of currently attached segments, closed by the
#: atexit guard if a worker dies between attach and detach.
_attached_segments: dict[int, object] = {}


def shm_transport_enabled() -> bool:
    """Whether dispatches may publish payloads via POSIX shared memory.

    Requires ``multiprocessing.shared_memory`` on a POSIX host — Windows
    named mappings are destroyed when the last open handle closes, and
    the transport deliberately closes the parent's handle right after
    publishing, so only POSIX shm (which persists until unlink) works.
    Switched off by setting ``MIRAGE_SHM_DISABLE=1`` in the environment —
    checked per call, so tests and operators can toggle it without
    re-importing.
    """
    if _shared_memory is None or os.name != "posix":
        return False
    return os.environ.get("MIRAGE_SHM_DISABLE", "") in ("", "0")


def zero_copy_enabled() -> bool:
    """Whether shm payloads use the out-of-band (zero-copy) layout.

    With zero copy, numpy arrays inside a payload are unpickled as
    read-only views over the shared-memory segment instead of per-worker
    copies.  ``MIRAGE_ZEROCOPY_DISABLE=1`` falls back to the
    copy-on-attach layout (checked per call, like the shm switch); the
    flag is independent of :func:`shm_transport_enabled` but only has an
    effect when that transport is active.
    """
    return os.environ.get("MIRAGE_ZEROCOPY_DISABLE", "") in ("", "0")


#: Default for :func:`zero_copy_inline_max`.
_ZEROCOPY_INLINE_MAX_DEFAULT = 256


def zero_copy_inline_max() -> int:
    """Size floor (bytes) for exporting a buffer out-of-band.

    Contiguous buffers smaller than this stay in-band inside the pickle
    body: each export costs a 16-byte index-header entry plus alignment
    padding in the segment, and workers gain nothing from a zero-copy
    view over a few dozen bytes.  Tunable via
    ``MIRAGE_ZEROCOPY_INLINE_MAX`` (``0`` exports everything, matching
    the pre-threshold layout); checked per call like the other
    transport switches.
    """
    value = os.environ.get("MIRAGE_ZEROCOPY_INLINE_MAX", "").strip()
    if not value:
        return _ZEROCOPY_INLINE_MAX_DEFAULT
    try:
        return max(0, int(value))
    except ValueError:
        return _ZEROCOPY_INLINE_MAX_DEFAULT


@atexit.register
def _cleanup_segments() -> None:  # pragma: no cover - exercised at exit
    """Last-resort guard: unlink created and close attached segments."""
    pid = os.getpid()
    for name, owner in list(_created_segments.items()):
        if owner == pid:
            _unlink_segment(name)
    for shm in list(_attached_segments.values()):
        with contextlib.suppress(Exception):
            shm.close()
    _attached_segments.clear()
    for attachment in list(_segment_attachments.values()):
        _close_attachment_quietly(attachment.shm)
    _segment_attachments.clear()


class _SegmentAttachment:
    """A refcounted worker-side attachment to one payload segment.

    Zero-copy payloads hand out numpy views over the attached buffer, so
    the attachment must outlive every memoised payload that references
    it.  Each memo entry holds one reference; the last release closes
    the mapping (a ``BufferError`` — live views still exported — is
    tolerated: the views keep the mmap alive and the OS reclaims it when
    they die).
    """

    __slots__ = ("name", "shm", "refs")

    def __init__(self, name: str, shm: object) -> None:
        self.name = name
        self.shm = shm
        self.refs = 0


#: Worker-side registry of refcounted attachments, keyed by segment name.
_segment_attachments: dict[str, _SegmentAttachment] = {}


def _acquire_segment(name: str) -> _SegmentAttachment:
    """Attach (or re-reference) a segment; pairs with :func:`_release_attachment`."""
    attachment = _segment_attachments.get(name)
    if attachment is None:
        attachment = _SegmentAttachment(name, _attach_segment(name))
        _segment_attachments[name] = attachment
    attachment.refs += 1
    return attachment


def _close_attachment_quietly(shm: object) -> None:
    """Close an attachment, orphaning the mapping to any live views.

    Numpy views handed out by a zero-copy load export the underlying
    mmap, so a plain ``close()`` raises ``BufferError`` — and would
    raise again, noisily, from ``SharedMemory.__del__``.  In that case
    the mmap reference is dropped without closing it (the views keep it
    alive; the OS unmaps when the last one dies) and only the file
    descriptor is closed, leaving nothing for the finaliser to do.
    """
    try:
        shm.close()
    except BufferError:
        with contextlib.suppress(Exception):
            shm._mmap = None
            fd = getattr(shm, "_fd", -1)
            if fd >= 0:
                os.close(fd)
                shm._fd = -1
    except Exception:  # pragma: no cover - platform-specific close errors
        pass


def _release_attachment(attachment: "_SegmentAttachment | None") -> None:
    """Drop one reference; the last one closes the attachment."""
    if attachment is None:
        return
    attachment.refs -= 1
    if attachment.refs <= 0:
        _segment_attachments.pop(attachment.name, None)
        _close_attachment_quietly(attachment.shm)


def reset_worker_state() -> None:
    """Drop this process's payload memo and release its attachments.

    Test hook (and fork hygiene helper): evicts every memoised payload
    and dereferences the zero-copy attachments behind them.  Arrays that
    still view a released segment stay readable — they pin the mapping —
    but new loads re-attach from scratch.
    """
    global _worker_bytes_copied
    while _shared_cache:
        _, (_, attachment) = _shared_cache.popitem(last=False)
        _release_attachment(attachment)
    _worker_bytes_copied = 0


class _ViewReader(io.RawIOBase):
    """Minimal read-only file over a memoryview — no upfront body copy.

    Feeding ``io.BytesIO(view)`` to the unpickler would copy the whole
    pickle body out of the segment; this adapter lets the unpickler
    stream it instead (it buffers internally in small frames).
    """

    def __init__(self, view: memoryview) -> None:
        super().__init__()
        self._view = view
        self._pos = 0

    def readable(self) -> bool:  # noqa: D102 - io protocol
        return True

    def readinto(self, target) -> int:  # noqa: D102 - io protocol
        count = min(len(target), len(self._view) - self._pos)
        target[:count] = self._view[self._pos:self._pos + count]
        self._pos += count
        return count


def _attach_segment(name: str):
    """Attach an existing segment without registering it for tracking.

    Attaching must never make this process responsible for the segment's
    lifetime: before Python 3.13 (``track=False``), ``SharedMemory``
    registers even plain attaches with the resource tracker, which would
    unlink the dispatcher's segment when a worker exits — so the
    registration is undone explicitly on those versions.
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    # Pre-3.13 fallback: plain attaches register with the resource
    # tracker.  Registering and immediately unregistering is not safe —
    # the tracker keeps a *set*, so a concurrent attach in a sibling
    # worker can interleave its register/unregister pair with ours and
    # with the dispatcher's final unlink, leaving the tracker to unlink
    # a name it no longer knows (a noisy KeyError at best, an early
    # unlink at worst).  Suppressing the registration call for the
    # duration of the attach avoids the message pair entirely.
    from multiprocessing import resource_tracker  # pragma: no cover

    original_register = resource_tracker.register
    try:
        resource_tracker.register = lambda *args, **kwargs: None
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def _unlink_segment(name: str) -> None:
    """Best-effort unlink of a segment this process created.

    Attaches *with* tracking (unlike worker-side attaches) so the
    resource tracker's register/unregister bookkeeping stays balanced:
    the tracked attach re-registers the name that creation registered,
    and ``unlink`` unregisters it exactly once.
    """
    _created_segments.pop(name, None)
    if _shared_memory is None:
        return
    try:
        shm = _shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    with contextlib.suppress(Exception):
        shm.close()
    with contextlib.suppress(FileNotFoundError):
        shm.unlink()


class PayloadHandle:
    """Transport descriptor of one pickled payload.

    In shared-memory mode only ``segment``/``digest``/``size`` travel with
    each chunk — O(1) bytes regardless of payload size; in blob mode the
    pickled ``blob`` itself is attached.  ``header`` is non-zero for
    segments using the out-of-band (zero-copy) layout and gives the size
    of the index header at the start of the segment.  ``oob_buffers``
    carries the protocol-5 buffers inline when an out-of-band pickle
    could not get a segment (the blob is then just the pickle body).
    Workers resolve a handle to the deserialised object via
    :func:`_load_payload`, memoised by ``digest``.
    """

    __slots__ = ("digest", "size", "segment", "blob", "header", "oob_buffers")

    def __init__(
        self,
        digest: str,
        size: int,
        segment: str | None = None,
        blob: bytes | None = None,
        header: int = 0,
        oob_buffers: tuple[bytes, ...] | None = None,
    ) -> None:
        self.digest = digest
        self.size = size
        self.segment = segment
        self.blob = blob
        self.header = header
        self.oob_buffers = oob_buffers

    @property
    def shipped_bytes(self) -> int:
        """Transport bytes this handle adds to every chunk it rides on."""
        if self.segment is not None:
            return len(self.segment) + len(self.digest) + 16
        return self.size + len(self.digest) + 16

    def fetch(self) -> bytes:
        """Materialise the pickled payload bytes (worker side).

        Only valid for whole-blob payloads; zero-copy (out-of-band)
        payloads have no single byte string to fetch — they are
        deserialised in place via :func:`_load_payload`.
        """
        if self.header:
            raise TranspilerError(
                "zero-copy payloads are loaded in place, not fetched"
            )
        if self.segment is None:
            assert self.blob is not None
            return self.blob
        shm = _attach_segment(self.segment)
        key = id(shm)
        _attached_segments[key] = shm
        try:
            return bytes(shm.buf[: self.size])
        finally:
            with contextlib.suppress(Exception):
                shm.close()
            _attached_segments.pop(key, None)

    def __getstate__(self) -> tuple:
        return (
            self.digest, self.size, self.segment, self.blob, self.header,
            self.oob_buffers,
        )

    def __setstate__(self, state: tuple) -> None:
        (
            self.digest, self.size, self.segment, self.blob, self.header,
            self.oob_buffers,
        ) = state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.segment is None:
            mode = "blob"
        elif self.header:
            mode = "shm+oob"
        else:
            mode = "shm"
        return (
            f"PayloadHandle({mode}, digest={self.digest[:8]}…, "
            f"size={self.size})"
        )


def _new_segment(size: int):
    """Create a fresh named segment, or ``None`` when creation fails."""
    name = f"{SHM_SEGMENT_PREFIX}{os.getpid()}_{secrets.token_hex(4)}"
    try:
        segment = _shared_memory.SharedMemory(
            name=name, create=True, size=max(1, size)
        )
    except OSError:
        return None
    _created_segments[name] = os.getpid()
    return segment


def _publish_payload(blob: bytes) -> PayloadHandle:
    """Publish pickled bytes for worker consumption (whole-blob layout).

    Prefers a named shared-memory segment (transport per chunk drops to
    O(1) bytes); falls back to shipping the blob inline when the shm
    transport is disabled, unavailable, or segment creation fails.
    """
    digest = hashlib.sha1(blob).hexdigest()
    if shm_transport_enabled():
        segment = _new_segment(len(blob))
        if segment is not None:
            name = segment.name
            try:
                segment.buf[: len(blob)] = blob
            finally:
                segment.close()
            return PayloadHandle(digest=digest, size=len(blob), segment=name)
    return PayloadHandle(digest=digest, size=len(blob), blob=blob)


def _align_oob(offset: int) -> int:
    return -(-offset // _OOB_ALIGN) * _OOB_ALIGN


def _digest_sections(sections: Sequence[memoryview]) -> str:
    """Content digest of an out-of-band section list, length-framed.

    Each section's byte length is hashed ahead of its bytes so two
    payloads whose concatenated sections coincide but split differently
    can never alias to one digest — the worker memo is keyed by this.
    """
    digest = hashlib.sha1()
    for section in sections:
        digest.update(struct.pack("<Q", section.nbytes))
        digest.update(section)
    return digest.hexdigest()


def _publish_object_oob(
    obj: object, anchors: Sequence[object]
) -> PayloadHandle | None:
    """Publish an object as out-of-band sections in one shm segment.

    Layout: ``_OOB_MAGIC``, a ``uint64`` section count, then one
    ``(uint64 offset, uint64 size)`` pair per section; section 0 is the
    pickle body, sections 1+ are the protocol-5 out-of-band buffers, each
    aligned to :data:`_OOB_ALIGN`.  Buffers smaller than
    :func:`zero_copy_inline_max` stay in-band inside the pickle body —
    exporting a 32-byte array would cost a 16-byte index entry plus up to
    63 bytes of alignment padding, and a worker-side view over it saves
    nothing — so spec-heavy payloads full of tiny arrays keep a short
    index header.  When segment creation fails (shm pressure) the
    already-serialised body and buffers are shipped inline instead of
    being re-pickled; ``None`` is returned only when an exporter produced
    a non-contiguous buffer, in which case the caller must re-pickle
    in-band.
    """
    inline_max = zero_copy_inline_max()
    raws: list[memoryview] = []

    def _export(buffer: pickle.PickleBuffer) -> bool:
        # A truthy return keeps the buffer in-band (PEP 574); raw() raises
        # BufferError for non-contiguous exporters, aborting the dump.
        raw = buffer.raw()
        if raw.nbytes < inline_max:
            return True
        raws.append(raw)
        return False

    try:
        body = _dumps_anchored(obj, anchors, buffer_callback=_export)
    except BufferError:  # pragma: no cover - non-contiguous exporter
        return None
    sections: list[memoryview] = [memoryview(body), *raws]
    header = 16 + 16 * len(sections)
    offsets: list[int] = []
    cursor = header
    for section in sections:
        cursor = _align_oob(cursor)
        offsets.append(cursor)
        cursor += section.nbytes
    segment = _new_segment(cursor)
    if segment is None:
        # Segment creation failed (shm pressure) *after* the expensive
        # object-graph pickle already ran — reuse it: ship the body and
        # its out-of-band buffers inline rather than re-pickling in-band.
        return PayloadHandle(
            digest=_digest_sections(sections),
            size=sum(section.nbytes for section in sections),
            blob=body,
            oob_buffers=tuple(bytes(raw) for raw in sections[1:]),
        )
    name = segment.name
    try:
        buf = segment.buf
        struct.pack_into("<8sQ", buf, 0, _OOB_MAGIC, len(sections))
        for index, (offset, section) in enumerate(zip(offsets, sections)):
            struct.pack_into("<QQ", buf, 16 + 16 * index, offset, section.nbytes)
            buf[offset:offset + section.nbytes] = section
    finally:
        segment.close()
    return PayloadHandle(
        digest=_digest_sections(sections),
        size=cursor,
        segment=name,
        header=header,
    )


def _publish_object(obj: object, anchors: Sequence[object] = ()) -> PayloadHandle:
    """Serialise and publish one payload object for worker consumption.

    Uses the zero-copy out-of-band layout whenever the shm transport is
    active and ``MIRAGE_ZEROCOPY_DISABLE`` is unset; otherwise (or when
    segment creation fails) degrades to the whole-blob layout — in a
    segment when shm is available, inline on the chunk otherwise.
    """
    if shm_transport_enabled() and zero_copy_enabled():
        handle = _publish_object_oob(obj, anchors)
        if handle is not None:
            return handle
    return _publish_payload(_dumps_anchored(obj, anchors))


def _memoise(
    key: str, loader: Callable[[], tuple[object, object]]
) -> object:
    """LRU-memoise a deserialised payload in this (worker) process.

    ``loader`` returns ``(payload, attachment)``; the attachment (a
    :class:`_SegmentAttachment` for zero-copy payloads, else ``None``)
    is pinned alongside the cache entry and released on eviction, so
    views into shared memory stay valid for exactly as long as the
    payload they belong to is cached.
    """
    try:
        entry = _shared_cache.pop(key)
    except KeyError:
        entry = loader()
    _shared_cache[key] = entry
    while len(_shared_cache) > _SHARED_CACHE_LIMIT:
        _, (_, attachment) = _shared_cache.popitem(last=False)
        _release_attachment(attachment)
    return entry[0]


class _AnchorPickler(pickle.Pickler):
    """Pickler replacing anchor objects with tiny persistent references.

    Payloads of one dispatch session frequently embed the same heavy
    object (the batch's coverage set, reachable through router factories
    *and* selection metrics).  Pickling those payloads through this class
    stores ``(index)`` wherever an anchor object appears, so the anchor
    bytes exist exactly once — in the session's anchor payload.
    """

    def __init__(
        self,
        buffer: io.BytesIO,
        anchors: Sequence[object],
        buffer_callback: Callable | None = None,
    ) -> None:
        super().__init__(
            buffer,
            protocol=pickle.HIGHEST_PROTOCOL,
            buffer_callback=buffer_callback,
        )
        self._anchor_ids = {id(obj): index for index, obj in enumerate(anchors)}

    def persistent_id(self, obj: object):  # noqa: D102 - pickle hook
        return self._anchor_ids.get(id(obj))


class _AnchorUnpickler(pickle.Unpickler):
    """Unpickler resolving persistent references against loaded anchors."""

    def __init__(
        self,
        buffer,
        anchors: Sequence[object],
        buffers: Iterable[memoryview] | None = None,
    ) -> None:
        super().__init__(buffer, buffers=buffers)
        self._anchors = anchors

    def persistent_load(self, pid):  # noqa: D102 - pickle hook
        return self._anchors[pid]


def _dumps_anchored(
    payload: object,
    anchors: Sequence[object],
    buffer_callback: Callable | None = None,
) -> bytes:
    buffer = io.BytesIO()
    _AnchorPickler(buffer, anchors, buffer_callback).dump(payload)
    return buffer.getvalue()


def _loads_anchored(
    blob: bytes,
    anchors: Sequence[object],
    buffers: Sequence[bytes] | None = None,
) -> object:
    return _AnchorUnpickler(io.BytesIO(blob), anchors, buffers=buffers).load()


def _load_oob(
    handle: PayloadHandle, anchors: Sequence[object]
) -> tuple[object, _SegmentAttachment]:
    """Deserialise an out-of-band payload as views over its segment.

    The pickle body is streamed straight out of the attached segment and
    every protocol-5 buffer is handed to the unpickler as a *read-only*
    memoryview slice, so numpy arrays come back as views of shared
    memory.  Only the index header is materialised — the returned
    attachment pins the mapping for the payload's cache lifetime.
    """
    global _worker_bytes_copied
    attachment = _acquire_segment(handle.segment)
    try:
        view = memoryview(attachment.shm.buf).toreadonly()
        magic, count = struct.unpack_from("<8sQ", view, 0)
        if magic != _OOB_MAGIC:
            raise TranspilerError(
                f"segment {handle.segment!r} is not an out-of-band payload"
            )
        table = [
            struct.unpack_from("<QQ", view, 16 + 16 * index)
            for index in range(count)
        ]
        body_offset, body_size = table[0]
        buffers = [view[offset:offset + size] for offset, size in table[1:]]
        reader = io.BufferedReader(
            _ViewReader(view[body_offset:body_offset + body_size])
        )
        payload = _AnchorUnpickler(reader, anchors, buffers=buffers).load()
    except BaseException:
        _release_attachment(attachment)
        raise
    _worker_bytes_copied += 16 + 16 * count
    return payload, attachment


def _load_payload(
    handle: PayloadHandle,
    anchor_handle: PayloadHandle | None = None,
) -> object:
    """Deserialise a payload handle, memoised by content digest.

    Runs inside worker processes.  The expensive work — attaching the
    segment (or receiving the blob) and unpickling coverage-set
    polytopes, DAG nodes, numpy arrays — happens at most once per worker
    per payload.  Zero-copy handles rebuild their arrays as read-only
    views over the attached segment; blob handles materialise the bytes
    first (counted in the worker's ``bytes_copied``).
    """
    anchors: Sequence[object] = ()
    key = handle.digest
    if anchor_handle is not None:
        anchors = _load_payload(anchor_handle)
        key = f"{anchor_handle.digest}:{handle.digest}"

    def loader() -> tuple[object, _SegmentAttachment | None]:
        global _worker_bytes_copied
        if handle.header:
            return _load_oob(handle, anchors)
        blob = handle.fetch()
        buffers = handle.oob_buffers
        _worker_bytes_copied += len(blob) + sum(
            len(buffer) for buffer in buffers or ()
        )
        return _loads_anchored(blob, anchors, buffers), None

    return _memoise(key, loader)


def _load_shared(handle: PayloadHandle) -> object:
    """Back-compat alias of :func:`_load_payload` without anchors."""
    return _load_payload(handle)


def _run_shared_chunk(
    handle: PayloadHandle,
    fn: Callable[[object, object], object],
    tasks: Sequence[object],
) -> tuple[list[object], int]:
    """Evaluate one chunk of light tasks against the memoised payload.

    Returns the chunk's results plus the payload bytes this call
    materialised worker-side (zero when the payload was already memoised
    or arrived as zero-copy views).
    """
    global _worker_bytes_copied
    before = _worker_bytes_copied
    shared = _load_payload(handle)
    results = [fn(shared, task) for task in tasks]
    return results, _worker_bytes_copied - before


def _run_session_chunk(
    anchor_handle: PayloadHandle | None,
    payload_handle: PayloadHandle,
    fn: Callable[[object, object], object],
    tasks: Sequence[object],
    encode: bool = False,
) -> tuple[list[object], int]:
    """Evaluate one streamed chunk against its anchored payload.

    With ``encode=True`` each result is re-pickled with persistent
    references to the session anchors before travelling back, so heavy
    anchor objects (the coverage set) never ride the return path — the
    parent resolves them via :meth:`DispatchSession.decode`.
    """
    global _worker_bytes_copied
    before = _worker_bytes_copied
    anchors: Sequence[object] = ()
    if anchor_handle is not None:
        anchors = _load_payload(anchor_handle)
    shared = _load_payload(payload_handle, anchor_handle)
    results = [fn(shared, task) for task in tasks]
    if encode:
        results = [_dumps_anchored(result, anchors) for result in results]
    return results, _worker_bytes_copied - before


def _run_local_chunk(
    fn: Callable[[object, object], object],
    shared: object,
    tasks: Sequence[object],
) -> list[object]:
    """In-process chunk evaluation for serial/thread dispatch sessions."""
    return [fn(shared, task) for task in tasks]


def _chunk(tasks: Sequence[_Task], size: int) -> Iterator[Sequence[_Task]]:
    for start in range(0, len(tasks), size):
        yield tasks[start:start + size]


class DispatchSession:
    """Incremental shared-payload dispatch onto one executor.

    A session is the streaming counterpart of
    :meth:`TrialExecutor.map_shared`: heavy payloads are registered one
    at a time (:meth:`add_payload`), light task chunks are submitted
    against a registered payload (:meth:`submit`, returning one future
    per chunk whose result is the list of that chunk's outputs, in task
    order), and :meth:`close` releases every transport resource once all
    futures have drained.  Use it as a context manager so segments are
    unlinked even when a worker raises.

    ``submit`` accepts a per-call ``fn`` override, which is how the
    batch engine runs *planning* tasks on the same session (and the same
    anchors) as the routing trials; submissions flagged ``kind="plan"``
    are counted under the ``plan_tasks``/``plan_payloads`` provenance
    keys instead of ``tasks``/``payload_pickles``.  Results submitted
    with ``encode=True`` come back anchor-encoded from serialising
    transports and must run through :meth:`decode`.
    """

    #: Whether submitted chunks can execute concurrently with the
    #: submitting thread (drives the ``plan="auto"`` resolution).
    parallel = False

    def __init__(self, fn: Callable[[Any, Any], Any]) -> None:
        self.fn = fn
        self._futures: list[concurrent.futures.Future] = []
        self._closed = False

    def _count_submit(
        self, kind: str, chunks: int, tasks: int, bytes_shipped: int = 0
    ) -> None:
        """Fold one submission into the executor's dispatch counters.

        The single place mapping a submission ``kind`` onto provenance
        keys: ``"plan"`` submissions count under ``plan_tasks``, anything
        else under ``tasks`` (subclasses set ``self._executor``).
        """
        if kind == "plan":
            self._executor._count_dispatch(
                chunks=chunks, plan_tasks=tasks, bytes_shipped=bytes_shipped
            )
        else:
            self._executor._count_dispatch(
                chunks=chunks, tasks=tasks, bytes_shipped=bytes_shipped
            )

    def _count_payload(self, kind: str) -> None:
        """Fold one payload registration into the dispatch counters."""
        if kind == "plan":
            self._executor._count_dispatch(plan_payloads=1)
        else:
            self._executor._count_dispatch(payload_pickles=1)

    def add_payload(self, payload: object, kind: str = "payload") -> int:
        """Register a heavy payload; returns its slot for :meth:`submit`."""
        raise NotImplementedError

    def submit(
        self,
        slot: int,
        tasks: Sequence[object],
        *,
        fn: Callable[[Any, Any], Any] | None = None,
        encode: bool = False,
        kind: str = "trial",
    ) -> list[concurrent.futures.Future]:
        """Dispatch ``tasks`` against payload ``slot`` as chunked futures."""
        raise NotImplementedError

    def decode(self, result: object) -> object:
        """Resolve one ``encode=True`` result against the session anchors.

        The identity function on transports that never serialise results
        (inline and thread sessions).
        """
        return result

    def release(self, slot: int) -> None:
        """Drop payload ``slot``'s resources once its futures have drained.

        Callers must have collected every future submitted against the
        slot first; streaming drivers call this per circuit so a long
        batch holds only a bounded number of payloads (and shared-memory
        segments) at any moment, rather than all of them until
        :meth:`close`.  Releasing a slot twice is a no-op.
        """

    def outstanding(self) -> int:
        """Number of submitted chunk futures that have not completed."""
        self._futures = [f for f in self._futures if not f.done()]
        return len(self._futures)

    def close(self) -> None:
        """Wait for in-flight futures and release transport resources."""
        if self._closed:
            return
        self._closed = True
        if self._futures:
            concurrent.futures.wait(self._futures)
            self._futures = []

    def __enter__(self) -> "DispatchSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _LocalDispatchSession(DispatchSession):
    """Shared slot bookkeeping for sessions that never serialise payloads."""

    def __init__(
        self, executor: "TrialExecutor", fn: Callable[[Any, Any], Any]
    ) -> None:
        super().__init__(fn)
        self._executor = executor
        self._payloads: list[object] = []

    def add_payload(self, payload: object, kind: str = "payload") -> int:
        self._payloads.append(payload)
        return len(self._payloads) - 1

    def release(self, slot: int) -> None:
        self._payloads[slot] = None


class _InlineDispatchSession(_LocalDispatchSession):
    """Serial session: chunks run at submit time, futures are pre-resolved."""

    def submit(
        self,
        slot: int,
        tasks: Sequence[object],
        *,
        fn: Callable[[Any, Any], Any] | None = None,
        encode: bool = False,
        kind: str = "trial",
    ) -> list[concurrent.futures.Future]:
        future: concurrent.futures.Future = concurrent.futures.Future()
        try:
            future.set_result(
                _run_local_chunk(fn or self.fn, self._payloads[slot], tasks)
            )
        except BaseException as error:  # noqa: BLE001 - mirror pool futures
            future.set_exception(error)
        self._count_submit(kind, 1, len(tasks))
        return [future]


class _ThreadDispatchSession(_LocalDispatchSession):
    """Thread-pool session: chunks close over the payload, no serialisation."""

    parallel = True

    def submit(
        self,
        slot: int,
        tasks: Sequence[object],
        *,
        fn: Callable[[Any, Any], Any] | None = None,
        encode: bool = False,
        kind: str = "trial",
    ) -> list[concurrent.futures.Future]:
        pool = self._executor._ensure_pool()
        batch = list(tasks)
        workers = self._executor.max_workers or os.cpu_count() or 1
        size = max(1, math.ceil(len(batch) / workers))
        futures = [
            pool.submit(
                _run_local_chunk, fn or self.fn, self._payloads[slot], chunk
            )
            for chunk in _chunk(batch, size)
        ]
        self._futures.extend(futures)
        self._count_submit(kind, len(futures), len(batch))
        return futures


class _ShmDispatchSession(DispatchSession):
    """Process-pool session over shared-memory payload segments.

    Anchor objects are pickled once into one segment; every payload added
    later is pickled with persistent references to them, so the batch's
    coverage set crosses the process boundary exactly once.  Chunks carry
    only the two :class:`PayloadHandle` descriptors — O(1) transport.

    Segment creation failing *mid-session* (shm pressure appearing after
    the open-time probe passed) degrades that one payload to inline-blob
    shipping — correct, observable via ``bytes_shipped``, and bounded to
    the few chunks of the affected circuit.
    """

    parallel = True

    def __init__(
        self,
        executor: "ProcessExecutor",
        fn: Callable[[Any, Any], Any],
        anchors: Sequence[object] = (),
    ) -> None:
        super().__init__(fn)
        self._executor = executor
        self._anchors = tuple(anchors)
        self._handles: list[PayloadHandle | None] = []
        self._segments: list[str] = []
        self._anchor_handle: PayloadHandle | None = None
        if self._anchors:
            self._anchor_handle = self._record(self._anchors, ())
            executor._count_dispatch(shared_pickles=1)

    def _record(
        self, payload: object, anchors: Sequence[object]
    ) -> PayloadHandle:
        handle = _publish_object(payload, anchors)
        if handle.segment is not None:
            self._segments.append(handle.segment)
            self._executor._count_dispatch(
                shm_segments=1, header_bytes=handle.header
            )
        return handle

    def add_payload(self, payload: object, kind: str = "payload") -> int:
        handle = self._record(payload, self._anchors)
        self._handles.append(handle)
        self._count_payload(kind)
        return len(self._handles) - 1

    def release(self, slot: int) -> None:
        handle = self._handles[slot]
        if handle is None:
            return
        self._handles[slot] = None
        if handle.segment is not None:
            with contextlib.suppress(ValueError):
                self._segments.remove(handle.segment)
            _unlink_segment(handle.segment)

    def decode(self, result: object) -> object:
        return _loads_anchored(result, self._anchors)

    def _wrap_chunk_future(
        self, raw: concurrent.futures.Future
    ) -> concurrent.futures.Future:
        """Unwrap ``(results, bytes_copied)`` chunk returns transparently.

        The worker-side copy count is folded into the executor's
        dispatch stats as chunks complete; callers see a future whose
        result is just the chunk's result list, exactly as the local
        sessions deliver it.
        """
        wrapped: concurrent.futures.Future = concurrent.futures.Future()
        executor = self._executor

        def _transfer(done: concurrent.futures.Future) -> None:
            error = done.exception()
            if error is not None:
                wrapped.set_exception(error)
                return
            results, copied = done.result()
            executor._count_dispatch(bytes_copied=copied)
            wrapped.set_result(results)

        raw.add_done_callback(_transfer)
        return wrapped

    def submit(
        self,
        slot: int,
        tasks: Sequence[object],
        *,
        fn: Callable[[Any, Any], Any] | None = None,
        encode: bool = False,
        kind: str = "trial",
    ) -> list[concurrent.futures.Future]:
        pool = self._executor._ensure_pool()
        batch = list(tasks)
        handle = self._handles[slot]
        workers = self._executor.max_workers or os.cpu_count() or 1
        size = max(1, math.ceil(len(batch) / (workers * CHUNKS_PER_WORKER)))
        futures = [
            self._wrap_chunk_future(
                pool.submit(
                    _run_session_chunk,
                    self._anchor_handle,
                    handle,
                    fn or self.fn,
                    chunk,
                    encode,
                )
            )
            for chunk in _chunk(batch, size)
        ]
        self._futures.extend(futures)
        shipped = handle.shipped_bytes + (
            self._anchor_handle.shipped_bytes if self._anchor_handle else 0
        )
        self._count_submit(
            kind, len(futures), len(batch),
            bytes_shipped=shipped * len(futures),
        )
        return futures

    def close(self) -> None:
        if self._closed:
            return
        try:
            super().close()
        finally:
            while self._segments:
                _unlink_segment(self._segments.pop())


class TrialExecutor:
    """Strategy object evaluating a function over a batch of trial tasks."""

    name: str = "executor"

    def __init__(self) -> None:
        self.dispatch_stats: dict[str, int] = {
            "shared_pickles": 0,
            "payload_pickles": 0,
            "plan_payloads": 0,
            "chunks": 0,
            "tasks": 0,
            "plan_tasks": 0,
            "shm_segments": 0,
            "bytes_shipped": 0,
            "header_bytes": 0,
            "bytes_copied": 0,
        }
        # Chunk completion callbacks fold worker-side copy counts in from
        # the pool's collector thread, so counter updates are locked.
        self._stats_lock = threading.Lock()

    def map(
        self,
        fn: Callable[[_Task], _Result],
        tasks: Iterable[_Task],
    ) -> list[_Result]:
        """Apply ``fn`` to every task, returning results in input order."""
        raise NotImplementedError

    def map_shared(
        self,
        fn: Callable[[_Shared, _Task], _Result],
        shared: _Shared,
        tasks: Iterable[_Task],
    ) -> list[_Result]:
        """Apply ``fn(shared, task)`` to every task, in input order.

        ``shared`` is the heavy payload common to all tasks (DAGs, coverage
        set, router factory); ``tasks`` are the light per-trial records.
        The base implementation simply closes over ``shared`` — subclasses
        that cross a process boundary override this to serialise the
        payload once per call instead of once per task.
        """
        batch = list(tasks)
        self._count_dispatch(chunks=1, tasks=len(batch))
        return self.map(functools.partial(fn, shared), batch)

    def open_dispatch(
        self,
        fn: Callable[[_Shared, _Task], _Result],
        anchors: Sequence[object] = (),
    ) -> DispatchSession | None:
        """Open a streaming :class:`DispatchSession` for ``fn``.

        ``anchors`` are heavy objects shared by many payloads (the batch's
        coverage set); transports that serialise payloads ship each anchor
        exactly once.  Returns ``None`` when this executor cannot stream
        efficiently (the process pool without a shared-memory transport),
        in which case callers should fall back to :meth:`map_shared`.
        """
        return _InlineDispatchSession(self, fn)

    def _count_dispatch(self, **deltas: int) -> None:
        with self._stats_lock:
            for key, value in deltas.items():
                self.dispatch_stats[key] += value

    def close(self) -> None:
        """Release any worker resources.  Idempotent."""

    def __enter__(self) -> "TrialExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialExecutor(TrialExecutor):
    """Evaluate trials one after another in the calling process."""

    name = "serial"

    def map(
        self,
        fn: Callable[[_Task], _Result],
        tasks: Iterable[_Task],
    ) -> list[_Result]:
        return [fn(task) for task in tasks]


class _PoolExecutor(TrialExecutor):
    """Shared lazy-pool plumbing for the ``concurrent.futures`` backends."""

    def __init__(self, max_workers: int | None = None) -> None:
        super().__init__()
        if max_workers is not None and max_workers < 1:
            raise TranspilerError("max_workers must be a positive integer")
        self.max_workers = max_workers
        self._pool: concurrent.futures.Executor | None = None

    def _make_pool(self) -> concurrent.futures.Executor:
        raise NotImplementedError

    def _ensure_pool(self) -> concurrent.futures.Executor:
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def map(
        self,
        fn: Callable[[_Task], _Result],
        tasks: Iterable[_Task],
    ) -> list[_Result]:
        batch: Sequence[_Task] = list(tasks)
        if len(batch) <= 1:
            # Not worth dispatching (and keeps single-trial runs pool-free).
            return [fn(task) for task in batch]
        pool = self._ensure_pool()
        # Chunked dispatch lets pickle memoise objects shared between the
        # tasks of a chunk (DAGs, coverage sets) instead of re-serialising
        # them once per task; harmless for the thread pool.
        workers = self.max_workers or os.cpu_count() or 1
        chunksize = max(1, math.ceil(len(batch) / workers))
        return list(pool.map(fn, batch, chunksize=chunksize))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class ThreadExecutor(_PoolExecutor):
    """Evaluate trials on a thread pool."""

    name = "threads"

    def _make_pool(self) -> concurrent.futures.Executor:
        return concurrent.futures.ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-trial"
        )

    def open_dispatch(
        self,
        fn: Callable[[_Shared, _Task], _Result],
        anchors: Sequence[object] = (),
    ) -> DispatchSession | None:
        return _ThreadDispatchSession(self, fn)


class ProcessExecutor(_PoolExecutor):
    """Evaluate trials on a process pool.

    The mapped function must be a module-level callable and every task
    must be picklable; :func:`repro.transpiler.passes.run_layout_trial`
    and :class:`repro.transpiler.passes.TrialTask` satisfy both.

    :meth:`map_shared` is the preferred entry point for trial batches: it
    pickles the shared payload exactly once per call, publishes it via a
    shared-memory segment when available (chunks then carry an O(1)
    handle instead of the payload bytes) or ships the blob once per chunk
    otherwise, and workers memoise deserialisation by content digest.
    """

    name = "processes"

    def _make_pool(self) -> concurrent.futures.Executor:
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.max_workers
        )

    def map_shared(
        self,
        fn: Callable[[_Shared, _Task], _Result],
        shared: _Shared,
        tasks: Iterable[_Task],
    ) -> list[_Result]:
        """Chunked shared-payload dispatch across worker processes.

        The shared payload is serialised once in the parent and published
        through :func:`_publish_payload`; the light tasks are split into
        ``~CHUNKS_PER_WORKER`` chunks per worker and submitted as
        individual futures, so idle workers keep pulling chunks (work
        stealing by queue) while slow ones finish.  Results are
        reassembled in input order regardless of completion order, and
        any shared-memory segment is unlinked — worker exceptions
        included — once every chunk has settled.
        """
        batch: Sequence[_Task] = list(tasks)
        if len(batch) <= 1:
            # Not worth a round-trip (keeps single-trial runs pool-free).
            self._count_dispatch(chunks=len(batch), tasks=len(batch))
            return [fn(shared, task) for task in batch]
        pool = self._ensure_pool()
        handle = _publish_object(shared)
        workers = self.max_workers or os.cpu_count() or 1
        size = max(1, math.ceil(len(batch) / (workers * CHUNKS_PER_WORKER)))
        try:
            futures = [
                pool.submit(_run_shared_chunk, handle, fn, chunk)
                for chunk in _chunk(batch, size)
            ]
            self._count_dispatch(
                shared_pickles=1,
                chunks=len(futures),
                tasks=len(batch),
                shm_segments=1 if handle.segment is not None else 0,
                bytes_shipped=handle.shipped_bytes * len(futures),
                header_bytes=handle.header,
            )
            results: list[_Result] = []
            try:
                for future in futures:
                    chunk_results, copied = future.result()
                    self._count_dispatch(bytes_copied=copied)
                    results.extend(chunk_results)
            finally:
                # A raising chunk must not unlink the segment while other
                # chunks may still be about to attach it.
                concurrent.futures.wait(futures)
            return results
        finally:
            if handle.segment is not None:
                _unlink_segment(handle.segment)

    def open_dispatch(
        self,
        fn: Callable[[_Shared, _Task], _Result],
        anchors: Sequence[object] = (),
    ) -> DispatchSession | None:
        """Open a shared-memory streaming session, or ``None`` without shm.

        Streaming across a process boundary without shared memory would
        re-ship each payload blob with every chunk — strictly worse than
        the barrier :meth:`map_shared` path — so the caller is told to
        fall back instead.  The anchor publication doubles as a probe:
        if segment creation fails even though the transport is nominally
        enabled (e.g. an exhausted ``/dev/shm``), the session is torn
        down and the caller falls back too, rather than silently
        streaming blobs.
        """
        if not shm_transport_enabled():
            return None
        session = _ShmDispatchSession(self, fn, anchors)
        if anchors and session._anchor_handle.segment is None:
            session.close()
            return None
        return session


#: Registry of executor names accepted by :func:`resolve_executor` (and by
#: the ``executor=`` argument of the transpile APIs).
EXECUTORS: dict[str, type[TrialExecutor]] = {
    "serial": SerialExecutor,
    "threads": ThreadExecutor,
    "thread": ThreadExecutor,
    "processes": ProcessExecutor,
    "process": ProcessExecutor,
}


def resolve_executor(
    executor: "str | TrialExecutor | None",
    max_workers: int | None = None,
) -> TrialExecutor:
    """Coerce an executor specification into a :class:`TrialExecutor`.

    ``None`` means serial; a string is looked up in :data:`EXECUTORS`; an
    existing executor instance is passed through unchanged (``max_workers``
    is ignored for instances — configure them at construction time).
    """
    if executor is None:
        return SerialExecutor()
    if isinstance(executor, TrialExecutor):
        return executor
    if isinstance(executor, str):
        try:
            cls = EXECUTORS[executor.lower()]
        except KeyError:
            known = ", ".join(sorted(set(EXECUTORS)))
            raise TranspilerError(
                f"unknown executor {executor!r} (known: {known})"
            ) from None
        if cls is SerialExecutor:
            return cls()
        return cls(max_workers=max_workers)
    raise TranspilerError(f"cannot interpret {executor!r} as a trial executor")


def owns_executor(executor: "str | TrialExecutor | None") -> bool:
    """Whether :func:`resolve_executor` would create (and thus own) a new
    executor for this specification, rather than borrow an instance."""
    return not isinstance(executor, TrialExecutor)


@contextlib.contextmanager
def executor_scope(
    executor: "str | TrialExecutor | None",
    max_workers: int | None = None,
) -> Iterator[TrialExecutor]:
    """Resolve an executor spec, closing on exit only executors we created.

    Borrowed :class:`TrialExecutor` instances are yielded untouched and
    left open for the caller to reuse; executors built from ``None`` or a
    string spec are closed when the scope exits.
    """
    resolved = resolve_executor(executor, max_workers)
    try:
        yield resolved
    finally:
        if owns_executor(executor):
            resolved.close()
