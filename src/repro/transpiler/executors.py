"""Pluggable executors for independent transpilation trials.

The SABRE/MIRAGE layout search runs many independent trials (paper
Section V uses a 20 x 20 budget); each trial only needs the circuit DAG,
a router and its own RNG stream, so the trials are embarrassingly
parallel.  :class:`TrialExecutor` abstracts *how* a batch of such trials
is evaluated:

* :class:`SerialExecutor` — in-process loop (the reference behaviour);
* :class:`ThreadExecutor` — ``concurrent.futures.ThreadPoolExecutor``,
  useful when trials release the GIL or for IO-bound metric oracles;
* :class:`ProcessExecutor` — ``concurrent.futures.ProcessPoolExecutor``
  for real CPU parallelism.  The mapped function and its tasks must be
  picklable (the layout search uses module-level functions and frozen
  dataclasses for exactly this reason).

All executors preserve input order, so a deterministic per-task seeding
scheme yields results that are byte-identical no matter which executor —
or how many workers — ran the batch.  Pool-backed executors create their
pool lazily on first use and can be reused across circuits (the batch
API :func:`repro.core.transpile.transpile_many` shares one executor for
the whole batch); call :meth:`TrialExecutor.close` or use the executor
as a context manager to release workers.

Shared-payload dispatch
-----------------------

Routing trials share almost all of their input: the circuit DAGs, the
coupling map and — heaviest of all — the coverage set are identical for
every trial, only the ``(trial_index, seed)`` pair differs.  Mapping
``fn(task)`` with the shared state baked into each task forces the
process pool to re-pickle that state once per task (or, with
``chunksize``, once per chunk).  :meth:`TrialExecutor.map_shared`
separates the two:

* the *shared* payload is pickled **once per call** in the parent;
* on hosts with POSIX shared memory the pickled bytes are published into
  a named ``multiprocessing.shared_memory`` segment and each chunk
  carries only a :class:`PayloadHandle` (segment name + content digest)
  — O(1) transport bytes per chunk no matter how large the payload;
* without shared memory (non-POSIX platforms, or
  ``MIRAGE_SHM_DISABLE=1``) the byte blob itself travels with every
  chunk, exactly the pre-shared-memory behaviour;
* workers memoise deserialisation by content digest, so each worker
  process unpickles (and, in shm mode, reads) a given payload at most
  once no matter how many chunks it pulls;
* the light per-task records are dispatched as many small chunks through
  a work-stealing-style future queue — idle workers pull the next chunk
  instead of being handed a fixed static share — while results are
  reassembled in input order, keeping deterministic seeding schemes
  executor-independent.

Segments are unlinked in a ``finally`` block once every chunk of the
dispatch has completed (worker exceptions included), an ``atexit`` guard
in the parent unlinks anything a crashed dispatch left behind, and a
matching worker-side guard closes attachments that never reached their
own ``finally``.

Streaming dispatch sessions
---------------------------

:meth:`TrialExecutor.open_dispatch` generalises :meth:`map_shared` for
the streaming batch scheduler: a :class:`DispatchSession` accepts heavy
payloads *incrementally* (:meth:`DispatchSession.add_payload`) and
returns futures per submitted chunk, so the producer can keep planning
circuits while earlier circuits' trials are already running.  Payloads
of one session may share *anchor* objects (the batch's one coverage
set): anchors are pickled exactly once into their own segment, and every
payload pickled afterwards stores a tiny persistent reference wherever
it contains an anchor object.  The process-backed session requires
shared memory and returns ``None`` from ``open_dispatch`` when the
transport is unavailable, letting callers fall back to the barrier
:meth:`map_shared` path.

Zero-copy payload views
-----------------------

On hosts where the shared-memory transport is active, payloads are laid
out in their segment as **pickle-protocol-5 out-of-band buffers**: the
pickle body and every exported buffer (numpy array data — the coverage
set's half-space ``(A, b)`` matrices, hull point clouds, consolidated
gate unitaries) are written side by side behind a small index header.
Workers unpickle with ``buffers=`` memoryviews over the attached
segment, so those arrays come back as **read-only numpy views of shared
memory** — no per-worker copy of the payload bytes, no matter how many
workers share one coverage set.  Worker attachments are refcounted and
pinned to the memoised payload (:func:`_load_payload`), so views stay
valid for as long as the payload is cached even after the dispatcher
unlinks the segment name (POSIX keeps the mapping alive).  Setting
``MIRAGE_ZEROCOPY_DISABLE=1`` falls back to the copy-on-attach layout
(whole pickled blob in the segment, workers copy then unpickle), and
hosts without shared memory keep the inline-blob transport; results are
byte-identical in every mode.

Fault-tolerant dispatch
-----------------------

Worker processes die, hang and return garbage; long-lived batch services
must absorb all three without aborting (or silently corrupting) a batch.
Every dispatch path therefore recovers per *chunk*:

* **Crash recovery** — a chunk that fails with ``BrokenProcessPool`` (a
  worker died), a cancelled future, or a :class:`TransportError` (its
  payload segment vanished) is replayed: the pool is respawned once per
  failure generation, the chunk's tasks — which carry their own
  ``SeedSequence`` streams — are re-submitted, and the recovery is
  recorded under the ``retries``/``respawns``/``lost_tasks`` dispatch
  counters.  Replay is byte-identical to an uninterrupted run because
  results depend only on ``(payload, task)``.
* **Timeouts** — with ``MIRAGE_TASK_TIMEOUT`` set (seconds), a session
  watchdog kills the pool under any chunk that outlives its deadline,
  converting a hung worker into the crash case above; re-dispatches back
  off exponentially (capped) between attempts.  ``MIRAGE_TASK_RETRIES``
  bounds the attempts per chunk (default 3).
* **Graceful degradation** — a chunk that exhausts its retry budget
  steps down the executor ladder: it runs in-process (on a dedicated
  thread, falling back to inline serial execution) against the
  dispatcher's own copy of the payload, counted under
  ``executor_downgrades``.  A payload whose segment was lost steps down
  the transport ladder — republished as an inline pickle blob riding
  each chunk, counted under ``transport_downgrades``.  Outputs are
  byte-identical on every rung.
* **Fault injection** — :mod:`repro.transpiler.faults` turns
  ``MIRAGE_FAULT_PLAN`` into per-chunk fault records resolved at submit
  time, so kills/hangs/corruptions strike exact task ordinals; replayed
  chunks are dispatched with their faults disarmed.

Each executor records how much serialisation and transport the last
calls cost in :attr:`TrialExecutor.dispatch_stats` (``shared_pickles``,
``payload_pickles``, ``plan_payloads``, ``chunks``, ``tasks``,
``plan_tasks``, ``shm_segments``, ``bytes_shipped``, ``header_bytes``
and worker-side ``bytes_copied``), which the batch engine surfaces as
provenance and the test suite uses as a re-pickling regression check.
The recovery counters (``retries``, ``respawns``, ``lost_tasks``,
``executor_downgrades``, ``transport_downgrades``) live in the same
dict and are all zero on a clean run.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import contextlib
import functools
import hashlib
import io
import math
import os
import pickle
import secrets
import struct
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Iterable, Iterator, Sequence, TypeVar

from repro.exceptions import (
    DeadlineExceededError,
    TranspilerError,
    TransportError,
)
from repro.transpiler.faults import (
    ChunkFaults,
    CorruptResult,
    CorruptResultError,
    FaultPlan,
    InjectedWorkerCrash,
    reap_stale_segments,
)

try:  # POSIX shared memory is optional — everything degrades to blobs.
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic platforms only
    _shared_memory = None

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")
_Shared = TypeVar("_Shared")

#: How many chunks each worker should get on average from
#: :meth:`TrialExecutor.map_shared`.  More chunks per worker improves load
#: balancing when trial durations vary (the work-stealing effect); fewer
#: chunks amortise the per-chunk dispatch overhead better.
CHUNKS_PER_WORKER = 4

#: Worker-side cap on memoised shared payloads (LRU).  Sized to exceed
#: the streaming scheduler's in-flight window — ``max(4, 2 * workers)``
#: per-circuit payloads plus the session anchor — with headroom, because
#: evicting a live payload would silently re-pay the deserialisation the
#: memo exists to avoid.  Scaled from the host's core count since worker
#: pools default to it.
_SHARED_CACHE_LIMIT = max(64, 4 * (os.cpu_count() or 1) + 8)

#: Prefix of every shared-memory segment this module creates; the cleanup
#: regression tests scan ``/dev/shm`` for it.
SHM_SEGMENT_PREFIX = "mirage_shm_"

#: Magic bytes opening the out-of-band (zero-copy) segment layout; the
#: bytes that follow are the section count and the ``(offset, size)``
#: table (one entry per section, section 0 being the pickle body).
_OOB_MAGIC = b"MIRG5OOB"

#: Alignment of out-of-band sections inside a segment — generous enough
#: for any numpy dtype, so ``frombuffer`` views are always aligned.
_OOB_ALIGN = 64

#: Worker-side count of payload bytes materialised (copied) before
#: unpickling.  Zero-copy loads advance it by the index header only;
#: copy-on-attach and inline-blob loads advance it by the payload size.
#: Chunk runners snapshot it around execution and return the delta, so
#: the dispatcher can aggregate it into ``dispatch_stats``.
_worker_bytes_copied = 0

_shared_cache: "OrderedDict[str, tuple[object, object | None]]" = OrderedDict()

#: Dispatcher-side registry of live segment names (mapped to the pid that
#: created them — forked workers inherit a copy of this dict and must not
#: unlink their parent's segments), unlinked by the atexit guard if a
#: crash skipped the normal ``finally`` unlink.
_created_segments: dict[str, int] = {}

#: Worker-side registry of currently attached segments, closed by the
#: atexit guard if a worker dies between attach and detach.
_attached_segments: dict[int, object] = {}


def shm_transport_enabled() -> bool:
    """Whether dispatches may publish payloads via POSIX shared memory.

    Requires ``multiprocessing.shared_memory`` on a POSIX host — Windows
    named mappings are destroyed when the last open handle closes, and
    the transport deliberately closes the parent's handle right after
    publishing, so only POSIX shm (which persists until unlink) works.
    Switched off by setting ``MIRAGE_SHM_DISABLE=1`` in the environment —
    checked per call, so tests and operators can toggle it without
    re-importing.
    """
    if _shared_memory is None or os.name != "posix":
        return False
    return os.environ.get("MIRAGE_SHM_DISABLE", "") in ("", "0")


def zero_copy_enabled() -> bool:
    """Whether shm payloads use the out-of-band (zero-copy) layout.

    With zero copy, numpy arrays inside a payload are unpickled as
    read-only views over the shared-memory segment instead of per-worker
    copies.  ``MIRAGE_ZEROCOPY_DISABLE=1`` falls back to the
    copy-on-attach layout (checked per call, like the shm switch); the
    flag is independent of :func:`shm_transport_enabled` but only has an
    effect when that transport is active.
    """
    return os.environ.get("MIRAGE_ZEROCOPY_DISABLE", "") in ("", "0")


#: Default for :func:`zero_copy_inline_max`.
_ZEROCOPY_INLINE_MAX_DEFAULT = 256


def zero_copy_inline_max() -> int:
    """Size floor (bytes) for exporting a buffer out-of-band.

    Contiguous buffers smaller than this stay in-band inside the pickle
    body: each export costs a 16-byte index-header entry plus alignment
    padding in the segment, and workers gain nothing from a zero-copy
    view over a few dozen bytes.  Tunable via
    ``MIRAGE_ZEROCOPY_INLINE_MAX`` (``0`` exports everything, matching
    the pre-threshold layout); checked per call like the other
    transport switches.
    """
    value = os.environ.get("MIRAGE_ZEROCOPY_INLINE_MAX", "").strip()
    if not value:
        return _ZEROCOPY_INLINE_MAX_DEFAULT
    try:
        return max(0, int(value))
    except ValueError:
        return _ZEROCOPY_INLINE_MAX_DEFAULT


#: Default for :func:`task_retries` — how often a lost chunk is replayed
#: before the dispatch degrades to in-process execution.
_TASK_RETRIES_DEFAULT = 3

#: Capped exponential backoff between chunk re-dispatches (seconds).
_RETRY_BACKOFF_BASE = 0.05
_RETRY_BACKOFF_CAP = 1.0


def task_timeout() -> float | None:
    """Per-chunk deadline in seconds, or ``None`` for no deadline.

    Read from ``MIRAGE_TASK_TIMEOUT`` per dispatch, like the transport
    switches.  When set, a chunk whose workers have not delivered within
    the deadline is presumed hung: the pool under it is torn down (the
    ``respawns`` counter advances) and the chunk's tasks are replayed.
    Unset, empty, non-numeric or non-positive values disable deadlines.
    """
    value = os.environ.get("MIRAGE_TASK_TIMEOUT", "").strip()
    if not value:
        return None
    try:
        seconds = float(value)
    except ValueError:
        return None
    return seconds if seconds > 0 else None


def task_retries() -> int:
    """Replay budget per chunk before stepping down the executor ladder.

    Read from ``MIRAGE_TASK_RETRIES`` per dispatch (default 3, floor 0).
    A chunk lost to a worker crash, hang or transport failure is
    re-dispatched up to this many times — with capped exponential
    backoff between attempts — before the session degrades it to
    in-process execution (counted under ``executor_downgrades``).
    """
    value = os.environ.get("MIRAGE_TASK_RETRIES", "").strip()
    if not value:
        return _TASK_RETRIES_DEFAULT
    try:
        return max(0, int(value))
    except ValueError:
        return _TASK_RETRIES_DEFAULT


def _retry_backoff(attempt: int) -> float:
    """Delay before re-dispatch ``attempt`` (1-based), capped exponential."""
    return min(_RETRY_BACKOFF_CAP, _RETRY_BACKOFF_BASE * 2 ** max(0, attempt - 1))


class _DispatchInterrupted(TranspilerError):
    """A chunk could not even be submitted (pool broken/closed under us)."""


#: Failure types the dispatch layer treats as *recoverable worker loss*
#: (replay the chunk) rather than task bugs (propagate).  Anything else
#: raised by a task travels to the caller unchanged.
_RETRYABLE_ERRORS = (
    concurrent.futures.BrokenExecutor,
    concurrent.futures.CancelledError,
    concurrent.futures.TimeoutError,
    TimeoutError,
    TransportError,
    InjectedWorkerCrash,
    _DispatchInterrupted,
)


def _is_retryable(error: BaseException) -> bool:
    """Whether a chunk failure is recoverable worker/transport loss."""
    return isinstance(error, _RETRYABLE_ERRORS)


def _guard_chunk_results(results: list) -> list:
    """Reject chunks whose workers returned garbage.

    Injected ``corrupt`` faults (and, in a real deployment, checksum
    validators) surface as :class:`CorruptResult` markers in the result
    list; converting them into :class:`CorruptResultError` here routes
    them through the same replay path as a crashed worker.
    """
    for result in results:
        if isinstance(result, CorruptResult):
            raise CorruptResultError(
                f"worker returned corrupt result at chunk offset "
                f"{result.ordinal}"
            )
    return results


@atexit.register
def _cleanup_segments() -> None:
    """Last-resort guard: unlink created and close attached segments.

    Registered with ``atexit`` but also safe to call directly (the
    fault-injection tests do).  Idempotent — every registry it drains is
    cleared, so a second invocation finds nothing to do — and tolerant
    of segments that were already unlinked by their normal ``finally``
    path or by a sibling process (:func:`_unlink_segment` swallows
    ``FileNotFoundError``).  Entries inherited from a forked parent are
    dropped without unlinking: the parent may still be serving workers
    from those segments.
    """
    pid = os.getpid()
    for name, owner in list(_created_segments.items()):
        if owner == pid:
            _unlink_segment(name)
        else:
            # Forked child inheriting the parent's registry — not ours.
            _created_segments.pop(name, None)
    for shm in list(_attached_segments.values()):
        with contextlib.suppress(Exception):
            shm.close()
    _attached_segments.clear()
    for attachment in list(_segment_attachments.values()):
        _close_attachment_quietly(attachment.shm)
    _segment_attachments.clear()


class _SegmentAttachment:
    """A refcounted worker-side attachment to one payload segment.

    Zero-copy payloads hand out numpy views over the attached buffer, so
    the attachment must outlive every memoised payload that references
    it.  Each memo entry holds one reference; the last release closes
    the mapping (a ``BufferError`` — live views still exported — is
    tolerated: the views keep the mmap alive and the OS reclaims it when
    they die).
    """

    __slots__ = ("name", "shm", "refs")

    def __init__(self, name: str, shm: object) -> None:
        self.name = name
        self.shm = shm
        self.refs = 0


#: Worker-side registry of refcounted attachments, keyed by segment name.
_segment_attachments: dict[str, _SegmentAttachment] = {}


def _acquire_segment(name: str) -> _SegmentAttachment:
    """Attach (or re-reference) a segment; pairs with :func:`_release_attachment`."""
    attachment = _segment_attachments.get(name)
    if attachment is None:
        attachment = _SegmentAttachment(name, _attach_segment(name))
        _segment_attachments[name] = attachment
    attachment.refs += 1
    return attachment


def _close_attachment_quietly(shm: object) -> None:
    """Close an attachment, orphaning the mapping to any live views.

    Numpy views handed out by a zero-copy load export the underlying
    mmap, so a plain ``close()`` raises ``BufferError`` — and would
    raise again, noisily, from ``SharedMemory.__del__``.  In that case
    the mmap reference is dropped without closing it (the views keep it
    alive; the OS unmaps when the last one dies) and only the file
    descriptor is closed, leaving nothing for the finaliser to do.
    """
    try:
        shm.close()
    except BufferError:
        with contextlib.suppress(Exception):
            shm._mmap = None
            fd = getattr(shm, "_fd", -1)
            if fd >= 0:
                os.close(fd)
                shm._fd = -1
    except Exception:  # pragma: no cover - platform-specific close errors
        pass


def _release_attachment(attachment: "_SegmentAttachment | None") -> None:
    """Drop one reference; the last one closes the attachment."""
    if attachment is None:
        return
    attachment.refs -= 1
    if attachment.refs <= 0:
        _segment_attachments.pop(attachment.name, None)
        _close_attachment_quietly(attachment.shm)


def reset_worker_state() -> None:
    """Drop this process's payload memo and release its attachments.

    Test hook (and fork hygiene helper): evicts every memoised payload
    and dereferences the zero-copy attachments behind them.  Arrays that
    still view a released segment stay readable — they pin the mapping —
    but new loads re-attach from scratch.
    """
    global _worker_bytes_copied
    while _shared_cache:
        _, (_, attachment) = _shared_cache.popitem(last=False)
        _release_attachment(attachment)
    _worker_bytes_copied = 0


def _prewarm_probe(index: int) -> int:
    """No-op worker task used by ``prewarm`` to force worker spawn."""
    return os.getpid()


class _ViewReader(io.RawIOBase):
    """Minimal read-only file over a memoryview — no upfront body copy.

    Feeding ``io.BytesIO(view)`` to the unpickler would copy the whole
    pickle body out of the segment; this adapter lets the unpickler
    stream it instead (it buffers internally in small frames).
    """

    def __init__(self, view: memoryview) -> None:
        super().__init__()
        self._view = view
        self._pos = 0

    def readable(self) -> bool:  # noqa: D102 - io protocol
        return True

    def readinto(self, target) -> int:  # noqa: D102 - io protocol
        count = min(len(target), len(self._view) - self._pos)
        target[:count] = self._view[self._pos:self._pos + count]
        self._pos += count
        return count


def _attach_segment(name: str):
    """Attach an existing segment without registering it for tracking.

    Attaching must never make this process responsible for the segment's
    lifetime: before Python 3.13 (``track=False``), ``SharedMemory``
    registers even plain attaches with the resource tracker, which would
    unlink the dispatcher's segment when a worker exits — so the
    registration is undone explicitly on those versions.

    A segment that no longer exists raises
    :class:`~repro.exceptions.TransportError` (not a bare
    ``FileNotFoundError``): a vanished segment is recoverable transport
    loss — the dispatcher republishes the payload and replays the chunk —
    and must stay distinguishable from task bugs.
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except FileNotFoundError:
        raise TransportError(
            f"payload segment {name!r} vanished before attach"
        ) from None
    except TypeError:
        pass
    # Pre-3.13 fallback: plain attaches register with the resource
    # tracker.  Registering and immediately unregistering is not safe —
    # the tracker keeps a *set*, so a concurrent attach in a sibling
    # worker can interleave its register/unregister pair with ours and
    # with the dispatcher's final unlink, leaving the tracker to unlink
    # a name it no longer knows (a noisy KeyError at best, an early
    # unlink at worst).  Suppressing the registration call for the
    # duration of the attach avoids the message pair entirely.
    from multiprocessing import resource_tracker  # pragma: no cover

    original_register = resource_tracker.register
    try:
        resource_tracker.register = lambda *args, **kwargs: None
        return _shared_memory.SharedMemory(name=name)
    except FileNotFoundError:  # pragma: no cover - pre-3.13 path
        raise TransportError(
            f"payload segment {name!r} vanished before attach"
        ) from None
    finally:
        resource_tracker.register = original_register


def _unlink_segment(name: str) -> None:
    """Best-effort unlink of a segment this process created.

    Attaches *with* tracking (unlike worker-side attaches) so the
    resource tracker's register/unregister bookkeeping stays balanced:
    the tracked attach re-registers the name that creation registered,
    and ``unlink`` unregisters it exactly once.
    """
    _created_segments.pop(name, None)
    if _shared_memory is None:
        return
    try:
        shm = _shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    with contextlib.suppress(Exception):
        shm.close()
    with contextlib.suppress(FileNotFoundError):
        shm.unlink()


class PayloadHandle:
    """Transport descriptor of one pickled payload.

    In shared-memory mode only ``segment``/``digest``/``size`` travel with
    each chunk — O(1) bytes regardless of payload size; in blob mode the
    pickled ``blob`` itself is attached.  ``header`` is non-zero for
    segments using the out-of-band (zero-copy) layout and gives the size
    of the index header at the start of the segment.  ``oob_buffers``
    carries the protocol-5 buffers inline when an out-of-band pickle
    could not get a segment (the blob is then just the pickle body).
    Workers resolve a handle to the deserialised object via
    :func:`_load_payload`, memoised by ``digest``.
    """

    __slots__ = ("digest", "size", "segment", "blob", "header", "oob_buffers")

    def __init__(
        self,
        digest: str,
        size: int,
        segment: str | None = None,
        blob: bytes | None = None,
        header: int = 0,
        oob_buffers: tuple[bytes, ...] | None = None,
    ) -> None:
        self.digest = digest
        self.size = size
        self.segment = segment
        self.blob = blob
        self.header = header
        self.oob_buffers = oob_buffers

    @property
    def shipped_bytes(self) -> int:
        """Transport bytes this handle adds to every chunk it rides on."""
        if self.segment is not None:
            return len(self.segment) + len(self.digest) + 16
        return self.size + len(self.digest) + 16

    def fetch(self) -> bytes:
        """Materialise the pickled payload bytes (worker side).

        Only valid for whole-blob payloads; zero-copy (out-of-band)
        payloads have no single byte string to fetch — they are
        deserialised in place via :func:`_load_payload`.  A segment that
        vanished before the attach raises
        :class:`~repro.exceptions.TransportError`, which the dispatch
        layer treats as recoverable (replay with a republished payload)
        rather than a task bug.
        """
        if self.header:
            raise TranspilerError(
                "zero-copy payloads are loaded in place, not fetched"
            )
        if self.segment is None:
            assert self.blob is not None
            return self.blob
        shm = _attach_segment(self.segment)
        key = id(shm)
        _attached_segments[key] = shm
        try:
            return bytes(shm.buf[: self.size])
        finally:
            with contextlib.suppress(Exception):
                shm.close()
            _attached_segments.pop(key, None)

    def __getstate__(self) -> tuple:
        return (
            self.digest, self.size, self.segment, self.blob, self.header,
            self.oob_buffers,
        )

    def __setstate__(self, state: tuple) -> None:
        (
            self.digest, self.size, self.segment, self.blob, self.header,
            self.oob_buffers,
        ) = state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.segment is None:
            mode = "blob"
        elif self.header:
            mode = "shm+oob"
        else:
            mode = "shm"
        return (
            f"PayloadHandle({mode}, digest={self.digest[:8]}…, "
            f"size={self.size})"
        )


def _new_segment(size: int):
    """Create a fresh named segment, or ``None`` when creation fails."""
    name = f"{SHM_SEGMENT_PREFIX}{os.getpid()}_{secrets.token_hex(4)}"
    try:
        segment = _shared_memory.SharedMemory(
            name=name, create=True, size=max(1, size)
        )
    except OSError:
        return None
    _created_segments[name] = os.getpid()
    return segment


def _publish_payload(blob: bytes) -> PayloadHandle:
    """Publish pickled bytes for worker consumption (whole-blob layout).

    Prefers a named shared-memory segment (transport per chunk drops to
    O(1) bytes); falls back to shipping the blob inline when the shm
    transport is disabled, unavailable, or segment creation fails.
    """
    digest = hashlib.sha1(blob).hexdigest()
    if shm_transport_enabled():
        segment = _new_segment(len(blob))
        if segment is not None:
            name = segment.name
            try:
                segment.buf[: len(blob)] = blob
            finally:
                segment.close()
            return PayloadHandle(digest=digest, size=len(blob), segment=name)
    return PayloadHandle(digest=digest, size=len(blob), blob=blob)


def _align_oob(offset: int) -> int:
    return -(-offset // _OOB_ALIGN) * _OOB_ALIGN


def _digest_sections(sections: Sequence[memoryview]) -> str:
    """Content digest of an out-of-band section list, length-framed.

    Each section's byte length is hashed ahead of its bytes so two
    payloads whose concatenated sections coincide but split differently
    can never alias to one digest — the worker memo is keyed by this.
    """
    digest = hashlib.sha1()
    for section in sections:
        digest.update(struct.pack("<Q", section.nbytes))
        digest.update(section)
    return digest.hexdigest()


def _publish_object_oob(
    obj: object, anchors: Sequence[object]
) -> PayloadHandle | None:
    """Publish an object as out-of-band sections in one shm segment.

    Layout: ``_OOB_MAGIC``, a ``uint64`` section count, then one
    ``(uint64 offset, uint64 size)`` pair per section; section 0 is the
    pickle body, sections 1+ are the protocol-5 out-of-band buffers, each
    aligned to :data:`_OOB_ALIGN`.  Buffers smaller than
    :func:`zero_copy_inline_max` stay in-band inside the pickle body —
    exporting a 32-byte array would cost a 16-byte index entry plus up to
    63 bytes of alignment padding, and a worker-side view over it saves
    nothing — so spec-heavy payloads full of tiny arrays keep a short
    index header.  When segment creation fails (shm pressure) the
    already-serialised body and buffers are shipped inline instead of
    being re-pickled; ``None`` is returned only when an exporter produced
    a non-contiguous buffer, in which case the caller must re-pickle
    in-band.
    """
    inline_max = zero_copy_inline_max()
    raws: list[memoryview] = []

    def _export(buffer: pickle.PickleBuffer) -> bool:
        # A truthy return keeps the buffer in-band (PEP 574); raw() raises
        # BufferError for non-contiguous exporters, aborting the dump.
        raw = buffer.raw()
        if raw.nbytes < inline_max:
            return True
        raws.append(raw)
        return False

    try:
        body = _dumps_anchored(obj, anchors, buffer_callback=_export)
    except BufferError:  # pragma: no cover - non-contiguous exporter
        return None
    sections: list[memoryview] = [memoryview(body), *raws]
    header = 16 + 16 * len(sections)
    offsets: list[int] = []
    cursor = header
    for section in sections:
        cursor = _align_oob(cursor)
        offsets.append(cursor)
        cursor += section.nbytes
    segment = _new_segment(cursor)
    if segment is None:
        # Segment creation failed (shm pressure) *after* the expensive
        # object-graph pickle already ran — reuse it: ship the body and
        # its out-of-band buffers inline rather than re-pickling in-band.
        return PayloadHandle(
            digest=_digest_sections(sections),
            size=sum(section.nbytes for section in sections),
            blob=body,
            oob_buffers=tuple(bytes(raw) for raw in sections[1:]),
        )
    name = segment.name
    try:
        buf = segment.buf
        struct.pack_into("<8sQ", buf, 0, _OOB_MAGIC, len(sections))
        for index, (offset, section) in enumerate(zip(offsets, sections)):
            struct.pack_into("<QQ", buf, 16 + 16 * index, offset, section.nbytes)
            buf[offset:offset + section.nbytes] = section
    finally:
        segment.close()
    return PayloadHandle(
        digest=_digest_sections(sections),
        size=cursor,
        segment=name,
        header=header,
    )


def _publish_object(obj: object, anchors: Sequence[object] = ()) -> PayloadHandle:
    """Serialise and publish one payload object for worker consumption.

    Uses the zero-copy out-of-band layout whenever the shm transport is
    active and ``MIRAGE_ZEROCOPY_DISABLE`` is unset; otherwise (or when
    segment creation fails) degrades to the whole-blob layout — in a
    segment when shm is available, inline on the chunk otherwise.
    """
    if shm_transport_enabled() and zero_copy_enabled():
        handle = _publish_object_oob(obj, anchors)
        if handle is not None:
            return handle
    return _publish_payload(_dumps_anchored(obj, anchors))


def _memoise(
    key: str, loader: Callable[[], tuple[object, object]]
) -> object:
    """LRU-memoise a deserialised payload in this (worker) process.

    ``loader`` returns ``(payload, attachment)``; the attachment (a
    :class:`_SegmentAttachment` for zero-copy payloads, else ``None``)
    is pinned alongside the cache entry and released on eviction, so
    views into shared memory stay valid for exactly as long as the
    payload they belong to is cached.
    """
    try:
        entry = _shared_cache.pop(key)
    except KeyError:
        entry = loader()
    _shared_cache[key] = entry
    while len(_shared_cache) > _SHARED_CACHE_LIMIT:
        _, (_, attachment) = _shared_cache.popitem(last=False)
        _release_attachment(attachment)
    return entry[0]


class _AnchorPickler(pickle.Pickler):
    """Pickler replacing anchor objects with tiny persistent references.

    Payloads of one dispatch session frequently embed the same heavy
    object (the batch's coverage set, reachable through router factories
    *and* selection metrics).  Pickling those payloads through this class
    stores ``(index)`` wherever an anchor object appears, so the anchor
    bytes exist exactly once — in the session's anchor payload.
    """

    def __init__(
        self,
        buffer: io.BytesIO,
        anchors: Sequence[object],
        buffer_callback: Callable | None = None,
    ) -> None:
        super().__init__(
            buffer,
            protocol=pickle.HIGHEST_PROTOCOL,
            buffer_callback=buffer_callback,
        )
        self._anchor_ids = {id(obj): index for index, obj in enumerate(anchors)}

    def persistent_id(self, obj: object):  # noqa: D102 - pickle hook
        return self._anchor_ids.get(id(obj))


class _AnchorUnpickler(pickle.Unpickler):
    """Unpickler resolving persistent references against loaded anchors."""

    def __init__(
        self,
        buffer,
        anchors: Sequence[object],
        buffers: Iterable[memoryview] | None = None,
    ) -> None:
        super().__init__(buffer, buffers=buffers)
        self._anchors = anchors

    def persistent_load(self, pid):  # noqa: D102 - pickle hook
        return self._anchors[pid]


def _dumps_anchored(
    payload: object,
    anchors: Sequence[object],
    buffer_callback: Callable | None = None,
) -> bytes:
    buffer = io.BytesIO()
    _AnchorPickler(buffer, anchors, buffer_callback).dump(payload)
    return buffer.getvalue()


def _loads_anchored(
    blob: bytes,
    anchors: Sequence[object],
    buffers: Sequence[bytes] | None = None,
) -> object:
    return _AnchorUnpickler(io.BytesIO(blob), anchors, buffers=buffers).load()


def _load_oob(
    handle: PayloadHandle, anchors: Sequence[object]
) -> tuple[object, _SegmentAttachment]:
    """Deserialise an out-of-band payload as views over its segment.

    The pickle body is streamed straight out of the attached segment and
    every protocol-5 buffer is handed to the unpickler as a *read-only*
    memoryview slice, so numpy arrays come back as views of shared
    memory.  Only the index header is materialised — the returned
    attachment pins the mapping for the payload's cache lifetime.
    """
    global _worker_bytes_copied
    attachment = _acquire_segment(handle.segment)
    try:
        view = memoryview(attachment.shm.buf).toreadonly()
        magic, count = struct.unpack_from("<8sQ", view, 0)
        if magic != _OOB_MAGIC:
            raise TranspilerError(
                f"segment {handle.segment!r} is not an out-of-band payload"
            )
        table = [
            struct.unpack_from("<QQ", view, 16 + 16 * index)
            for index in range(count)
        ]
        body_offset, body_size = table[0]
        buffers = [view[offset:offset + size] for offset, size in table[1:]]
        reader = io.BufferedReader(
            _ViewReader(view[body_offset:body_offset + body_size])
        )
        payload = _AnchorUnpickler(reader, anchors, buffers=buffers).load()
    except BaseException:
        _release_attachment(attachment)
        raise
    _worker_bytes_copied += 16 + 16 * count
    return payload, attachment


def _load_payload(
    handle: PayloadHandle,
    anchor_handle: PayloadHandle | None = None,
) -> object:
    """Deserialise a payload handle, memoised by content digest.

    Runs inside worker processes.  The expensive work — attaching the
    segment (or receiving the blob) and unpickling coverage-set
    polytopes, DAG nodes, numpy arrays — happens at most once per worker
    per payload.  Zero-copy handles rebuild their arrays as read-only
    views over the attached segment; blob handles materialise the bytes
    first (counted in the worker's ``bytes_copied``).
    """
    anchors: Sequence[object] = ()
    key = handle.digest
    if anchor_handle is not None:
        anchors = _load_payload(anchor_handle)
        key = f"{anchor_handle.digest}:{handle.digest}"

    def loader() -> tuple[object, _SegmentAttachment | None]:
        global _worker_bytes_copied
        if handle.header:
            return _load_oob(handle, anchors)
        blob = handle.fetch()
        buffers = handle.oob_buffers
        _worker_bytes_copied += len(blob) + sum(
            len(buffer) for buffer in buffers or ()
        )
        return _loads_anchored(blob, anchors, buffers), None

    return _memoise(key, loader)


def _load_shared(handle: PayloadHandle) -> object:
    """Back-compat alias of :func:`_load_payload` without anchors."""
    return _load_payload(handle)


def _materialise_payload(
    handle: PayloadHandle, anchors: Sequence[object]
) -> object:
    """Deserialise a payload as a fully-owned copy — no segment views.

    The dispatcher-side counterpart of :func:`_load_payload` for
    payloads the dispatcher never held an object for (worker-parked
    plan specs): every section is copied *out* of the segment before
    unpickling, so the result stays valid after the segment is
    unlinked — it becomes the replay source for transport downgrades
    and degraded in-process execution.  A vanished segment raises
    :class:`~repro.exceptions.TransportError`.
    """
    if handle.segment is None:
        return _loads_anchored(handle.blob, anchors, handle.oob_buffers)
    shm = _attach_segment(handle.segment)
    try:
        view = memoryview(shm.buf).toreadonly()
        try:
            if not handle.header:
                return _loads_anchored(bytes(view[: handle.size]), anchors)
            magic, count = struct.unpack_from("<8sQ", view, 0)
            if magic != _OOB_MAGIC:
                raise TranspilerError(
                    f"segment {handle.segment!r} is not an out-of-band payload"
                )
            table = [
                struct.unpack_from("<QQ", view, 16 + 16 * index)
                for index in range(count)
            ]
            body_offset, body_size = table[0]
            body = bytes(view[body_offset:body_offset + body_size])
            buffers = [
                bytes(view[offset:offset + size]) for offset, size in table[1:]
            ]
            return _loads_anchored(body, anchors, buffers)
        finally:
            view.release()
    finally:
        with contextlib.suppress(Exception):
            shm.close()


#: Anchor tuple of the dispatch session whose chunk is currently
#: executing in this worker process (set by :func:`_run_session_chunk`,
#: ``None`` outside one).  Pool workers run chunks one at a time on
#: their main thread, so a plain module global suffices.
_park_anchors: "Sequence[object] | None" = None


def plan_park_enabled() -> bool:
    """Whether executor-side planning parks planned specs worker-side.

    With ``MIRAGE_PLAN_PARK=1``, a worker that plans a circuit
    publishes the planned trial spec straight into a shared-memory
    segment and returns only the :class:`PayloadHandle` ref — the
    O(DAG)-bytes spec never rides the result pipe, and the parent
    adopts the segment as the trial payload (pinned under the
    ``plan_return_bytes`` dispatch counter).  Off by default: parking
    trades the parent's retained payload object for a segment-backed
    copy, so crash-recovery paths regenerate specs from the pipeline
    state instead of reusing a parent reference — correct, but with
    extra recovery work under worker-kill faults.  Checked per
    dispatch like the other transport switches.
    """
    return os.environ.get("MIRAGE_PLAN_PARK", "").strip() not in ("", "0")


def park_payload(obj: object) -> PayloadHandle | None:
    """Publish ``obj`` from inside a worker, transferring ownership out.

    Runs in a pool worker during a session chunk: the object is
    published against the session anchors (persistent references, same
    bytes the parent would have produced) and the fresh segment is
    dropped from this worker's cleanup registry — the parent adopts it
    via :meth:`_ShmDispatchSession.adopt_payload` when the chunk's
    result arrives.  Returns ``None`` when parking is impossible — no
    session context (in-process execution), shm disabled, or segment
    creation failed — in which case the caller keeps the object inline.
    """
    anchors = _park_anchors
    if anchors is None or not shm_transport_enabled():
        return None
    handle = _publish_object(obj, anchors)
    if handle.segment is None:
        # Segment creation failed: an inline handle would just re-ship
        # the bytes parking exists to avoid.
        return None
    _created_segments.pop(handle.segment, None)
    return handle


def _check_deadline(deadline: float | None) -> None:
    """Raise :class:`DeadlineExceededError` once ``deadline`` has passed.

    ``deadline`` is an absolute ``time.monotonic()`` instant.
    ``CLOCK_MONOTONIC`` is system-wide on the platforms the process
    transport supports, so a deadline stamped by the dispatcher is
    meaningful inside a worker process too — the worker abandons the
    rest of its chunk at the next task boundary instead of computing
    results nobody will collect.
    """
    if deadline is not None and time.monotonic() >= deadline:
        raise DeadlineExceededError(
            "request deadline expired before its trials completed"
        )


def _run_tasks(
    fn: Callable[[object, object], object],
    shared: object,
    tasks: Sequence[object],
    faults: "ChunkFaults | None",
    deadline: float | None = None,
) -> list[object]:
    """Evaluate a chunk's tasks, firing any injected faults positionally."""
    if faults is None and deadline is None:
        return [fn(shared, task) for task in tasks]
    results: list[object] = []
    for offset, task in enumerate(tasks):
        _check_deadline(deadline)
        if faults is not None:
            faults.before_task(offset)
        result = fn(shared, task)
        if faults is not None:
            result = faults.after_task(offset, result)
        results.append(result)
    return results


def _run_shared_chunk(
    handle: PayloadHandle,
    fn: Callable[[object, object], object],
    tasks: Sequence[object],
    faults: "ChunkFaults | None" = None,
) -> tuple[list[object], int]:
    """Evaluate one chunk of light tasks against the memoised payload.

    Returns the chunk's results plus the payload bytes this call
    materialised worker-side (zero when the payload was already memoised
    or arrived as zero-copy views).  ``faults`` carries any injected
    failures aimed at this chunk (first dispatch only — replays arrive
    disarmed).
    """
    global _worker_bytes_copied
    before = _worker_bytes_copied
    if faults is not None:
        faults.check_transport()
    shared = _load_payload(handle)
    results = _run_tasks(fn, shared, tasks, faults)
    return results, _worker_bytes_copied - before


def _run_session_chunk(
    anchor_handle: PayloadHandle | None,
    payload_handle: PayloadHandle,
    fn: Callable[[object, object], object],
    tasks: Sequence[object],
    encode: bool = False,
    faults: "ChunkFaults | None" = None,
    deadline: float | None = None,
) -> tuple[list[object], int]:
    """Evaluate one streamed chunk against its anchored payload.

    With ``encode=True`` each result is re-pickled with persistent
    references to the session anchors before travelling back, so heavy
    anchor objects (the coverage set) never ride the return path — the
    parent resolves them via :meth:`DispatchSession.decode`.  Injected
    :class:`CorruptResult` markers skip the encode step so the parent
    can detect them without decoding.
    """
    global _worker_bytes_copied, _park_anchors
    before = _worker_bytes_copied
    if faults is not None:
        faults.check_transport()
    _check_deadline(deadline)
    anchors: Sequence[object] = ()
    if anchor_handle is not None:
        anchors = _load_payload(anchor_handle)
    shared = _load_payload(payload_handle, anchor_handle)
    _park_anchors = anchors
    try:
        results = _run_tasks(fn, shared, tasks, faults, deadline)
    finally:
        _park_anchors = None
    if encode:
        results = [
            result
            if isinstance(result, CorruptResult)
            else _dumps_anchored(result, anchors)
            for result in results
        ]
    return results, _worker_bytes_copied - before


def _run_local_chunk(
    fn: Callable[[object, object], object],
    shared: object,
    tasks: Sequence[object],
    faults: "ChunkFaults | None" = None,
    deadline: float | None = None,
) -> list[object]:
    """In-process chunk evaluation for serial/thread dispatch sessions."""
    if faults is not None:
        faults.check_transport()
    return _run_tasks(fn, shared, tasks, faults, deadline)


def _chunk(tasks: Sequence[_Task], size: int) -> Iterator[Sequence[_Task]]:
    for start in range(0, len(tasks), size):
        yield tasks[start:start + size]


class DispatchSession:
    """Incremental shared-payload dispatch onto one executor.

    A session is the streaming counterpart of
    :meth:`TrialExecutor.map_shared`: heavy payloads are registered one
    at a time (:meth:`add_payload`), light task chunks are submitted
    against a registered payload (:meth:`submit`, returning one future
    per chunk whose result is the list of that chunk's outputs, in task
    order), and :meth:`close` releases every transport resource once all
    futures have drained.  Use it as a context manager so segments are
    unlinked even when a worker raises.

    ``submit`` accepts a per-call ``fn`` override, which is how the
    batch engine runs *planning* tasks on the same session (and the same
    anchors) as the routing trials; submissions flagged ``kind="plan"``
    are counted under the ``plan_tasks``/``plan_payloads`` provenance
    keys instead of ``tasks``/``payload_pickles``.  Results submitted
    with ``encode=True`` come back anchor-encoded from serialising
    transports and must run through :meth:`decode`.

    Sessions are fault tolerant: a chunk lost to a worker crash, hang or
    transport failure is replayed (same tasks, same seeds — replay is
    byte-identical) within the ``MIRAGE_TASK_RETRIES`` budget, and the
    recovery is visible in the executor's dispatch counters.  When a
    ``MIRAGE_FAULT_PLAN`` is active the session snapshots it at open
    time and resolves it into per-chunk fault records at submit time —
    the fault ordinals (one counter per task kind, plus a global chunk
    counter) are assigned on the submitting thread, so injected failures
    strike exact positions regardless of worker scheduling, and replays
    are dispatched with their faults disarmed.
    """

    #: Whether submitted chunks can execute concurrently with the
    #: submitting thread (drives the ``plan="auto"`` resolution).
    parallel = False

    def __init__(self, fn: Callable[[Any, Any], Any]) -> None:
        self.fn = fn
        self._futures: list[concurrent.futures.Future] = []
        self._closed = False
        self._fault_plan = FaultPlan.from_env()
        self._fault_counts = {"trial": 0, "plan": 0}
        self._fault_chunk_ordinal = 0

    def _next_chunk_faults(
        self, kind: str, count: int
    ) -> "ChunkFaults | None":
        """Resolve the active fault plan against one about-to-go chunk.

        Advances this session's per-kind task ordinals and the global
        chunk ordinal (submit happens on the producer thread, so plain
        counters suffice); returns ``None`` — the hot-path case — when no
        plan is active or no fault lands in the chunk.
        """
        if self._fault_plan is None:
            return None
        key = "plan" if kind == "plan" else "trial"
        start = self._fault_counts[key]
        self._fault_counts[key] = start + count
        ordinal = self._fault_chunk_ordinal
        self._fault_chunk_ordinal += 1
        return self._fault_plan.chunk_faults(key, start, count, ordinal)

    def _count_submit(
        self, kind: str, chunks: int, tasks: int, bytes_shipped: int = 0
    ) -> None:
        """Fold one submission into the executor's dispatch counters.

        The single place mapping a submission ``kind`` onto provenance
        keys: ``"plan"`` submissions count under ``plan_tasks``, anything
        else under ``tasks`` (subclasses set ``self._executor``).
        """
        if kind == "plan":
            self._executor._count_dispatch(
                chunks=chunks, plan_tasks=tasks, bytes_shipped=bytes_shipped
            )
        else:
            self._executor._count_dispatch(
                chunks=chunks, tasks=tasks, bytes_shipped=bytes_shipped
            )

    def _count_payload(self, kind: str) -> None:
        """Fold one payload registration into the dispatch counters."""
        if kind == "plan":
            self._executor._count_dispatch(plan_payloads=1)
        else:
            self._executor._count_dispatch(payload_pickles=1)

    def add_payload(self, payload: object, kind: str = "payload") -> int:
        """Register a heavy payload; returns its slot for :meth:`submit`."""
        raise NotImplementedError

    def submit(
        self,
        slot: int,
        tasks: Sequence[object],
        *,
        fn: Callable[[Any, Any], Any] | None = None,
        encode: bool = False,
        kind: str = "trial",
        deadline: float | None = None,
    ) -> list[concurrent.futures.Future]:
        """Dispatch ``tasks`` against payload ``slot`` as chunked futures.

        ``deadline`` is an optional absolute ``time.monotonic()`` instant:
        chunks past it settle with
        :class:`~repro.exceptions.DeadlineExceededError` instead of
        running (or finishing) their tasks, without disturbing sibling
        chunks or the pool.  Expiry is counted under the executor's
        ``deadline_expirations`` dispatch counter and is never retried.
        """
        raise NotImplementedError

    def decode(self, result: object) -> object:
        """Resolve one ``encode=True`` result against the session anchors.

        The identity function on transports that never serialise results
        (inline and thread sessions).
        """
        return result

    def release(self, slot: int) -> None:
        """Drop payload ``slot``'s resources once its futures have drained.

        Callers must have collected every future submitted against the
        slot first; streaming drivers call this per circuit so a long
        batch holds only a bounded number of payloads (and shared-memory
        segments) at any moment, rather than all of them until
        :meth:`close`.  Releasing a slot twice is a no-op.
        """

    def outstanding(self) -> int:
        """Number of submitted chunk futures that have not completed."""
        self._futures = [f for f in self._futures if not f.done()]
        return len(self._futures)

    def close(self) -> None:
        """Wait for in-flight futures and release transport resources."""
        if self._closed:
            return
        self._closed = True
        if self._futures:
            concurrent.futures.wait(self._futures)
            self._futures = []

    def __enter__(self) -> "DispatchSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _LocalDispatchSession(DispatchSession):
    """Shared slot bookkeeping for sessions that never serialise payloads."""

    def __init__(
        self, executor: "TrialExecutor", fn: Callable[[Any, Any], Any]
    ) -> None:
        super().__init__(fn)
        self._executor = executor
        self._payloads: list[object] = []

    def add_payload(self, payload: object, kind: str = "payload") -> int:
        self._payloads.append(payload)
        return len(self._payloads) - 1

    def release(self, slot: int) -> None:
        self._payloads[slot] = None


def _run_local_chunk_recovering(
    executor: "TrialExecutor",
    fn: Callable[[Any, Any], Any],
    shared: object,
    tasks: Sequence[object],
    faults: "ChunkFaults | None",
    deadline: float | None = None,
) -> list[object]:
    """In-process chunk evaluation with the session retry contract.

    Serial and thread sessions have no process boundary — a worker
    cannot die for real — but injected crashes and transport faults must
    follow the same recover-and-replay path as the process transport so
    every executor honours the fault plan.  Retries are immediate (no
    backoff: nothing to wait out in-process) and are disarmed replays,
    counted under the same ``retries``/``lost_tasks`` keys.  An expired
    ``deadline`` is *not* retryable: it surfaces as
    :class:`DeadlineExceededError` and counts one
    ``deadline_expirations``.
    """
    attempts = 0
    while True:
        try:
            return _guard_chunk_results(
                _run_local_chunk(fn, shared, tasks, faults, deadline)
            )
        except DeadlineExceededError:
            executor._count_dispatch(deadline_expirations=1)
            raise
        except _RETRYABLE_ERRORS:
            if attempts >= task_retries():
                raise
            attempts += 1
            faults = None
            executor._count_dispatch(retries=1, lost_tasks=len(tasks))


class _InlineDispatchSession(_LocalDispatchSession):
    """Serial session: chunks run at submit time, futures are pre-resolved."""

    def submit(
        self,
        slot: int,
        tasks: Sequence[object],
        *,
        fn: Callable[[Any, Any], Any] | None = None,
        encode: bool = False,
        kind: str = "trial",
        deadline: float | None = None,
    ) -> list[concurrent.futures.Future]:
        future: concurrent.futures.Future = concurrent.futures.Future()
        faults = self._next_chunk_faults(kind, len(tasks))
        try:
            future.set_result(
                _run_local_chunk_recovering(
                    self._executor, fn or self.fn, self._payloads[slot],
                    tasks, faults, deadline,
                )
            )
        except BaseException as error:  # noqa: BLE001 - mirror pool futures
            future.set_exception(error)
        self._count_submit(kind, 1, len(tasks))
        return [future]


class _ThreadDispatchSession(_LocalDispatchSession):
    """Thread-pool session: chunks close over the payload, no serialisation."""

    parallel = True

    def submit(
        self,
        slot: int,
        tasks: Sequence[object],
        *,
        fn: Callable[[Any, Any], Any] | None = None,
        encode: bool = False,
        kind: str = "trial",
        deadline: float | None = None,
    ) -> list[concurrent.futures.Future]:
        pool = self._executor._ensure_pool()
        batch = list(tasks)
        workers = self._executor.max_workers or os.cpu_count() or 1
        size = max(1, math.ceil(len(batch) / workers))
        futures = [
            pool.submit(
                _run_local_chunk_recovering,
                self._executor,
                fn or self.fn,
                self._payloads[slot],
                chunk,
                self._next_chunk_faults(kind, len(chunk)),
                deadline,
            )
            for chunk in _chunk(batch, size)
        ]
        self._futures.extend(futures)
        self._count_submit(kind, len(futures), len(batch))
        return futures


class _ChunkRecord:
    """Dispatch bookkeeping of one chunk, across retries and downgrades.

    Created at :meth:`_ShmDispatchSession.submit` time and kept until
    its ``wrapped`` future settles; ``raw`` / ``generation`` /
    ``submitted`` describe the *current* pool attempt (the watchdog
    reads them to spot hung chunks), ``attempts`` counts replays, and
    ``faults`` carries the injected failures of the first dispatch only.
    """

    __slots__ = (
        "slot", "fn", "tasks", "encode", "kind", "faults", "attempts",
        "wrapped", "raw", "generation", "submitted", "deadline",
    )

    def __init__(
        self,
        slot: int,
        fn: Callable[[Any, Any], Any],
        tasks: Sequence[object],
        encode: bool,
        kind: str,
        faults: "ChunkFaults | None",
        deadline: float | None = None,
    ) -> None:
        self.slot = slot
        self.fn = fn
        self.tasks = tasks
        self.encode = encode
        self.kind = kind
        self.faults = faults
        self.deadline = deadline
        self.attempts = 0
        self.wrapped: concurrent.futures.Future = concurrent.futures.Future()
        self.raw: concurrent.futures.Future | None = None
        self.generation = -1
        self.submitted: float | None = None


class _ShmDispatchSession(DispatchSession):
    """Process-pool session over shared-memory payload segments.

    Anchor objects are pickled once into one segment; every payload added
    later is pickled with persistent references to them, so the batch's
    coverage set crosses the process boundary exactly once.  Chunks carry
    only the two :class:`PayloadHandle` descriptors — O(1) transport.

    Segment creation failing *mid-session* (shm pressure appearing after
    the open-time probe passed) degrades that one payload to inline-blob
    shipping — correct, observable via ``bytes_shipped``, and bounded to
    the few chunks of the affected circuit.

    Every chunk runs under a retry controller: callers receive a
    *wrapped* future that only settles once the chunk either delivered
    results (possibly after pool respawns, transport downgrades and
    replays) or failed for a non-recoverable reason.  A hung chunk is
    caught by the session watchdog (``MIRAGE_TASK_TIMEOUT``), which
    tears the pool down under it and lets the broken-pool replay path
    take over; a chunk that exhausts ``MIRAGE_TASK_RETRIES`` steps off
    the pool entirely and runs in-process against the dispatcher's own
    copy of the payload.  All recovery is invisible to callers except
    through the dispatch counters.
    """

    parallel = True

    def __init__(
        self,
        executor: "ProcessExecutor",
        fn: Callable[[Any, Any], Any],
        anchors: Sequence[object] = (),
    ) -> None:
        super().__init__(fn)
        self._executor = executor
        self._anchors = tuple(anchors)
        self._handles: list[PayloadHandle | None] = []
        self._payload_objects: list[object] = []
        self._payload_loaders: dict[int, Callable[[], object]] = {}
        self._segments: list[str] = []
        self._anchor_handle: PayloadHandle | None = None
        self._retry_lock = threading.Lock()
        self._inflight: dict[int, _ChunkRecord] = {}
        self._watchdog: threading.Thread | None = None
        # True once any chunk carried a deadline — keeps the watchdog
        # running even when no MIRAGE_TASK_TIMEOUT is configured.
        self._deadline_active = False
        if self._anchors:
            self._anchor_handle = self._record(self._anchors, ())
            executor._count_dispatch(shared_pickles=1)

    def _record(
        self, payload: object, anchors: Sequence[object]
    ) -> PayloadHandle:
        handle = _publish_object(payload, anchors)
        if handle.segment is not None:
            self._segments.append(handle.segment)
            self._executor._count_dispatch(
                shm_segments=1, header_bytes=handle.header
            )
        return handle

    @property
    def plan_park(self) -> bool:
        """Whether the engine should park planned specs worker-side.

        True only when ``MIRAGE_PLAN_PARK=1``: the shm transport can
        adopt worker-published segments, but parking is opt-in — see
        :func:`plan_park_enabled`.
        """
        return plan_park_enabled()

    def add_payload(self, payload: object, kind: str = "payload") -> int:
        handle = self._record(payload, self._anchors)
        self._handles.append(handle)
        # The dispatcher's own reference survives until release: it is
        # the replay source for transport downgrades and the payload of
        # last-resort in-process execution.
        self._payload_objects.append(payload)
        self._count_payload(kind)
        return len(self._handles) - 1

    def adopt_payload(
        self,
        handle: PayloadHandle,
        kind: str = "payload",
        loader: "Callable[[], object] | None" = None,
    ) -> int:
        """Adopt a worker-published payload as a session slot.

        The counterpart of :func:`park_payload`: the worker already
        published the payload into a segment and transferred ownership,
        so the parent registers the segment for cleanup and exposes the
        handle as a normal slot — without ever holding the payload
        object.  The downgrade/degrade recovery paths, which need a
        parent-side object, materialise a copy from the segment on
        demand (:meth:`_payload_object`); ``loader`` optionally
        regenerates the payload instead when the segment itself is the
        casualty.
        """
        if handle.segment is not None:
            _created_segments[handle.segment] = os.getpid()
            self._segments.append(handle.segment)
            self._executor._count_dispatch(
                shm_segments=1, header_bytes=handle.header
            )
        self._handles.append(handle)
        self._payload_objects.append(None)
        slot = len(self._handles) - 1
        if loader is not None:
            self._payload_loaders[slot] = loader
        self._count_payload(kind)
        return slot

    def _payload_object(self, slot: int) -> object | None:
        """The parent-side payload object for ``slot``, created on demand.

        ``add_payload`` slots return the retained reference directly.
        Adopted (worker-parked) slots materialise a fully-owned copy
        out of their segment on first use, falling back to the slot's
        regeneration loader when the segment is gone.  Returns ``None``
        for released slots.
        """
        payload = self._payload_objects[slot]
        if payload is not None:
            return payload
        handle = self._handles[slot]
        loader = self._payload_loaders.get(slot)
        if handle is None:
            return None
        try:
            payload = _materialise_payload(handle, self._anchors)
        except TransportError:
            if loader is None:
                raise
            payload = loader()
        self._payload_objects[slot] = payload
        return payload

    def release(self, slot: int) -> None:
        handle = self._handles[slot]
        if handle is None:
            return
        self._handles[slot] = None
        self._payload_objects[slot] = None
        self._payload_loaders.pop(slot, None)
        if handle.segment is not None:
            with contextlib.suppress(ValueError):
                self._segments.remove(handle.segment)
            _unlink_segment(handle.segment)

    def decode(self, result: object) -> object:
        return _loads_anchored(result, self._anchors)

    # -- retry controller --------------------------------------------------

    def _launch(self, record: _ChunkRecord) -> None:
        """(Re-)dispatch one chunk on the executor's current pool."""
        executor = self._executor
        if (
            record.deadline is not None
            and time.monotonic() >= record.deadline
        ):
            executor._count_dispatch(deadline_expirations=1)
            self._settle_error(
                record,
                DeadlineExceededError(
                    "request deadline expired before its chunk was dispatched"
                ),
            )
            return
        record.generation = executor._pool_generation
        record.submitted = time.monotonic()
        try:
            pool = executor._ensure_pool()
            handle = self._handles[record.slot]
            if handle is None:
                raise TranspilerError(
                    "payload slot released with chunks still in flight"
                )
            raw = pool.submit(
                _run_session_chunk,
                self._anchor_handle,
                handle,
                record.fn,
                record.tasks,
                record.encode,
                record.faults,
                record.deadline,
            )
        except concurrent.futures.BrokenExecutor as error:
            self._handle_failure(record, error)
            return
        except RuntimeError as error:
            # Pool shut down between generation read and submit.
            self._handle_failure(record, _DispatchInterrupted(str(error)))
            return
        record.raw = raw
        raw.add_done_callback(functools.partial(self._on_raw_done, record))

    def _on_raw_done(
        self, record: _ChunkRecord, done: concurrent.futures.Future
    ) -> None:
        """Settle, or route into recovery, one completed pool future."""
        if record.wrapped.done():
            # The watchdog already settled this record (deadline expiry
            # while the worker was still running) — drop the late result.
            with self._retry_lock:
                self._inflight.pop(id(record), None)
            return
        try:
            error: BaseException | None = done.exception()
        except concurrent.futures.CancelledError as cancelled:
            error = cancelled
        if error is None:
            results, copied = done.result()
            corrupt = next(
                (r for r in results if isinstance(r, CorruptResult)), None
            )
            if corrupt is None:
                self._executor._count_dispatch(bytes_copied=copied)
                self._settle(record, results)
                return
            error = CorruptResultError(
                f"worker returned corrupt result at chunk offset "
                f"{corrupt.ordinal}"
            )
        self._handle_failure(record, error)

    def _settle(self, record: _ChunkRecord, results: list) -> None:
        with self._retry_lock:
            self._inflight.pop(id(record), None)
        if not record.wrapped.done():
            record.wrapped.set_result(results)

    def _settle_error(self, record: _ChunkRecord, error: BaseException) -> None:
        with self._retry_lock:
            self._inflight.pop(id(record), None)
        if not record.wrapped.done():
            record.wrapped.set_exception(error)

    def _handle_failure(
        self, record: _ChunkRecord, error: BaseException
    ) -> None:
        """Recover a failed chunk: respawn, downgrade, back off, replay."""
        if record.wrapped.done():
            with self._retry_lock:
                self._inflight.pop(id(record), None)
            return
        if isinstance(error, DeadlineExceededError):
            # A worker abandoned the chunk at its deadline — terminal
            # for this chunk only, never replayed, pool left alone.
            self._executor._count_dispatch(deadline_expirations=1)
            self._settle_error(record, error)
            return
        if not _is_retryable(error):
            self._settle_error(record, error)
            return
        executor = self._executor
        record.faults = None  # replays run clean
        record.attempts += 1
        executor._count_dispatch(retries=1, lost_tasks=len(record.tasks))
        if isinstance(
            error,
            (
                concurrent.futures.BrokenExecutor,
                concurrent.futures.CancelledError,
                _DispatchInterrupted,
            ),
        ):
            executor._respawn_pool(record.generation)
        if isinstance(error, TransportError) and not isinstance(
            error, CorruptResultError
        ):
            self._downgrade_transport(record.slot)
        if record.attempts > task_retries():
            self._degrade_chunk(record)
            return
        timer = threading.Timer(
            _retry_backoff(record.attempts), self._relaunch, args=(record,)
        )
        timer.daemon = True
        timer.start()

    def _relaunch(self, record: _ChunkRecord) -> None:
        try:
            self._launch(record)
        except BaseException as error:  # pragma: no cover - defensive
            self._settle_error(record, error)

    def _downgrade_transport(self, slot: int) -> None:
        """Step a payload down the transport ladder: shm → inline blob.

        Republishes the slot's payload from the dispatcher's retained
        reference as a plain pickle blob riding every future chunk —
        byte-identical results, no segment to lose twice.  The vanished
        (or still-live-but-suspect) segment is unlinked; workers that
        already memoised the payload keep their mapping (POSIX semantics)
        and are unaffected.
        """
        handle = self._handles[slot]
        if handle is None or handle.segment is None:
            return
        try:
            payload = self._payload_object(slot)
        except TransportError:
            payload = None
        if payload is None:
            return
        blob = _dumps_anchored(payload, self._anchors)
        self._handles[slot] = PayloadHandle(
            digest=hashlib.sha1(blob).hexdigest(), size=len(blob), blob=blob
        )
        with contextlib.suppress(ValueError):
            self._segments.remove(handle.segment)
        _unlink_segment(handle.segment)
        self._executor._count_dispatch(transport_downgrades=1)

    def _degrade_chunk(self, record: _ChunkRecord) -> None:
        """Step a chunk down the executor ladder: pool → thread → serial.

        The retry budget is spent; rather than fail the batch, the chunk
        runs in-process against the dispatcher's retained payload object
        (no transport at all) on a dedicated thread — or inline on the
        calling thread when thread creation is impossible (interpreter
        shutdown).  Counted under ``executor_downgrades``.
        """
        self._executor._count_dispatch(executor_downgrades=1)
        try:
            thread = threading.Thread(
                target=self._run_degraded,
                args=(record,),
                name="mirage-degraded-chunk",
                daemon=True,
            )
            thread.start()
        except RuntimeError:  # pragma: no cover - interpreter shutdown
            self._run_degraded(record)

    def _run_degraded(self, record: _ChunkRecord) -> None:
        try:
            payload = self._payload_object(record.slot)
            if payload is None:
                raise TranspilerError(
                    "payload slot released with chunks still in flight"
                )
            results = _guard_chunk_results(
                _run_local_chunk(
                    record.fn, payload, record.tasks, None, record.deadline
                )
            )
            if record.encode:
                results = [
                    _dumps_anchored(result, self._anchors)
                    for result in results
                ]
        except DeadlineExceededError as error:
            self._executor._count_dispatch(deadline_expirations=1)
            self._settle_error(record, error)
        except BaseException as error:  # noqa: BLE001 - settle, don't lose
            self._settle_error(record, error)
        else:
            self._settle(record, results)

    # -- watchdog ----------------------------------------------------------

    def _ensure_watchdog(self) -> None:
        if self._watchdog is not None or (
            task_timeout() is None and not self._deadline_active
        ):
            return
        with self._retry_lock:
            if self._watchdog is None:
                self._watchdog = threading.Thread(
                    target=self._watchdog_loop,
                    name="mirage-dispatch-watchdog",
                    daemon=True,
                )
                self._watchdog.start()

    def _watchdog_loop(self) -> None:
        """Recover chunks that outlive their timeout or request deadline.

        Two distinct clocks run here.  A chunk past the *task timeout*
        (``MIRAGE_TASK_TIMEOUT``) is presumed hung: a process pool
        cannot cancel a running task, so it is recovered by force —
        terminating the workers breaks the pool, every pending raw
        future fails with ``BrokenProcessPool``, and the crash-replay
        path re-dispatches the lost chunks on a fresh pool.  A chunk
        past its *request deadline* is not hung, just late: its wrapped
        future settles with :class:`DeadlineExceededError` while the
        pool — and every sibling chunk on it — keeps running
        undisturbed (the worker abandons the expired chunk itself at
        its next task boundary).  Runs until the session is closed
        *and* nothing is left in flight, so a close racing a hang still
        drains.
        """
        while True:
            with self._retry_lock:
                records = list(self._inflight.values())
            if self._closed and not records:
                return
            timeout = task_timeout()
            now = time.monotonic()
            for record in records:
                if (
                    record.deadline is not None
                    and now >= record.deadline
                    and not record.wrapped.done()
                ):
                    self._executor._count_dispatch(deadline_expirations=1)
                    self._settle_error(
                        record,
                        DeadlineExceededError(
                            "request deadline expired with its chunk "
                            "still in flight"
                        ),
                    )
                    continue
                raw = record.raw
                if (
                    timeout is not None
                    and raw is not None
                    and not raw.done()
                    and record.submitted is not None
                    and now - record.submitted > timeout
                ):
                    self._executor._respawn_pool(record.generation)
            if timeout is None:
                time.sleep(0.02)
            else:
                time.sleep(max(0.01, min(0.05, timeout / 4)))

    # -- submission --------------------------------------------------------

    def submit(
        self,
        slot: int,
        tasks: Sequence[object],
        *,
        fn: Callable[[Any, Any], Any] | None = None,
        encode: bool = False,
        kind: str = "trial",
        deadline: float | None = None,
    ) -> list[concurrent.futures.Future]:
        batch = list(tasks)
        handle = self._handles[slot]
        workers = self._executor.max_workers or os.cpu_count() or 1
        size = max(1, math.ceil(len(batch) / (workers * CHUNKS_PER_WORKER)))
        if deadline is not None:
            self._deadline_active = True
        futures: list[concurrent.futures.Future] = []
        for chunk in _chunk(batch, size):
            record = _ChunkRecord(
                slot=slot,
                fn=fn or self.fn,
                tasks=chunk,
                encode=encode,
                kind=kind,
                faults=self._next_chunk_faults(kind, len(chunk)),
                deadline=deadline,
            )
            with self._retry_lock:
                self._inflight[id(record)] = record
            futures.append(record.wrapped)
            self._launch(record)
        self._ensure_watchdog()
        self._futures.extend(futures)
        shipped = handle.shipped_bytes + (
            self._anchor_handle.shipped_bytes if self._anchor_handle else 0
        )
        self._count_submit(
            kind, len(futures), len(batch),
            bytes_shipped=shipped * len(futures),
        )
        return futures

    def close(self) -> None:
        if self._closed:
            return
        try:
            super().close()
        finally:
            while self._segments:
                _unlink_segment(self._segments.pop())


class TrialExecutor:
    """Strategy object evaluating a function over a batch of trial tasks."""

    name: str = "executor"

    def __init__(self) -> None:
        self.dispatch_stats: dict[str, int] = {
            "shared_pickles": 0,
            "payload_pickles": 0,
            "plan_payloads": 0,
            "chunks": 0,
            "tasks": 0,
            "plan_tasks": 0,
            "shm_segments": 0,
            "bytes_shipped": 0,
            "header_bytes": 0,
            "bytes_copied": 0,
            # Bytes of encoded plan results that crossed the result
            # pipe; worker-side plan park (MIRAGE_PLAN_PARK=1) shrinks
            # this to O(ref) per circuit.
            "plan_return_bytes": 0,
            # Fault-tolerance counters — all zero on a clean run.
            "retries": 0,
            "respawns": 0,
            "lost_tasks": 0,
            "executor_downgrades": 0,
            "transport_downgrades": 0,
            # Remote-transport recovery counters — all zero on a clean
            # run, and always zero on purely local executors.
            "reconnects": 0,
            "host_downgrades": 0,
            "frames_garbled": 0,
            # Chunks abandoned at an expired request deadline — zero on
            # a clean run (and on any run without deadlines).
            "deadline_expirations": 0,
        }
        # Chunk completion callbacks fold worker-side copy counts in from
        # the pool's collector thread, so counter updates are locked.
        self._stats_lock = threading.Lock()
        # Long-lived owners (the service tier) lease the executor around
        # each dispatch; close() refuses while leases are active so a
        # shutdown racing an in-flight batch fails loudly instead of
        # tearing the pool out from under it.
        self._lease_lock = threading.Lock()
        self._lease_count = 0

    @contextlib.contextmanager
    def lease(self) -> Iterator["TrialExecutor"]:
        """Mark this executor in-use for the duration of a dispatch.

        Purely advisory bookkeeping: concurrent leases are fine (the
        dispatch paths are thread-safe), but :meth:`close` raises while
        any lease is held, protecting warm, shared executors from a
        shutdown racing an in-flight batch.
        """
        with self._lease_lock:
            self._lease_count += 1
        try:
            yield self
        finally:
            with self._lease_lock:
                self._lease_count -= 1

    def active_leases(self) -> int:
        """Number of currently held :meth:`lease` contexts."""
        with self._lease_lock:
            return self._lease_count

    def _ensure_unleased(self) -> None:
        active = self.active_leases()
        if active:
            raise TranspilerError(
                f"cannot close executor with {active} active lease(s)"
            )

    def prewarm(self) -> int:
        """Spin up worker resources ahead of the first dispatch.

        Returns the number of workers warmed (0 for executors with no
        pool).  Warm pools turn the first request's latency from
        pool-spawn-plus-work into work alone; the service tier calls
        this at startup.
        """
        return 0

    def worker_pids(self) -> list[int]:
        """PIDs of live worker processes (empty for in-process executors).

        Exposed so lifecycle tests (and operators) can assert that a
        shutdown left no workers behind.
        """
        return []

    def map(
        self,
        fn: Callable[[_Task], _Result],
        tasks: Iterable[_Task],
    ) -> list[_Result]:
        """Apply ``fn`` to every task, returning results in input order."""
        raise NotImplementedError

    def map_shared(
        self,
        fn: Callable[[_Shared, _Task], _Result],
        shared: _Shared,
        tasks: Iterable[_Task],
    ) -> list[_Result]:
        """Apply ``fn(shared, task)`` to every task, in input order.

        ``shared`` is the heavy payload common to all tasks (DAGs, coverage
        set, router factory); ``tasks`` are the light per-trial records.
        The base implementation simply closes over ``shared`` — subclasses
        that cross a process boundary override this to serialise the
        payload once per call instead of once per task.
        """
        batch = list(tasks)
        self._count_dispatch(chunks=1, tasks=len(batch))
        return self.map(functools.partial(fn, shared), batch)

    def open_dispatch(
        self,
        fn: Callable[[_Shared, _Task], _Result],
        anchors: Sequence[object] = (),
    ) -> DispatchSession | None:
        """Open a streaming :class:`DispatchSession` for ``fn``.

        ``anchors`` are heavy objects shared by many payloads (the batch's
        coverage set); transports that serialise payloads ship each anchor
        exactly once.  Returns ``None`` when this executor cannot stream
        efficiently (the process pool without a shared-memory transport),
        in which case callers should fall back to :meth:`map_shared`.
        """
        return _InlineDispatchSession(self, fn)

    def _count_dispatch(self, **deltas: int) -> None:
        with self._stats_lock:
            for key, value in deltas.items():
                self.dispatch_stats[key] += value

    def close(self) -> None:
        """Release any worker resources.  Idempotent.

        Raises :class:`TranspilerError` while a :meth:`lease` is active.
        """
        self._ensure_unleased()

    def __enter__(self) -> "TrialExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialExecutor(TrialExecutor):
    """Evaluate trials one after another in the calling process."""

    name = "serial"

    def map(
        self,
        fn: Callable[[_Task], _Result],
        tasks: Iterable[_Task],
    ) -> list[_Result]:
        return [fn(task) for task in tasks]


class _PoolExecutor(TrialExecutor):
    """Shared lazy-pool plumbing for the ``concurrent.futures`` backends."""

    def __init__(self, max_workers: int | None = None) -> None:
        super().__init__()
        if max_workers is not None and max_workers < 1:
            raise TranspilerError("max_workers must be a positive integer")
        self.max_workers = max_workers
        self._pool: concurrent.futures.Executor | None = None
        # Pool generation fences concurrent respawn requests: a chunk
        # records the generation it was submitted under, and a respawn
        # only tears the pool down if that generation is still current —
        # ten chunks dying with one pool trigger one respawn, not ten.
        self._pool_lock = threading.Lock()
        self._pool_generation = 0

    def _make_pool(self) -> concurrent.futures.Executor:
        raise NotImplementedError

    def _ensure_pool(self) -> concurrent.futures.Executor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = self._make_pool()
            return self._pool

    def _terminate_pool(self, pool: concurrent.futures.Executor) -> None:
        """Stop a (possibly broken) pool without waiting on lost work."""
        with contextlib.suppress(Exception):
            pool.shutdown(wait=False)

    def _respawn_pool(self, generation: int) -> None:
        """Replace the pool if ``generation`` is still the live one.

        Called from chunk-failure and watchdog paths.  The generation
        fence makes the call idempotent per pool incarnation: losers of
        the race observe a newer generation and return — their chunks
        will simply be re-submitted on the already-fresh pool.
        """
        with self._pool_lock:
            if generation != self._pool_generation or self._pool is None:
                return
            pool = self._pool
            self._pool = None
            self._pool_generation += 1
        self._terminate_pool(pool)
        self._count_dispatch(respawns=1)
        # A killed worker may have died between attaching a segment and
        # its cleanup handler; reclaim anything its death orphaned.
        reap_stale_segments()

    def map(
        self,
        fn: Callable[[_Task], _Result],
        tasks: Iterable[_Task],
    ) -> list[_Result]:
        batch: Sequence[_Task] = list(tasks)
        if len(batch) <= 1:
            # Not worth dispatching (and keeps single-trial runs pool-free).
            return [fn(task) for task in batch]
        pool = self._ensure_pool()
        # Chunked dispatch lets pickle memoise objects shared between the
        # tasks of a chunk (DAGs, coverage sets) instead of re-serialising
        # them once per task; harmless for the thread pool.
        workers = self.max_workers or os.cpu_count() or 1
        chunksize = max(1, math.ceil(len(batch) / workers))
        return list(pool.map(fn, batch, chunksize=chunksize))

    def prewarm(self) -> int:
        """Create the pool and spawn its full worker complement now.

        One probe task per worker forces ``concurrent.futures`` to spawn
        every worker up front (both pool flavours start workers on
        demand), so the first real dispatch pays no spawn latency.
        Idempotent: a warm pool absorbs the probes in microseconds.
        """
        pool = self._ensure_pool()
        workers = self.max_workers or os.cpu_count() or 1
        probes = [pool.submit(_prewarm_probe, index) for index in range(workers)]
        concurrent.futures.wait(probes)
        return workers

    def close(self) -> None:
        self._ensure_unleased()
        with self._pool_lock:
            pool = self._pool
            self._pool = None
            self._pool_generation += 1
        if pool is not None:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class ThreadExecutor(_PoolExecutor):
    """Evaluate trials on a thread pool."""

    name = "threads"

    def _make_pool(self) -> concurrent.futures.Executor:
        return concurrent.futures.ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-trial"
        )

    def open_dispatch(
        self,
        fn: Callable[[_Shared, _Task], _Result],
        anchors: Sequence[object] = (),
    ) -> DispatchSession | None:
        return _ThreadDispatchSession(self, fn)


class ProcessExecutor(_PoolExecutor):
    """Evaluate trials on a process pool.

    The mapped function must be a module-level callable and every task
    must be picklable; :func:`repro.transpiler.passes.run_layout_trial`
    and :class:`repro.transpiler.passes.TrialTask` satisfy both.

    :meth:`map_shared` is the preferred entry point for trial batches: it
    pickles the shared payload exactly once per call, publishes it via a
    shared-memory segment when available (chunks then carry an O(1)
    handle instead of the payload bytes) or ships the blob once per chunk
    otherwise, and workers memoise deserialisation by content digest.
    """

    name = "processes"

    def _make_pool(self) -> concurrent.futures.Executor:
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.max_workers
        )

    def worker_pids(self) -> list[int]:
        """PIDs of the pool's live worker processes (empty when cold)."""
        with self._pool_lock:
            pool = self._pool
        if pool is None:
            return []
        return [
            process.pid
            for process in getattr(pool, "_processes", {}).values()
            if process.is_alive()
        ]

    def _terminate_pool(self, pool: concurrent.futures.Executor) -> None:
        """Kill a pool's workers outright before shutting it down.

        ``shutdown(wait=False)`` alone would leave a *hung* worker
        running (and holding its task) indefinitely; killing the worker
        processes breaks the pool, which fails every pending future with
        ``BrokenProcessPool`` — exactly the signal the retry controller
        recovers from.
        """
        for process in list(getattr(pool, "_processes", {}).values()):
            with contextlib.suppress(Exception):
                process.kill()
        with contextlib.suppress(Exception):
            pool.shutdown(wait=False)

    def map_shared(
        self,
        fn: Callable[[_Shared, _Task], _Result],
        shared: _Shared,
        tasks: Iterable[_Task],
    ) -> list[_Result]:
        """Chunked shared-payload dispatch across worker processes.

        The shared payload is serialised once in the parent and published
        through :func:`_publish_payload`; the light tasks are split into
        ``~CHUNKS_PER_WORKER`` chunks per worker and submitted as
        individual futures, so idle workers keep pulling chunks (work
        stealing by queue) while slow ones finish.  Results are
        reassembled in input order regardless of completion order, and
        any shared-memory segment is unlinked — worker exceptions
        included — once every chunk has settled.
        """
        batch: Sequence[_Task] = list(tasks)
        if len(batch) <= 1:
            # Not worth a round-trip (keeps single-trial runs pool-free).
            self._count_dispatch(chunks=len(batch), tasks=len(batch))
            return [fn(shared, task) for task in batch]
        self._ensure_pool()
        handle = _publish_object(shared)
        segment_name = handle.segment
        workers = self.max_workers or os.cpu_count() or 1
        size = max(1, math.ceil(len(batch) / (workers * CHUNKS_PER_WORKER)))
        chunks = list(_chunk(batch, size))
        fault_plan = FaultPlan.from_env()
        try:
            futures: list[concurrent.futures.Future | None] = []
            attempts = [0] * len(chunks)
            generations = [0] * len(chunks)
            start = 0
            for ordinal, chunk in enumerate(chunks):
                faults = None
                if fault_plan is not None:
                    faults = fault_plan.chunk_faults(
                        "trial", start, len(chunk), ordinal
                    )
                start += len(chunk)
                futures.append(
                    self._submit_shared_chunk(
                        handle, fn, chunk, faults, generations, ordinal
                    )
                )
            self._count_dispatch(
                shared_pickles=1,
                chunks=len(futures),
                tasks=len(batch),
                shm_segments=1 if handle.segment is not None else 0,
                bytes_shipped=handle.shipped_bytes * len(futures),
                header_bytes=handle.header,
            )
            results: list[_Result] = []
            try:
                for index, chunk in enumerate(chunks):
                    while True:
                        error: BaseException | None = None
                        try:
                            future = futures[index]
                            if future is None:
                                raise _DispatchInterrupted("chunk was lost")
                            chunk_results, copied = future.result(
                                timeout=task_timeout()
                            )
                            chunk_results = _guard_chunk_results(
                                chunk_results
                            )
                        except _RETRYABLE_ERRORS as caught:
                            error = caught
                        if error is None:
                            self._count_dispatch(bytes_copied=copied)
                            results.extend(chunk_results)
                            break
                        attempts[index] += 1
                        self._count_dispatch(
                            retries=1, lost_tasks=len(chunk)
                        )
                        if isinstance(
                            error,
                            (
                                concurrent.futures.BrokenExecutor,
                                concurrent.futures.CancelledError,
                                concurrent.futures.TimeoutError,
                                TimeoutError,
                                _DispatchInterrupted,
                            ),
                        ):
                            # A deadline expiry means a worker is hung;
                            # pool breakage means workers died.  Either
                            # way this chunk's pool generation is done
                            # for — kill it and start fresh.
                            self._respawn_pool(generations[index])
                        if isinstance(
                            error, TransportError
                        ) and not isinstance(error, CorruptResultError):
                            if segment_name is not None:
                                _unlink_segment(segment_name)
                                segment_name = None
                            blob = _dumps_anchored(shared, ())
                            handle = PayloadHandle(
                                digest=hashlib.sha1(blob).hexdigest(),
                                size=len(blob),
                                blob=blob,
                            )
                            self._count_dispatch(transport_downgrades=1)
                        if attempts[index] > task_retries():
                            # Retry budget spent: run in-process against
                            # the parent's own payload — no transport.
                            self._count_dispatch(executor_downgrades=1)
                            results.extend(
                                _guard_chunk_results(
                                    _run_local_chunk(fn, shared, chunk, None)
                                )
                            )
                            break
                        time.sleep(_retry_backoff(attempts[index]))
                        # Replays run clean (faults=None): an injected
                        # crash must not re-fire on the recovery pass.
                        futures[index] = self._submit_shared_chunk(
                            handle, fn, chunk, None, generations, index
                        )
            finally:
                # A raising chunk must not unlink the segment while other
                # chunks may still be about to attach it.
                concurrent.futures.wait(
                    [future for future in futures if future is not None]
                )
            return results
        finally:
            if segment_name is not None:
                _unlink_segment(segment_name)

    def _submit_shared_chunk(
        self,
        handle: PayloadHandle,
        fn: Callable[[_Shared, _Task], _Result],
        chunk: Sequence[_Task],
        faults: "ChunkFaults | None",
        generations: list[int],
        index: int,
    ) -> concurrent.futures.Future | None:
        """Submit one chunk, recording the pool generation it rode.

        Returns ``None`` when the pool is broken at submit time (the
        caller's collection loop treats that as one more retryable
        failure), so a respawn triggered by a neighbouring chunk never
        turns into an unhandled exception here.
        """
        generations[index] = self._pool_generation
        try:
            return self._ensure_pool().submit(
                _run_shared_chunk, handle, fn, chunk, faults
            )
        except (concurrent.futures.BrokenExecutor, RuntimeError):
            return None

    def open_dispatch(
        self,
        fn: Callable[[_Shared, _Task], _Result],
        anchors: Sequence[object] = (),
    ) -> DispatchSession | None:
        """Open a shared-memory streaming session, or ``None`` without shm.

        Streaming across a process boundary without shared memory would
        re-ship each payload blob with every chunk — strictly worse than
        the barrier :meth:`map_shared` path — so the caller is told to
        fall back instead.  The anchor publication doubles as a probe:
        if segment creation fails even though the transport is nominally
        enabled (e.g. an exhausted ``/dev/shm``), the session is torn
        down and the caller falls back too, rather than silently
        streaming blobs.
        """
        if not shm_transport_enabled():
            return None
        session = _ShmDispatchSession(self, fn, anchors)
        if anchors and session._anchor_handle.segment is None:
            session.close()
            return None
        return session


#: Registry of executor names accepted by :func:`resolve_executor` (and by
#: the ``executor=`` argument of the transpile APIs).
EXECUTORS: dict[str, type[TrialExecutor]] = {
    "serial": SerialExecutor,
    "threads": ThreadExecutor,
    "thread": ThreadExecutor,
    "processes": ProcessExecutor,
    "process": ProcessExecutor,
}


def resolve_executor(
    executor: "str | TrialExecutor | None",
    max_workers: int | None = None,
) -> TrialExecutor:
    """Coerce an executor specification into a :class:`TrialExecutor`.

    ``None`` means serial; a string is looked up in :data:`EXECUTORS`; an
    existing executor instance is passed through unchanged (``max_workers``
    is ignored for instances — configure them at construction time).
    """
    if executor is None:
        return SerialExecutor()
    if isinstance(executor, TrialExecutor):
        return executor
    if isinstance(executor, str):
        name = executor.lower()
        if name == "remote":
            # Imported lazily: the remote client builds on this module.
            from repro.transpiler.remote.client import RemoteExecutor

            return RemoteExecutor(max_streams=max_workers)
        try:
            cls = EXECUTORS[name]
        except KeyError:
            known = ", ".join(sorted(set(EXECUTORS) | {"remote"}))
            raise TranspilerError(
                f"unknown executor {executor!r} (known: {known})"
            ) from None
        if cls is SerialExecutor:
            return cls()
        return cls(max_workers=max_workers)
    raise TranspilerError(f"cannot interpret {executor!r} as a trial executor")


def owns_executor(executor: "str | TrialExecutor | None") -> bool:
    """Whether :func:`resolve_executor` would create (and thus own) a new
    executor for this specification, rather than borrow an instance."""
    return not isinstance(executor, TrialExecutor)


@contextlib.contextmanager
def executor_scope(
    executor: "str | TrialExecutor | None",
    max_workers: int | None = None,
) -> Iterator[TrialExecutor]:
    """Resolve an executor spec, closing on exit only executors we created.

    Borrowed :class:`TrialExecutor` instances are yielded untouched and
    left open for the caller to reuse; executors built from ``None`` or a
    string spec are closed when the scope exits.
    """
    resolved = resolve_executor(executor, max_workers)
    try:
        yield resolved
    finally:
        if owns_executor(executor):
            resolved.close()
