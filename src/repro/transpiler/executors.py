"""Pluggable executors for independent transpilation trials.

The SABRE/MIRAGE layout search runs many independent trials (paper
Section V uses a 20 x 20 budget); each trial only needs the circuit DAG,
a router and its own RNG stream, so the trials are embarrassingly
parallel.  :class:`TrialExecutor` abstracts *how* a batch of such trials
is evaluated:

* :class:`SerialExecutor` — in-process loop (the reference behaviour);
* :class:`ThreadExecutor` — ``concurrent.futures.ThreadPoolExecutor``,
  useful when trials release the GIL or for IO-bound metric oracles;
* :class:`ProcessExecutor` — ``concurrent.futures.ProcessPoolExecutor``
  for real CPU parallelism.  The mapped function and its tasks must be
  picklable (the layout search uses module-level functions and frozen
  dataclasses for exactly this reason).

All executors preserve input order, so a deterministic per-task seeding
scheme yields results that are byte-identical no matter which executor —
or how many workers — ran the batch.  Pool-backed executors create their
pool lazily on first use and can be reused across circuits (the batch
API :func:`repro.core.transpile.transpile_many` shares one executor for
the whole batch); call :meth:`TrialExecutor.close` or use the executor
as a context manager to release workers.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import math
import os
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

from repro.exceptions import TranspilerError

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")


class TrialExecutor:
    """Strategy object evaluating a function over a batch of trial tasks."""

    name: str = "executor"

    def map(
        self,
        fn: Callable[[_Task], _Result],
        tasks: Iterable[_Task],
    ) -> list[_Result]:
        """Apply ``fn`` to every task, returning results in input order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources.  Idempotent."""

    def __enter__(self) -> "TrialExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialExecutor(TrialExecutor):
    """Evaluate trials one after another in the calling process."""

    name = "serial"

    def map(
        self,
        fn: Callable[[_Task], _Result],
        tasks: Iterable[_Task],
    ) -> list[_Result]:
        return [fn(task) for task in tasks]


class _PoolExecutor(TrialExecutor):
    """Shared lazy-pool plumbing for the ``concurrent.futures`` backends."""

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise TranspilerError("max_workers must be a positive integer")
        self.max_workers = max_workers
        self._pool: concurrent.futures.Executor | None = None

    def _make_pool(self) -> concurrent.futures.Executor:
        raise NotImplementedError

    def map(
        self,
        fn: Callable[[_Task], _Result],
        tasks: Iterable[_Task],
    ) -> list[_Result]:
        batch: Sequence[_Task] = list(tasks)
        if len(batch) <= 1:
            # Not worth dispatching (and keeps single-trial runs pool-free).
            return [fn(task) for task in batch]
        if self._pool is None:
            self._pool = self._make_pool()
        # Chunked dispatch lets pickle memoise objects shared between the
        # tasks of a chunk (DAGs, coverage sets) instead of re-serialising
        # them once per task; harmless for the thread pool.
        workers = self.max_workers or os.cpu_count() or 1
        chunksize = max(1, math.ceil(len(batch) / workers))
        return list(self._pool.map(fn, batch, chunksize=chunksize))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class ThreadExecutor(_PoolExecutor):
    """Evaluate trials on a thread pool."""

    name = "threads"

    def _make_pool(self) -> concurrent.futures.Executor:
        return concurrent.futures.ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-trial"
        )


class ProcessExecutor(_PoolExecutor):
    """Evaluate trials on a process pool.

    The mapped function must be a module-level callable and every task
    must be picklable; :func:`repro.transpiler.passes.run_layout_trial`
    and :class:`repro.transpiler.passes.TrialTask` satisfy both.
    """

    name = "processes"

    def _make_pool(self) -> concurrent.futures.Executor:
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.max_workers
        )


#: Registry of executor names accepted by :func:`resolve_executor` (and by
#: the ``executor=`` argument of the transpile APIs).
EXECUTORS: dict[str, type[TrialExecutor]] = {
    "serial": SerialExecutor,
    "threads": ThreadExecutor,
    "thread": ThreadExecutor,
    "processes": ProcessExecutor,
    "process": ProcessExecutor,
}


def resolve_executor(
    executor: "str | TrialExecutor | None",
    max_workers: int | None = None,
) -> TrialExecutor:
    """Coerce an executor specification into a :class:`TrialExecutor`.

    ``None`` means serial; a string is looked up in :data:`EXECUTORS`; an
    existing executor instance is passed through unchanged (``max_workers``
    is ignored for instances — configure them at construction time).
    """
    if executor is None:
        return SerialExecutor()
    if isinstance(executor, TrialExecutor):
        return executor
    if isinstance(executor, str):
        try:
            cls = EXECUTORS[executor.lower()]
        except KeyError:
            known = ", ".join(sorted(set(EXECUTORS)))
            raise TranspilerError(
                f"unknown executor {executor!r} (known: {known})"
            ) from None
        if cls is SerialExecutor:
            return cls()
        return cls(max_workers=max_workers)
    raise TranspilerError(f"cannot interpret {executor!r} as a trial executor")


def owns_executor(executor: "str | TrialExecutor | None") -> bool:
    """Whether :func:`resolve_executor` would create (and thus own) a new
    executor for this specification, rather than borrow an instance."""
    return not isinstance(executor, TrialExecutor)


@contextlib.contextmanager
def executor_scope(
    executor: "str | TrialExecutor | None",
    max_workers: int | None = None,
) -> Iterator[TrialExecutor]:
    """Resolve an executor spec, closing on exit only executors we created.

    Borrowed :class:`TrialExecutor` instances are yielded untouched and
    left open for the caller to reuse; executors built from ``None`` or a
    string spec are closed when the scope exits.
    """
    resolved = resolve_executor(executor, max_workers)
    try:
        yield resolved
    finally:
        if owns_executor(executor):
            resolved.close()
