"""Transpilation quality metrics.

The paper evaluates transpilers on three axes (Section V / VI-B):

* **critical-path depth** — the weighted longest path through the mapped
  DAG, where every two-qubit block is weighted by its estimated
  decomposition cost in normalised pulse units (iSWAP = 1.0, sqrt(iSWAP) =
  0.5, a SWAP in the sqrt(iSWAP) basis = 1.5, ...);
* **total two-qubit gate cost** — the same weights summed over all nodes;
* **SWAP count** — explicitly inserted SWAP gates (a mirrored gate absorbs
  its SWAP and therefore does not count).

The decomposition-cost estimate comes from the coverage set of the target
basis gate, exactly as MIRAGE itself estimates costs while routing.
"""

from __future__ import annotations

import dataclasses

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import DAGCircuit, DAGNode
from repro.circuits.gates import UnitaryGate
from repro.polytopes.cache import GLOBAL_COORDINATE_CACHE
from repro.polytopes.coverage import CoverageSet, get_coverage_set
from repro.weyl.catalog import coordinate_of_named_gate


def gate_coordinate(gate) -> tuple[float, float, float]:
    """Weyl coordinate of a two-qubit gate.

    Uses, in order of preference: the coordinate annotation cached on a
    consolidated :class:`UnitaryGate` block, the closed-form coordinate of a
    named gate, or a (cached) extraction from the gate matrix.
    """
    if isinstance(gate, UnitaryGate) and gate.coordinate is not None:
        return gate.coordinate
    try:
        return coordinate_of_named_gate(gate.name, *gate.params).to_tuple()
    except ValueError:
        return GLOBAL_COORDINATE_CACHE.coordinate(gate.matrix())


def node_coordinate(node: DAGNode) -> tuple[float, float, float]:
    """Weyl coordinate of a DAG node's two-qubit gate."""
    return gate_coordinate(node.gate)


def gate_cost(node: DAGNode, coverage: CoverageSet) -> float:
    """Estimated decomposition cost (in pulse units) of a DAG node."""
    if not node.is_two_qubit:
        return 0.0
    return coverage.cost_of(node_coordinate(node))


@dataclasses.dataclass(frozen=True)
class CircuitMetrics:
    """Quality metrics of a routed circuit.

    Attributes:
        depth: weighted critical-path length in pulse units.
        total_cost: summed pulse cost over all two-qubit gates.
        swap_count: number of explicit SWAP gates in the circuit.
        two_qubit_count: number of two-qubit gates (blocks count as one).
        gate_depth: plain (unweighted) two-qubit gate depth.
        mirrors_accepted: number of mirror substitutions (MIRAGE only).
    """

    depth: float
    total_cost: float
    swap_count: int
    two_qubit_count: int
    gate_depth: int
    mirrors_accepted: int = 0

    def as_dict(self) -> dict[str, float | int]:
        return dataclasses.asdict(self)


def evaluate(
    circuit: QuantumCircuit | DAGCircuit,
    basis: str = "sqrt_iswap",
    coverage: CoverageSet | None = None,
    mirrors_accepted: int = 0,
) -> CircuitMetrics:
    """Compute :class:`CircuitMetrics` for a (routed) circuit or DAG.

    Args:
        circuit: the circuit or DAG to score.
        basis: target basis-gate name used for the cost weights.
        coverage: reuse an existing coverage set (otherwise the shared,
            memoised set for ``basis`` is used).
        mirrors_accepted: forwarded into the result for reporting.
    """
    dag = circuit if isinstance(circuit, DAGCircuit) else circuit.to_dag()
    coverage = coverage if coverage is not None else get_coverage_set(basis)

    # One batched coverage query for every two-qubit node up front; the
    # critical-path walk then reads costs from a plain dict.
    two_qubit_nodes = [
        node for node in dag.nodes.values() if node.is_two_qubit
    ]
    if two_qubit_nodes:
        coordinates = [node_coordinate(node) for node in two_qubit_nodes]
        node_costs = coverage.cost_of_many(coordinates)
        cost_by_node = {
            node.node_id: float(cost)
            for node, cost in zip(two_qubit_nodes, node_costs)
        }
    else:
        cost_by_node = {}

    def weight(node: DAGNode) -> float:
        return cost_by_node.get(node.node_id, 0.0)

    depth = dag.longest_path_length(weight)
    total = sum(weight(node) for node in dag.nodes.values())
    swap_count = sum(
        1 for node in dag.nodes.values() if node.gate.name == "swap"
    )
    two_qubit_count = sum(1 for node in dag.nodes.values() if node.is_two_qubit)
    gate_depth = int(
        dag.longest_path_length(
            lambda node: 1.0 if node.is_two_qubit else 0.0
        )
    )
    return CircuitMetrics(
        depth=float(depth),
        total_cost=float(total),
        swap_count=swap_count,
        two_qubit_count=two_qubit_count,
        gate_depth=gate_depth,
        mirrors_accepted=mirrors_accepted,
    )


def improvement(before: CircuitMetrics, after: CircuitMetrics) -> dict[str, float]:
    """Relative improvements (positive = ``after`` is better), as fractions."""

    def relative(old: float, new: float) -> float:
        if old == 0:
            return 0.0
        return (old - new) / old

    return {
        "depth": relative(before.depth, after.depth),
        "total_cost": relative(before.total_cost, after.total_cost),
        "swap_count": relative(before.swap_count, after.swap_count),
    }
