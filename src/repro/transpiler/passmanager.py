"""A small sequential pass manager.

Passes are plain callables from :class:`QuantumCircuit` to
:class:`QuantumCircuit`; the manager runs them in order and records the
name and duration of each stage for the runtime benchmarks (paper Fig. 13).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Sequence

from repro.circuits.circuit import QuantumCircuit

CircuitPass = Callable[[QuantumCircuit], QuantumCircuit]


@dataclasses.dataclass(frozen=True)
class PassRecord:
    """Timing record of one executed pass."""

    name: str
    seconds: float
    gates_before: int
    gates_after: int


class PassManager:
    """Run a fixed sequence of circuit-to-circuit passes."""

    def __init__(self, passes: Sequence[tuple[str, CircuitPass]]) -> None:
        self.passes = list(passes)
        self.records: list[PassRecord] = []

    def run(self, circuit: QuantumCircuit) -> QuantumCircuit:
        self.records = []
        current = circuit
        for name, stage in self.passes:
            start = time.perf_counter()
            gates_before = len(current)
            current = stage(current)
            self.records.append(
                PassRecord(
                    name=name,
                    seconds=time.perf_counter() - start,
                    gates_before=gates_before,
                    gates_after=len(current),
                )
            )
        return current

    def total_seconds(self) -> float:
        return sum(record.seconds for record in self.records)

    def report(self) -> list[dict[str, float | str | int]]:
        return [dataclasses.asdict(record) for record in self.records]
