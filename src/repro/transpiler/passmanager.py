"""Staged transpilation pipeline: property set, passes and pass manager.

A pipeline is an ordered list of named *stages* operating on a shared
:class:`PipelineState` — the circuit being transformed plus a
:class:`PropertySet` of analysis results (coupling map, coverage set,
layouts, routing outcome, ...) that flows between stages instead of
through ad-hoc locals.  Every executed stage is timed and recorded as a
:class:`PassRecord`, which is what the runtime benchmarks (paper Fig. 13)
report per stage.

Two kinds of stages are supported:

* plain callables ``QuantumCircuit -> QuantumCircuit`` (wrapped in a
  :class:`FunctionPass`) for simple circuit transforms, and
* :class:`BasePass` subclasses, which read and write the property set and
  may skip themselves via :meth:`BasePass.should_run` — e.g. routing is
  skipped once the VF2 stage has found a SWAP-free embedding.

:func:`repro.core.pipeline.build_mirage_pipeline` assembles the paper's
full flow (clean → unroll → consolidate → VF2 → route → select) out of
these pieces; :func:`repro.core.transpile.transpile` is a thin builder
over it.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable, Iterable, Mapping

from repro.exceptions import TranspilerError
from repro.circuits.circuit import QuantumCircuit

CircuitPass = Callable[[QuantumCircuit], QuantumCircuit]


class PropertySet(dict):
    """Shared key/value store flowing through a pipeline run.

    A plain ``dict`` plus :meth:`require` for properties that an upstream
    stage is expected to have produced already.
    """

    def require(self, key: str) -> Any:
        if key not in self:
            raise TranspilerError(
                f"pipeline property {key!r} has not been computed by any "
                "upstream stage"
            )
        return self[key]


@dataclasses.dataclass(frozen=True)
class PassRecord:
    """Timing record of one pipeline stage."""

    name: str
    seconds: float
    gates_before: int
    gates_after: int
    skipped: bool = False


@dataclasses.dataclass
class PipelineState:
    """Mutable state threaded through the stages of one pipeline run."""

    circuit: QuantumCircuit
    properties: PropertySet = dataclasses.field(default_factory=PropertySet)
    records: list[PassRecord] = dataclasses.field(default_factory=list)


class BasePass:
    """A named pipeline stage operating on a :class:`PipelineState`.

    Subclasses override :meth:`run` (and optionally :meth:`should_run` to
    make the stage conditional).  Stages communicate exclusively through
    ``state.circuit`` and ``state.properties``.
    """

    name: str = "pass"

    def should_run(self, state: PipelineState) -> bool:
        return True

    def run(self, state: PipelineState) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class FunctionPass(BasePass):
    """Adapter wrapping a plain circuit-to-circuit callable as a stage."""

    def __init__(self, name: str, fn: CircuitPass) -> None:
        self.name = name
        self.fn = fn

    def run(self, state: PipelineState) -> None:
        state.circuit = self.fn(state.circuit)


def _as_pass(item: BasePass | tuple[str, CircuitPass]) -> BasePass:
    if isinstance(item, BasePass):
        return item
    if isinstance(item, tuple) and len(item) == 2:
        return FunctionPass(*item)
    raise TypeError(
        "pipeline stages must be BasePass instances or (name, callable) "
        f"tuples, got {item!r}"
    )


class PassManager:
    """Run a fixed sequence of named stages over a shared property set."""

    def __init__(
        self,
        passes: Iterable[BasePass | tuple[str, CircuitPass]] = (),
    ) -> None:
        self.passes: list[BasePass] = [_as_pass(item) for item in passes]
        self.records: list[PassRecord] = []

    def append(
        self, stage: BasePass | tuple[str, CircuitPass]
    ) -> "PassManager":
        """Append a stage: a :class:`BasePass` or a ``(name, fn)`` tuple."""
        self.passes.append(_as_pass(stage))
        return self

    def execute(
        self,
        circuit: QuantumCircuit,
        properties: Mapping[str, Any] | None = None,
    ) -> PipelineState:
        """Run the pipeline and return the full :class:`PipelineState`.

        Stages whose :meth:`BasePass.should_run` returns ``False`` are
        recorded with ``skipped=True`` so reports still show the complete
        pipeline shape.
        """
        state = PipelineState(
            circuit=circuit, properties=PropertySet(properties or {})
        )
        return self.execute_state(state)

    def execute_state(self, state: PipelineState) -> PipelineState:
        """Run the pipeline over an existing :class:`PipelineState`.

        This is how multi-phase drivers (the circuit-level batch engine in
        :func:`repro.core.transpile.transpile_many`) resume a pipeline:
        the front half runs via :meth:`execute`, external work happens on
        the state's properties, then the back half continues on the same
        state — records accumulate across both halves.
        """
        # Shared list so records of a stage that raises are not lost.
        self.records = state.records
        for stage in self.passes:
            gates_before = len(state.circuit)
            if not stage.should_run(state):
                state.records.append(
                    PassRecord(
                        name=stage.name,
                        seconds=0.0,
                        gates_before=gates_before,
                        gates_after=gates_before,
                        skipped=True,
                    )
                )
                continue
            start = time.perf_counter()
            stage.run(state)
            state.records.append(
                PassRecord(
                    name=stage.name,
                    seconds=time.perf_counter() - start,
                    gates_before=gates_before,
                    gates_after=len(state.circuit),
                )
            )
        return state

    def run(
        self,
        circuit: QuantumCircuit,
        properties: Mapping[str, Any] | None = None,
    ) -> QuantumCircuit:
        """Run the pipeline and return the transformed circuit."""
        return self.execute(circuit, properties).circuit

    def total_seconds(self) -> float:
        return sum(record.seconds for record in self.records)

    def report(self) -> list[dict[str, float | str | int | bool]]:
        return [dataclasses.asdict(record) for record in self.records]
