"""Transpiler substrate: topologies, layouts, metrics, SABRE baseline."""

from repro.transpiler.layout import Layout, apply_layout, interaction_graph, vf2_layout
from repro.transpiler.metrics import CircuitMetrics, evaluate, gate_cost, improvement, node_coordinate
from repro.transpiler.passmanager import PassManager, PassRecord
from repro.transpiler.topologies import (
    CouplingMap,
    all_to_all_topology,
    grid_topology,
    heavy_hex_topology,
    line_topology,
    ring_topology,
    square_lattice_topology,
    topology_by_name,
)

__all__ = [
    "Layout",
    "apply_layout",
    "interaction_graph",
    "vf2_layout",
    "CircuitMetrics",
    "evaluate",
    "gate_cost",
    "improvement",
    "node_coordinate",
    "PassManager",
    "PassRecord",
    "CouplingMap",
    "all_to_all_topology",
    "grid_topology",
    "heavy_hex_topology",
    "line_topology",
    "ring_topology",
    "square_lattice_topology",
    "topology_by_name",
]
