"""Transpiler substrate: topologies, layouts, metrics, pipeline, executors."""

from repro.transpiler.executors import (
    EXECUTORS,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    TrialExecutor,
    executor_scope,
    resolve_executor,
)
from repro.transpiler.layout import Layout, apply_layout, interaction_graph, vf2_layout
from repro.transpiler.metrics import CircuitMetrics, evaluate, gate_cost, improvement, node_coordinate
from repro.transpiler.passmanager import (
    BasePass,
    FunctionPass,
    PassManager,
    PassRecord,
    PipelineState,
    PropertySet,
)
from repro.transpiler.topologies import (
    CouplingMap,
    all_to_all_topology,
    grid_topology,
    heavy_hex_topology,
    line_topology,
    ring_topology,
    square_lattice_topology,
    topology_by_name,
)

__all__ = [
    "EXECUTORS",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "TrialExecutor",
    "executor_scope",
    "resolve_executor",
    "Layout",
    "apply_layout",
    "interaction_graph",
    "vf2_layout",
    "CircuitMetrics",
    "evaluate",
    "gate_cost",
    "improvement",
    "node_coordinate",
    "BasePass",
    "FunctionPass",
    "PassManager",
    "PassRecord",
    "PipelineState",
    "PropertySet",
    "CouplingMap",
    "all_to_all_topology",
    "grid_topology",
    "heavy_hex_topology",
    "line_topology",
    "ring_topology",
    "square_lattice_topology",
    "topology_by_name",
]
