"""SABRE swap routing (Li, Ding, Xie — ASPLOS 2019), the paper's baseline.

The router walks the circuit DAG keeping a *front layer* of gates whose
dependencies are resolved.  Gates whose qubits are adjacent on the device
execute immediately; when the front layer stalls, candidate SWAPs on edges
touching the front-layer qubits are scored with the distance + lookahead +
decay heuristic and the best one is inserted.

The class is written so that MIRAGE (:mod:`repro.core.mirage_pass`) can
subclass it and override only :meth:`SabreSwap._commit_two_qubit` — the hook
where the paper's intermediate layer decides between a gate and its mirror.
"""

from __future__ import annotations

import dataclasses
from collections import deque

import numpy as np

from repro.exceptions import TranspilerError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import DAGCircuit, DAGNode
from repro.circuits.gates import Gate
from repro.linalg.random import _as_rng
from repro.transpiler.kernel import (
    KernelState,
    int_dag,
    neighbor_table,
    route_kernel,
    route_kernel_mode,
)
from repro.transpiler.layout import Layout
from repro.transpiler.topologies import CouplingMap

#: Default SABRE hyper-parameters (paper Section V keeps the defaults).
EXTENDED_SET_SIZE = 20
EXTENDED_SET_WEIGHT = 0.5
DECAY_DELTA = 0.001
DECAY_RESET_INTERVAL = 5


@dataclasses.dataclass
class RoutingResult:
    """Outcome of one routing run.

    Attributes:
        dag: the mapped DAG on physical qubits (includes inserted SWAPs).
        initial_layout: layout at circuit start.
        final_layout: layout after the last gate.
        swaps_added: number of SWAP gates inserted by the router.
        mirrors_accepted: number of mirror-gate substitutions (MIRAGE only).
        mirror_candidates: number of gates that reached the intermediate layer.
    """

    dag: DAGCircuit
    initial_layout: Layout
    final_layout: Layout
    swaps_added: int
    mirrors_accepted: int = 0
    mirror_candidates: int = 0

    def to_circuit(self) -> QuantumCircuit:
        return self.dag.to_circuit()

    @property
    def mirror_acceptance_rate(self) -> float:
        if self.mirror_candidates == 0:
            return 0.0
        return self.mirrors_accepted / self.mirror_candidates


class SabreSwap:
    """SABRE heuristic router.

    Args:
        coupling: device coupling map.
        extended_set_size: lookahead window size ``|E|``.
        extended_set_weight: lookahead weight ``W``.
        decay_delta: per-SWAP decay increment.
        decay_reset_interval: SWAP insertions between decay resets.
        seed: RNG seed used only for tie-breaking.
    """

    def __init__(
        self,
        coupling: CouplingMap,
        *,
        extended_set_size: int = EXTENDED_SET_SIZE,
        extended_set_weight: float = EXTENDED_SET_WEIGHT,
        decay_delta: float = DECAY_DELTA,
        decay_reset_interval: int = DECAY_RESET_INTERVAL,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.coupling = coupling
        self.extended_set_size = extended_set_size
        self.extended_set_weight = extended_set_weight
        self.decay_delta = decay_delta
        self.decay_reset_interval = decay_reset_interval
        self._rng = _as_rng(seed)

    # -- public API --------------------------------------------------------

    def run(
        self,
        dag: DAGCircuit,
        initial_layout: Layout,
        seed: int | np.random.Generator | None = None,
    ) -> RoutingResult:
        """Route ``dag`` starting from ``initial_layout``.

        Dispatches to the flat int-array kernel by default; setting
        ``MIRAGE_ROUTE_KERNEL=object`` keeps the historical object walk
        for differential testing.  Both paths are byte-identical at a
        fixed seed.
        """
        rng = _as_rng(seed) if seed is not None else self._rng
        if route_kernel_mode() == "object":
            return self._run_object(dag, initial_layout, rng)
        return self._run_flat(dag, initial_layout, rng)

    def _run_flat(
        self,
        dag: DAGCircuit,
        initial_layout: Layout,
        rng: np.random.Generator,
    ) -> RoutingResult:
        """Flat-kernel routing over the lowered int arrays."""
        self._stats = {"mirrors": 0, "candidates": 0}
        state = route_kernel(
            int_dag(dag),
            neighbor_table(self.coupling),
            initial_layout.virtual_to_physical(),
            rng,
            extended_set_size=self.extended_set_size,
            extended_set_weight=self.extended_set_weight,
            decay_delta=self.decay_delta,
            decay_reset_interval=self.decay_reset_interval,
            stall_limit=10 * max(10, self.coupling.num_qubits),
            commit=self._commit_two_qubit_flat,
        )
        out = DAGCircuit(self.coupling.num_qubits, dag.name)
        for gate, physical in state.ops:
            out.add_node(gate, physical)
        return RoutingResult(
            dag=out,
            initial_layout=initial_layout.copy(),
            final_layout=Layout(state.v2p, self.coupling.num_qubits),
            swaps_added=state.swaps_added,
            mirrors_accepted=self._stats["mirrors"],
            mirror_candidates=self._stats["candidates"],
        )

    def _commit_two_qubit_flat(
        self, state: KernelState, node_id: int, physical: tuple[int, int]
    ) -> None:
        """Flat twin of :meth:`_commit_two_qubit`.  MIRAGE overrides this."""
        state.emit(node_id, physical)

    def _run_object(
        self,
        dag: DAGCircuit,
        initial_layout: Layout,
        rng: np.random.Generator,
    ) -> RoutingResult:
        """Historical object-path routing (``MIRAGE_ROUTE_KERNEL=object``)."""
        layout = initial_layout.copy()
        out = DAGCircuit(self.coupling.num_qubits, dag.name)

        predecessors_left = dict(dag.in_degrees())
        front: list[DAGNode] = dag.front_layer()
        self._decay = np.ones(self.coupling.num_qubits)
        self._decay_steps = 0
        swaps_added = 0
        self._stats = {"mirrors": 0, "candidates": 0}
        stall_counter = 0
        stall_limit = 10 * max(10, self.coupling.num_qubits)

        while front:
            executed_any = False
            still_blocked: list[DAGNode] = []
            for node in front:
                if self._is_executable(node, layout):
                    self._execute(node, layout, out, dag)
                    executed_any = True
                    for successor in dag.successors(node):
                        predecessors_left[successor.node_id] -= 1
                        if predecessors_left[successor.node_id] == 0:
                            still_blocked.append(successor)
                else:
                    still_blocked.append(node)
            front = still_blocked
            if executed_any:
                self._decay[:] = 1.0
                self._decay_steps = 0
                stall_counter = 0
                continue
            if not front:
                break

            # Stalled: insert the best-scoring SWAP.
            stall_counter += 1
            if stall_counter > stall_limit:
                raise TranspilerError("router failed to make progress")
            swap_edge = self._choose_swap(front, layout, dag, rng)
            self._apply_swap(swap_edge, layout, out)
            swaps_added += 1

        return RoutingResult(
            dag=out,
            initial_layout=initial_layout.copy(),
            final_layout=layout,
            swaps_added=swaps_added,
            mirrors_accepted=self._stats["mirrors"],
            mirror_candidates=self._stats["candidates"],
        )

    # -- execution ----------------------------------------------------------

    def _is_executable(self, node: DAGNode, layout: Layout) -> bool:
        if node.is_directive or len(node.qubits) == 1:
            return True
        if len(node.qubits) != 2:
            raise TranspilerError("router requires gates with at most two qubits")
        physical = [layout.v2p(q) for q in node.qubits]
        return self.coupling.are_connected(*physical)

    def _execute(
        self, node: DAGNode, layout: Layout, out: DAGCircuit, dag: DAGCircuit
    ) -> None:
        physical = tuple(layout.v2p(q) for q in node.qubits)
        if node.is_two_qubit:
            self._commit_two_qubit(node, physical, layout, out, dag)
        else:
            out.add_node(node.gate, physical)

    def _commit_two_qubit(
        self,
        node: DAGNode,
        physical: tuple[int, ...],
        layout: Layout,
        out: DAGCircuit,
        dag: DAGCircuit,
    ) -> None:
        """Place a two-qubit gate on the device.  MIRAGE overrides this."""
        out.add_node(node.gate, physical)

    # -- swap selection --------------------------------------------------------

    def _apply_swap(
        self, edge: tuple[int, int], layout: Layout, out: DAGCircuit
    ) -> None:
        out.add_node(Gate("swap", 2), edge)
        layout.swap_physical(*edge)
        self._decay[edge[0]] += self.decay_delta
        self._decay[edge[1]] += self.decay_delta
        self._decay_steps += 1
        if self._decay_steps >= self.decay_reset_interval:
            self._decay[:] = 1.0
            self._decay_steps = 0

    def _swap_candidates(
        self, front: list[DAGNode], layout: Layout
    ) -> list[tuple[int, int]]:
        active_physical = set()
        for node in front:
            if len(node.qubits) == 2:
                active_physical.update(layout.v2p(q) for q in node.qubits)
        candidates = set()
        for physical in active_physical:
            for neighbor in self.coupling.neighbors(physical):
                candidates.add(tuple(sorted((physical, neighbor))))
        return sorted(candidates)

    def _extended_set(self, front: list[DAGNode], dag: DAGCircuit) -> list[DAGNode]:
        """Upcoming two-qubit gates after the front layer (lookahead window)."""
        extended: list[DAGNode] = []
        queue = deque(front)
        seen = {node.node_id for node in front}
        while queue and len(extended) < self.extended_set_size:
            node = queue.popleft()
            for successor in dag.successors(node):
                if successor.node_id in seen:
                    continue
                seen.add(successor.node_id)
                queue.append(successor)
                if successor.is_two_qubit:
                    extended.append(successor)
                    if len(extended) >= self.extended_set_size:
                        break
        return extended

    def routing_heuristic(
        self,
        front: list[DAGNode],
        extended: list[DAGNode],
        layout: Layout,
    ) -> float:
        """Distance + lookahead heuristic of a layout (lower is better)."""
        distance = self.coupling.distance_matrix
        front_pairs = [node for node in front if len(node.qubits) == 2]
        total = 0.0
        if front_pairs:
            total += sum(
                distance[layout.v2p(node.qubits[0]), layout.v2p(node.qubits[1])]
                for node in front_pairs
            ) / len(front_pairs)
        if extended:
            total += self.extended_set_weight * sum(
                distance[layout.v2p(node.qubits[0]), layout.v2p(node.qubits[1])]
                for node in extended
            ) / len(extended)
        return float(total)

    def _candidate_scores(
        self,
        front: list[DAGNode],
        extended: list[DAGNode],
        layout: Layout,
        candidates: list[tuple[int, int]],
    ) -> list[float]:
        """Heuristic score of each candidate SWAP, by incremental deltas.

        The front and lookahead distance sums are computed once for the
        current layout; each candidate edge then only re-evaluates the
        distances of gates touching its two physical qubits.  Distances are
        integer-valued hop counts, so the delta-adjusted sums are exactly
        the sums a full rescore would produce and the chosen edge is
        bit-identical to the historical copy-layout-and-rescore loop.
        """
        distance = self.coupling.distance_matrix
        front_pairs = [
            tuple(layout.v2p(q) for q in node.qubits)
            for node in front
            if len(node.qubits) == 2
        ]
        extended_pairs = [
            tuple(layout.v2p(q) for q in node.qubits) for node in extended
        ]

        groups = ((0, front_pairs), (1, extended_pairs))
        sums = [0.0, 0.0]
        touching: dict[int, list[tuple[int, int, int]]] = {}
        for group, pairs in groups:
            for left, right in pairs:
                sums[group] += distance[left, right]
                touching.setdefault(left, []).append((group, left, right))
                if right != left:
                    touching.setdefault(right, []).append((group, left, right))

        finite = all(np.isfinite(total) for total in sums)
        scores = []
        for edge_a, edge_b in candidates:
            if finite:
                deltas = [0.0, 0.0]
                for group, left, right in touching.get(edge_a, ()):
                    if left == edge_b or right == edge_b:
                        continue  # both endpoints swap; distance unchanged
                    new_left = edge_b if left == edge_a else left
                    new_right = edge_b if right == edge_a else right
                    deltas[group] += (
                        distance[new_left, new_right] - distance[left, right]
                    )
                for group, left, right in touching.get(edge_b, ()):
                    if left == edge_a or right == edge_a:
                        continue
                    new_left = edge_a if left == edge_b else left
                    new_right = edge_a if right == edge_b else right
                    deltas[group] += (
                        distance[new_left, new_right] - distance[left, right]
                    )
                front_sum = sums[0] + deltas[0]
                extended_sum = sums[1] + deltas[1]
            else:
                # Infinite distances (disconnected coupling) poison the
                # delta arithmetic with inf - inf; fall back to direct sums.
                front_sum = sum(
                    distance[
                        edge_b if left == edge_a else edge_a if left == edge_b else left,
                        edge_b if right == edge_a else edge_a if right == edge_b else right,
                    ]
                    for left, right in front_pairs
                )
                extended_sum = sum(
                    distance[
                        edge_b if left == edge_a else edge_a if left == edge_b else left,
                        edge_b if right == edge_a else edge_a if right == edge_b else right,
                    ]
                    for left, right in extended_pairs
                )
            score = 0.0
            if front_pairs:
                score += front_sum / len(front_pairs)
            if extended_pairs:
                score += self.extended_set_weight * extended_sum / len(
                    extended_pairs
                )
            scores.append(float(score))
        return scores

    def _choose_swap(
        self,
        front: list[DAGNode],
        layout: Layout,
        dag: DAGCircuit,
        rng: np.random.Generator,
    ) -> tuple[int, int]:
        candidates = self._swap_candidates(front, layout)
        if not candidates:
            raise TranspilerError(
                "no SWAP candidates: the coupling graph is likely disconnected"
            )
        extended = self._extended_set(front, dag)
        scores = self._candidate_scores(front, extended, layout, candidates)
        best_score = np.inf
        best_edges: list[tuple[int, int]] = []
        for edge, base_score in zip(candidates, scores):
            score = base_score * max(self._decay[edge[0]], self._decay[edge[1]])
            if score < best_score - 1e-12:
                best_score = score
                best_edges = [edge]
            elif abs(score - best_score) <= 1e-12:
                best_edges.append(edge)
        if not best_edges:
            raise TranspilerError(
                "cannot route: some target qubits are unreachable on this coupling map"
            )
        return best_edges[int(rng.integers(len(best_edges)))]
