"""Input-cleaning passes (paper Section V).

Before routing, the pass manager removes barriers, measurements and identity
gates, and elides SWAP gates present in the *input* program by permuting the
wire labels of all downstream gates (an input SWAP never needs to be
executed — only routing-inserted SWAPs cost pulses).
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit


def remove_directives(circuit: QuantumCircuit) -> QuantumCircuit:
    """Drop barriers and measurements."""
    return circuit.without_directives()


def remove_identity_gates(circuit: QuantumCircuit) -> QuantumCircuit:
    """Drop explicit identity gates and zero-angle rotations."""
    out = QuantumCircuit(circuit.num_qubits, circuit.name)
    for instruction in circuit:
        gate = instruction.gate
        if gate.name == "id":
            continue
        if gate.name in {"rx", "ry", "rz", "p", "cp", "rzz", "rxx", "ryy"} and (
            abs(gate.params[0]) < 1e-12
        ):
            continue
        out.append_instruction(instruction)
    return out


def elide_input_swaps(circuit: QuantumCircuit) -> QuantumCircuit:
    """Remove SWAP gates from the input program by relabelling wires.

    Every SWAP in the source circuit is absorbed into a virtual-qubit
    permutation applied to all later gates; the resulting circuit computes
    the same unitary up to a final wire permutation, which is irrelevant for
    routing-quality comparisons (and is how Qiskit's ``RemoveSwap``-style
    cleaning behaves before SABRE runs).
    """
    permutation = list(range(circuit.num_qubits))
    out = QuantumCircuit(circuit.num_qubits, circuit.name)
    for instruction in circuit:
        if instruction.gate.name == "swap":
            a, b = instruction.qubits
            permutation[a], permutation[b] = permutation[b], permutation[a]
            continue
        out.append(
            instruction.gate, [permutation[q] for q in instruction.qubits]
        )
    return out


def clean_input(circuit: QuantumCircuit, *, elide_swaps: bool = True) -> QuantumCircuit:
    """Full input-cleaning pipeline used by the preset pass managers."""
    cleaned = remove_directives(circuit)
    cleaned = remove_identity_gates(cleaned)
    if elide_swaps:
        cleaned = elide_input_swaps(cleaned)
    return cleaned
