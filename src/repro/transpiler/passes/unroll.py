"""Unrolling of gates with more than two qubits.

Routing only understands one- and two-qubit operations; this pass expands
the three-qubit gates used by the benchmark generators (Toffoli, Fredkin,
CCZ) into the standard CNOT + T constructions.
"""

from __future__ import annotations

from repro.exceptions import TranspilerError
from repro.circuits.circuit import QuantumCircuit


def _toffoli(circuit: QuantumCircuit, a: int, b: int, c: int) -> None:
    """Standard 6-CNOT Toffoli decomposition."""
    circuit.h(c)
    circuit.cx(b, c)
    circuit.tdg(c)
    circuit.cx(a, c)
    circuit.t(c)
    circuit.cx(b, c)
    circuit.tdg(c)
    circuit.cx(a, c)
    circuit.t(b)
    circuit.t(c)
    circuit.h(c)
    circuit.cx(a, b)
    circuit.t(a)
    circuit.tdg(b)
    circuit.cx(a, b)


def _ccz(circuit: QuantumCircuit, a: int, b: int, c: int) -> None:
    circuit.h(c)
    _toffoli(circuit, a, b, c)
    circuit.h(c)


def _fredkin(circuit: QuantumCircuit, control: int, x: int, y: int) -> None:
    """Fredkin = CNOT-conjugated Toffoli."""
    circuit.cx(y, x)
    _toffoli(circuit, control, x, y)
    circuit.cx(y, x)


def unroll_to_two_qubit(circuit: QuantumCircuit) -> QuantumCircuit:
    """Expand every >2-qubit gate into one- and two-qubit gates."""
    out = QuantumCircuit(circuit.num_qubits, circuit.name)
    for instruction in circuit:
        gate = instruction.gate
        if gate.is_directive or gate.num_qubits <= 2:
            out.append_instruction(instruction)
            continue
        if gate.name == "ccx":
            _toffoli(out, *instruction.qubits)
        elif gate.name == "ccz":
            _ccz(out, *instruction.qubits)
        elif gate.name == "cswap":
            _fredkin(out, *instruction.qubits)
        else:
            raise TranspilerError(
                f"no unrolling rule for {gate.num_qubits}-qubit gate {gate.name!r}"
            )
    return out
