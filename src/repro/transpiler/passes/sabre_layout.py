"""SABRE layout: multi-trial initial-placement search with routing refinement.

For each trial a random initial layout is refined by routing the circuit
forward and backward (the final layout of one direction becomes the initial
layout of the other), then the refined layout is routed one final time and
the best trial is kept according to a *post-selection metric* — SWAP count
(stock SABRE) or decomposition-aware circuit depth (MIRAGE's improvement,
paper Section IV-B).

Trials are fully independent: each one draws from its own RNG stream
spawned via :class:`numpy.random.SeedSequence`, so the best result is
identical no matter in which order — or on which
:class:`~repro.transpiler.executors.TrialExecutor` — the trials run.
:func:`run_layout_trial` is a module-level function over a picklable
:class:`TrialTask` precisely so the process-pool executor can ship trials
to worker processes.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Callable, Sequence

import numpy as np

from repro.circuits.dag import DAGCircuit
from repro.polytopes.coverage import CoverageSet
from repro.transpiler import metrics as metrics_mod
from repro.transpiler.executors import TrialExecutor, executor_scope
from repro.transpiler.kernel import IntDAG, adopt_intdag, int_dag
from repro.transpiler.layout import Layout
from repro.transpiler.passes.sabre_swap import RoutingResult, SabreSwap
from repro.transpiler.topologies import CouplingMap

#: Paper defaults: 20 layout trials, 4 forward/backward rounds, 20 routing
#: trials.  The pure-Python reproduction keeps them configurable because the
#: full 20 x 20 budget is slow; benches state the budget they use.
DEFAULT_LAYOUT_TRIALS = 4
DEFAULT_REFINEMENT_ROUNDS = 2
DEFAULT_ROUTING_TRIALS = 1

RouterFactory = Callable[[int], SabreSwap]
SelectionMetric = Callable[[RoutingResult], float]


@dataclasses.dataclass
class LayoutResult:
    """Best routing found across all layout/routing trials.

    Attributes:
        routing: the winning trial's routed result.
        score: its post-selection score (lower is better).
        trial_index: index of the winning trial.
        metric_name: label of the post-selection metric.
        trial_scores: score of every trial, in trial order.
        trial_seconds: summed wall-clock seconds spent inside the trials
            (worker time — under a parallel executor this exceeds the
            elapsed wall clock of the search).
    """

    routing: RoutingResult
    score: float
    trial_index: int
    metric_name: str
    trial_scores: list[float] | None = None
    trial_seconds: float = 0.0

    @property
    def dag(self) -> DAGCircuit:
        return self.routing.dag


def _reverse_dag(dag: DAGCircuit) -> DAGCircuit:
    reverse = DAGCircuit(dag.num_qubits, f"{dag.name}_rev")
    for node in reversed(list(dag.topological_nodes())):
        reverse.add_node(node.gate, node.qubits)
    return reverse


def seed_sequence(
    seed: int | np.random.SeedSequence | np.random.Generator | None,
) -> np.random.SeedSequence:
    """Coerce any supported seed specification into a ``SeedSequence``.

    A caller-provided ``SeedSequence`` is rebuilt from its entropy and
    spawn key rather than used directly: ``spawn()`` mutates the parent's
    spawn counter, so reusing the caller's instance would make every run
    draw different child streams (silently breaking "same seed, same
    result").  The rebuilt copy always spawns from a fresh counter.
    A caller-provided ``Generator``, by contrast, is consumed — one draw
    of entropy advances its state, so reusing it gives fresh randomness.
    """
    if isinstance(seed, np.random.SeedSequence):
        return np.random.SeedSequence(
            entropy=seed.entropy, spawn_key=seed.spawn_key
        )
    if isinstance(seed, np.random.Generator):
        return np.random.SeedSequence(int(seed.integers(2**63)))
    return np.random.SeedSequence(seed)


def swap_count_metric(result: RoutingResult) -> float:
    """Stock SABRE post-selection: fewest inserted SWAP gates."""
    return float(result.swaps_added)


@dataclasses.dataclass(frozen=True)
class DepthMetric:
    """MIRAGE post-selection: smallest decomposition-aware critical path.

    A frozen dataclass rather than a closure so that trial tasks carrying
    it stay picklable for the process-pool executor.
    """

    basis: str = "sqrt_iswap"
    coverage: CoverageSet | None = None

    def __call__(self, result: RoutingResult) -> float:
        evaluated = metrics_mod.evaluate(
            result.dag, basis=self.basis, coverage=self.coverage
        )
        return evaluated.depth


def depth_metric(
    basis: str = "sqrt_iswap", coverage: CoverageSet | None = None
) -> SelectionMetric:
    """Build the MIRAGE depth post-selection metric."""
    return DepthMetric(basis=basis, coverage=coverage)


@dataclasses.dataclass(frozen=True)
class SabreRouterFactory:
    """Picklable factory building a stock :class:`SabreSwap` per trial."""

    coupling: CouplingMap

    def __call__(self, trial: int) -> SabreSwap:
        return SabreSwap(self.coupling)


@dataclasses.dataclass(frozen=True)
class TrialSpec:
    """The heavy, trial-invariant half of a layout search, picklable.

    Every trial of one circuit shares the same DAGs, coupling map, router
    factory and post-selection metric; only the ``(trial_index, seed)``
    pair differs.  Splitting the spec out lets
    :meth:`~repro.transpiler.executors.TrialExecutor.map_shared` serialise
    it once per dispatch instead of once per trial.

    ``reverse_dag`` may be ``None`` (a *deferred* spec): the reverse DAG
    is then derived from ``dag`` on first use — in whichever process runs
    the first trial — and cached on the spec instance, so the dispatcher
    neither builds nor ships it and its construction overlaps early trial
    execution on other workers.  The derivation is deterministic, keeping
    results byte-identical to an eagerly-built spec.

    ``intdag`` is the flat-kernel lowering of ``dag``, built once by the
    dispatcher and shipped as plain ndarrays through the zero-copy
    transport (the pickle memo deduplicates it against the copy memoised
    on ``dag`` itself).  Workers adopt it instead of re-lowering the DAG
    per trial; ``None`` simply makes the first worker lower on demand.
    """

    dag: DAGCircuit
    reverse_dag: DAGCircuit | None
    coupling: CouplingMap
    router_factory: RouterFactory
    refinement_rounds: int
    routing_trials: int
    selection_metric: SelectionMetric
    intdag: IntDAG | None = None

    def resolved_reverse_dag(self) -> DAGCircuit:
        """The reverse DAG, deriving (and caching) it when deferred.

        Worker processes memoise the unpickled spec per payload, so the
        derivation runs at most once per process; under a thread executor
        a rare race can derive it twice, producing identical DAGs (the
        construction is deterministic), so last-write-wins is benign.
        """
        if self.reverse_dag is not None:
            return self.reverse_dag
        cached = getattr(self, "_reverse_cache", None)
        if cached is None:
            cached = _reverse_dag(self.dag)
            object.__setattr__(self, "_reverse_cache", cached)
        return cached


@dataclasses.dataclass(frozen=True)
class TrialRef:
    """The light, per-trial half: which trial, and its private RNG stream."""

    trial_index: int
    seed: np.random.SeedSequence


@dataclasses.dataclass(frozen=True)
class TrialTask:
    """Everything one independent layout trial needs, picklable.

    Kept as the single-object view of a ``(TrialSpec, TrialRef)`` pair for
    callers that drive trials by hand; executor dispatch uses the split
    form so the spec ships once per chunk rather than once per trial.
    """

    trial_index: int
    seed: np.random.SeedSequence
    dag: DAGCircuit
    reverse_dag: DAGCircuit
    coupling: CouplingMap
    router_factory: RouterFactory
    refinement_rounds: int
    routing_trials: int
    selection_metric: SelectionMetric

    @property
    def spec(self) -> TrialSpec:
        return TrialSpec(
            dag=self.dag,
            reverse_dag=self.reverse_dag,
            coupling=self.coupling,
            router_factory=self.router_factory,
            refinement_rounds=self.refinement_rounds,
            routing_trials=self.routing_trials,
            selection_metric=self.selection_metric,
        )

    @property
    def ref(self) -> TrialRef:
        return TrialRef(trial_index=self.trial_index, seed=self.seed)


@dataclasses.dataclass
class TrialOutcome:
    """Score, routing and wall time of one completed layout trial."""

    routing: RoutingResult
    score: float
    trial_index: int
    seconds: float = 0.0


def run_trial(spec: TrialSpec, ref: TrialRef) -> TrialOutcome:
    """Run one independent layout trial (module-level for picklability).

    The trial's entire randomness — initial layout, router tie-breaking in
    every refinement round and final routing — comes from one generator
    seeded by ``ref.seed``, so the outcome depends only on ``(spec, ref)``,
    never on sibling trials or execution order.

    That purity is also the replay contract of the fault-tolerant
    dispatch layer: after a worker crash or hang the lost ``(spec, ref)``
    pairs are simply re-dispatched (possibly on a respawned pool, a
    downgraded transport, or in-process), and the replayed outcomes are
    byte-identical to what the dead worker would have returned.  Keep
    this function free of hidden state — no module globals, no
    side effects beyond the memoised derived DAGs — or crash recovery
    silently stops being deterministic.
    """
    start = time.perf_counter()
    rng = np.random.default_rng(ref.seed)
    router = spec.router_factory(ref.trial_index)
    adopt_intdag(spec.dag, spec.intdag)
    reverse_dag = spec.resolved_reverse_dag()
    layout = Layout.random(
        spec.dag.num_qubits, spec.coupling.num_qubits, seed=rng
    )
    for _ in range(spec.refinement_rounds):
        forward = router.run(spec.dag, layout, seed=rng)
        layout = forward.final_layout
        backward = router.run(reverse_dag, layout, seed=rng)
        layout = backward.final_layout
    best_routing: RoutingResult | None = None
    best_score = math.inf
    for _ in range(max(1, spec.routing_trials)):
        result = router.run(spec.dag, layout, seed=rng)
        score = spec.selection_metric(result)
        if best_routing is None or score < best_score:
            best_routing = result
            best_score = score
    assert best_routing is not None  # routing_trials >= 1
    return TrialOutcome(
        routing=best_routing,
        score=best_score,
        trial_index=ref.trial_index,
        seconds=time.perf_counter() - start,
    )


def run_layout_trial(task: TrialTask) -> TrialOutcome:
    """Run one self-contained :class:`TrialTask` (see :func:`run_trial`)."""
    return run_trial(task.spec, task.ref)


@dataclasses.dataclass(frozen=True)
class BatchTrialRef:
    """One trial of one circuit inside a multi-circuit dispatch."""

    circuit_index: int
    ref: TrialRef


def run_batch_trial(
    specs: Sequence[TrialSpec], batch_ref: BatchTrialRef
) -> TrialOutcome:
    """Run one trial of a multi-circuit batch against its shared specs.

    ``specs`` — one :class:`TrialSpec` per circuit — is the shared payload
    of the circuit-level fan-out engine
    (:func:`repro.core.transpile.transpile_many`): all circuits' DAGs and
    the one coverage set travel to workers together, once per chunk, and
    pickle's internal memo deduplicates the coverage set across specs.
    """
    return run_trial(specs[batch_ref.circuit_index], batch_ref.ref)


def select_best(
    outcomes: Sequence[TrialOutcome],
    metric_name: str = "swaps",
) -> LayoutResult:
    """Pick the winning trial: lowest score, ties to the lowest index.

    The tie-break keeps the winner independent of trial execution order,
    so any executor (or fan-out mode) returns the same result.
    """
    best = min(outcomes, key=lambda o: (o.score, o.trial_index))
    return LayoutResult(
        routing=best.routing,
        score=best.score,
        trial_index=best.trial_index,
        metric_name=metric_name,
        trial_scores=[outcome.score for outcome in outcomes],
        trial_seconds=sum(outcome.seconds for outcome in outcomes),
    )


class SabreLayout:
    """Multi-trial layout search driving any SABRE-compatible router.

    Args:
        coupling: device coupling map.
        router_factory: builds the router used for trial ``i`` (lets MIRAGE
            distribute aggression levels across trials).  Must be picklable
            for the process executor — use a module-level function or a
            frozen dataclass such as :class:`SabreRouterFactory`.
        layout_trials: number of independent random initial layouts.
        refinement_rounds: forward/backward routing rounds per trial.
        routing_trials: independent final routings per refined layout.
        selection_metric: callable scoring a :class:`RoutingResult`
            (lower is better); defaults to SWAP count.
        metric_name: label stored in the result.
        seed: base RNG seed — an int, a ``SeedSequence`` or a ``Generator``
            (``None`` for nondeterministic).  Per-trial streams are spawned
            from it, so results do not depend on trial execution order.
        executor: trial execution strategy — ``"serial"`` (default),
            ``"threads"``, ``"processes"`` or a
            :class:`~repro.transpiler.executors.TrialExecutor` instance.
            Executors created from a string spec are closed after each run;
            instances are borrowed and left open for reuse.
        max_workers: worker count for executors created from a string spec
            (ignored when an executor instance is passed).
    """

    def __init__(
        self,
        coupling: CouplingMap,
        router_factory: RouterFactory | None = None,
        *,
        layout_trials: int = DEFAULT_LAYOUT_TRIALS,
        refinement_rounds: int = DEFAULT_REFINEMENT_ROUNDS,
        routing_trials: int = DEFAULT_ROUTING_TRIALS,
        selection_metric: SelectionMetric | None = None,
        metric_name: str = "swaps",
        seed: int | np.random.SeedSequence | np.random.Generator | None = None,
        executor: str | TrialExecutor | None = None,
        max_workers: int | None = None,
    ) -> None:
        self.coupling = coupling
        self.router_factory = router_factory or SabreRouterFactory(coupling)
        self.layout_trials = layout_trials
        self.refinement_rounds = refinement_rounds
        self.routing_trials = routing_trials
        self.selection_metric = selection_metric or swap_count_metric
        self.metric_name = metric_name
        self.seed = seed
        self.executor = executor
        self.max_workers = max_workers

    def trial_spec(
        self, dag: DAGCircuit, *, defer_reverse: bool = False
    ) -> TrialSpec:
        """Build the heavy, trial-invariant payload for ``dag``.

        With ``defer_reverse=True`` the reverse DAG is left out of the
        spec entirely — trial runners derive it on first use (memoised
        per process), so it is neither constructed on the dispatching
        thread nor shipped across the process boundary.
        """
        return TrialSpec(
            dag=dag,
            reverse_dag=None if defer_reverse else _reverse_dag(dag),
            coupling=self.coupling,
            router_factory=self.router_factory,
            refinement_rounds=self.refinement_rounds,
            routing_trials=self.routing_trials,
            selection_metric=self.selection_metric,
            intdag=int_dag(dag),
        )

    def trial_refs(self) -> list[TrialRef]:
        """Spawn the light, order-insensitive per-trial seed records."""
        trial_seeds = seed_sequence(self.seed).spawn(self.layout_trials)
        return [
            TrialRef(trial_index=trial, seed=trial_seeds[trial])
            for trial in range(self.layout_trials)
        ]

    def trial_tasks(self, dag: DAGCircuit) -> list[TrialTask]:
        """Build the independent, order-insensitive tasks for ``dag``."""
        spec = self.trial_spec(dag)
        return [
            TrialTask(
                trial_index=ref.trial_index,
                seed=ref.seed,
                dag=spec.dag,
                reverse_dag=spec.reverse_dag,
                coupling=spec.coupling,
                router_factory=spec.router_factory,
                refinement_rounds=spec.refinement_rounds,
                routing_trials=spec.routing_trials,
                selection_metric=spec.selection_metric,
            )
            for ref in self.trial_refs()
        ]

    def run(self, dag: DAGCircuit) -> LayoutResult:
        """Search layouts and return the best routed result.

        Ties between equal-scoring trials always go to the lowest trial
        index, keeping the winner independent of the executor.  Trials are
        dispatched in split spec/ref form so pool-backed executors ship
        the DAGs and coverage set once per chunk, not once per trial.

        When the executor can stream (:meth:`TrialExecutor.open_dispatch`)
        the trials go through a :class:`DispatchSession` with a *deferred*
        spec: the payload is published and the trials start before any
        reverse DAG exists, and its construction happens inside the
        workers (memoised per process), overlapping early trial work
        instead of serialising on the dispatching thread.  Executors
        without a streaming transport fall back to the barrier
        :meth:`TrialExecutor.map_shared` path with an eager spec; both
        paths are byte-identical for a fixed seed.
        """
        refs = self.trial_refs()
        with executor_scope(self.executor, self.max_workers) as executor:
            session = (
                executor.open_dispatch(run_trial) if len(refs) > 1 else None
            )
            if session is None:
                spec = self.trial_spec(dag)
                outcomes = executor.map_shared(run_trial, spec, refs)
            else:
                with session:
                    spec = self.trial_spec(dag, defer_reverse=True)
                    slot = session.add_payload(spec)
                    futures = session.submit(slot, refs)
                    outcomes = [
                        outcome
                        for future in futures
                        for outcome in future.result()
                    ]
        return select_best(outcomes, self.metric_name)
