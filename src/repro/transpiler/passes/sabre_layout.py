"""SABRE layout: multi-trial initial-placement search with routing refinement.

For each trial a random initial layout is refined by routing the circuit
forward and backward (the final layout of one direction becomes the initial
layout of the other), then the refined layout is routed one final time and
the best trial is kept according to a *post-selection metric* — SWAP count
(stock SABRE) or decomposition-aware circuit depth (MIRAGE's improvement,
paper Section IV-B).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

import numpy as np

from repro.circuits.dag import DAGCircuit
from repro.linalg.random import _as_rng
from repro.polytopes.coverage import CoverageSet
from repro.transpiler import metrics as metrics_mod
from repro.transpiler.layout import Layout
from repro.transpiler.passes.sabre_swap import RoutingResult, SabreSwap
from repro.transpiler.topologies import CouplingMap

#: Paper defaults: 20 layout trials, 4 forward/backward rounds, 20 routing
#: trials.  The pure-Python reproduction keeps them configurable because the
#: full 20 x 20 budget is slow; benches state the budget they use.
DEFAULT_LAYOUT_TRIALS = 4
DEFAULT_REFINEMENT_ROUNDS = 2
DEFAULT_ROUTING_TRIALS = 1

RouterFactory = Callable[[int], SabreSwap]
SelectionMetric = Callable[[RoutingResult], float]


@dataclasses.dataclass
class LayoutResult:
    """Best routing found across all layout/routing trials."""

    routing: RoutingResult
    score: float
    trial_index: int
    metric_name: str

    @property
    def dag(self) -> DAGCircuit:
        return self.routing.dag


def _reverse_dag(dag: DAGCircuit) -> DAGCircuit:
    reverse = DAGCircuit(dag.num_qubits, f"{dag.name}_rev")
    for node in reversed(list(dag.topological_nodes())):
        reverse.add_node(node.gate, node.qubits)
    return reverse


def swap_count_metric(result: RoutingResult) -> float:
    """Stock SABRE post-selection: fewest inserted SWAP gates."""
    return float(result.swaps_added)


def depth_metric(
    basis: str = "sqrt_iswap", coverage: CoverageSet | None = None
) -> SelectionMetric:
    """MIRAGE post-selection: smallest decomposition-aware critical path."""

    def metric(result: RoutingResult) -> float:
        evaluated = metrics_mod.evaluate(result.dag, basis=basis, coverage=coverage)
        return evaluated.depth

    return metric


class SabreLayout:
    """Multi-trial layout search driving any SABRE-compatible router.

    Args:
        coupling: device coupling map.
        router_factory: builds the router used for trial ``i`` (lets MIRAGE
            distribute aggression levels across trials).
        layout_trials: number of independent random initial layouts.
        refinement_rounds: forward/backward routing rounds per trial.
        routing_trials: independent final routings per refined layout.
        selection_metric: callable scoring a :class:`RoutingResult`
            (lower is better); defaults to SWAP count.
        metric_name: label stored in the result.
        seed: base RNG seed.
    """

    def __init__(
        self,
        coupling: CouplingMap,
        router_factory: RouterFactory | None = None,
        *,
        layout_trials: int = DEFAULT_LAYOUT_TRIALS,
        refinement_rounds: int = DEFAULT_REFINEMENT_ROUNDS,
        routing_trials: int = DEFAULT_ROUTING_TRIALS,
        selection_metric: SelectionMetric | None = None,
        metric_name: str = "swaps",
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.coupling = coupling
        self.router_factory = router_factory or (
            lambda trial: SabreSwap(coupling, seed=trial)
        )
        self.layout_trials = layout_trials
        self.refinement_rounds = refinement_rounds
        self.routing_trials = routing_trials
        self.selection_metric = selection_metric or swap_count_metric
        self.metric_name = metric_name
        self._rng = _as_rng(seed)

    def run(self, dag: DAGCircuit) -> LayoutResult:
        """Search layouts and return the best routed result."""
        reverse = _reverse_dag(dag)
        best: LayoutResult | None = None
        for trial in range(self.layout_trials):
            router = self.router_factory(trial)
            layout = Layout.random(
                dag.num_qubits, self.coupling.num_qubits, seed=self._rng
            )
            for _ in range(self.refinement_rounds):
                forward = router.run(dag, layout, seed=self._rng)
                layout = forward.final_layout
                backward = router.run(reverse, layout, seed=self._rng)
                layout = backward.final_layout
            for _ in range(max(1, self.routing_trials)):
                result = router.run(dag, layout, seed=self._rng)
                score = self.selection_metric(result)
                if best is None or score < best.score:
                    best = LayoutResult(
                        routing=result,
                        score=score,
                        trial_index=trial,
                        metric_name=self.metric_name,
                    )
        assert best is not None  # layout_trials >= 1
        return best
