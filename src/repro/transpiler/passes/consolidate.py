"""Consolidation of adjacent gates into annotated two-qubit blocks.

MIRAGE reasons about *blocks*: maximal runs of gates that touch the same
qubit pair (including interleaved single-qubit gates) collapsed into one
``UnitaryGate`` whose Weyl coordinate is attached as an annotation.  This is
the reproduction of Qiskit's ``ConsolidateBlocks`` with the caching rewrite
described in the paper's Section VI-C: coordinates are computed once per
distinct block matrix through a shared LRU cache.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import UnitaryGate
from repro.linalg.unitary import embed_unitary
from repro.polytopes.cache import GLOBAL_COORDINATE_CACHE, CoordinateCache


class _Block:
    """A growing run of gates on one qubit pair."""

    def __init__(self, qubits: tuple[int, int]) -> None:
        self.qubits = qubits
        self.matrix = np.eye(4, dtype=complex)
        self.gate_count = 0
        self.two_qubit_count = 0

    def absorb(self, gate_matrix: np.ndarray, gate_qubits: tuple[int, ...]) -> None:
        """Multiply a gate (1Q or 2Q, on this block's qubits) into the block."""
        local_positions = [self.qubits.index(q) for q in gate_qubits]
        embedded = embed_unitary(gate_matrix, local_positions, 2)
        self.matrix = embedded @ self.matrix
        self.gate_count += 1
        if len(gate_qubits) == 2:
            self.two_qubit_count += 1


def consolidate_blocks(
    circuit: QuantumCircuit,
    *,
    cache: CoordinateCache | None = None,
    annotate: bool = True,
) -> QuantumCircuit:
    """Collapse maximal same-pair runs into coordinate-annotated blocks.

    Single-qubit gates that are sandwiched inside a run are absorbed into
    the block; single-qubit gates with no active block on their qubit are
    emitted unchanged.  Directives close the blocks on their qubits.

    Args:
        circuit: input circuit (only 1Q/2Q gates and directives).
        cache: coordinate cache to use (defaults to the global cache).
        annotate: attach Weyl coordinates to the emitted blocks.

    Returns:
        A circuit of ``UnitaryGate`` blocks plus untouched 1Q gates.
    """
    cache = cache if cache is not None else GLOBAL_COORDINATE_CACHE
    out = QuantumCircuit(circuit.num_qubits, circuit.name)
    open_blocks: dict[frozenset[int], _Block] = {}
    block_of_qubit: dict[int, frozenset[int]] = {}
    # Emission is two-phase: the streaming walk records blocks and pass-through
    # instructions in order, then every block coordinate is resolved through
    # one batched cache query before the output circuit is materialised.
    emitted: list[tuple[str, object]] = []

    def close_block(key: frozenset[int]) -> None:
        block = open_blocks.pop(key)
        for qubit in block.qubits:
            block_of_qubit.pop(qubit, None)
        emitted.append(("block", block))

    def close_blocks_on(qubits: tuple[int, ...]) -> None:
        keys = {block_of_qubit[q] for q in qubits if q in block_of_qubit}
        for key in keys:
            close_block(key)

    for instruction in circuit:
        gate = instruction.gate
        qubits = instruction.qubits
        if gate.is_directive or len(qubits) > 2:
            close_blocks_on(qubits)
            emitted.append(("instr", instruction))
            continue
        if len(qubits) == 1:
            qubit = qubits[0]
            key = block_of_qubit.get(qubit)
            if key is not None:
                open_blocks[key].absorb(gate.matrix(), qubits)
            else:
                emitted.append(("instr", instruction))
            continue
        # Two-qubit gate.
        key = frozenset(qubits)
        if key in open_blocks:
            open_blocks[key].absorb(gate.matrix(), qubits)
            continue
        close_blocks_on(qubits)
        block = _Block(qubits)
        block.absorb(gate.matrix(), qubits)
        open_blocks[key] = block
        for qubit in qubits:
            block_of_qubit[qubit] = key

    for key in list(open_blocks):
        close_block(key)

    blocks = [entry for kind, entry in emitted if kind == "block"]
    if annotate and blocks:
        coordinates = iter(
            cache.coordinates_many([block.matrix for block in blocks])
        )
    else:
        coordinates = iter([None] * len(blocks))

    for kind, entry in emitted:
        if kind == "instr":
            out.append_instruction(entry)
        else:
            gate = UnitaryGate(
                entry.matrix,
                label="block",
                check=False,
                coordinate=next(coordinates),
            )
            out.append(gate, list(entry.qubits))
    return out
