"""Transpiler passes: cleaning, unrolling, consolidation, SABRE routing."""

from repro.transpiler.passes.cleanup import (
    clean_input,
    elide_input_swaps,
    remove_directives,
    remove_identity_gates,
)
from repro.transpiler.passes.consolidate import consolidate_blocks
from repro.transpiler.passes.sabre_layout import (
    BatchTrialRef,
    DepthMetric,
    LayoutResult,
    SabreLayout,
    SabreRouterFactory,
    TrialOutcome,
    TrialRef,
    TrialSpec,
    TrialTask,
    depth_metric,
    run_batch_trial,
    run_layout_trial,
    run_trial,
    seed_sequence,
    select_best,
    swap_count_metric,
)
from repro.transpiler.passes.sabre_swap import RoutingResult, SabreSwap
from repro.transpiler.passes.unroll import unroll_to_two_qubit

__all__ = [
    "clean_input",
    "elide_input_swaps",
    "remove_directives",
    "remove_identity_gates",
    "consolidate_blocks",
    "BatchTrialRef",
    "DepthMetric",
    "LayoutResult",
    "SabreLayout",
    "SabreRouterFactory",
    "TrialOutcome",
    "TrialRef",
    "TrialSpec",
    "TrialTask",
    "depth_metric",
    "run_batch_trial",
    "run_layout_trial",
    "run_trial",
    "seed_sequence",
    "select_best",
    "swap_count_metric",
    "RoutingResult",
    "SabreSwap",
    "unroll_to_two_qubit",
]
