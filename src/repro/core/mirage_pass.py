"""The MIRAGE routing pass (paper Section IV).

MIRAGE inherits the SABRE workflow — front layer, execute layer, SWAP
scoring — and adds an *intermediate layer* between execution and the mapped
DAG: every two-qubit gate that becomes executable is compared against its
mirror gate (the same gate followed by a virtual SWAP of its output wires).
The comparison combines

* the estimated decomposition cost of the gate vs. its mirror (from the
  coverage set of the target basis gate), and
* the routing pressure of the layout that each choice leaves behind (the
  same distance + lookahead heuristic SABRE uses for SWAP selection),

and the mirror is accepted according to the configured aggression level
(Algorithm 2).  Accepting a mirror swaps the two virtual qubits in the
layout — data moves without any inserted SWAP gate, which is exactly the
"mirage SWAP" the paper is named after.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.dag import DAGCircuit, DAGNode
from repro.circuits.gates import UnitaryGate
from repro.core.aggression import Aggression, accept_mirror
from repro.linalg.constants import SWAP
from repro.polytopes.coverage import CoverageSet, get_coverage_set
from repro.transpiler.kernel import KernelState
from repro.transpiler.layout import Layout
from repro.transpiler.metrics import gate_coordinate, node_coordinate
from repro.transpiler.passes.sabre_swap import SabreSwap
from repro.transpiler.topologies import CouplingMap
from repro.weyl.mirror import mirror_coordinate


class MirageSwap(SabreSwap):
    """SABRE-style router with mirror-gate substitution.

    Args:
        coupling: device coupling map.
        coverage: coverage set of the target basis gate (cost oracle).
        aggression: mirror acceptance level 0-3 (paper Algorithm 2).
        decomposition_weight: weight of the decomposition-cost term relative
            to the routing-heuristic term in the mirror decision.
        kwargs: forwarded to :class:`SabreSwap` (lookahead, decay, seed).
    """

    def __init__(
        self,
        coupling: CouplingMap,
        coverage: CoverageSet | None = None,
        *,
        basis: str = "sqrt_iswap",
        aggression: int | Aggression = Aggression.IMPROVE,
        decomposition_weight: float = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(coupling, **kwargs)
        self.coverage = coverage if coverage is not None else get_coverage_set(basis)
        self.aggression = Aggression(int(aggression))
        self.decomposition_weight = decomposition_weight

    # -- the intermediate layer ---------------------------------------------

    def _commit_two_qubit(
        self,
        node: DAGNode,
        physical: tuple[int, ...],
        layout: Layout,
        out: DAGCircuit,
        dag: DAGCircuit,
    ) -> None:
        self._stats["candidates"] += 1

        coordinate = node_coordinate(node)
        mirrored_coordinate = mirror_coordinate(coordinate)

        unit = self.coverage.unit_cost
        # Gate and mirror resolved by one batched coverage query (and the
        # shared memo table, so repeated blocks stay cached).
        pair_costs = self.coverage.cost_of_many(
            (coordinate, mirrored_coordinate)
        )
        decomposition_current = float(pair_costs[0]) / unit
        decomposition_mirror = float(pair_costs[1]) / unit

        lookahead = self._extended_set([node], dag)
        routing_current, routing_mirror = self._mirror_routing_costs(
            lookahead, layout, physical
        )

        cost_current = (
            self.decomposition_weight * decomposition_current + routing_current
        )
        cost_trial = (
            self.decomposition_weight * decomposition_mirror + routing_mirror
        )

        if accept_mirror(cost_current, cost_trial, self.aggression):
            self._stats["mirrors"] += 1
            mirrored_gate = self._mirror_gate(node.gate, mirrored_coordinate)
            out.add_node(mirrored_gate, physical)
            layout.swap_physical(*physical)
        else:
            out.add_node(node.gate, physical)

    # -- the intermediate layer, flat-kernel twin ---------------------------

    def _commit_two_qubit_flat(
        self, state: KernelState, node_id: int, physical: tuple[int, int]
    ) -> None:
        """Mirror decision over flat kernel state (same arithmetic, same
        acceptance, byte-identical outputs as :meth:`_commit_two_qubit`)."""
        self._stats["candidates"] += 1

        gate = state.gate(node_id)
        coordinate = gate_coordinate(gate)
        mirrored_coordinate = mirror_coordinate(coordinate)

        unit = self.coverage.unit_cost
        pair_costs = self.coverage.cost_of_many(
            (coordinate, mirrored_coordinate)
        )
        decomposition_current = float(pair_costs[0]) / unit
        decomposition_mirror = float(pair_costs[1]) / unit

        lookahead = state.lookahead_pairs(node_id)
        routing_current, routing_mirror = self._mirror_routing_costs_flat(
            state, lookahead, physical
        )

        cost_current = (
            self.decomposition_weight * decomposition_current + routing_current
        )
        cost_trial = (
            self.decomposition_weight * decomposition_mirror + routing_mirror
        )

        if accept_mirror(cost_current, cost_trial, self.aggression):
            self._stats["mirrors"] += 1
            state.ops.append(
                (self._mirror_gate(gate, mirrored_coordinate), physical)
            )
            state.swap_physical(*physical)
        else:
            state.emit(node_id, physical)

    def _mirror_routing_costs_flat(
        self,
        state: KernelState,
        pairs: list[tuple[int, int]],
        physical: tuple[int, int],
    ) -> tuple[float, float]:
        """Current/mirrored routing pressure over flat lookahead pairs.

        On connected graphs both window sums run in exact int arithmetic;
        the float path reproduces the object path's inf handling.  Either
        way the returned floats match :meth:`_mirror_routing_costs` —
        integer-valued distances make the delta-adjusted sum equal the
        direct sum computed here.
        """
        if not pairs:
            return 0.0, 0.0
        swap_a, swap_b = physical
        table = state.table
        if table.connected:
            distance = table.dist_int_lists()
            base = 0
            swapped = 0
        else:
            distance = table.dist_lists()
            base = 0.0
            swapped = 0.0
        for left, right in pairs:
            base += distance[left][right]
            new_left = (
                swap_b if left == swap_a else swap_a if left == swap_b else left
            )
            new_right = (
                swap_b if right == swap_a
                else swap_a if right == swap_b
                else right
            )
            swapped += distance[new_left][new_right]
        count = len(pairs)
        weight = self.extended_set_weight
        current = float(0.0 + weight * base / count)
        mirrored = float(0.0 + weight * swapped / count)
        return current, mirrored

    def _mirror_routing_costs(
        self,
        lookahead: list[DAGNode],
        layout: Layout,
        physical: tuple[int, ...],
    ) -> tuple[float, float]:
        """Routing pressure of the current layout and of the mirrored one.

        Historically this copied the layout, applied the virtual SWAP and
        rescored the whole lookahead window; now only the lookahead gates
        touching the two swapped physical qubits are re-evaluated as a
        delta on the base sum.  Hop-count distances are integer-valued, so
        the delta-adjusted sum is exactly the sum a full rescore would
        produce and the returned floats are bit-identical to the
        copy-and-rescore pair.
        """
        if not lookahead:
            return 0.0, 0.0
        distance = self.coupling.distance_matrix
        pairs = [
            (layout.v2p(node.qubits[0]), layout.v2p(node.qubits[1]))
            for node in lookahead
        ]
        base = sum(distance[left, right] for left, right in pairs)
        swap_a, swap_b = physical
        if not np.isfinite(base):
            # Infinite distances (disconnected coupling) poison the delta
            # arithmetic with inf - inf; rescore against a swapped copy.
            trial_layout = layout.copy()
            trial_layout.swap_physical(swap_a, swap_b)
            return (
                self.routing_heuristic([], lookahead, layout),
                self.routing_heuristic([], lookahead, trial_layout),
            )
        delta = 0.0
        for left, right in pairs:
            left_hit = left == swap_a or left == swap_b
            right_hit = right == swap_a or right == swap_b
            if not (left_hit or right_hit):
                continue
            if left_hit and right_hit:
                continue  # both endpoints swap; distance unchanged
            new_left = (
                swap_b if left == swap_a else swap_a if left == swap_b else left
            )
            new_right = (
                swap_b if right == swap_a
                else swap_a if right == swap_b
                else right
            )
            delta += distance[new_left, new_right] - distance[left, right]
        count = len(pairs)
        weight = self.extended_set_weight
        current = float(0.0 + weight * base / count)
        mirrored = float(0.0 + weight * (base + delta) / count)
        return current, mirrored

    @staticmethod
    def _mirror_gate(
        gate, mirrored_coordinate: tuple[float, float, float]
    ) -> UnitaryGate:
        """Build the mirror gate ``SWAP . U`` as an annotated block.

        The full gate is replaced with a new unitary rather than an
        appended SWAP gate (paper Section VI-C), the mirrored coordinate is
        attached analytically (no re-extraction), and the unitarity check is
        skipped because mirroring preserves unitarity by construction.
        """
        matrix = SWAP @ gate.matrix()
        return UnitaryGate(
            matrix,
            label=f"{gate.name}_mirror",
            check=False,
            coordinate=tuple(mirrored_coordinate),
        )
