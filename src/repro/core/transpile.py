"""Top-level transpilation API: thin builders over the staged pipeline.

The paper's experimental flow (Section V: clean → unroll → consolidate →
VF2 → multi-trial SABRE/MIRAGE routing → post-selection) lives in
:mod:`repro.core.pipeline` as named stages on a
:class:`~repro.transpiler.passmanager.PassManager` sharing a
:class:`~repro.transpiler.passmanager.PropertySet`.  This module only
assembles and executes that pipeline:

* :func:`transpile` — build the pipeline for one circuit, run it, and
  return the :class:`TranspileResult` (with the per-stage timing report
  attached as ``result.pipeline_report``).
* :func:`transpile_many` — batch front door: transpile a sequence of
  circuits sharing one coverage set and one
  :class:`~repro.transpiler.executors.TrialExecutor`, returning a
  :class:`~repro.core.results.BatchResult` with per-circuit results and
  aggregated per-stage timings.
* :func:`compare_methods` — the SABRE vs. MIRAGE comparison behind the
  paper's Figs. 11 and 12.

Routing trials draw from per-trial ``numpy.random.SeedSequence`` streams,
so a fixed seed produces byte-identical circuits whether trials run
serially, on a thread pool or on a process pool.
"""

from __future__ import annotations

import collections
import concurrent.futures
import dataclasses
import functools
import os
import time
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import (
    DeadlineExceededError,
    InvalidModeError,
    TranspilerError,
)
from repro.circuits.circuit import QuantumCircuit
from repro.core.pipeline import (
    PlanSpec,
    PlanTask,
    build_batch_back_pipeline,
    build_mirage_pipeline,
    build_prepare_pipeline,
    resolve_coverage,
    rebuild_trial_spec,
    run_plan,
    run_plan_parked,
    validate_flow,
)
from repro.core.results import BatchResult, TranspileResult
from repro.polytopes.coverage import CoverageSet
from repro.transpiler.executors import TrialExecutor, executor_scope
from repro.transpiler.passes import (
    BatchTrialRef,
    run_batch_trial,
    run_trial,
    seed_sequence,
)
from repro.transpiler.passmanager import PipelineState
from repro.transpiler.topologies import CouplingMap

#: Fan-out modes accepted by :func:`transpile_many` (aliases included).
FANOUT_MODES = {
    "auto": "auto",
    "trials": "trials",
    "sequential": "trials",
    "circuits": "circuits",
}

#: Scheduler modes accepted by :func:`transpile_many` under circuit-level
#: fan-out (aliases included).  ``"stream"`` overlaps planning, trial
#: execution and selection; ``"barrier"`` is the three-phase
#: plan-all / dispatch-all / finish-all engine.
SCHEDULER_MODES = {
    "auto": "auto",
    "stream": "stream",
    "overlap": "stream",
    "barrier": "barrier",
}

#: Planning placement modes accepted by :func:`transpile_many` under the
#: streaming scheduler.  ``"local"`` plans circuits on the dispatching
#: thread; ``"executor"`` runs each circuit's front pipeline as a task on
#: the trial executor; ``"auto"`` picks ``"executor"`` whenever the
#: dispatch session executes concurrently with the producer.
PLAN_MODES = {
    "auto": "auto",
    "local": "local",
    "executor": "executor",
}

#: Lower bound on the streaming scheduler's in-flight circuit window.
MIN_STREAM_WINDOW = 4


def prepare_circuit(
    circuit: QuantumCircuit, *, consolidate: bool = True
) -> QuantumCircuit:
    """Input cleaning + unrolling + consolidation (paper Section V)."""
    return build_prepare_pipeline(consolidate=consolidate).run(circuit)


def transpile(
    circuit: QuantumCircuit,
    coupling: CouplingMap | str,
    *,
    basis: str = "sqrt_iswap",
    method: str = "mirage",
    selection: str = "depth",
    aggression: int | str | Sequence[int] | None = None,
    layout_trials: int = 4,
    refinement_rounds: int = 2,
    routing_trials: int = 1,
    coverage: CoverageSet | None = None,
    use_vf2: bool = True,
    seed: int | np.random.SeedSequence | np.random.Generator | None = 11,
    executor: str | TrialExecutor | None = None,
    max_workers: int | None = None,
) -> TranspileResult:
    """Transpile ``circuit`` onto ``coupling`` for a given basis gate.

    Parameters
    ----------
    circuit : QuantumCircuit
        Input circuit (any mix of 1Q/2Q/3Q gates and directives).
    coupling : CouplingMap or str
        A :class:`CouplingMap` or a topology name (``"line"``,
        ``"square"``, ``"heavy_hex"``, ``"a2a"``, ...).
    basis : str
        Target basis gate; decomposition costs are expressed in its
        pulse units (``sqrt_iswap`` is the paper's main target).
    method : {"mirage", "sabre"}
        Mirror-gate routing, or the stock SABRE baseline.
    selection : {"depth", "swaps"}
        Post-selection metric across routing trials — decomposition-aware
        critical path (MIRAGE's default) or SWAP count (stock SABRE).
    aggression : int, str, sequence of int, or None
        MIRAGE aggression specification — ``None``/``"mixed"`` for the
        paper's 5/45/45/5 distribution, an integer 0-3 for a fixed
        level, or an explicit per-trial sequence.
    layout_trials : int
        Independent random initial layouts.
    refinement_rounds : int
        Forward/backward SABRE refinement rounds.
    routing_trials : int
        Final routings per refined layout.
    coverage : CoverageSet, optional
        Preconstructed coverage set (otherwise the shared set for
        ``basis`` is used — built once per process and persisted under
        ``$MIRAGE_CACHE_DIR`` unless ``MIRAGE_CACHE_DISABLE=1``).
    use_vf2 : bool
        Look for a SWAP-free embedding before routing.
    seed : int, numpy.random.SeedSequence, numpy.random.Generator, or None
        RNG seed (``None`` for nondeterministic).  Each layout trial
        gets its own spawned ``SeedSequence`` stream, so fixed-seed
        results are byte-identical on every executor and worker count.
        Ints and ``SeedSequence``s are reproducible across calls; a
        ``Generator`` is consumed (one draw of entropy), so reusing it
        gives fresh randomness.
    executor : str, TrialExecutor, or None
        Trial execution strategy — ``None``/``"serial"``, ``"threads"``,
        ``"processes"`` or a :class:`TrialExecutor` instance (borrowed
        instances are left open for reuse).
    max_workers : int, optional
        Worker count for executors created from a string spec.

    Returns
    -------
    TranspileResult
        The routed circuit and its metrics, with ``pipeline_report``
        carrying the per-stage timings.

    Raises
    ------
    TranspilerError
        If the device is too small or the method is unknown.
    """
    start = time.perf_counter()
    with executor_scope(executor, max_workers) as trial_executor:
        pipeline = build_mirage_pipeline(
            coupling,
            basis=basis,
            method=method,
            selection=selection,
            aggression=aggression,
            layout_trials=layout_trials,
            refinement_rounds=refinement_rounds,
            routing_trials=routing_trials,
            coverage=coverage,
            use_vf2=use_vf2,
            seed=seed,
            executor=trial_executor,
        )
        state = pipeline.execute(circuit)
    result: TranspileResult = state.properties.require("result")
    result.runtime_seconds = time.perf_counter() - start
    result.pipeline_report = pipeline.report()
    return result


def _resolve_fanout(fanout: str, batch_size: int) -> str:
    """Normalise a fan-out specification to ``"trials"`` or ``"circuits"``.

    ``"auto"`` picks circuit-level fan-out whenever the batch holds more
    than one circuit — the modes are byte-identical for a fixed seed, so
    the choice only affects the wall-clock profile.
    """
    try:
        mode = FANOUT_MODES[fanout.lower()]
    except (KeyError, AttributeError):
        known = ", ".join(sorted(set(FANOUT_MODES)))
        raise InvalidModeError(
            f"unknown fanout mode {fanout!r} (accepted: {known})"
        ) from None
    if mode == "auto":
        return "circuits" if batch_size > 1 else "trials"
    return mode


def _resolve_scheduler(scheduler: str) -> str:
    """Normalise a scheduler specification to ``"stream"`` or ``"barrier"``.

    ``"auto"`` picks the streaming overlap scheduler — the modes are
    byte-identical for a fixed seed, so the choice only affects the
    wall-clock profile (and the scheduler can still fall back to the
    barrier engine when the executor cannot stream, e.g. a process pool
    without a shared-memory transport).
    """
    try:
        mode = SCHEDULER_MODES[scheduler.lower()]
    except (KeyError, AttributeError):
        known = ", ".join(sorted(set(SCHEDULER_MODES)))
        raise InvalidModeError(
            f"unknown scheduler mode {scheduler!r} (accepted: {known})"
        ) from None
    return "stream" if mode == "auto" else mode


def _resolve_plan(plan: str) -> str:
    """Validate a planning-mode specification (``"auto"`` stays ``"auto"``).

    The final local/executor decision needs the dispatch session in hand
    (see :func:`_effective_plan_mode`); this only catches typos early.
    """
    try:
        return PLAN_MODES[plan.lower()]
    except (KeyError, AttributeError):
        known = ", ".join(sorted(set(PLAN_MODES)))
        raise InvalidModeError(
            f"unknown plan mode {plan!r} (accepted: {known})"
        ) from None


def _effective_plan_mode(plan: str, session) -> str:
    """Pick where planning runs, given the opened dispatch session.

    ``"auto"`` chooses executor-side planning exactly when the session
    executes submitted chunks concurrently with the producer (thread and
    shared-memory process sessions) — planning on an inline session would
    just add indirection.  An explicit choice is honoured as-is.
    """
    if plan != "auto":
        return plan
    return "executor" if getattr(session, "parallel", False) else "local"


def _stream_window(trial_executor: TrialExecutor) -> int:
    """In-flight circuit bound for the streaming scheduler.

    Enough planned-but-unfinished circuits to keep every worker busy
    across circuit boundaries, small enough to bound the memory held by
    parked trial plans (DAGs) and undelivered outcomes.
    """
    workers = (
        getattr(trial_executor, "max_workers", None) or os.cpu_count() or 1
    )
    return max(MIN_STREAM_WINDOW, 2 * workers)


def _dispatch_provenance(
    trial_executor: TrialExecutor,
    stats_before: dict[str, int],
    circuits: int,
    routed: int,
) -> dict:
    """Delta of the executor's dispatch counters over one batch."""
    provenance = {
        key: trial_executor.dispatch_stats[key] - stats_before.get(key, 0)
        for key in trial_executor.dispatch_stats
    }
    provenance["circuits"] = circuits
    provenance["routed"] = routed
    return provenance


def _finish_batch_state(
    state: PipelineState, front_seconds: float
) -> TranspileResult:
    """Resume a planned circuit through route + select and fill timings."""
    resume_start = time.perf_counter()
    build_batch_back_pipeline().execute_state(state)
    result: TranspileResult = state.properties.require("result")
    result.pipeline_report = [
        dataclasses.asdict(record) for record in state.records
    ]
    result.runtime_seconds = (
        front_seconds
        + (time.perf_counter() - resume_start)
        + (result.trial_seconds or 0.0)
    )
    return result


def _run_circuit_fanout(
    batch: list[QuantumCircuit],
    coupling: CouplingMap | str,
    *,
    basis: str,
    method: str,
    selection: str,
    aggression,
    layout_trials: int,
    refinement_rounds: int,
    routing_trials: int,
    coverage: CoverageSet,
    use_vf2: bool,
    circuit_seeds: Sequence[np.random.SeedSequence],
    trial_executor: TrialExecutor,
    scheduler: str = "stream",
    plan: str = "auto",
    circuit_deadlines: Sequence[float | None] | None = None,
    on_error: str = "raise",
) -> tuple[list[TranspileResult], dict]:
    """Two-level circuit fan-out under the requested scheduler.

    Both schedulers plan each circuit with the same front pipeline
    (clean → … → vf2 → plan) and spawn per-circuit seeds and per-trial
    streams exactly as the sequential mode spawns them, so fixed-seed
    outputs are byte-identical across schedulers, plan modes, fan-out
    modes and executors; only the wall-clock profile differs:

    * ``"stream"`` — a bounded producer plans circuits and feeds their
      trial refs into an in-flight :class:`DispatchSession`, while
      circuits whose trials have drained resume (route + select)
      immediately, so planning, trial execution and selection overlap.
      Under ``plan="executor"`` (the ``"auto"`` choice on concurrent
      sessions) the front pipelines themselves run as tasks on the same
      session, spreading phase-A planning across all cores.  Falls back
      to the barrier engine when the executor cannot stream (process
      pool without a shared-memory transport).
    * ``"barrier"`` — three phases: plan **all** circuits (always
      locally), pool every planned trial into one shared
      :meth:`map_shared` dispatch, then finish all circuits.
    """
    # Local and executor-side planning run the *same* module-level
    # :func:`run_plan` over the same :class:`PlanSpec` — divergence
    # between the modes is impossible by construction.
    plan_spec = PlanSpec(
        coupling=coupling,
        basis=basis,
        method=method,
        selection=selection,
        aggression=aggression,
        layout_trials=layout_trials,
        refinement_rounds=refinement_rounds,
        routing_trials=routing_trials,
        coverage=coverage,
        use_vf2=use_vf2,
    )

    def plan_front(index, circuit, circuit_seed):
        return run_plan(
            plan_spec,
            PlanTask(index=index, circuit=circuit, seed=circuit_seed),
        )

    stats_before = dict(trial_executor.dispatch_stats)
    if scheduler == "stream":
        session = trial_executor.open_dispatch(run_trial, anchors=(coverage,))
        if session is not None:
            # The engines close the session in their own ``finally`` from
            # the first statement on; this outer guard covers the window
            # before an engine takes ownership (plan-mode resolution, a
            # ``KeyboardInterrupt`` landing between the calls), so every
            # published segment is unlinked on *every* exit path.
            # ``close`` is idempotent, so double-closing is harmless.
            try:
                if _effective_plan_mode(plan, session) == "executor":
                    return _stream_executor_plan_fanout(
                        batch, plan_spec, circuit_seeds, trial_executor,
                        session, stats_before,
                        circuit_deadlines=circuit_deadlines,
                        on_error=on_error,
                    )
                return _stream_circuit_fanout(
                    batch, plan_front, circuit_seeds, trial_executor, session,
                    stats_before,
                    circuit_deadlines=circuit_deadlines,
                    on_error=on_error,
                )
            except BaseException:
                session.close()
                raise
    return _barrier_circuit_fanout(
        batch, plan_front, circuit_seeds, trial_executor, stats_before,
        circuit_deadlines=circuit_deadlines, on_error=on_error,
    )


def _barrier_circuit_fanout(
    batch: list[QuantumCircuit],
    plan_front,
    circuit_seeds: Sequence[np.random.SeedSequence],
    trial_executor: TrialExecutor,
    stats_before: dict[str, int],
    circuit_deadlines: Sequence[float | None] | None = None,
    on_error: str = "raise",
) -> tuple[list[TranspileResult], dict]:
    """Plan every circuit, pool all trials into one dispatch, finish.

    Phase A runs each circuit's front pipeline, phase B pools every
    planned trial into **one** shared dispatch on the executor — the
    coverage set and all circuit DAGs ship to workers once (per chunk in
    blob mode, once per batch through a shared-memory segment) — and
    phase C resumes each circuit's pipeline to select its winner.

    Deadlines are enforced at the plan boundary only (the pooled
    dispatch has no per-circuit chunks to cancel): a circuit already
    expired when phase A reaches it is never planned or pooled, and
    settles as :class:`DeadlineExceededError` per ``on_error``.
    """
    states: list[PipelineState | None] = []
    errors: list[DeadlineExceededError | None] = []
    front_seconds: list[float] = []
    for index, (circuit, circuit_seed) in enumerate(zip(batch, circuit_seeds)):
        deadline = (
            circuit_deadlines[index] if circuit_deadlines is not None else None
        )
        if deadline is not None and time.monotonic() >= deadline:
            error = DeadlineExceededError(
                "request deadline expired before its circuit was planned"
            )
            if on_error == "raise":
                raise error
            trial_executor._count_dispatch(deadline_expirations=1)
            states.append(None)
            errors.append(error)
            front_seconds.append(0.0)
            continue
        outcome = plan_front(index, circuit, circuit_seed)
        states.append(outcome.state)
        errors.append(None)
        front_seconds.append(outcome.seconds)

    # Pool the trials of every still-unrouted circuit.  Specs are indexed
    # by *pool* position (VF2-embedded circuits contribute none); pickle's
    # memo table dedups the coverage set shared between the specs.
    specs = []
    pooled_refs: list[BatchTrialRef] = []
    refs_per_state: list[int] = []
    for state in states:
        trial_plan = (
            state.properties.get("trial_plan") if state is not None else None
        )
        if trial_plan is None:
            refs_per_state.append(0)
            continue
        spec_position = len(specs)
        specs.append(trial_plan.spec)
        pooled_refs.extend(
            BatchTrialRef(circuit_index=spec_position, ref=ref)
            for ref in trial_plan.refs
        )
        refs_per_state.append(len(trial_plan.refs))

    outcomes = (
        trial_executor.map_shared(run_batch_trial, tuple(specs), pooled_refs)
        if pooled_refs
        else []
    )

    results: list[TranspileResult | DeadlineExceededError] = []
    cursor = 0
    for state, error, spent, count in zip(
        states, errors, front_seconds, refs_per_state
    ):
        if state is None:
            results.append(error)
            continue
        if count:
            state.properties["trial_outcomes"] = outcomes[cursor:cursor + count]
            cursor += count
        results.append(_finish_batch_state(state, spent))

    dispatch = _dispatch_provenance(
        trial_executor,
        stats_before,
        circuits=len(batch),
        routed=sum(1 for count in refs_per_state if count),
    )
    dispatch["scheduler"] = "barrier"
    dispatch["overlap_seconds"] = 0.0
    dispatch["plan_mode"] = "local"
    dispatch["plan_seconds"] = round(sum(front_seconds), 6)
    return results, dispatch


@dataclasses.dataclass
class _StreamEntry:
    """One planned circuit waiting for its trial outcomes to drain."""

    state: PipelineState
    front_seconds: float
    futures: list
    slot: int = -1


class _StreamDrain:
    """Shared resume machinery of the streaming schedulers.

    Both streaming engines (local and executor-side planning) park
    planned circuits here and resume the *oldest* one as soon as its
    trial futures drain — keeping the slot-release, outcome-reassembly
    and overlap accounting in one place so the engines cannot diverge.

    ``deadlines`` (absolute ``time.monotonic()`` instants, one per batch
    position or ``None``) ride each circuit's trial chunks into the
    dispatch session; an expired circuit's chunks settle with
    :class:`DeadlineExceededError` without disturbing siblings, and the
    error is either raised or recorded at the circuit's result position
    depending on ``on_error``.
    """

    def __init__(self, session, deadlines=None, on_error="raise") -> None:
        self.session = session
        self.deadlines = deadlines
        self.on_error = on_error
        self.results: list[TranspileResult | DeadlineExceededError] = []
        self.overlap = 0.0
        self.plan_seconds = 0.0
        self.routed = 0
        self.pending: collections.deque[_StreamEntry] = collections.deque()

    def _deadline_for(self, index: int) -> float | None:
        if self.deadlines is None:
            return None
        return self.deadlines[index]

    def park(
        self,
        index: int,
        state: PipelineState,
        front_seconds: float,
        spec_handle: object = None,
        spec_loader=None,
    ) -> None:
        """Dispatch a planned circuit's trials and queue it for resume.

        ``spec_handle`` (with its ``spec_loader`` regeneration fallback)
        is the worker-parked trial spec of executor-side planning with
        ``MIRAGE_PLAN_PARK`` on: the session adopts the worker-written
        segment as the payload slot instead of re-pickling a returned
        spec.
        """
        self.plan_seconds += front_seconds
        trial_plan = state.properties.get("trial_plan")
        futures: list = []
        slot = -1
        if trial_plan is not None:
            adopt = getattr(self.session, "adopt_payload", None)
            if spec_handle is not None and adopt is not None:
                slot = adopt(spec_handle, loader=spec_loader)
            elif trial_plan.spec is not None:
                slot = self.session.add_payload(trial_plan.spec)
            else:
                # Parked worker-side but this session cannot adopt
                # segments (defensive) — regenerate the spec locally.
                slot = self.session.add_payload(spec_loader())
            futures = self.session.submit(
                slot, trial_plan.refs, deadline=self._deadline_for(index)
            )
            self.routed += 1
        self.pending.append(_StreamEntry(state, front_seconds, futures, slot))

    def finish_oldest(self) -> None:
        """Resume the oldest parked circuit (blocks on its futures)."""
        entry = self.pending.popleft()
        if entry.futures:
            try:
                # May block until this circuit's chunks complete — idle
                # wait, deliberately excluded from the overlap metric.
                entry.state.properties["trial_outcomes"] = [
                    outcome
                    for future in entry.futures
                    for outcome in future.result()
                ]
            except DeadlineExceededError as error:
                # Only this circuit expired; its remaining chunks settle
                # on their own (same deadline) — wait them out, release
                # the slot, and contain the failure to this position.
                concurrent.futures.wait(entry.futures)
                self.session.release(entry.slot)
                if self.on_error == "raise":
                    raise
                self.results.append(error)
                return
            self.session.release(entry.slot)
        start = time.perf_counter()
        self.results.append(
            _finish_batch_state(entry.state, entry.front_seconds)
        )
        if self.session.outstanding():
            self.overlap += time.perf_counter() - start

    def finish_drained(self) -> bool:
        """Resume every leading circuit whose trials have all completed."""
        progressed = False
        while self.pending and all(f.done() for f in self.pending[0].futures):
            self.finish_oldest()
            progressed = True
        return progressed

    def provenance(
        self,
        trial_executor: TrialExecutor,
        stats_before: dict[str, int],
        circuits: int,
        plan_mode: str,
    ) -> dict:
        dispatch = _dispatch_provenance(
            trial_executor, stats_before, circuits=circuits, routed=self.routed
        )
        dispatch["scheduler"] = "stream"
        dispatch["overlap_seconds"] = round(self.overlap, 6)
        dispatch["plan_mode"] = plan_mode
        dispatch["plan_seconds"] = round(self.plan_seconds, 6)
        return dispatch


def _stream_circuit_fanout(
    batch: list[QuantumCircuit],
    plan_front,
    circuit_seeds: Sequence[np.random.SeedSequence],
    trial_executor: TrialExecutor,
    session,
    stats_before: dict[str, int],
    circuit_deadlines: Sequence[float | None] | None = None,
    on_error: str = "raise",
) -> tuple[list[TranspileResult], dict]:
    """Streaming overlap scheduler with local (producer-thread) planning.

    The producer plans circuits one at a time and immediately feeds each
    circuit's trial refs into the in-flight dispatch session; whenever
    the *oldest* in-flight circuit's futures have all completed it is
    resumed (route + select) right away, so phase-C work of early
    circuits overlaps the phase-B trials of later ones — and, on a
    parallel executor, phase-A planning overlaps both.  The in-flight
    window is bounded (:func:`_stream_window`) so arbitrarily long
    batches hold only a constant number of parked trial plans.

    ``overlap_seconds`` in the returned provenance sums the planning and
    selection work performed while dispatched trials were still in
    flight — the wall-clock the barrier scheduler would have serialised.
    """
    window = _stream_window(trial_executor)
    drain = _StreamDrain(session, circuit_deadlines, on_error)
    try:
        for index, (circuit, circuit_seed) in enumerate(
            zip(batch, circuit_seeds)
        ):
            outcome = plan_front(index, circuit, circuit_seed)
            if session.outstanding():
                drain.overlap += outcome.seconds
            drain.park(index, outcome.state, outcome.seconds)
            # Finish any leading circuits whose trials already drained
            # (non-blocking), then enforce the bounded window (blocking
            # on the oldest circuit only when the producer ran ahead).
            drain.finish_drained()
            while len(drain.pending) > window:
                drain.finish_oldest()
        while drain.pending:
            drain.finish_oldest()
    finally:
        session.close()
    return drain.results, drain.provenance(
        trial_executor, stats_before, len(batch), "local"
    )


def _stream_executor_plan_fanout(
    batch: list[QuantumCircuit],
    plan_spec: PlanSpec,
    circuit_seeds: Sequence[np.random.SeedSequence],
    trial_executor: TrialExecutor,
    session,
    stats_before: dict[str, int],
    circuit_deadlines: Sequence[float | None] | None = None,
    on_error: str = "raise",
) -> tuple[list[TranspileResult], dict]:
    """Streaming scheduler with planning distributed onto the executor.

    The bounded producer submits each circuit's *front pipeline* as a
    planning task on the same dispatch session that runs the routing
    trials — one shared :class:`PlanSpec` payload (the coverage set rides
    as the session anchor), one light :class:`PlanTask` per circuit.
    Planned states come back anchor-encoded (the worker re-pickles them
    with persistent references to the anchors, so the coverage set never
    travels the return path) and are decoded **in input order**; each
    decoded circuit's trial refs are fed straight into the in-flight
    dispatch, and drained circuits resume immediately — so phase-A
    planning of circuit *k + 1* runs on worker cores while phase-B trials
    of circuit *k* execute and phase-C selection of circuit *k - 1* runs
    on the producer thread.

    The per-circuit seeds, and the spawn tree beneath them, are exactly
    the local planner's, and every front stage is deterministic, so
    fixed-seed outputs are byte-identical to ``plan="local"`` on every
    executor and scheduler.
    """
    window = _stream_window(trial_executor)
    drain = _StreamDrain(session, circuit_deadlines, on_error)
    next_index = 0
    admitted = 0
    plan_pending: collections.deque[concurrent.futures.Future] = (
        collections.deque()
    )

    # Worker-side plan park (MIRAGE_PLAN_PARK): the worker publishes the
    # planned spec into shared memory and returns only its handle; the
    # plan_return_bytes counter pins what the return path then carries.
    plan_fn = (
        run_plan_parked if getattr(session, "plan_park", False) else run_plan
    )

    def admit(encoded: object) -> None:
        """Decode one planned state and feed its trials into the dispatch."""
        nonlocal admitted
        start = time.perf_counter()
        if isinstance(encoded, (bytes, bytearray)):
            trial_executor._count_dispatch(plan_return_bytes=len(encoded))
        outcome = session.decode(encoded)
        if outcome.index != admitted:  # pragma: no cover - defensive
            raise TranspilerError(
                f"planned circuit {outcome.index} admitted out of order "
                f"(expected {admitted})"
            )
        admitted += 1
        spec_loader = None
        if outcome.spec_handle is not None:
            spec_loader = functools.partial(
                rebuild_trial_spec,
                plan_spec,
                PlanTask(
                    index=outcome.index,
                    circuit=batch[outcome.index],
                    seed=circuit_seeds[outcome.index],
                ),
            )
        drain.park(
            outcome.index,
            outcome.state,
            outcome.seconds,
            spec_handle=outcome.spec_handle,
            spec_loader=spec_loader,
        )
        if session.outstanding():
            drain.overlap += time.perf_counter() - start

    try:
        plan_slot = session.add_payload(plan_spec, kind="plan")
        while next_index < len(batch) or plan_pending or drain.pending:
            progressed = False
            # Keep the window full of planning tasks: submitted plans plus
            # parked circuits never exceed the stream window, bounding the
            # states (and segments) held at any moment.
            while (
                next_index < len(batch)
                and len(plan_pending) + len(drain.pending) < window
            ):
                task = PlanTask(
                    index=next_index,
                    circuit=batch[next_index],
                    seed=circuit_seeds[next_index],
                )
                (future,) = session.submit(
                    plan_slot, [task], fn=plan_fn, encode=True, kind="plan"
                )
                plan_pending.append(future)
                next_index += 1
                progressed = True
            # Admit completed plans strictly in input order.
            while plan_pending and plan_pending[0].done():
                (encoded,) = plan_pending.popleft().result()
                admit(encoded)
                progressed = True
            # Resume circuits whose trials have fully drained.
            progressed = drain.finish_drained() or progressed
            if progressed:
                continue
            # Nothing moved: block until the head plan or a head-circuit
            # trial chunk completes (only not-done futures, so a partially
            # drained head cannot busy-spin the loop).
            waitables = [
                future
                for future in (
                    ([plan_pending[0]] if plan_pending else [])
                    + (list(drain.pending[0].futures) if drain.pending else [])
                )
                if not future.done()
            ]
            if not waitables:  # pragma: no cover - defensive
                if drain.pending:
                    drain.finish_oldest()
                    continue
                break
            concurrent.futures.wait(
                waitables, return_when=concurrent.futures.FIRST_COMPLETED
            )
    finally:
        session.close()
    return drain.results, drain.provenance(
        trial_executor, stats_before, len(batch), "executor"
    )


def transpile_many(
    circuits: Iterable[QuantumCircuit],
    coupling: CouplingMap | str,
    *,
    basis: str = "sqrt_iswap",
    method: str = "mirage",
    selection: str = "depth",
    aggression: int | str | Sequence[int] | None = None,
    layout_trials: int = 4,
    refinement_rounds: int = 2,
    routing_trials: int = 1,
    coverage: CoverageSet | None = None,
    use_vf2: bool = True,
    seed: int | np.random.SeedSequence | np.random.Generator | None = 11,
    circuit_seeds: Sequence[
        int | np.random.SeedSequence | np.random.Generator | None
    ] | None = None,
    executor: str | TrialExecutor | None = None,
    max_workers: int | None = None,
    fanout: str = "auto",
    scheduler: str = "auto",
    plan: str = "auto",
    circuit_deadlines: Sequence[float | None] | None = None,
    on_error: str = "raise",
) -> BatchResult:
    """Transpile a batch of circuits sharing one coverage set and executor.

    The batch engine is a two-level scheduler.  The coverage set for
    ``basis`` is constructed (or taken from ``coverage``) once and a
    single :class:`~repro.transpiler.executors.TrialExecutor` — including
    its worker pool, when parallel — is reused across all circuits.  How
    work reaches that executor depends on ``fanout``:

    * ``"trials"`` (a.k.a. ``"sequential"``) — circuits are walked one
      after another; parallelism lives inside each circuit's routing-trial
      fan-out.  Best when individual circuits are large.
    * ``"circuits"`` — every circuit is *planned* (clean → … → vf2 →
      ``plan``) and its routing trials go through one shared dispatch on
      the executor, with each circuit's winner selected from its
      delivered outcomes.  Best for many-small-circuit workloads:
      workers stay busy across circuit boundaries and the coverage set
      plus the per-circuit DAGs cross the process boundary once (via a
      shared-memory segment when available) instead of once per trial.
    * ``"auto"`` (default) — ``"circuits"`` when the batch holds more than
      one circuit, else ``"trials"``.

    Under circuit-level fan-out, ``scheduler`` picks how the three kinds
    of work are interleaved:

    * ``"stream"`` (a.k.a. ``"overlap"``) — a bounded producer plans
      circuits and feeds trial refs into the in-flight dispatch while
      already-drained circuits resume (route + select) immediately, so
      planning, trial execution and selection overlap instead of running
      as three barriers.  Requires a streaming-capable dispatch — on the
      process executor that means the shared-memory transport; without
      it (or with ``MIRAGE_SHM_DISABLE=1``) the call silently falls back
      to the barrier engine, recorded in the dispatch provenance.
    * ``"barrier"`` — plan **all**, dispatch **all**, finish **all**
      (the engine preceding the streaming scheduler).
    * ``"auto"`` (default) — ``"stream"``.

    Under the streaming scheduler, ``plan`` picks where each circuit's
    *front pipeline* (clean → … → vf2 → plan) runs:

    * ``"executor"`` — planning tasks are submitted to the same dispatch
      session as the routing trials, so phase-A planning of later
      circuits runs on worker cores while earlier circuits' trials are
      in flight.  The coverage set rides the session anchor in both
      directions (planned states come back anchor-encoded), so it still
      crosses the process boundary exactly once per batch.
    * ``"local"`` — planning stays on the dispatching thread (the
      pre-executor-planning behaviour).
    * ``"auto"`` (default) — ``"executor"`` whenever the dispatch
      session executes concurrently with the producer (thread pools and
      shared-memory process pools), else ``"local"``.  The barrier
      scheduler always plans locally; the mode actually used is recorded
      in the dispatch provenance.

    Parameters
    ----------
    circuits : iterable of QuantumCircuit
        The circuits to transpile.
    circuit_seeds : sequence of seeds, optional
        Explicit per-circuit seeds overriding the spawn-by-position tree
        derived from ``seed``.  Must match the batch length; each entry
        accepts everything ``seed`` accepts.  With explicit seeds, batch
        position ``i`` is byte-identical to a bare
        ``transpile(circuits[i], ..., seed=circuit_seeds[i])`` — the
        property the request-coalescing service tier relies on to merge
        independent requests into one batch without changing any
        caller's output.
    coverage : CoverageSet, RegistryHandle, or None
        A prebuilt coverage set, a registry handle (any object exposing
        ``get(basis)``, e.g.
        :meth:`repro.polytopes.registry.CoverageRegistry.bind`) resolved
        once per batch, or ``None`` for the shared process-wide set.
    fanout : {"auto", "trials", "sequential", "circuits"}
        Batch fan-out mode, see above.
    scheduler : {"auto", "stream", "overlap", "barrier"}
        Circuit fan-out scheduling mode, see above (ignored under
        ``fanout="trials"``).
    plan : {"auto", "local", "executor"}
        Planning placement under the streaming scheduler, see above
        (ignored under ``fanout="trials"`` and by the barrier engine).
    circuit_deadlines : sequence of float or None, optional
        Per-circuit absolute deadlines as ``time.monotonic()`` instants
        (``None`` entries mean unbounded).  Must match the batch length.
        Under the streaming scheduler each circuit's deadline rides its
        own trial chunks: an expired circuit settles with
        :class:`~repro.exceptions.DeadlineExceededError` while sibling
        circuits in the same dispatch complete normally, byte-identical
        to an undeadlined run.  The barrier scheduler and
        ``fanout="trials"`` enforce deadlines at circuit boundaries
        only.  Expired chunks count under the executor's
        ``deadline_expirations`` dispatch counter.
    on_error : {"raise", "return"}
        What to do when a circuit's deadline expires: ``"raise"``
        (default) propagates the first
        :class:`~repro.exceptions.DeadlineExceededError`; ``"return"``
        places the exception object at the circuit's position in
        ``results`` so one late request cannot fail its batch — the
        contract the service tier relies on.  Non-deadline errors
        always raise.
    **others
        Exactly as :func:`transpile`.

    Returns
    -------
    BatchResult
        One :class:`TranspileResult` per circuit (in input order) plus
        aggregate per-stage timings and dispatch provenance.

    Raises
    ------
    InvalidModeError
        If ``fanout``, ``scheduler`` or ``plan`` is not an accepted mode
        string (also a ``ValueError``; the message names the accepted
        values — unknown strings never fall back to a default).
    TranspilerError
        If ``circuit_seeds`` is given with the wrong length, or the
        method/selection pair is unknown.

    Notes
    -----
    *Determinism.*  Per-circuit seeds are spawned from ``seed`` via
    ``numpy.random.SeedSequence`` by batch position, and per-trial streams
    from each circuit seed — the identical spawn tree in every fan-out
    mode, scheduler and executor.  For a fixed circuit list and seed the
    batch is therefore byte-identical across ``fanout``, ``scheduler``,
    ``plan`` and ``executor`` choices (shared-memory and zero-copy
    transports included); but
    reordering, inserting or removing circuits reseeds the affected
    positions, and a batch of one does not reproduce a bare
    :func:`transpile` call with the same integer seed.  Passing
    ``circuit_seeds`` replaces the spawn tree with caller-chosen roots:
    each position then *does* reproduce the bare call at its seed, and
    reordering or removing other circuits cannot reseed it.

    *Caches.*  The coverage set's memoised cost table stays in the parent
    process; workers rebuild theirs lazily per chunk payload (the table is
    deliberately dropped from pickles — see
    :meth:`~repro.polytopes.coverage.CoverageSet.__getstate__`).
    """
    start = time.perf_counter()
    batch = list(circuits)
    # Fail fast on typos — even for an empty batch, and before paying for
    # the coverage-set build.
    method, selection = validate_flow(method, selection)
    mode = _resolve_fanout(fanout, len(batch))
    scheduler_mode = _resolve_scheduler(scheduler)
    plan_mode = _resolve_plan(plan)
    if circuit_seeds is not None and len(circuit_seeds) != len(batch):
        raise TranspilerError(
            f"circuit_seeds has {len(circuit_seeds)} entries for "
            f"{len(batch)} circuits"
        )
    if on_error not in ("raise", "return"):
        raise InvalidModeError(
            f"unknown on_error mode {on_error!r} — accepted values: "
            f"'raise', 'return'"
        )
    if (
        circuit_deadlines is not None
        and len(circuit_deadlines) != len(batch)
    ):
        raise TranspilerError(
            f"circuit_deadlines has {len(circuit_deadlines)} entries for "
            f"{len(batch)} circuits"
        )
    dispatch: dict | None = None
    with executor_scope(executor, max_workers) as trial_executor:
        shared_coverage = resolve_coverage(coverage, basis)
        if circuit_seeds is not None:
            # Explicit roots: normalising through seed_sequence() is
            # idempotent, so position i matches transpile(seed=seeds[i]).
            circuit_seeds = [seed_sequence(entry) for entry in circuit_seeds]
        else:
            circuit_seeds = (
                seed_sequence(seed).spawn(len(batch)) if batch else []
            )
        if mode == "circuits" and batch:
            results, dispatch = _run_circuit_fanout(
                batch,
                coupling,
                basis=basis,
                method=method,
                selection=selection,
                aggression=aggression,
                layout_trials=layout_trials,
                refinement_rounds=refinement_rounds,
                routing_trials=routing_trials,
                coverage=shared_coverage,
                use_vf2=use_vf2,
                circuit_seeds=circuit_seeds,
                trial_executor=trial_executor,
                scheduler=scheduler_mode,
                plan=plan_mode,
                circuit_deadlines=circuit_deadlines,
                on_error=on_error,
            )
        else:
            stats_before = dict(trial_executor.dispatch_stats)
            results = []
            for index, (circuit, circuit_seed) in enumerate(
                zip(batch, circuit_seeds)
            ):
                deadline = (
                    circuit_deadlines[index]
                    if circuit_deadlines is not None
                    else None
                )
                if deadline is not None and time.monotonic() >= deadline:
                    error = DeadlineExceededError(
                        "request deadline expired before its circuit "
                        "was transpiled"
                    )
                    if on_error == "raise":
                        raise error
                    trial_executor._count_dispatch(deadline_expirations=1)
                    results.append(error)
                    continue
                results.append(
                    transpile(
                        circuit,
                        coupling,
                        basis=basis,
                        method=method,
                        selection=selection,
                        aggression=aggression,
                        layout_trials=layout_trials,
                        refinement_rounds=refinement_rounds,
                        routing_trials=routing_trials,
                        coverage=shared_coverage,
                        use_vf2=use_vf2,
                        seed=circuit_seed,
                        executor=trial_executor,
                    )
                )
            dispatch = _dispatch_provenance(
                trial_executor,
                stats_before,
                circuits=len(batch),
                routed=sum(
                    1
                    for result in results
                    if isinstance(result, TranspileResult)
                    and result.trial_index >= 0
                ),
            )
        executor_name = trial_executor.name
    return BatchResult(
        results=results,
        runtime_seconds=time.perf_counter() - start,
        executor=executor_name,
        fanout=mode,
        dispatch=dispatch,
    )


def compare_methods(
    circuit: QuantumCircuit,
    coupling: CouplingMap | str,
    *,
    basis: str = "sqrt_iswap",
    layout_trials: int = 4,
    seed: int | np.random.SeedSequence | np.random.Generator | None = 11,
    selections: Sequence[str] = ("swaps", "depth"),
    coverage: CoverageSet | None = None,
    executor: str | TrialExecutor | None = None,
    max_workers: int | None = None,
) -> dict[str, TranspileResult]:
    """Run the SABRE baseline and MIRAGE variants on the same circuit.

    One trial executor (and its worker pool, when parallel) is shared
    across all variants, and on session-capable executors all variants
    are batched through **one** :class:`DispatchSession`: the coverage
    set is pickled once as the session anchor and every variant's trials
    are dispatched up front, so SABRE trials overlap MIRAGE trials
    instead of each variant paying its own dispatch round-trip.  Returns
    a dict with keys ``"sabre"`` plus ``"mirage-<selection>"`` for each
    requested post-selection metric — the comparison behind the paper's
    Figs. 11 and 12.  Fixed-seed results are byte-identical to running
    :func:`transpile` per variant (each variant plans with the same seed
    and the same front pipeline).
    """
    variants = [("sabre", "sabre", "swaps")] + [
        (f"mirage-{selection}", "mirage", selection)
        for selection in selections
    ]
    results: dict[str, TranspileResult] = {}
    with executor_scope(executor, max_workers) as trial_executor:
        shared_coverage = resolve_coverage(coverage, basis)
        session = trial_executor.open_dispatch(
            run_trial, anchors=(shared_coverage,)
        )
        if session is None:
            # Executor cannot stream payloads — per-variant transpile
            # calls on the shared executor (and shared coverage set).
            for key, method, selection in variants:
                results[key] = transpile(
                    circuit,
                    coupling,
                    basis=basis,
                    method=method,
                    selection=selection,
                    layout_trials=layout_trials,
                    coverage=shared_coverage,
                    use_vf2=False,
                    seed=seed,
                    executor=trial_executor,
                )
            return results
        try:
            # Plan every variant first, dispatching its trials into the
            # shared session as soon as they exist; the in-flight sets
            # overlap across variants.
            parked = []
            for key, method, selection in variants:
                plan_spec = PlanSpec(
                    coupling=coupling,
                    basis=basis,
                    method=method,
                    selection=selection,
                    aggression=None,
                    layout_trials=layout_trials,
                    refinement_rounds=2,
                    routing_trials=1,
                    coverage=shared_coverage,
                    use_vf2=False,
                )
                outcome = run_plan(
                    plan_spec, PlanTask(index=0, circuit=circuit, seed=seed)
                )
                trial_plan = outcome.state.properties.get("trial_plan")
                futures: list = []
                slot = -1
                if trial_plan is not None:
                    slot = session.add_payload(trial_plan.spec)
                    futures = session.submit(slot, trial_plan.refs)
                parked.append((key, outcome, futures, slot))
            for key, outcome, futures, slot in parked:
                if futures:
                    outcome.state.properties["trial_outcomes"] = [
                        trial_outcome
                        for future in futures
                        for trial_outcome in future.result()
                    ]
                    session.release(slot)
                results[key] = _finish_batch_state(
                    outcome.state, outcome.seconds
                )
        finally:
            session.close()
    return results
