"""Top-level transpilation API.

:func:`transpile` runs the full flow of the paper's experimental setup
(Section V): input cleaning, unrolling, block consolidation, a VF2 search
for a SWAP-free embedding, and — when routing is needed — the multi-trial
SABRE or MIRAGE router with the chosen post-selection metric.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.exceptions import TranspilerError
from repro.circuits.circuit import QuantumCircuit
from repro.core.aggression import Aggression, schedule_from_spec
from repro.core.mirage_pass import MirageSwap
from repro.core.results import TranspileResult
from repro.polytopes.coverage import CoverageSet, get_coverage_set
from repro.transpiler.layout import Layout, apply_layout, vf2_layout
from repro.transpiler.metrics import evaluate
from repro.transpiler.passes.cleanup import clean_input
from repro.transpiler.passes.consolidate import consolidate_blocks
from repro.transpiler.passes.sabre_layout import (
    SabreLayout,
    depth_metric,
    swap_count_metric,
)
from repro.transpiler.passes.sabre_swap import SabreSwap
from repro.transpiler.passes.unroll import unroll_to_two_qubit
from repro.transpiler.topologies import CouplingMap, topology_by_name


def prepare_circuit(
    circuit: QuantumCircuit, *, consolidate: bool = True
) -> QuantumCircuit:
    """Input cleaning + unrolling + consolidation (paper Section V)."""
    cleaned = clean_input(circuit)
    unrolled = unroll_to_two_qubit(cleaned)
    cleaned = clean_input(unrolled)
    if consolidate:
        return consolidate_blocks(cleaned)
    return cleaned


def _resolve_coupling(
    coupling: CouplingMap | str, num_qubits: int
) -> CouplingMap:
    if isinstance(coupling, CouplingMap):
        return coupling
    return topology_by_name(coupling, num_qubits)


def transpile(
    circuit: QuantumCircuit,
    coupling: CouplingMap | str,
    *,
    basis: str = "sqrt_iswap",
    method: str = "mirage",
    selection: str = "depth",
    aggression: int | str | Sequence[int] | None = None,
    layout_trials: int = 4,
    refinement_rounds: int = 2,
    routing_trials: int = 1,
    coverage: CoverageSet | None = None,
    use_vf2: bool = True,
    seed: int | None = 11,
) -> TranspileResult:
    """Transpile ``circuit`` onto ``coupling`` for a given basis gate.

    Args:
        circuit: input circuit (any mix of 1Q/2Q/3Q gates and directives).
        coupling: a :class:`CouplingMap` or a topology name
            (``"line"``, ``"square"``, ``"heavy_hex"``, ``"a2a"``, ...).
        basis: target basis gate; decomposition costs are expressed in its
            pulse units (``sqrt_iswap`` is the paper's main target).
        method: ``"mirage"`` (mirror-gate routing) or ``"sabre"`` (baseline).
        selection: post-selection metric across routing trials — ``"depth"``
            (decomposition-aware critical path, MIRAGE's default) or
            ``"swaps"`` (stock SABRE).
        aggression: MIRAGE aggression specification — ``None``/``"mixed"``
            for the paper's 5/45/45/5 distribution, an integer 0-3 for a
            fixed level, or an explicit per-trial sequence.
        layout_trials: independent random initial layouts.
        refinement_rounds: forward/backward SABRE refinement rounds.
        routing_trials: final routings per refined layout.
        coverage: preconstructed coverage set (otherwise the shared set for
            ``basis`` is used).
        use_vf2: look for a SWAP-free embedding before routing.
        seed: RNG seed (``None`` for nondeterministic).

    Returns:
        A :class:`TranspileResult`.

    Raises:
        TranspilerError: if the device is too small or the method is unknown.
    """
    start = time.perf_counter()
    method = method.lower()
    if method not in {"mirage", "sabre"}:
        raise TranspilerError(f"unknown transpilation method {method!r}")
    selection = selection.lower()
    if selection not in {"depth", "swaps"}:
        raise TranspilerError(f"unknown selection metric {selection!r}")

    prepared = prepare_circuit(circuit)
    coupling_map = _resolve_coupling(coupling, prepared.num_qubits)
    if prepared.num_qubits > coupling_map.num_qubits:
        raise TranspilerError(
            f"circuit needs {prepared.num_qubits} qubits but the device has "
            f"{coupling_map.num_qubits}"
        )
    coverage = coverage if coverage is not None else get_coverage_set(basis)
    input_metrics = evaluate(prepared, basis=basis, coverage=coverage)

    # SWAP-free embedding short-circuit (paper: VF2Layout before SABRE/MIRAGE).
    if use_vf2:
        embedding = vf2_layout(prepared, coupling_map)
        if embedding is not None:
            routed = apply_layout(prepared, embedding, coupling_map.num_qubits)
            metrics = evaluate(routed, basis=basis, coverage=coverage)
            return TranspileResult(
                circuit=routed,
                metrics=metrics,
                method="vf2",
                basis=basis,
                initial_layout=embedding,
                final_layout=embedding.copy(),
                swaps_added=0,
                mirrors_accepted=0,
                mirror_candidates=0,
                runtime_seconds=time.perf_counter() - start,
                selection_metric="none",
                trial_index=-1,
                input_metrics=input_metrics,
            )

    # Router factory: SABRE or MIRAGE with an aggression schedule.
    if method == "sabre":
        def router_factory(trial: int) -> SabreSwap:
            return SabreSwap(coupling_map, seed=None if seed is None else seed + trial)
    else:
        schedule = schedule_from_spec(layout_trials, aggression)

        def router_factory(trial: int) -> SabreSwap:
            return MirageSwap(
                coupling_map,
                coverage,
                aggression=schedule[trial % len(schedule)],
                seed=None if seed is None else seed + trial,
            )

    metric = (
        depth_metric(basis=basis, coverage=coverage)
        if selection == "depth"
        else swap_count_metric
    )
    driver = SabreLayout(
        coupling_map,
        router_factory,
        layout_trials=layout_trials,
        refinement_rounds=refinement_rounds,
        routing_trials=routing_trials,
        selection_metric=metric,
        metric_name=selection,
        seed=seed,
    )
    best = driver.run(prepared.to_dag())
    routed = best.routing.to_circuit()
    metrics = evaluate(
        best.routing.dag,
        basis=basis,
        coverage=coverage,
        mirrors_accepted=best.routing.mirrors_accepted,
    )
    return TranspileResult(
        circuit=routed,
        metrics=metrics,
        method=method,
        basis=basis,
        initial_layout=best.routing.initial_layout,
        final_layout=best.routing.final_layout,
        swaps_added=best.routing.swaps_added,
        mirrors_accepted=best.routing.mirrors_accepted,
        mirror_candidates=best.routing.mirror_candidates,
        runtime_seconds=time.perf_counter() - start,
        selection_metric=selection,
        trial_index=best.trial_index,
        input_metrics=input_metrics,
    )


def compare_methods(
    circuit: QuantumCircuit,
    coupling: CouplingMap | str,
    *,
    basis: str = "sqrt_iswap",
    layout_trials: int = 4,
    seed: int | None = 11,
    selections: Sequence[str] = ("swaps", "depth"),
) -> dict[str, TranspileResult]:
    """Run the SABRE baseline and MIRAGE variants on the same circuit.

    Returns a dict with keys ``"sabre"`` plus ``"mirage-<selection>"`` for
    each requested post-selection metric — the comparison behind the
    paper's Figs. 11 and 12.
    """
    results: dict[str, TranspileResult] = {}
    results["sabre"] = transpile(
        circuit,
        coupling,
        basis=basis,
        method="sabre",
        selection="swaps",
        layout_trials=layout_trials,
        use_vf2=False,
        seed=seed,
    )
    for selection in selections:
        results[f"mirage-{selection}"] = transpile(
            circuit,
            coupling,
            basis=basis,
            method="mirage",
            selection=selection,
            layout_trials=layout_trials,
            use_vf2=False,
            seed=seed,
        )
    return results
