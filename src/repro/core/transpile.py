"""Top-level transpilation API: thin builders over the staged pipeline.

The paper's experimental flow (Section V: clean → unroll → consolidate →
VF2 → multi-trial SABRE/MIRAGE routing → post-selection) lives in
:mod:`repro.core.pipeline` as named stages on a
:class:`~repro.transpiler.passmanager.PassManager` sharing a
:class:`~repro.transpiler.passmanager.PropertySet`.  This module only
assembles and executes that pipeline:

* :func:`transpile` — build the pipeline for one circuit, run it, and
  return the :class:`TranspileResult` (with the per-stage timing report
  attached as ``result.pipeline_report``).
* :func:`transpile_many` — batch front door: transpile a sequence of
  circuits sharing one coverage set and one
  :class:`~repro.transpiler.executors.TrialExecutor`, returning a
  :class:`~repro.core.results.BatchResult` with per-circuit results and
  aggregated per-stage timings.
* :func:`compare_methods` — the SABRE vs. MIRAGE comparison behind the
  paper's Figs. 11 and 12.

Routing trials draw from per-trial ``numpy.random.SeedSequence`` streams,
so a fixed seed produces byte-identical circuits whether trials run
serially, on a thread pool or on a process pool.
"""

from __future__ import annotations

import collections
import dataclasses
import os
import time
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import TranspilerError
from repro.circuits.circuit import QuantumCircuit
from repro.core.pipeline import (
    build_batch_back_pipeline,
    build_batch_front_pipeline,
    build_mirage_pipeline,
    build_prepare_pipeline,
    validate_flow,
)
from repro.core.results import BatchResult, TranspileResult
from repro.polytopes.coverage import CoverageSet, get_coverage_set
from repro.transpiler.executors import TrialExecutor, executor_scope
from repro.transpiler.passes import (
    BatchTrialRef,
    run_batch_trial,
    run_trial,
    seed_sequence,
)
from repro.transpiler.passmanager import PipelineState
from repro.transpiler.topologies import CouplingMap

#: Fan-out modes accepted by :func:`transpile_many` (aliases included).
FANOUT_MODES = {
    "auto": "auto",
    "trials": "trials",
    "sequential": "trials",
    "circuits": "circuits",
}

#: Scheduler modes accepted by :func:`transpile_many` under circuit-level
#: fan-out (aliases included).  ``"stream"`` overlaps planning, trial
#: execution and selection; ``"barrier"`` is the three-phase
#: plan-all / dispatch-all / finish-all engine.
SCHEDULER_MODES = {
    "auto": "auto",
    "stream": "stream",
    "overlap": "stream",
    "barrier": "barrier",
}

#: Lower bound on the streaming scheduler's in-flight circuit window.
MIN_STREAM_WINDOW = 4


def prepare_circuit(
    circuit: QuantumCircuit, *, consolidate: bool = True
) -> QuantumCircuit:
    """Input cleaning + unrolling + consolidation (paper Section V)."""
    return build_prepare_pipeline(consolidate=consolidate).run(circuit)


def transpile(
    circuit: QuantumCircuit,
    coupling: CouplingMap | str,
    *,
    basis: str = "sqrt_iswap",
    method: str = "mirage",
    selection: str = "depth",
    aggression: int | str | Sequence[int] | None = None,
    layout_trials: int = 4,
    refinement_rounds: int = 2,
    routing_trials: int = 1,
    coverage: CoverageSet | None = None,
    use_vf2: bool = True,
    seed: int | np.random.SeedSequence | np.random.Generator | None = 11,
    executor: str | TrialExecutor | None = None,
    max_workers: int | None = None,
) -> TranspileResult:
    """Transpile ``circuit`` onto ``coupling`` for a given basis gate.

    Parameters
    ----------
    circuit : QuantumCircuit
        Input circuit (any mix of 1Q/2Q/3Q gates and directives).
    coupling : CouplingMap or str
        A :class:`CouplingMap` or a topology name (``"line"``,
        ``"square"``, ``"heavy_hex"``, ``"a2a"``, ...).
    basis : str
        Target basis gate; decomposition costs are expressed in its
        pulse units (``sqrt_iswap`` is the paper's main target).
    method : {"mirage", "sabre"}
        Mirror-gate routing, or the stock SABRE baseline.
    selection : {"depth", "swaps"}
        Post-selection metric across routing trials — decomposition-aware
        critical path (MIRAGE's default) or SWAP count (stock SABRE).
    aggression : int, str, sequence of int, or None
        MIRAGE aggression specification — ``None``/``"mixed"`` for the
        paper's 5/45/45/5 distribution, an integer 0-3 for a fixed
        level, or an explicit per-trial sequence.
    layout_trials : int
        Independent random initial layouts.
    refinement_rounds : int
        Forward/backward SABRE refinement rounds.
    routing_trials : int
        Final routings per refined layout.
    coverage : CoverageSet, optional
        Preconstructed coverage set (otherwise the shared set for
        ``basis`` is used — built once per process and persisted under
        ``$MIRAGE_CACHE_DIR`` unless ``MIRAGE_CACHE_DISABLE=1``).
    use_vf2 : bool
        Look for a SWAP-free embedding before routing.
    seed : int, numpy.random.SeedSequence, numpy.random.Generator, or None
        RNG seed (``None`` for nondeterministic).  Each layout trial
        gets its own spawned ``SeedSequence`` stream, so fixed-seed
        results are byte-identical on every executor and worker count.
        Ints and ``SeedSequence``s are reproducible across calls; a
        ``Generator`` is consumed (one draw of entropy), so reusing it
        gives fresh randomness.
    executor : str, TrialExecutor, or None
        Trial execution strategy — ``None``/``"serial"``, ``"threads"``,
        ``"processes"`` or a :class:`TrialExecutor` instance (borrowed
        instances are left open for reuse).
    max_workers : int, optional
        Worker count for executors created from a string spec.

    Returns
    -------
    TranspileResult
        The routed circuit and its metrics, with ``pipeline_report``
        carrying the per-stage timings.

    Raises
    ------
    TranspilerError
        If the device is too small or the method is unknown.
    """
    start = time.perf_counter()
    with executor_scope(executor, max_workers) as trial_executor:
        pipeline = build_mirage_pipeline(
            coupling,
            basis=basis,
            method=method,
            selection=selection,
            aggression=aggression,
            layout_trials=layout_trials,
            refinement_rounds=refinement_rounds,
            routing_trials=routing_trials,
            coverage=coverage,
            use_vf2=use_vf2,
            seed=seed,
            executor=trial_executor,
        )
        state = pipeline.execute(circuit)
    result: TranspileResult = state.properties.require("result")
    result.runtime_seconds = time.perf_counter() - start
    result.pipeline_report = pipeline.report()
    return result


def _resolve_fanout(fanout: str, batch_size: int) -> str:
    """Normalise a fan-out specification to ``"trials"`` or ``"circuits"``.

    ``"auto"`` picks circuit-level fan-out whenever the batch holds more
    than one circuit — the modes are byte-identical for a fixed seed, so
    the choice only affects the wall-clock profile.
    """
    try:
        mode = FANOUT_MODES[fanout.lower()]
    except (KeyError, AttributeError):
        known = ", ".join(sorted(set(FANOUT_MODES)))
        raise TranspilerError(
            f"unknown fanout mode {fanout!r} (known: {known})"
        ) from None
    if mode == "auto":
        return "circuits" if batch_size > 1 else "trials"
    return mode


def _resolve_scheduler(scheduler: str) -> str:
    """Normalise a scheduler specification to ``"stream"`` or ``"barrier"``.

    ``"auto"`` picks the streaming overlap scheduler — the modes are
    byte-identical for a fixed seed, so the choice only affects the
    wall-clock profile (and the scheduler can still fall back to the
    barrier engine when the executor cannot stream, e.g. a process pool
    without a shared-memory transport).
    """
    try:
        mode = SCHEDULER_MODES[scheduler.lower()]
    except (KeyError, AttributeError):
        known = ", ".join(sorted(set(SCHEDULER_MODES)))
        raise TranspilerError(
            f"unknown scheduler mode {scheduler!r} (known: {known})"
        ) from None
    return "stream" if mode == "auto" else mode


def _stream_window(trial_executor: TrialExecutor) -> int:
    """In-flight circuit bound for the streaming scheduler.

    Enough planned-but-unfinished circuits to keep every worker busy
    across circuit boundaries, small enough to bound the memory held by
    parked trial plans (DAGs) and undelivered outcomes.
    """
    workers = (
        getattr(trial_executor, "max_workers", None) or os.cpu_count() or 1
    )
    return max(MIN_STREAM_WINDOW, 2 * workers)


def _dispatch_provenance(
    trial_executor: TrialExecutor,
    stats_before: dict[str, int],
    circuits: int,
    routed: int,
) -> dict:
    """Delta of the executor's dispatch counters over one batch."""
    provenance = {
        key: trial_executor.dispatch_stats[key] - stats_before.get(key, 0)
        for key in trial_executor.dispatch_stats
    }
    provenance["circuits"] = circuits
    provenance["routed"] = routed
    return provenance


def _finish_batch_state(
    state: PipelineState, front_seconds: float
) -> TranspileResult:
    """Resume a planned circuit through route + select and fill timings."""
    resume_start = time.perf_counter()
    build_batch_back_pipeline().execute_state(state)
    result: TranspileResult = state.properties.require("result")
    result.pipeline_report = [
        dataclasses.asdict(record) for record in state.records
    ]
    result.runtime_seconds = (
        front_seconds
        + (time.perf_counter() - resume_start)
        + (result.trial_seconds or 0.0)
    )
    return result


def _run_circuit_fanout(
    batch: list[QuantumCircuit],
    coupling: CouplingMap | str,
    *,
    basis: str,
    method: str,
    selection: str,
    aggression,
    layout_trials: int,
    refinement_rounds: int,
    routing_trials: int,
    coverage: CoverageSet,
    use_vf2: bool,
    circuit_seeds: Sequence[np.random.SeedSequence],
    trial_executor: TrialExecutor,
    scheduler: str = "stream",
) -> tuple[list[TranspileResult], dict]:
    """Two-level circuit fan-out under the requested scheduler.

    Both schedulers plan each circuit with the same front pipeline
    (clean → … → vf2 → plan) and spawn per-circuit seeds and per-trial
    streams exactly as the sequential mode spawns them, so fixed-seed
    outputs are byte-identical across schedulers, fan-out modes and
    executors; only the wall-clock profile differs:

    * ``"stream"`` — a bounded producer plans circuits and feeds their
      trial refs into an in-flight :class:`DispatchSession`, while
      circuits whose trials have drained resume (route + select)
      immediately, so planning, trial execution and selection overlap.
      Falls back to the barrier engine when the executor cannot stream
      (process pool without a shared-memory transport).
    * ``"barrier"`` — three phases: plan **all** circuits, pool every
      planned trial into one shared :meth:`map_shared` dispatch, then
      finish all circuits.
    """

    def plan(circuit, circuit_seed):
        front = build_batch_front_pipeline(
            coupling,
            basis=basis,
            method=method,
            selection=selection,
            aggression=aggression,
            layout_trials=layout_trials,
            refinement_rounds=refinement_rounds,
            routing_trials=routing_trials,
            coverage=coverage,
            use_vf2=use_vf2,
            seed=circuit_seed,
        )
        return front.execute(circuit)

    stats_before = dict(trial_executor.dispatch_stats)
    if scheduler == "stream":
        session = trial_executor.open_dispatch(run_trial, anchors=(coverage,))
        if session is not None:
            return _stream_circuit_fanout(
                batch, plan, circuit_seeds, trial_executor, session,
                stats_before,
            )
    return _barrier_circuit_fanout(
        batch, plan, circuit_seeds, trial_executor, stats_before
    )


def _barrier_circuit_fanout(
    batch: list[QuantumCircuit],
    plan,
    circuit_seeds: Sequence[np.random.SeedSequence],
    trial_executor: TrialExecutor,
    stats_before: dict[str, int],
) -> tuple[list[TranspileResult], dict]:
    """Plan every circuit, pool all trials into one dispatch, finish.

    Phase A runs each circuit's front pipeline, phase B pools every
    planned trial into **one** shared dispatch on the executor — the
    coverage set and all circuit DAGs ship to workers once (per chunk in
    blob mode, once per batch through a shared-memory segment) — and
    phase C resumes each circuit's pipeline to select its winner.
    """
    states: list[PipelineState] = []
    front_seconds: list[float] = []
    for circuit, circuit_seed in zip(batch, circuit_seeds):
        front_start = time.perf_counter()
        states.append(plan(circuit, circuit_seed))
        front_seconds.append(time.perf_counter() - front_start)

    # Pool the trials of every still-unrouted circuit.  Specs are indexed
    # by *pool* position (VF2-embedded circuits contribute none); pickle's
    # memo table dedups the coverage set shared between the specs.
    specs = []
    pooled_refs: list[BatchTrialRef] = []
    refs_per_state: list[int] = []
    for state in states:
        trial_plan = state.properties.get("trial_plan")
        if trial_plan is None:
            refs_per_state.append(0)
            continue
        spec_position = len(specs)
        specs.append(trial_plan.spec)
        pooled_refs.extend(
            BatchTrialRef(circuit_index=spec_position, ref=ref)
            for ref in trial_plan.refs
        )
        refs_per_state.append(len(trial_plan.refs))

    outcomes = (
        trial_executor.map_shared(run_batch_trial, tuple(specs), pooled_refs)
        if pooled_refs
        else []
    )

    results: list[TranspileResult] = []
    cursor = 0
    for state, spent, count in zip(states, front_seconds, refs_per_state):
        if count:
            state.properties["trial_outcomes"] = outcomes[cursor:cursor + count]
            cursor += count
        results.append(_finish_batch_state(state, spent))

    dispatch = _dispatch_provenance(
        trial_executor,
        stats_before,
        circuits=len(batch),
        routed=sum(1 for count in refs_per_state if count),
    )
    dispatch["scheduler"] = "barrier"
    dispatch["overlap_seconds"] = 0.0
    return results, dispatch


@dataclasses.dataclass
class _StreamEntry:
    """One planned circuit waiting for its trial outcomes to drain."""

    state: PipelineState
    front_seconds: float
    futures: list
    slot: int = -1


def _stream_circuit_fanout(
    batch: list[QuantumCircuit],
    plan,
    circuit_seeds: Sequence[np.random.SeedSequence],
    trial_executor: TrialExecutor,
    session,
    stats_before: dict[str, int],
) -> tuple[list[TranspileResult], dict]:
    """Streaming overlap scheduler: plan, dispatch and finish concurrently.

    The producer plans circuits one at a time and immediately feeds each
    circuit's trial refs into the in-flight dispatch session; whenever
    the *oldest* in-flight circuit's futures have all completed it is
    resumed (route + select) right away, so phase-C work of early
    circuits overlaps the phase-B trials of later ones — and, on a
    parallel executor, phase-A planning overlaps both.  The in-flight
    window is bounded (:func:`_stream_window`) so arbitrarily long
    batches hold only a constant number of parked trial plans.

    ``overlap_seconds`` in the returned provenance sums the planning and
    selection work performed while dispatched trials were still in
    flight — the wall-clock the barrier scheduler would have serialised.
    """
    window = _stream_window(trial_executor)
    overlap = 0.0
    routed = 0
    results: list[TranspileResult] = []
    pending: collections.deque[_StreamEntry] = collections.deque()

    def finish(entry: _StreamEntry) -> None:
        nonlocal overlap
        if entry.futures:
            # May block until this circuit's chunks complete — idle wait,
            # deliberately excluded from the overlap metric below.
            entry.state.properties["trial_outcomes"] = [
                outcome
                for future in entry.futures
                for outcome in future.result()
            ]
            session.release(entry.slot)
        start = time.perf_counter()
        results.append(_finish_batch_state(entry.state, entry.front_seconds))
        if session.outstanding():
            overlap += time.perf_counter() - start

    try:
        for circuit, circuit_seed in zip(batch, circuit_seeds):
            front_start = time.perf_counter()
            state = plan(circuit, circuit_seed)
            front_spent = time.perf_counter() - front_start
            if session.outstanding():
                overlap += front_spent
            trial_plan = state.properties.get("trial_plan")
            futures: list = []
            slot = -1
            if trial_plan is not None:
                slot = session.add_payload(trial_plan.spec)
                futures = session.submit(slot, trial_plan.refs)
                routed += 1
            pending.append(_StreamEntry(state, front_spent, futures, slot))
            # Finish any leading circuits whose trials already drained
            # (non-blocking), then enforce the bounded window (blocking
            # on the oldest circuit only when the producer ran ahead).
            while pending and all(f.done() for f in pending[0].futures):
                finish(pending.popleft())
            while len(pending) > window:
                finish(pending.popleft())
        while pending:
            finish(pending.popleft())
    finally:
        session.close()

    dispatch = _dispatch_provenance(
        trial_executor,
        stats_before,
        circuits=len(batch),
        routed=routed,
    )
    dispatch["scheduler"] = "stream"
    dispatch["overlap_seconds"] = round(overlap, 6)
    return results, dispatch


def transpile_many(
    circuits: Iterable[QuantumCircuit],
    coupling: CouplingMap | str,
    *,
    basis: str = "sqrt_iswap",
    method: str = "mirage",
    selection: str = "depth",
    aggression: int | str | Sequence[int] | None = None,
    layout_trials: int = 4,
    refinement_rounds: int = 2,
    routing_trials: int = 1,
    coverage: CoverageSet | None = None,
    use_vf2: bool = True,
    seed: int | np.random.SeedSequence | np.random.Generator | None = 11,
    executor: str | TrialExecutor | None = None,
    max_workers: int | None = None,
    fanout: str = "auto",
    scheduler: str = "auto",
) -> BatchResult:
    """Transpile a batch of circuits sharing one coverage set and executor.

    The batch engine is a two-level scheduler.  The coverage set for
    ``basis`` is constructed (or taken from ``coverage``) once and a
    single :class:`~repro.transpiler.executors.TrialExecutor` — including
    its worker pool, when parallel — is reused across all circuits.  How
    work reaches that executor depends on ``fanout``:

    * ``"trials"`` (a.k.a. ``"sequential"``) — circuits are walked one
      after another; parallelism lives inside each circuit's routing-trial
      fan-out.  Best when individual circuits are large.
    * ``"circuits"`` — every circuit is *planned* (clean → … → vf2 →
      ``plan``) and its routing trials go through one shared dispatch on
      the executor, with each circuit's winner selected from its
      delivered outcomes.  Best for many-small-circuit workloads:
      workers stay busy across circuit boundaries and the coverage set
      plus the per-circuit DAGs cross the process boundary once (via a
      shared-memory segment when available) instead of once per trial.
    * ``"auto"`` (default) — ``"circuits"`` when the batch holds more than
      one circuit, else ``"trials"``.

    Under circuit-level fan-out, ``scheduler`` picks how the three kinds
    of work are interleaved:

    * ``"stream"`` (a.k.a. ``"overlap"``) — a bounded producer plans
      circuits and feeds trial refs into the in-flight dispatch while
      already-drained circuits resume (route + select) immediately, so
      planning, trial execution and selection overlap instead of running
      as three barriers.  Requires a streaming-capable dispatch — on the
      process executor that means the shared-memory transport; without
      it (or with ``MIRAGE_SHM_DISABLE=1``) the call silently falls back
      to the barrier engine, recorded in the dispatch provenance.
    * ``"barrier"`` — plan **all**, dispatch **all**, finish **all**
      (the engine preceding the streaming scheduler).
    * ``"auto"`` (default) — ``"stream"``.

    Parameters
    ----------
    circuits : iterable of QuantumCircuit
        The circuits to transpile.
    fanout : {"auto", "trials", "sequential", "circuits"}
        Batch fan-out mode, see above.
    scheduler : {"auto", "stream", "overlap", "barrier"}
        Circuit fan-out scheduling mode, see above (ignored under
        ``fanout="trials"``).
    **others
        Exactly as :func:`transpile`.

    Returns
    -------
    BatchResult
        One :class:`TranspileResult` per circuit (in input order) plus
        aggregate per-stage timings and dispatch provenance.

    Notes
    -----
    *Determinism.*  Per-circuit seeds are spawned from ``seed`` via
    ``numpy.random.SeedSequence`` by batch position, and per-trial streams
    from each circuit seed — the identical spawn tree in every fan-out
    mode, scheduler and executor.  For a fixed circuit list and seed the
    batch is therefore byte-identical across ``fanout``, ``scheduler``
    and ``executor`` choices (shared-memory transport included); but
    reordering, inserting or removing circuits reseeds the affected
    positions, and a batch of one does not reproduce a bare
    :func:`transpile` call with the same integer seed.

    *Caches.*  The coverage set's memoised cost table stays in the parent
    process; workers rebuild theirs lazily per chunk payload (the table is
    deliberately dropped from pickles — see
    :meth:`~repro.polytopes.coverage.CoverageSet.__getstate__`).
    """
    start = time.perf_counter()
    batch = list(circuits)
    # Fail fast on typos — even for an empty batch, and before paying for
    # the coverage-set build.
    method, selection = validate_flow(method, selection)
    mode = _resolve_fanout(fanout, len(batch))
    scheduler_mode = _resolve_scheduler(scheduler)
    dispatch: dict | None = None
    with executor_scope(executor, max_workers) as trial_executor:
        shared_coverage = (
            coverage if coverage is not None else get_coverage_set(basis)
        )
        circuit_seeds = seed_sequence(seed).spawn(len(batch)) if batch else []
        if mode == "circuits" and batch:
            results, dispatch = _run_circuit_fanout(
                batch,
                coupling,
                basis=basis,
                method=method,
                selection=selection,
                aggression=aggression,
                layout_trials=layout_trials,
                refinement_rounds=refinement_rounds,
                routing_trials=routing_trials,
                coverage=shared_coverage,
                use_vf2=use_vf2,
                circuit_seeds=circuit_seeds,
                trial_executor=trial_executor,
                scheduler=scheduler_mode,
            )
        else:
            stats_before = dict(trial_executor.dispatch_stats)
            results = [
                transpile(
                    circuit,
                    coupling,
                    basis=basis,
                    method=method,
                    selection=selection,
                    aggression=aggression,
                    layout_trials=layout_trials,
                    refinement_rounds=refinement_rounds,
                    routing_trials=routing_trials,
                    coverage=shared_coverage,
                    use_vf2=use_vf2,
                    seed=circuit_seed,
                    executor=trial_executor,
                )
                for circuit, circuit_seed in zip(batch, circuit_seeds)
            ]
            dispatch = _dispatch_provenance(
                trial_executor,
                stats_before,
                circuits=len(batch),
                routed=sum(1 for result in results if result.trial_index >= 0),
            )
        executor_name = trial_executor.name
    return BatchResult(
        results=results,
        runtime_seconds=time.perf_counter() - start,
        executor=executor_name,
        fanout=mode,
        dispatch=dispatch,
    )


def compare_methods(
    circuit: QuantumCircuit,
    coupling: CouplingMap | str,
    *,
    basis: str = "sqrt_iswap",
    layout_trials: int = 4,
    seed: int | np.random.SeedSequence | np.random.Generator | None = 11,
    selections: Sequence[str] = ("swaps", "depth"),
    executor: str | TrialExecutor | None = None,
    max_workers: int | None = None,
) -> dict[str, TranspileResult]:
    """Run the SABRE baseline and MIRAGE variants on the same circuit.

    One trial executor (and its worker pool, when parallel) is shared
    across all variants.  Returns a dict with keys ``"sabre"`` plus
    ``"mirage-<selection>"`` for each requested post-selection metric —
    the comparison behind the paper's Figs. 11 and 12.
    """
    results: dict[str, TranspileResult] = {}
    with executor_scope(executor, max_workers) as trial_executor:
        results["sabre"] = transpile(
            circuit,
            coupling,
            basis=basis,
            method="sabre",
            selection="swaps",
            layout_trials=layout_trials,
            use_vf2=False,
            seed=seed,
            executor=trial_executor,
        )
        for selection in selections:
            results[f"mirage-{selection}"] = transpile(
                circuit,
                coupling,
                basis=basis,
                method="mirage",
                selection=selection,
                layout_trials=layout_trials,
                use_vf2=False,
                seed=seed,
                executor=trial_executor,
            )
    return results
