"""Top-level transpilation API: thin builders over the staged pipeline.

The paper's experimental flow (Section V: clean → unroll → consolidate →
VF2 → multi-trial SABRE/MIRAGE routing → post-selection) lives in
:mod:`repro.core.pipeline` as named stages on a
:class:`~repro.transpiler.passmanager.PassManager` sharing a
:class:`~repro.transpiler.passmanager.PropertySet`.  This module only
assembles and executes that pipeline:

* :func:`transpile` — build the pipeline for one circuit, run it, and
  return the :class:`TranspileResult` (with the per-stage timing report
  attached as ``result.pipeline_report``).
* :func:`transpile_many` — batch front door: transpile a sequence of
  circuits sharing one coverage set and one
  :class:`~repro.transpiler.executors.TrialExecutor`, returning a
  :class:`~repro.core.results.BatchResult` with per-circuit results and
  aggregated per-stage timings.
* :func:`compare_methods` — the SABRE vs. MIRAGE comparison behind the
  paper's Figs. 11 and 12.

Routing trials draw from per-trial ``numpy.random.SeedSequence`` streams,
so a fixed seed produces byte-identical circuits whether trials run
serially, on a thread pool or on a process pool.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.core.pipeline import (
    build_mirage_pipeline,
    build_prepare_pipeline,
    validate_flow,
)
from repro.core.results import BatchResult, TranspileResult
from repro.polytopes.coverage import CoverageSet, get_coverage_set
from repro.transpiler.executors import TrialExecutor, executor_scope
from repro.transpiler.passes import seed_sequence
from repro.transpiler.topologies import CouplingMap


def prepare_circuit(
    circuit: QuantumCircuit, *, consolidate: bool = True
) -> QuantumCircuit:
    """Input cleaning + unrolling + consolidation (paper Section V)."""
    return build_prepare_pipeline(consolidate=consolidate).run(circuit)


def transpile(
    circuit: QuantumCircuit,
    coupling: CouplingMap | str,
    *,
    basis: str = "sqrt_iswap",
    method: str = "mirage",
    selection: str = "depth",
    aggression: int | str | Sequence[int] | None = None,
    layout_trials: int = 4,
    refinement_rounds: int = 2,
    routing_trials: int = 1,
    coverage: CoverageSet | None = None,
    use_vf2: bool = True,
    seed: int | np.random.SeedSequence | np.random.Generator | None = 11,
    executor: str | TrialExecutor | None = None,
    max_workers: int | None = None,
) -> TranspileResult:
    """Transpile ``circuit`` onto ``coupling`` for a given basis gate.

    Args:
        circuit: input circuit (any mix of 1Q/2Q/3Q gates and directives).
        coupling: a :class:`CouplingMap` or a topology name
            (``"line"``, ``"square"``, ``"heavy_hex"``, ``"a2a"``, ...).
        basis: target basis gate; decomposition costs are expressed in its
            pulse units (``sqrt_iswap`` is the paper's main target).
        method: ``"mirage"`` (mirror-gate routing) or ``"sabre"`` (baseline).
        selection: post-selection metric across routing trials — ``"depth"``
            (decomposition-aware critical path, MIRAGE's default) or
            ``"swaps"`` (stock SABRE).
        aggression: MIRAGE aggression specification — ``None``/``"mixed"``
            for the paper's 5/45/45/5 distribution, an integer 0-3 for a
            fixed level, or an explicit per-trial sequence.
        layout_trials: independent random initial layouts.
        refinement_rounds: forward/backward SABRE refinement rounds.
        routing_trials: final routings per refined layout.
        coverage: preconstructed coverage set (otherwise the shared set for
            ``basis`` is used).
        use_vf2: look for a SWAP-free embedding before routing.
        seed: RNG seed — an int, a ``numpy.random.SeedSequence`` or a
            ``numpy.random.Generator`` (``None`` for nondeterministic).
            Each layout trial gets its own spawned stream, so results are
            executor-independent.  Ints and ``SeedSequence``s are
            reproducible across calls; a ``Generator`` is consumed (one
            draw of entropy), so reusing it gives fresh randomness.
        executor: trial execution strategy — ``None``/``"serial"``,
            ``"threads"``, ``"processes"`` or a :class:`TrialExecutor`
            instance (borrowed instances are left open for reuse).
        max_workers: worker count for executors created from a string spec.

    Returns:
        A :class:`TranspileResult` with ``pipeline_report`` carrying the
        per-stage timings.

    Raises:
        TranspilerError: if the device is too small or the method is unknown.
    """
    start = time.perf_counter()
    with executor_scope(executor, max_workers) as trial_executor:
        pipeline = build_mirage_pipeline(
            coupling,
            basis=basis,
            method=method,
            selection=selection,
            aggression=aggression,
            layout_trials=layout_trials,
            refinement_rounds=refinement_rounds,
            routing_trials=routing_trials,
            coverage=coverage,
            use_vf2=use_vf2,
            seed=seed,
            executor=trial_executor,
        )
        state = pipeline.execute(circuit)
    result: TranspileResult = state.properties.require("result")
    result.runtime_seconds = time.perf_counter() - start
    result.pipeline_report = pipeline.report()
    return result


def transpile_many(
    circuits: Iterable[QuantumCircuit],
    coupling: CouplingMap | str,
    *,
    basis: str = "sqrt_iswap",
    method: str = "mirage",
    selection: str = "depth",
    aggression: int | str | Sequence[int] | None = None,
    layout_trials: int = 4,
    refinement_rounds: int = 2,
    routing_trials: int = 1,
    coverage: CoverageSet | None = None,
    use_vf2: bool = True,
    seed: int | np.random.SeedSequence | np.random.Generator | None = 11,
    executor: str | TrialExecutor | None = None,
    max_workers: int | None = None,
) -> BatchResult:
    """Transpile a batch of circuits sharing one coverage set and executor.

    The coverage set for ``basis`` is constructed (or taken from
    ``coverage``) once, and a single :class:`TrialExecutor` — including its
    worker pool, when parallel — is reused across all circuits, so batch
    callers pay pool start-up costs once.  Per-circuit seeds are spawned
    from ``seed`` via ``numpy.random.SeedSequence`` by batch position:
    for a fixed circuit list and seed the batch is fully reproducible and
    independent of executor choice, but reordering, inserting or removing
    circuits reseeds the affected positions (and a batch of one does not
    reproduce a bare :func:`transpile` call with the same integer seed).

    Args:
        circuits: the circuits to transpile.
        (remaining arguments exactly as :func:`transpile`.)

    Returns:
        A :class:`BatchResult` holding one :class:`TranspileResult` per
        circuit (in input order) plus aggregate per-stage timings.
    """
    start = time.perf_counter()
    batch = list(circuits)
    # Fail fast on typos — even for an empty batch, and before paying for
    # the coverage-set build.
    method, selection = validate_flow(method, selection)
    results: list[TranspileResult] = []
    with executor_scope(executor, max_workers) as trial_executor:
        shared_coverage = (
            coverage if coverage is not None else get_coverage_set(basis)
        )
        circuit_seeds = seed_sequence(seed).spawn(len(batch)) if batch else []
        for circuit, circuit_seed in zip(batch, circuit_seeds):
            results.append(
                transpile(
                    circuit,
                    coupling,
                    basis=basis,
                    method=method,
                    selection=selection,
                    aggression=aggression,
                    layout_trials=layout_trials,
                    refinement_rounds=refinement_rounds,
                    routing_trials=routing_trials,
                    coverage=shared_coverage,
                    use_vf2=use_vf2,
                    seed=circuit_seed,
                    executor=trial_executor,
                )
            )
        executor_name = trial_executor.name
    return BatchResult(
        results=results,
        runtime_seconds=time.perf_counter() - start,
        executor=executor_name,
    )


def compare_methods(
    circuit: QuantumCircuit,
    coupling: CouplingMap | str,
    *,
    basis: str = "sqrt_iswap",
    layout_trials: int = 4,
    seed: int | np.random.SeedSequence | np.random.Generator | None = 11,
    selections: Sequence[str] = ("swaps", "depth"),
    executor: str | TrialExecutor | None = None,
    max_workers: int | None = None,
) -> dict[str, TranspileResult]:
    """Run the SABRE baseline and MIRAGE variants on the same circuit.

    One trial executor (and its worker pool, when parallel) is shared
    across all variants.  Returns a dict with keys ``"sabre"`` plus
    ``"mirage-<selection>"`` for each requested post-selection metric —
    the comparison behind the paper's Figs. 11 and 12.
    """
    results: dict[str, TranspileResult] = {}
    with executor_scope(executor, max_workers) as trial_executor:
        results["sabre"] = transpile(
            circuit,
            coupling,
            basis=basis,
            method="sabre",
            selection="swaps",
            layout_trials=layout_trials,
            use_vf2=False,
            seed=seed,
            executor=trial_executor,
        )
        for selection in selections:
            results[f"mirage-{selection}"] = transpile(
                circuit,
                coupling,
                basis=basis,
                method="mirage",
                selection=selection,
                layout_trials=layout_trials,
                use_vf2=False,
                seed=seed,
                executor=trial_executor,
            )
    return results
