"""The staged MIRAGE transpilation pipeline (paper Section V flow).

:func:`build_mirage_pipeline` assembles the paper's experimental flow —
clean → unroll → consolidate → coupling/coverage analysis → VF2 embedding
→ multi-trial SABRE/MIRAGE routing → post-selection — as named stages on
a :class:`~repro.transpiler.passmanager.PassManager`.  Stages exchange
data through the shared :class:`~repro.transpiler.passmanager.PropertySet`
(``coupling_map``, ``coverage``, ``input_metrics``, layouts, routing
counters, and finally ``result``), so any stage can be replaced, removed
or reordered without touching the others, and every run yields a per-stage
timing report (paper Fig. 13).

:func:`repro.core.transpile.transpile` is a thin wrapper building and
executing this pipeline; :func:`repro.core.transpile.transpile_many`
shares one coverage set and one trial executor across a whole batch.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.exceptions import TranspilerError
from repro.circuits.circuit import QuantumCircuit
from repro.core.aggression import Aggression, schedule_from_spec
from repro.core.mirage_pass import MirageSwap
from repro.core.results import TranspileResult
from repro.polytopes.coverage import CoverageSet, get_coverage_set
from repro.transpiler.executors import TrialExecutor
from repro.transpiler.layout import apply_layout, vf2_layout
from repro.transpiler.metrics import evaluate
from repro.transpiler.passes.cleanup import clean_input
from repro.transpiler.passes.consolidate import consolidate_blocks
from repro.transpiler.passes.sabre_layout import (
    DepthMetric,
    LayoutResult,
    SabreLayout,
    SabreRouterFactory,
    TrialRef,
    TrialSpec,
    select_best,
    swap_count_metric,
)
from repro.transpiler.passes.sabre_swap import SabreSwap
from repro.transpiler.passes.unroll import unroll_to_two_qubit
from repro.transpiler.passmanager import (
    BasePass,
    FunctionPass,
    PassManager,
    PipelineState,
)
from repro.transpiler.topologies import CouplingMap, topology_by_name


@dataclasses.dataclass(frozen=True)
class MirageRouterFactory:
    """Picklable factory building a :class:`MirageSwap` per trial.

    The aggression schedule is baked in as a tuple so the factory can ship
    to process-pool workers; trial ``i`` gets ``schedule[i % len]``.
    """

    coupling: CouplingMap
    coverage: CoverageSet
    schedule: tuple[Aggression, ...]

    def __call__(self, trial: int) -> SabreSwap:
        return MirageSwap(
            self.coupling,
            self.coverage,
            aggression=self.schedule[trial % len(self.schedule)],
        )


class ResolveCouplingPass(BasePass):
    """Resolve a coupling map (or topology name) and validate device size."""

    name = "coupling"

    def __init__(self, coupling: CouplingMap | str) -> None:
        self.coupling = coupling

    def run(self, state: PipelineState) -> None:
        coupling = self.coupling
        if not isinstance(coupling, CouplingMap):
            coupling = topology_by_name(coupling, state.circuit.num_qubits)
        if state.circuit.num_qubits > coupling.num_qubits:
            raise TranspilerError(
                f"circuit needs {state.circuit.num_qubits} qubits but the "
                f"device has {coupling.num_qubits}"
            )
        state.properties["coupling_map"] = coupling


def resolve_coverage(coverage: object, basis: str) -> CoverageSet:
    """Resolve a ``coverage=`` specification into a concrete coverage set.

    Accepted specifications, in resolution order: ``None`` (the shared
    process-wide set for ``basis`` via
    :func:`~repro.polytopes.coverage.get_coverage_set`), a prebuilt
    :class:`~repro.polytopes.coverage.CoverageSet` (returned unchanged),
    or a registry handle — any object exposing ``get(basis)``, such as
    :class:`repro.polytopes.registry.RegistryHandle` — through which
    long-lived callers (the service tier) route every batch's coverage
    lookup so builds are shared and single-flight.

    Raises:
        TranspilerError: if the specification is none of the above, or a
            handle's ``get`` returns something other than a coverage set.
    """
    if coverage is None:
        return get_coverage_set(basis)
    if isinstance(coverage, CoverageSet):
        return coverage
    getter = getattr(coverage, "get", None)
    if callable(getter):
        resolved = getter(basis)
        if isinstance(resolved, CoverageSet):
            return resolved
        raise TranspilerError(
            f"coverage registry handle returned {type(resolved).__name__}, "
            f"not a CoverageSet"
        )
    raise TranspilerError(
        f"cannot interpret {coverage!r} as a coverage set or registry handle"
    )


class AttachCoveragePass(BasePass):
    """Attach the coverage set (decomposition-cost oracle) for the basis."""

    name = "coverage"

    def __init__(self, basis: str, coverage: CoverageSet | None = None) -> None:
        self.basis = basis
        self.coverage = coverage

    def run(self, state: PipelineState) -> None:
        state.properties["basis"] = self.basis
        state.properties["coverage"] = resolve_coverage(
            self.coverage, self.basis
        )


class AnalyzeInputPass(BasePass):
    """Record metrics of the prepared input circuit for improvement reports."""

    name = "analyze"

    def run(self, state: PipelineState) -> None:
        state.properties["input_metrics"] = evaluate(
            state.circuit,
            basis=state.properties.require("basis"),
            coverage=state.properties.require("coverage"),
        )


class VF2EmbeddingPass(BasePass):
    """Search for a SWAP-free embedding before invoking SABRE/MIRAGE."""

    name = "vf2"

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled

    def should_run(self, state: PipelineState) -> bool:
        return self.enabled

    def run(self, state: PipelineState) -> None:
        coupling: CouplingMap = state.properties.require("coupling_map")
        embedding = vf2_layout(state.circuit, coupling)
        if embedding is None:
            return
        state.circuit = apply_layout(
            state.circuit, embedding, coupling.num_qubits
        )
        state.properties.update(
            method="vf2",
            initial_layout=embedding,
            final_layout=embedding.copy(),
            swaps_added=0,
            mirrors_accepted=0,
            mirror_candidates=0,
            selection_metric="none",
            trial_index=-1,
            routing_complete=True,
        )


@dataclasses.dataclass(frozen=True)
class TrialPlan:
    """Planned-but-not-yet-run routing trials of one circuit.

    Produced by :class:`PlanTrialsPass` (the front half of the batch
    engine), consumed by :class:`FinishRoutingPass` once the pooled
    dispatch has delivered this circuit's :class:`TrialOutcome`s.
    """

    spec: TrialSpec
    refs: tuple[TrialRef, ...]
    method: str
    selection: str


class RoutingPass(BasePass):
    """Multi-trial SABRE/MIRAGE routing with pluggable trial execution."""

    name = "route"

    def __init__(
        self,
        *,
        method: str = "mirage",
        selection: str = "depth",
        aggression=None,
        layout_trials: int = 4,
        refinement_rounds: int = 2,
        routing_trials: int = 1,
        seed: int | np.random.SeedSequence | np.random.Generator | None = 11,
        executor: str | TrialExecutor | None = None,
        max_workers: int | None = None,
    ) -> None:
        self.method = method
        self.selection = selection
        self.aggression = aggression
        self.layout_trials = layout_trials
        self.refinement_rounds = refinement_rounds
        self.routing_trials = routing_trials
        self.seed = seed
        self.executor = executor
        self.max_workers = max_workers

    def should_run(self, state: PipelineState) -> bool:
        return not state.properties.get("routing_complete", False)

    def build_driver(self, state: PipelineState) -> SabreLayout:
        """Assemble the :class:`SabreLayout` driver for this circuit."""
        coupling: CouplingMap = state.properties.require("coupling_map")
        coverage: CoverageSet = state.properties.require("coverage")
        basis: str = state.properties.require("basis")

        if self.method == "sabre":
            router_factory = SabreRouterFactory(coupling)
        else:
            schedule = tuple(
                schedule_from_spec(self.layout_trials, self.aggression)
            )
            router_factory = MirageRouterFactory(coupling, coverage, schedule)
        metric = (
            DepthMetric(basis=basis, coverage=coverage)
            if self.selection == "depth"
            else swap_count_metric
        )
        return SabreLayout(
            coupling,
            router_factory,
            layout_trials=self.layout_trials,
            refinement_rounds=self.refinement_rounds,
            routing_trials=self.routing_trials,
            selection_metric=metric,
            metric_name=self.selection,
            seed=self.seed,
            executor=self.executor,
            max_workers=self.max_workers,
        )

    def run(self, state: PipelineState) -> None:
        driver = self.build_driver(state)
        best = driver.run(state.circuit.to_dag())
        publish_routing(state, best, self.method, self.selection)


def publish_routing(
    state: PipelineState,
    best: LayoutResult,
    method: str,
    selection: str,
) -> None:
    """Write a winning :class:`LayoutResult` into the property set.

    Shared between the in-line :class:`RoutingPass` and the batch engine's
    :class:`FinishRoutingPass`, so both fan-out modes leave byte-identical
    state behind for the ``select`` stage.
    """
    state.circuit = best.routing.to_circuit()
    state.properties.update(
        method=method,
        routing_dag=best.routing.dag,
        initial_layout=best.routing.initial_layout,
        final_layout=best.routing.final_layout,
        swaps_added=best.routing.swaps_added,
        mirrors_accepted=best.routing.mirrors_accepted,
        mirror_candidates=best.routing.mirror_candidates,
        selection_metric=selection,
        trial_index=best.trial_index,
        trial_scores=best.trial_scores,
        trial_seconds=best.trial_seconds,
        routing_complete=True,
    )


class PlanTrialsPass(RoutingPass):
    """Front half of the batch engine: plan trials without running them.

    Builds exactly the driver — and from it exactly the spec/ref pairs —
    that :class:`RoutingPass` would have dispatched, then parks them in
    the property set as a :class:`TrialPlan` so the batch scheduler can
    pool every circuit's trials into one shared dispatch.

    The parked spec defers its reverse DAG: trial runners derive it on
    first use (memoised per worker process), so the planning thread never
    builds it and the dispatch never ships it — byte-identical results,
    half the DAG payload.
    """

    name = "plan"

    def run(self, state: PipelineState) -> None:
        driver = self.build_driver(state)
        state.properties["trial_plan"] = TrialPlan(
            spec=driver.trial_spec(state.circuit.to_dag(), defer_reverse=True),
            refs=tuple(driver.trial_refs()),
            method=self.method,
            selection=self.selection,
        )


class FinishRoutingPass(BasePass):
    """Back half of the batch engine: select among delivered outcomes.

    Expects ``trial_outcomes`` (this circuit's :class:`TrialOutcome` list,
    in trial order) in the property set, applies the same
    lowest-score/lowest-index selection as :class:`RoutingPass`, and
    publishes the identical property keys.
    """

    name = "route"

    def should_run(self, state: PipelineState) -> bool:
        return not state.properties.get("routing_complete", False)

    def run(self, state: PipelineState) -> None:
        plan: TrialPlan = state.properties.require("trial_plan")
        outcomes = state.properties.require("trial_outcomes")
        best = select_best(outcomes, plan.selection)
        publish_routing(state, best, plan.method, plan.selection)


class SelectResultPass(BasePass):
    """Evaluate the routed circuit and assemble the :class:`TranspileResult`.

    ``runtime_seconds`` and ``pipeline_report`` are filled in by the caller
    once the whole pipeline (including this stage) has been timed.
    """

    name = "select"

    def run(self, state: PipelineState) -> None:
        props = state.properties
        basis = props.require("basis")
        coverage = props.require("coverage")
        routed = props.get("routing_dag", state.circuit)
        metrics = evaluate(
            routed,
            basis=basis,
            coverage=coverage,
            mirrors_accepted=props.get("mirrors_accepted", 0),
        )
        props["result"] = TranspileResult(
            circuit=state.circuit,
            metrics=metrics,
            method=props.require("method"),
            basis=basis,
            initial_layout=props.require("initial_layout"),
            final_layout=props.require("final_layout"),
            swaps_added=props.get("swaps_added", 0),
            mirrors_accepted=props.get("mirrors_accepted", 0),
            mirror_candidates=props.get("mirror_candidates", 0),
            runtime_seconds=0.0,
            selection_metric=props.get("selection_metric", "none"),
            trial_index=props.get("trial_index", -1),
            input_metrics=props.get("input_metrics"),
            trial_seconds=props.get("trial_seconds"),
        )


def validate_flow(method: str, selection: str) -> tuple[str, str]:
    """Normalise and validate the ``method``/``selection`` pair.

    Shared by :func:`build_mirage_pipeline` and the batch front door so
    typos fail fast, before any expensive setup.

    Raises:
        TranspilerError: if ``method`` or ``selection`` is unknown.
    """
    method = method.lower()
    if method not in {"mirage", "sabre"}:
        raise TranspilerError(f"unknown transpilation method {method!r}")
    selection = selection.lower()
    if selection not in {"depth", "swaps"}:
        raise TranspilerError(f"unknown selection metric {selection!r}")
    return method, selection


def build_prepare_pipeline(*, consolidate: bool = True) -> PassManager:
    """Input cleaning + unrolling + consolidation (paper Section V)."""
    manager = PassManager()
    manager.append(FunctionPass("clean", clean_input))
    manager.append(FunctionPass("unroll", unroll_to_two_qubit))
    manager.append(FunctionPass("reclean", clean_input))
    if consolidate:
        manager.append(FunctionPass("consolidate", consolidate_blocks))
    return manager


def build_mirage_pipeline(
    coupling: CouplingMap | str,
    *,
    basis: str = "sqrt_iswap",
    method: str = "mirage",
    selection: str = "depth",
    aggression=None,
    layout_trials: int = 4,
    refinement_rounds: int = 2,
    routing_trials: int = 1,
    coverage: CoverageSet | None = None,
    use_vf2: bool = True,
    consolidate: bool = True,
    seed: int | np.random.SeedSequence | np.random.Generator | None = 11,
    executor: str | TrialExecutor | None = None,
    max_workers: int | None = None,
) -> PassManager:
    """Assemble the full staged transpilation pipeline.

    Stage order: ``clean``, ``unroll``, ``reclean``, ``consolidate``,
    ``coupling``, ``coverage``, ``analyze``, ``vf2``, ``route``,
    ``select``.  ``vf2`` marks routing complete when it finds a SWAP-free
    embedding, in which case ``route`` skips itself; the final ``select``
    stage leaves the :class:`TranspileResult` in the property set under
    ``"result"``.

    Raises:
        TranspilerError: if ``method`` or ``selection`` is unknown.
    """
    method, selection = validate_flow(method, selection)

    manager = build_prepare_pipeline(consolidate=consolidate)
    manager.append(ResolveCouplingPass(coupling))
    manager.append(AttachCoveragePass(basis, coverage))
    manager.append(AnalyzeInputPass())
    manager.append(VF2EmbeddingPass(use_vf2))
    manager.append(
        RoutingPass(
            method=method,
            selection=selection,
            aggression=aggression,
            layout_trials=layout_trials,
            refinement_rounds=refinement_rounds,
            routing_trials=routing_trials,
            seed=seed,
            executor=executor,
            max_workers=max_workers,
        )
    )
    manager.append(SelectResultPass())
    return manager


def build_batch_front_pipeline(
    coupling: CouplingMap | str,
    *,
    basis: str = "sqrt_iswap",
    method: str = "mirage",
    selection: str = "depth",
    aggression=None,
    layout_trials: int = 4,
    refinement_rounds: int = 2,
    routing_trials: int = 1,
    coverage: CoverageSet | None = None,
    use_vf2: bool = True,
    consolidate: bool = True,
    seed: int | np.random.SeedSequence | np.random.Generator | None = 11,
) -> PassManager:
    """Front half of the circuit-level batch engine: everything up to —
    but excluding — trial execution.

    Identical to :func:`build_mirage_pipeline` through the ``vf2`` stage,
    then a ``plan`` stage (:class:`PlanTrialsPass`) that parks the trial
    spec/refs in the property set instead of dispatching them.  The batch
    scheduler pools the plans of every circuit into one shared dispatch
    and resumes each circuit with :func:`build_batch_back_pipeline`.

    The trial spec/refs a plan carries are exactly the ones the in-line
    ``route`` stage would have dispatched for the same arguments, which is
    what makes the two fan-out modes byte-identical.
    """
    method, selection = validate_flow(method, selection)

    manager = build_prepare_pipeline(consolidate=consolidate)
    manager.append(ResolveCouplingPass(coupling))
    manager.append(AttachCoveragePass(basis, coverage))
    manager.append(AnalyzeInputPass())
    manager.append(VF2EmbeddingPass(use_vf2))
    manager.append(
        PlanTrialsPass(
            method=method,
            selection=selection,
            aggression=aggression,
            layout_trials=layout_trials,
            refinement_rounds=refinement_rounds,
            routing_trials=routing_trials,
            seed=seed,
        )
    )
    return manager


@dataclasses.dataclass(frozen=True)
class PlanSpec:
    """The heavy, circuit-invariant half of executor-side planning.

    One :class:`PlanSpec` is shared by every planning task of a batch —
    it carries the pipeline parameters plus the batch's coverage set
    (which streaming transports replace with an anchor reference, so the
    spec itself is tiny on the wire).  Workers rebuild the exact front
    pipeline :func:`build_batch_front_pipeline` would build locally.
    """

    coupling: "CouplingMap | str"
    basis: str
    method: str
    selection: str
    aggression: object
    layout_trials: int
    refinement_rounds: int
    routing_trials: int
    coverage: CoverageSet
    use_vf2: bool


@dataclasses.dataclass(frozen=True)
class PlanTask:
    """The light, per-circuit half of executor-side planning."""

    index: int
    circuit: "QuantumCircuit"
    seed: np.random.SeedSequence


@dataclasses.dataclass
class PlanOutcome:
    """Planned pipeline state of one circuit, plus its planning seconds.

    ``index`` echoes the :class:`PlanTask`'s batch position so the
    scheduler can assert that plans are admitted in input order — the
    ordering byte-identity depends on.
    """

    state: PipelineState
    seconds: float
    index: int
    #: Shared-memory handle of the worker-parked trial spec (see
    #: :func:`run_plan_parked`); ``None`` when the spec rode home in
    #: ``state`` as usual.
    spec_handle: object = None


def run_plan(spec: PlanSpec, task: PlanTask) -> PlanOutcome:
    """Run one circuit's front pipeline (module-level for picklability).

    Executes ``clean → unroll → reclean → consolidate → coupling →
    coverage → analyze → vf2 → plan`` for ``task.circuit`` with the
    batch parameters of ``spec`` — exactly the pipeline the local
    planner builds, seeded with the same per-circuit ``SeedSequence`` —
    and returns the full planned :class:`PipelineState`.  Determinism of
    every front stage makes the outcome byte-identical no matter which
    process ran it — and, equally, no matter how many times it runs: the
    fault-tolerant dispatch layer replays lost planning tasks after a
    worker crash or hang, relying on exactly this purity to keep
    fixed-seed batch outputs identical to an undisturbed run.
    """
    start = time.perf_counter()
    front = build_batch_front_pipeline(
        spec.coupling,
        basis=spec.basis,
        method=spec.method,
        selection=spec.selection,
        aggression=spec.aggression,
        layout_trials=spec.layout_trials,
        refinement_rounds=spec.refinement_rounds,
        routing_trials=spec.routing_trials,
        coverage=spec.coverage,
        use_vf2=spec.use_vf2,
        seed=task.seed,
    )
    state = front.execute(task.circuit)
    return PlanOutcome(
        state=state, seconds=time.perf_counter() - start, index=task.index
    )


def run_plan_parked(spec: PlanSpec, task: PlanTask) -> PlanOutcome:
    """Plan one circuit, parking the planned trial spec worker-side.

    Same front pipeline as :func:`run_plan`, but the heavy
    :class:`TrialSpec` (the planned DAG) never rides the return path:
    the worker publishes it straight into a shared-memory segment
    (:func:`~repro.transpiler.executors.park_payload`) and only the
    segment *handle* travels home, shrinking the encoded plan return —
    pinned by the ``plan_return_bytes`` dispatch counter — to circuit
    metadata.  The parent adopts the handle as a dispatch payload slot,
    so trial chunks reference the exact bytes the planner wrote.

    Parking is best-effort: outside a worker context (or with
    ``MIRAGE_PLAN_PARK`` off, or shared memory unavailable) the outcome
    is exactly :func:`run_plan`'s.  If the parked segment vanishes
    before the trials dispatch — the planner worker died and a janitor
    pass reclaimed its segments — the parent regenerates the identical
    spec locally via :func:`rebuild_trial_spec`.
    """
    from repro.transpiler.executors import park_payload

    outcome = run_plan(spec, task)
    trial_plan = outcome.state.properties.get("trial_plan")
    if trial_plan is not None and trial_plan.spec is not None:
        handle = park_payload(trial_plan.spec)
        if handle is not None:
            outcome.state.properties["trial_plan"] = dataclasses.replace(
                trial_plan, spec=None
            )
            outcome.spec_handle = handle
    return outcome


def rebuild_trial_spec(spec: PlanSpec, task: PlanTask) -> "TrialSpec":
    """Regenerate one circuit's parked :class:`TrialSpec` deterministically.

    The recovery loader behind :func:`run_plan_parked`: replanning the
    circuit with the same batch spec and the same per-circuit seed
    rebuilds the exact spec the dead worker parked (every front stage is
    deterministic), so losing a parked segment costs one local planning
    pass, never correctness.
    """
    outcome = run_plan(spec, task)
    plan = outcome.state.properties.require("trial_plan")
    return plan.spec


def build_batch_back_pipeline() -> PassManager:
    """Back half of the circuit-level batch engine: route + select.

    Resumed (via :meth:`~repro.transpiler.passmanager.PassManager.execute_state`)
    on each front state once the pooled dispatch has placed that circuit's
    ``trial_outcomes`` in its property set.  The ``route`` stage here and
    the in-line ``route`` stage of :func:`build_mirage_pipeline` publish
    identical properties, so ``select`` cannot tell the modes apart.
    """
    manager = PassManager()
    manager.append(FinishRoutingPass())
    manager.append(SelectResultPass())
    return manager
