"""Mirror-gate aggression levels (paper Algorithm 2 and Section IV-C).

The aggression level controls how eagerly the intermediate layer replaces a
gate by its mirror:

* **0** — never accept a mirror;
* **1** — accept only if it strictly lowers the cost;
* **2** — accept if it lowers *or maintains* the cost;
* **3** — always accept.

No single level wins on every circuit (paper Fig. 10), so the default
MIRAGE configuration distributes the independent routing trials across
levels as 5% / 45% / 45% / 5%.
"""

from __future__ import annotations

import enum
from typing import Mapping, Sequence


class Aggression(enum.IntEnum):
    """Named aggression levels."""

    NEVER = 0
    IMPROVE = 1
    NEUTRAL = 2
    ALWAYS = 3


#: Paper Section IV-C trial distribution across aggression levels.
DEFAULT_AGGRESSION_DISTRIBUTION: Mapping[int, float] = {
    Aggression.NEVER: 0.05,
    Aggression.IMPROVE: 0.45,
    Aggression.NEUTRAL: 0.45,
    Aggression.ALWAYS: 0.05,
}


def accept_mirror(
    cost_current: float,
    cost_trial: float,
    aggression: int | Aggression,
    *,
    tolerance: float = 1e-9,
) -> bool:
    """Mirror-gate acceptance function (paper Algorithm 2).

    Args:
        cost_current: combined cost of keeping the original gate.
        cost_trial: combined cost of substituting the mirror gate.
        aggression: level 0-3.
        tolerance: numerical slack for the "maintains the cost" comparison.

    Returns:
        ``True`` if the mirror gate should be accepted.
    """
    level = int(aggression)
    if level == Aggression.NEVER:
        return False
    if level == Aggression.IMPROVE:
        return cost_trial < cost_current - tolerance
    if level == Aggression.NEUTRAL:
        return cost_trial <= cost_current + tolerance
    if level == Aggression.ALWAYS:
        return True
    raise ValueError(f"invalid aggression level {aggression!r}")


def aggression_schedule(
    num_trials: int,
    distribution: Mapping[int, float] | None = None,
) -> list[Aggression]:
    """Assign an aggression level to each of ``num_trials`` routing trials.

    The schedule follows the requested distribution as closely as integer
    counts allow (largest-remainder apportionment) and orders trials from
    the most used level to the least.
    """
    if num_trials < 1:
        raise ValueError("need at least one trial")
    weights = dict(
        DEFAULT_AGGRESSION_DISTRIBUTION if distribution is None else distribution
    )
    total = sum(weights.values())
    if total <= 0:
        raise ValueError("aggression distribution must have positive weight")

    # Largest-remainder apportionment.
    exact = {level: num_trials * weight / total for level, weight in weights.items()}
    counts = {level: int(exact[level]) for level in weights}
    assigned = sum(counts.values())
    remainders = sorted(
        weights, key=lambda level: exact[level] - counts[level], reverse=True
    )
    for level in remainders:
        if assigned >= num_trials:
            break
        counts[level] += 1
        assigned += 1

    schedule: list[Aggression] = []
    for level in sorted(counts, key=counts.get, reverse=True):
        schedule.extend([Aggression(level)] * counts[level])
    return schedule[:num_trials]


def fixed_schedule(num_trials: int, level: int | Aggression) -> list[Aggression]:
    """A schedule that uses the same aggression level for every trial."""
    return [Aggression(int(level))] * num_trials


def schedule_from_spec(
    num_trials: int, spec: int | str | Sequence[int] | None
) -> list[Aggression]:
    """Build a schedule from a user-facing specification.

    ``None`` or ``"mixed"`` gives the paper's 5/45/45/5 distribution, an
    integer gives a fixed level, and an explicit sequence is passed through
    (padded by cycling if shorter than ``num_trials``).
    """
    if spec is None or (isinstance(spec, str) and spec.lower() == "mixed"):
        return aggression_schedule(num_trials)
    if isinstance(spec, (int, Aggression)):
        return fixed_schedule(num_trials, spec)
    if isinstance(spec, str):
        raise ValueError(f"unknown aggression spec {spec!r}")
    levels = [Aggression(int(level)) for level in spec]
    if not levels:
        raise ValueError("empty aggression schedule")
    return [levels[i % len(levels)] for i in range(num_trials)]
