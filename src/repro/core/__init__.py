"""MIRAGE core: the mirror-gate router, aggression policy and public API."""

from repro.core.aggression import (
    Aggression,
    DEFAULT_AGGRESSION_DISTRIBUTION,
    accept_mirror,
    aggression_schedule,
    fixed_schedule,
    schedule_from_spec,
)
from repro.core.mirage_pass import MirageSwap
from repro.core.pipeline import (
    FinishRoutingPass,
    MirageRouterFactory,
    PlanTrialsPass,
    RoutingPass,
    TrialPlan,
    build_batch_back_pipeline,
    build_batch_front_pipeline,
    build_mirage_pipeline,
    build_prepare_pipeline,
)
from repro.core.results import BatchResult, TranspileResult
from repro.core.transpile import (
    compare_methods,
    prepare_circuit,
    transpile,
    transpile_many,
)

__all__ = [
    "Aggression",
    "DEFAULT_AGGRESSION_DISTRIBUTION",
    "accept_mirror",
    "aggression_schedule",
    "fixed_schedule",
    "schedule_from_spec",
    "MirageSwap",
    "MirageRouterFactory",
    "FinishRoutingPass",
    "PlanTrialsPass",
    "RoutingPass",
    "TrialPlan",
    "build_batch_back_pipeline",
    "build_batch_front_pipeline",
    "build_mirage_pipeline",
    "build_prepare_pipeline",
    "BatchResult",
    "TranspileResult",
    "compare_methods",
    "prepare_circuit",
    "transpile",
    "transpile_many",
]
