"""Result objects returned by the top-level transpilation API.

:class:`TranspileResult` describes one transpiled circuit, including the
per-stage timing report of the pipeline that produced it;
:class:`BatchResult` aggregates the results of one
:func:`repro.core.transpile.transpile_many` call.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

from repro.circuits.circuit import QuantumCircuit
from repro.transpiler.layout import Layout
from repro.transpiler.metrics import CircuitMetrics


@dataclasses.dataclass
class TranspileResult:
    """Everything produced by one transpilation run.

    Attributes:
        circuit: the routed circuit on physical qubits.
        metrics: depth / cost / SWAP metrics of the routed circuit.
        method: ``"mirage"``, ``"sabre"`` or ``"vf2"`` (SWAP-free embedding).
        basis: basis gate the cost metrics are expressed in.
        initial_layout: virtual-to-physical layout at circuit start.
        final_layout: layout after the last gate (differs when SWAPs or
            mirror gates moved data).
        swaps_added: SWAP gates inserted by routing.
        mirrors_accepted: mirror substitutions performed (MIRAGE only).
        mirror_candidates: two-qubit gates that reached the intermediate layer.
        runtime_seconds: wall-clock transpilation time.
        selection_metric: post-selection metric used across trials.
        trial_index: index of the winning routing trial.
        input_metrics: metrics of the cleaned, consolidated input circuit
            (before routing) for improvement reporting.
        pipeline_report: per-stage timing records (name, seconds, gate
            counts, skipped flag) of the pipeline run that produced this
            result.
    """

    circuit: QuantumCircuit
    metrics: CircuitMetrics
    method: str
    basis: str
    initial_layout: Layout
    final_layout: Layout
    swaps_added: int
    mirrors_accepted: int
    mirror_candidates: int
    runtime_seconds: float
    selection_metric: str
    trial_index: int
    input_metrics: CircuitMetrics | None = None
    pipeline_report: list[dict] | None = None

    def stage_seconds(self) -> dict[str, float]:
        """Wall-clock seconds per pipeline stage (empty if no report)."""
        seconds: dict[str, float] = {}
        for record in self.pipeline_report or []:
            seconds[record["name"]] = (
                seconds.get(record["name"], 0.0) + record["seconds"]
            )
        return seconds

    @property
    def mirror_acceptance_rate(self) -> float:
        if self.mirror_candidates == 0:
            return 0.0
        return self.mirrors_accepted / self.mirror_candidates

    def summary(self) -> dict[str, float | int | str]:
        """Flat summary row, convenient for tables and benches."""
        return {
            "method": self.method,
            "basis": self.basis,
            "depth": round(self.metrics.depth, 3),
            "total_cost": round(self.metrics.total_cost, 3),
            "swaps": self.swaps_added,
            "two_qubit_gates": self.metrics.two_qubit_count,
            "mirrors": self.mirrors_accepted,
            "mirror_rate": round(self.mirror_acceptance_rate, 3),
            "runtime_s": round(self.runtime_seconds, 3),
            "selection": self.selection_metric,
        }


@dataclasses.dataclass
class BatchResult:
    """Results of one :func:`repro.core.transpile.transpile_many` call.

    Attributes:
        results: one :class:`TranspileResult` per input circuit, in input
            order.
        runtime_seconds: wall-clock time of the whole batch.
        executor: name of the trial executor used (``"serial"``,
            ``"threads"``, ``"processes"``, ...).
    """

    results: list[TranspileResult]
    runtime_seconds: float
    executor: str

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[TranspileResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> TranspileResult:
        return self.results[index]

    def stage_seconds(self) -> dict[str, float]:
        """Per-stage wall-clock seconds summed across the batch."""
        seconds: dict[str, float] = {}
        for result in self.results:
            for name, value in result.stage_seconds().items():
                seconds[name] = seconds.get(name, 0.0) + value
        return seconds

    def summary(self) -> dict[str, float | int | str]:
        """Flat summary row of the whole batch."""
        return {
            "circuits": len(self.results),
            "executor": self.executor,
            "total_swaps": sum(r.swaps_added for r in self.results),
            "total_mirrors": sum(r.mirrors_accepted for r in self.results),
            "mean_depth": round(
                sum(r.metrics.depth for r in self.results) / len(self.results),
                3,
            )
            if self.results
            else 0.0,
            "runtime_s": round(self.runtime_seconds, 3),
        }

    def summaries(self) -> list[dict[str, float | int | str]]:
        """Per-circuit summary rows."""
        return [result.summary() for result in self.results]
