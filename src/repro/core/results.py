"""Result objects returned by the top-level transpilation API."""

from __future__ import annotations

import dataclasses

from repro.circuits.circuit import QuantumCircuit
from repro.transpiler.layout import Layout
from repro.transpiler.metrics import CircuitMetrics


@dataclasses.dataclass
class TranspileResult:
    """Everything produced by one transpilation run.

    Attributes:
        circuit: the routed circuit on physical qubits.
        metrics: depth / cost / SWAP metrics of the routed circuit.
        method: ``"mirage"``, ``"sabre"`` or ``"vf2"`` (SWAP-free embedding).
        basis: basis gate the cost metrics are expressed in.
        initial_layout: virtual-to-physical layout at circuit start.
        final_layout: layout after the last gate (differs when SWAPs or
            mirror gates moved data).
        swaps_added: SWAP gates inserted by routing.
        mirrors_accepted: mirror substitutions performed (MIRAGE only).
        mirror_candidates: two-qubit gates that reached the intermediate layer.
        runtime_seconds: wall-clock transpilation time.
        selection_metric: post-selection metric used across trials.
        trial_index: index of the winning routing trial.
        input_metrics: metrics of the cleaned, consolidated input circuit
            (before routing) for improvement reporting.
    """

    circuit: QuantumCircuit
    metrics: CircuitMetrics
    method: str
    basis: str
    initial_layout: Layout
    final_layout: Layout
    swaps_added: int
    mirrors_accepted: int
    mirror_candidates: int
    runtime_seconds: float
    selection_metric: str
    trial_index: int
    input_metrics: CircuitMetrics | None = None

    @property
    def mirror_acceptance_rate(self) -> float:
        if self.mirror_candidates == 0:
            return 0.0
        return self.mirrors_accepted / self.mirror_candidates

    def summary(self) -> dict[str, float | int | str]:
        """Flat summary row, convenient for tables and benches."""
        return {
            "method": self.method,
            "basis": self.basis,
            "depth": round(self.metrics.depth, 3),
            "total_cost": round(self.metrics.total_cost, 3),
            "swaps": self.swaps_added,
            "two_qubit_gates": self.metrics.two_qubit_count,
            "mirrors": self.mirrors_accepted,
            "mirror_rate": round(self.mirror_acceptance_rate, 3),
            "runtime_s": round(self.runtime_seconds, 3),
            "selection": self.selection_metric,
        }
