"""Result objects returned by the top-level transpilation API.

:class:`TranspileResult` describes one transpiled circuit, including the
per-stage timing report of the pipeline that produced it;
:class:`BatchResult` aggregates the results of one
:func:`repro.core.transpile.transpile_many` call, plus the provenance of
how the batch was scheduled (fan-out mode, executor, dispatch counters).
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

from repro.circuits.circuit import QuantumCircuit
from repro.transpiler.layout import Layout
from repro.transpiler.metrics import CircuitMetrics


@dataclasses.dataclass
class TranspileResult:
    """Everything produced by one transpilation run.

    Attributes
    ----------
    circuit : QuantumCircuit
        The routed circuit on physical qubits.
    metrics : CircuitMetrics
        Depth / cost / SWAP metrics of the routed circuit.
    method : str
        ``"mirage"``, ``"sabre"`` or ``"vf2"`` (SWAP-free embedding).
    basis : str
        Basis gate the cost metrics are expressed in.
    initial_layout : Layout
        Virtual-to-physical layout at circuit start.
    final_layout : Layout
        Layout after the last gate (differs when SWAPs or mirror gates
        moved data).
    swaps_added : int
        SWAP gates inserted by routing.
    mirrors_accepted : int
        Mirror substitutions performed (MIRAGE only).
    mirror_candidates : int
        Two-qubit gates that reached the intermediate layer.
    runtime_seconds : float
        Transpilation time of this circuit.  Under ``fanout="trials"``
        this is elapsed wall clock (parallel trials overlap); under
        ``fanout="circuits"`` it is the per-circuit serial work plus
        this circuit's summed *worker* trial time, which a parallel
        executor overlaps across circuits.  Compare timings across
        fan-out modes at the batch level (``BatchResult.runtime_seconds``),
        not through this field.
    selection_metric : str
        Post-selection metric used across trials.
    trial_index : int
        Index of the winning routing trial (``-1`` if routing was skipped).
    input_metrics : CircuitMetrics or None
        Metrics of the cleaned, consolidated input circuit (before
        routing) for improvement reporting.
    pipeline_report : list of dict or None
        Per-stage timing records (name, seconds, gate counts, skipped
        flag) of the pipeline run that produced this result.  Batch
        fan-out runs show a ``plan`` stage (trial planning) in place of
        in-line routing time; the ``route`` record then holds selection
        only, with the trial time reported in ``trial_seconds``.
    trial_seconds : float or None
        Summed wall-clock seconds spent inside this circuit's routing
        trials (worker time).  ``None`` when routing was skipped (VF2
        embedding) or for results predating this field.
    """

    circuit: QuantumCircuit
    metrics: CircuitMetrics
    method: str
    basis: str
    initial_layout: Layout
    final_layout: Layout
    swaps_added: int
    mirrors_accepted: int
    mirror_candidates: int
    runtime_seconds: float
    selection_metric: str
    trial_index: int
    input_metrics: CircuitMetrics | None = None
    pipeline_report: list[dict] | None = None
    trial_seconds: float | None = None

    def stage_seconds(self) -> dict[str, float]:
        """Wall-clock seconds per pipeline stage.

        Returns
        -------
        dict of str to float
            Stage name to summed seconds; empty if no report is attached.
        """
        seconds: dict[str, float] = {}
        for record in self.pipeline_report or []:
            seconds[record["name"]] = (
                seconds.get(record["name"], 0.0) + record["seconds"]
            )
        return seconds

    @property
    def mirror_acceptance_rate(self) -> float:
        """Fraction of intermediate-layer candidates accepted as mirrors."""
        if self.mirror_candidates == 0:
            return 0.0
        return self.mirrors_accepted / self.mirror_candidates

    def summary(self) -> dict[str, float | int | str]:
        """Flat summary row, convenient for tables and benches."""
        return {
            "method": self.method,
            "basis": self.basis,
            "depth": round(self.metrics.depth, 3),
            "total_cost": round(self.metrics.total_cost, 3),
            "swaps": self.swaps_added,
            "two_qubit_gates": self.metrics.two_qubit_count,
            "mirrors": self.mirrors_accepted,
            "mirror_rate": round(self.mirror_acceptance_rate, 3),
            "runtime_s": round(self.runtime_seconds, 3),
            "selection": self.selection_metric,
        }


@dataclasses.dataclass
class BatchResult:
    """Results of one :func:`repro.core.transpile.transpile_many` call.

    Attributes
    ----------
    results : list of TranspileResult
        One result per input circuit, in input order — regardless of the
        fan-out mode or executor that produced them.  Under
        ``transpile_many(..., on_error="return")`` a circuit whose
        deadline expired holds its
        :class:`~repro.exceptions.DeadlineExceededError` instance at
        that position instead; the aggregate helpers below skip such
        entries.
    runtime_seconds : float
        Wall-clock time of the whole batch.
    executor : str
        Name of the trial executor used (``"serial"``, ``"threads"``,
        ``"processes"``, ...).
    fanout : str
        Scheduling mode that ran the batch — ``"trials"`` (circuits
        walked sequentially, parallelism inside each circuit's trial
        fan-out) or ``"circuits"`` (every circuit's trials pooled into
        one shared dispatch).  Fixed-seed outputs are byte-identical
        across modes; only the timing profile differs.
    dispatch : dict or None
        Provenance counters of the shared dispatch accumulated on the
        executor during this batch: ``shared_pickles`` (heavy payload /
        anchor serialisations), ``payload_pickles`` (per-circuit spec
        serialisations under the streaming scheduler), ``plan_payloads``
        (shared planning-spec serialisations under executor-side
        planning), ``chunks``, ``tasks``, ``plan_tasks`` (front
        pipelines run as executor tasks), ``shm_segments``
        (shared-memory segments published — 0 when the transport is
        disabled or unavailable), ``bytes_shipped`` (payload-transport
        bytes attached to chunks — O(1) per chunk in shared-memory mode,
        one blob per chunk otherwise), ``header_bytes`` (zero-copy index
        headers published; 0 when ``MIRAGE_ZEROCOPY_DISABLE=1``) and
        ``bytes_copied`` (payload bytes workers materialised before
        unpickling — bounded by the index headers when the zero-copy
        layout is active, whole payloads otherwise), plus ``circuits``
        and ``routed`` counts.  Under circuit-level fan-out it also
        records ``scheduler`` (``"stream"`` or ``"barrier"`` — the mode
        actually used, after any fallback), ``overlap_seconds``
        (planning/selection wall-clock performed while dispatched trials
        were still in flight; 0 under the barrier scheduler),
        ``plan_mode`` (``"local"`` or ``"executor"`` — where front
        pipelines actually ran, after ``"auto"`` resolution and any
        fallback) and ``plan_seconds`` (summed front-pipeline seconds —
        producer-thread time under local planning, worker time under
        executor planning).  ``None`` when unavailable (e.g. results
        predating this field).
    """

    results: list[TranspileResult]
    runtime_seconds: float
    executor: str
    fanout: str = "trials"
    dispatch: dict | None = None

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[TranspileResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> TranspileResult:
        return self.results[index]

    def stage_seconds(self) -> dict[str, float]:
        """Per-stage wall-clock seconds summed across the batch.

        Returns
        -------
        dict of str to float
            Stage name to summed seconds across all circuits.  Under
            parallel executors the sum can exceed ``runtime_seconds``
            (worker time vs. elapsed time).
        """
        seconds: dict[str, float] = {}
        for result in self._completed():
            for name, value in result.stage_seconds().items():
                seconds[name] = seconds.get(name, 0.0) + value
        return seconds

    def _completed(self) -> list[TranspileResult]:
        """Results that are actual results (skips ``on_error="return"``
        exception placeholders)."""
        return [r for r in self.results if isinstance(r, TranspileResult)]

    def circuit_seconds(self) -> list[float]:
        """Per-circuit ``runtime_seconds``, in input order.

        Exception placeholders contribute ``0.0`` (no result exists to
        time) so positions stay aligned with the input batch.
        """
        return [
            result.runtime_seconds if isinstance(result, TranspileResult)
            else 0.0
            for result in self.results
        ]

    def trial_seconds(self) -> float:
        """Summed routing-trial worker seconds across the batch."""
        return sum(
            result.trial_seconds or 0.0 for result in self._completed()
        )

    def summary(self) -> dict[str, float | int | str]:
        """Flat summary row of the whole batch."""
        completed = self._completed()
        return {
            "circuits": len(self.results),
            "executor": self.executor,
            "fanout": self.fanout,
            "total_swaps": sum(r.swaps_added for r in completed),
            "total_mirrors": sum(r.mirrors_accepted for r in completed),
            "mean_depth": round(
                sum(r.metrics.depth for r in completed) / len(completed),
                3,
            )
            if completed
            else 0.0,
            "runtime_s": round(self.runtime_seconds, 3),
        }

    def summaries(self) -> list[dict[str, float | int | str]]:
        """Per-circuit summary rows (exception placeholders skipped)."""
        return [result.summary() for result in self._completed()]
