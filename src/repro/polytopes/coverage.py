"""Coverage sets: which canonical classes a k-deep basis-gate ansatz reaches.

This is the reproduction's substitute for the ``monodromy`` package used by
the paper.  A *circuit polytope* is the region of the Weyl chamber reachable
by ``k`` applications of a basis gate interleaved with arbitrary
single-qubit gates; a *coverage set* is the list of circuit polytopes of a
basis gate ordered by cost, which supports the two queries MIRAGE needs:

* the minimum decomposition cost of a coordinate (``CoverageSet.cost_of``),
* Haar-weighted volumes and expected costs (Haar scores).

Each region is built numerically as the convex hull of the coordinates of
many randomly instantiated ansatz circuits, anchored by (i) the exact
coordinates of local-free basis-gate powers and (ii) landmark gates whose
reachability is confirmed by the numerical decomposer.  The mirror-inclusive
variant augments every region with its image under the mirror transform
(paper Eq. 1), represented as a union of convex pieces because the transform
is only piecewise affine.
"""

from __future__ import annotations

import dataclasses
import math
import threading
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import CoverageError
from repro.linalg.random import _as_rng, haar_unitary
from repro.polytopes.polytope import WeylPolytope
from repro.weyl.canonical import PI4, chamber_vertices
from repro.weyl.catalog import (
    basis_gate_cost,
    basis_gate_matrix,
    max_exact_depth,
)
from repro.weyl.coordinates import weyl_coordinates_many
from repro.weyl.mirror import mirror_coordinate, mirror_coordinates_many

#: Landmark coordinates anchored into the hulls when numerically reachable.
_LANDMARKS: tuple[tuple[float, float, float], ...] = (
    (PI4, 0.0, 0.0),  # CNOT / CZ
    (PI4, PI4, 0.0),  # iSWAP
    (PI4, PI4, PI4),  # SWAP
    (PI4, PI4 / 2, 0.0),  # B gate
    (PI4 / 2, PI4 / 2, 0.0),  # sqrt(iSWAP)
    (PI4 / 2, PI4 / 2, PI4 / 2),  # sqrt(SWAP)
    (PI4 / 2, 0.0, 0.0),  # CPHASE(pi/2)
)

#: Discrete single-qubit angles used for "structured" middle layers; these
#: hit hull corners far more reliably than Haar-random locals do.
_STRUCTURED_ANGLES = (0.0, math.pi / 2, math.pi, 3 * math.pi / 2)


def _random_local(rng: np.random.Generator) -> np.ndarray:
    return np.kron(haar_unitary(2, rng), haar_unitary(2, rng))


def _structured_local(rng: np.random.Generator) -> np.ndarray:
    from repro.linalg.su2 import rx, ry, rz

    rotations = (rx, ry, rz)
    factors = []
    for _ in range(2):
        rotation = rotations[rng.integers(len(rotations))]
        angle = _STRUCTURED_ANGLES[rng.integers(len(_STRUCTURED_ANGLES))]
        factors.append(rotation(angle))
    return np.kron(factors[0], factors[1])


def sample_ansatz_coordinates(
    basis: str,
    depth: int,
    num_samples: int,
    seed: int | np.random.Generator | None = None,
    structured_fraction: float = 0.35,
) -> np.ndarray:
    """Coordinates realised by random instantiations of the depth-``k`` ansatz.

    Args:
        basis: basis gate name.
        depth: number of basis-gate applications.
        num_samples: how many random instantiations to draw.
        seed: RNG seed.
        structured_fraction: fraction of samples whose middle locals are
            drawn from axis rotations by multiples of pi/2 (corner-seeking).

    Returns:
        ``(m, 3)`` array of canonical coordinates (``m <= num_samples + depth``).
    """
    rng = _as_rng(seed)
    basis_matrix = basis_gate_matrix(basis)

    # Local-free powers of the basis gate are exact, cheap anchor points.
    matrices: list[np.ndarray] = []
    power = np.eye(4, dtype=complex)
    for _ in range(depth):
        power = basis_matrix @ power
        matrices.append(power)

    if depth == 1:
        return weyl_coordinates_many(np.stack(matrices))

    num_structured = int(num_samples * structured_fraction)
    for index in range(num_samples):
        product = np.array(basis_matrix)
        for _ in range(depth - 1):
            if index < num_structured:
                local = _structured_local(rng)
            else:
                local = _random_local(rng)
            product = basis_matrix @ local @ product
        matrices.append(product)
    # One batched extraction across anchors and samples — the dominant cost
    # of cold coverage construction.
    return weyl_coordinates_many(np.stack(matrices))


def _anchor_landmarks(
    basis: str, depth: int, seed: int | np.random.Generator | None = None
) -> list[tuple[float, float, float]]:
    """Landmark coordinates provably (numerically) reachable at this depth."""
    from repro.decompose.numerical import optimize_to_coordinate

    rng = _as_rng(seed)
    anchors = []
    for landmark in _LANDMARKS:
        result = optimize_to_coordinate(
            landmark, basis, depth, trials=3, maxiter=250, tol=1e-3, seed=rng
        )
        if result.success:
            anchors.append(landmark)
    return anchors


def _split_by_mirror_branch(points: np.ndarray) -> list[np.ndarray]:
    """Split a point cloud at ``a = pi/4`` so each part maps affinely under Eq. 1."""
    points = np.atleast_2d(points)
    low = points[points[:, 0] <= PI4 + 1e-9]
    high = points[points[:, 0] > PI4 - 1e-9]
    return [part for part in (low, high) if len(part)]


@dataclasses.dataclass
class CircuitPolytope:
    """Reachable region of a depth-``k`` ansatz for one basis gate.

    The region is a union of convex pieces (a single piece for the standard
    polytope; typically two once mirror images are included).

    Attributes:
        basis: basis gate name.
        depth: number of basis applications ``k``.
        cost: normalised pulse cost ``k * basis_gate_cost(basis)``.
        pieces: convex components whose union is the region.
        mirrored: whether the region includes mirror-gate images.
    """

    basis: str
    depth: int
    cost: float
    pieces: list[WeylPolytope]
    mirrored: bool = False

    def __post_init__(self) -> None:
        self._stack: tuple[np.ndarray, np.ndarray, list[tuple[int, int]]] | None = None

    def __getstate__(self) -> dict:
        # The stacked half-space matrices are derived data; drop them so
        # process-pool / disk-cache pickles stay small.
        state = self.__dict__.copy()
        state["_stack"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("_stack", None)

    def _halfspace_stack(
        self,
    ) -> tuple[np.ndarray, np.ndarray, list[tuple[int, int]]]:
        """All pieces' linear constraints stacked into one ``(A, b)`` pair.

        Returns ``(A, b, slices)`` where ``slices[i]`` is the row range of
        piece ``i``, so one matrix product against ``A`` evaluates every
        facet inequality of every piece at once.
        """
        if self._stack is None:
            blocks_a: list[np.ndarray] = []
            blocks_b: list[np.ndarray] = []
            slices: list[tuple[int, int]] = []
            row = 0
            for piece in self.pieces:
                lin_a, lin_b = piece.halfspaces
                blocks_a.append(lin_a)
                blocks_b.append(lin_b)
                slices.append((row, row + len(lin_a)))
                row += len(lin_a)
            stacked_a = (
                np.vstack(blocks_a) if row else np.zeros((0, 3))
            )
            stacked_b = (
                np.concatenate(blocks_b) if row else np.zeros(0)
            )
            self._stack = (stacked_a, stacked_b, slices)
        return self._stack

    def contains(self, coordinate: Iterable[float], atol: float = 1e-6) -> bool:
        point = tuple(coordinate)
        return any(piece.contains(point, atol=atol) for piece in self.pieces)

    def contains_mask(self, samples: np.ndarray, atol: float = 1e-6) -> np.ndarray:
        """Membership mask of ``samples`` in the union of the pieces.

        Facet inequalities of every piece are evaluated in a single matrix
        product against the stacked half-space matrices; only the off-plane
        distance bound of degenerate pieces needs a per-piece product.
        """
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        stacked_a, stacked_b, slices = self._halfspace_stack()
        values = (
            samples @ stacked_a.T - stacked_b
            if len(stacked_a)
            else np.zeros((len(samples), 0))
        )
        mask = np.zeros(len(samples), dtype=bool)
        for piece, (start, stop) in zip(self.pieces, slices):
            piece_mask = piece._stack_mask(
                samples, values[:, start:stop], atol=atol
            )
            mask |= piece_mask
            if mask.all():
                break
        return mask

    def haar_volume(self, samples: np.ndarray, atol: float = 1e-6) -> float:
        """Haar-weighted volume estimated over precomputed Haar samples."""
        return float(np.mean(self.contains_mask(samples, atol=atol)))

    def nearest_point(self, coordinate: Iterable[float]) -> np.ndarray:
        """Closest point of the region to ``coordinate`` (Euclidean)."""
        point = tuple(coordinate)
        best: np.ndarray | None = None
        best_distance = np.inf
        for piece in self.pieces:
            candidate = piece.nearest_point(point)
            distance = float(np.linalg.norm(candidate - np.asarray(point)))
            if distance < best_distance:
                best_distance = distance
                best = candidate
        if best is None:
            raise CoverageError("circuit polytope has no pieces")
        return best

    @property
    def label(self) -> str:
        suffix = "+mirror" if self.mirrored else ""
        return f"{self.basis} k={self.depth}{suffix}"


def build_circuit_polytope(
    basis: str,
    depth: int,
    *,
    num_samples: int = 1500,
    seed: int = 7,
    mirror: bool = False,
    anchor: bool = True,
    cumulative_points: np.ndarray | None = None,
) -> CircuitPolytope:
    """Build the reachable region of ``depth`` applications of ``basis``.

    Args:
        basis: basis gate name.
        depth: ansatz depth ``k``.
        num_samples: random ansatz samples.
        seed: RNG seed (deterministic builds).
        mirror: include the mirror image of the region.
        anchor: verify landmark gates numerically and pin them to the hull.
        cumulative_points: points known reachable at lower depth (the region
            is monotone in ``k``), stacked into the hull.

    Returns:
        The constructed :class:`CircuitPolytope`.
    """
    points = sample_ansatz_coordinates(basis, depth, num_samples, seed=seed)
    if cumulative_points is not None and len(cumulative_points):
        points = np.vstack([points, cumulative_points])
    if anchor and depth > 1:
        anchors = _anchor_landmarks(basis, depth, seed=seed + depth)
        if anchors:
            points = np.vstack([points, np.array(anchors)])

    pieces = [WeylPolytope(points, name=f"{basis}-k{depth}")]
    if mirror:
        for part in _split_by_mirror_branch(points):
            pieces.append(
                WeylPolytope(
                    mirror_coordinates_many(part),
                    name=f"{basis}-k{depth}-mirror",
                )
            )
    cost = depth * basis_gate_cost(basis)
    return CircuitPolytope(
        basis=basis, depth=depth, cost=cost, pieces=pieces, mirrored=mirror
    )


def _identity_polytope(basis: str, mirrored: bool) -> CircuitPolytope:
    """The zero-cost region: the identity class (plus SWAP when mirrored).

    A gate whose class is the identity needs no basis pulses at all; with
    mirror gates allowed, a SWAP is also free because it is the mirror of
    the identity (this is exactly the "mirage SWAP" of the paper).
    """
    pieces = [WeylPolytope(np.zeros((1, 3)), name=f"{basis}-k0")]
    if mirrored:
        pieces.append(
            WeylPolytope(np.array([[PI4, PI4, PI4]]), name=f"{basis}-k0-mirror")
        )
    return CircuitPolytope(
        basis=basis, depth=0, cost=0.0, pieces=pieces, mirrored=mirrored
    )


def _full_chamber_polytope(basis: str, depth: int, mirrored: bool) -> CircuitPolytope:
    """A polytope covering the entire chamber (guaranteed-coverage depth)."""
    return CircuitPolytope(
        basis=basis,
        depth=depth,
        cost=depth * basis_gate_cost(basis),
        pieces=[WeylPolytope(chamber_vertices(), name=f"{basis}-full")],
        mirrored=mirrored,
    )


class CoverageSet:
    """Ordered (by cost) coverage polytopes of one basis gate.

    Provides the minimum-cost decomposition estimate used throughout MIRAGE
    and the Haar-score analyses.  Cost queries are memoised on a rounded
    coordinate key, reproducing the LRU lookup table described in the
    paper's Section VI-C.
    """

    def __init__(
        self,
        basis: str,
        polytopes: Sequence[CircuitPolytope],
        *,
        mirrored: bool = False,
        atol: float = 1e-6,
    ) -> None:
        if not polytopes:
            raise CoverageError("a coverage set needs at least one polytope")
        self.basis = basis
        self.mirrored = mirrored
        self.atol = atol
        self.polytopes = sorted(polytopes, key=lambda poly: poly.cost)
        self._cost_cache: dict[tuple[float, float, float], float] = {}
        # One coverage set is shared by every concurrent routing trial
        # under a thread executor, so cache and counters are lock-guarded
        # (matching CoordinateCache).
        self._cache_lock = threading.Lock()
        self._cache_hits = 0
        self._cache_misses = 0

    def __getstate__(self) -> dict:
        # Locks cannot be pickled, and the memoised cost table plus its
        # hit/miss counters are pure derived data — dropping them keeps
        # process-pool trial dispatch and on-disk cache entries small.
        # The heavy payload that remains — every polytope's half-space
        # matrices and point clouds — is exported as protocol-5
        # out-of-band buffers (see WeylPolytope.__getstate__), so the
        # shared-memory transport can hand workers zero-copy views.
        state = self.__dict__.copy()
        del state["_cache_lock"]
        del state["_cost_cache"]
        del state["_cache_hits"]
        del state["_cache_misses"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._cache_lock = threading.Lock()
        self._cost_cache = {}
        self._cache_hits = 0
        self._cache_misses = 0

    # -- queries ---------------------------------------------------------

    @property
    def max_cost(self) -> float:
        return self.polytopes[-1].cost

    @property
    def unit_cost(self) -> float:
        return basis_gate_cost(self.basis)

    def polytope_for_depth(self, depth: int) -> CircuitPolytope:
        for polytope in self.polytopes:
            if polytope.depth == depth:
                return polytope
        raise CoverageError(f"no polytope of depth {depth} in coverage set")

    def cost_of(self, coordinate: Iterable[float]) -> float:
        """Minimum decomposition cost of one canonical coordinate.

        The scalar form of :meth:`cost_of_many`: a length-3 canonical
        Weyl coordinate in, a float cost (in pulse units of ``basis``)
        out.  Results are memoised in a thread-safe table keyed by the
        coordinate rounded to 6 decimals; the table is shared with the
        batched queries and deliberately excluded from pickles
        (:meth:`__getstate__`), so process-pool workers rebuild theirs
        lazily.
        """
        point = tuple(float(x) for x in coordinate)
        key = (round(point[0], 6), round(point[1], 6), round(point[2], 6))
        with self._cache_lock:
            cached = self._cost_cache.get(key)
            if cached is not None:
                self._cache_hits += 1
                return cached
            self._cache_misses += 1
        # Polytope membership runs outside the lock; a racing duplicate
        # computation yields the same deterministic cost.
        cost = self._uncached_cost(point)
        with self._cache_lock:
            self._cost_cache[key] = cost
        return cost

    def _uncached_cost(self, point: tuple[float, float, float]) -> float:
        for polytope in self.polytopes:
            if polytope.contains(point, atol=self.atol):
                return polytope.cost
        # The last polytope covers the full chamber by construction, so this
        # is only reachable for points slightly outside the chamber.
        return self.max_cost

    def cost_of_many(self, coordinates: np.ndarray) -> np.ndarray:
        """Minimum decomposition costs of a coordinate batch.

        Parameters
        ----------
        coordinates : array_like, shape (n, 3)
            Canonical Weyl coordinates (a sequence of triples is
            accepted and treated as one batch; an empty input yields an
            empty result).

        Returns
        -------
        numpy.ndarray, shape (n,)
            Cost per row, in pulse units of ``basis``.

        Notes
        -----
        Element-wise identical to calling :meth:`cost_of` in a loop —
        including consultation and population of the memoised cost table
        — but the uncached coordinates are resolved by winnowing: each
        polytope (cheapest first) classifies the still-unresolved rows
        with one stacked half-space product, and resolved rows drop out
        of the next round (~10x the scalar loop at routing-sized
        batches).  Rows sharing a rounded key with an earlier miss reuse
        that row's result, exactly as the sequential loop would via the
        memo, so results are deterministic and order-independent.  The
        memo table itself never travels across process boundaries (see
        :meth:`cost_of`).
        """
        coords = np.asarray(coordinates, dtype=float)
        if coords.size == 0:
            return np.zeros(0)
        coords = np.atleast_2d(coords)
        n = len(coords)
        costs = np.empty(n, dtype=float)
        keys: list[tuple[float, float, float]] = []
        pending: list[int] = []
        # Rows sharing a rounded key with an earlier miss reuse that row's
        # result, exactly as a sequential cost_of loop would via the memo.
        duplicates: list[tuple[int, int]] = []
        pending_by_key: dict[tuple[float, float, float], int] = {}
        rows = coords.tolist()
        with self._cache_lock:
            for index, row in enumerate(rows):
                key = (round(row[0], 6), round(row[1], 6), round(row[2], 6))
                keys.append(key)
                cached = self._cost_cache.get(key)
                if cached is not None:
                    self._cache_hits += 1
                    costs[index] = cached
                elif key in pending_by_key:
                    self._cache_hits += 1
                    duplicates.append((index, pending_by_key[key]))
                else:
                    self._cache_misses += 1
                    pending_by_key[key] = len(pending)
                    pending.append(index)
        if pending:
            pending_rows = np.array(pending)
            subset = coords[pending_rows]
            # The last polytope covers the full chamber, so this default is
            # only reachable for points slightly outside the chamber.
            resolved = np.full(len(pending_rows), self.max_cost)
            remaining = np.arange(len(pending_rows))
            for polytope in self.polytopes:
                if remaining.size == 0:
                    break
                mask = polytope.contains_mask(subset[remaining], atol=self.atol)
                resolved[remaining[mask]] = polytope.cost
                remaining = remaining[~mask]
            costs[pending_rows] = resolved
            for index, position in duplicates:
                costs[index] = resolved[position]
            with self._cache_lock:
                for index, value in zip(pending, resolved.tolist()):
                    self._cost_cache[keys[index]] = value
        return costs

    def depth_of(self, coordinate: Iterable[float]) -> int:
        """Minimum number of basis applications for a coordinate."""
        cost = self.cost_of(coordinate)
        return int(round(cost / self.unit_cost))

    def depth_of_many(self, coordinates: np.ndarray) -> np.ndarray:
        """Minimum basis-gate applications per coordinate.

        Parameters
        ----------
        coordinates : array_like, shape (n, 3)
            Canonical Weyl coordinates.

        Returns
        -------
        numpy.ndarray of int, shape (n,)
            ``round(cost / unit_cost)`` per row — the ``k`` of the
            paper's depth-``k`` circuit polytopes.  Shares the memo table
            and determinism guarantees of :meth:`cost_of_many`.
        """
        costs = self.cost_of_many(coordinates)
        return np.rint(costs / self.unit_cost).astype(int)

    def mirror_cost_of(self, coordinate: Iterable[float]) -> float:
        """Cost of the mirror class of a coordinate."""
        return self.cost_of(mirror_coordinate(tuple(coordinate)))

    def mirror_cost_of_many(self, coordinates: np.ndarray) -> np.ndarray:
        """Decomposition costs of the mirror classes of a batch.

        Parameters
        ----------
        coordinates : array_like, shape (n, 3)
            Canonical Weyl coordinates of the *original* gates.

        Returns
        -------
        numpy.ndarray, shape (n,)
            Cost of each gate's mirror (gate followed by SWAP), in pulse
            units of ``basis``.  The mirrored coordinates are
            canonicalised as one numpy batch and resolved through
            :meth:`cost_of_many`, so the same memo table and determinism
            guarantees apply.
        """
        return self.cost_of_many(mirror_coordinates_many(coordinates))

    def cheaper_polytopes(self, cost: float) -> list[CircuitPolytope]:
        """Polytopes strictly cheaper than ``cost`` (for approximation)."""
        return [poly for poly in self.polytopes if poly.cost < cost - 1e-12]

    def haar_volumes(self, samples: np.ndarray, atol: float | None = None) -> dict[int, float]:
        """Haar-weighted coverage per depth, estimated on ``samples``."""
        atol = self.atol if atol is None else atol
        return {
            polytope.depth: polytope.haar_volume(samples, atol=atol)
            for polytope in self.polytopes
        }

    def cache_info(self) -> dict[str, int]:
        with self._cache_lock:
            return {
                "hits": self._cache_hits,
                "misses": self._cache_misses,
                "size": len(self._cost_cache),
            }

    def clear_cache(self) -> None:
        with self._cache_lock:
            self._cost_cache.clear()
            self._cache_hits = 0
            self._cache_misses = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        depths = [poly.depth for poly in self.polytopes]
        return (
            f"CoverageSet(basis={self.basis!r}, depths={depths}, "
            f"mirrored={self.mirrored})"
        )


def build_coverage_set(
    basis: str,
    *,
    max_depth: int | None = None,
    num_samples: int = 1500,
    seed: int = 7,
    mirror: bool = False,
    anchor: bool = True,
    atol: float = 1e-6,
) -> CoverageSet:
    """Build the full coverage set of a basis gate.

    Depths ``1 .. max_depth`` are built cumulatively (each region includes
    all shallower regions).  The deepest polytope is replaced by the full
    Weyl chamber because at that depth coverage is guaranteed analytically,
    which in turn guarantees ``cost_of`` always terminates with a finite
    answer.
    """
    if max_depth is None:
        max_depth = max_exact_depth(basis)
        if mirror:
            # With mirrors the SWAP corner costs nothing, so full coverage is
            # reached at the depth that covers the mirror of the chamber;
            # keep the same bound — the final chamber polytope handles it.
            max_depth = max(2, max_depth)
    polytopes: list[CircuitPolytope] = [_identity_polytope(basis, mirror)]
    cumulative: np.ndarray | None = None
    for depth in range(1, max_depth + 1):
        if depth == max_depth:
            polytopes.append(_full_chamber_polytope(basis, depth, mirror))
            continue
        polytope = build_circuit_polytope(
            basis,
            depth,
            num_samples=num_samples,
            seed=seed,
            mirror=mirror,
            anchor=anchor,
            cumulative_points=cumulative,
        )
        polytopes.append(polytope)
        base_points = polytope.pieces[0].points
        cumulative = base_points
    return CoverageSet(basis, polytopes, mirrored=mirror, atol=atol)


def load_or_build_coverage_set(
    basis: str,
    *,
    max_depth: int | None = None,
    num_samples: int = 1500,
    seed: int = 7,
    mirror: bool = False,
    anchor: bool = True,
    atol: float = 1e-6,
) -> CoverageSet:
    """Build a coverage set through the persistent on-disk cache.

    On a cache hit the pickled set is loaded from
    ``$MIRAGE_CACHE_DIR`` (see :mod:`repro.polytopes.cache`); on a miss the
    set is built exactly as :func:`build_coverage_set` would and stored
    atomically for subsequent processes and runs.  Construction is
    deterministic in all the key parameters, so a loaded set answers every
    query identically to a freshly built one.
    """
    from repro.polytopes.cache import (
        load_cached_coverage_set,
        store_coverage_set,
    )

    parameters = dict(
        basis=basis,
        max_depth=max_depth,
        num_samples=num_samples,
        seed=seed,
        mirror=mirror,
        anchor=anchor,
        atol=atol,
    )
    cached = load_cached_coverage_set(**parameters)
    if cached is not None:
        return cached
    coverage = build_coverage_set(
        basis,
        max_depth=max_depth,
        num_samples=num_samples,
        seed=seed,
        mirror=mirror,
        anchor=anchor,
        atol=atol,
    )
    store_coverage_set(coverage, **parameters)
    return coverage


def get_coverage_set(
    basis: str,
    mirror: bool = False,
    *,
    num_samples: int = 1200,
    seed: int = 7,
    max_depth: int | None = None,
) -> CoverageSet:
    """Shared, memoised coverage sets used by the transpiler and benches.

    Served from the process-wide
    :data:`repro.polytopes.registry.DEFAULT_REGISTRY` (in-memory L1,
    single-flight builds under concurrency) over the persistent disk
    cache (L2), so the first call of a fresh process loads the pickled
    set instead of rebuilding the polytopes, and repeated calls return
    the identical instance.
    """
    from repro.polytopes.registry import DEFAULT_REGISTRY

    return DEFAULT_REGISTRY.get(
        basis,
        mirror=mirror,
        num_samples=num_samples,
        seed=seed,
        max_depth=max_depth,
    )
