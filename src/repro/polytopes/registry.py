"""Multi-tenant coverage-set registry: in-memory L1 over the disk L2.

A long-lived process serving many transpilation requests (the
:mod:`repro.service` tier, a notebook, a benchmark harness) wants every
request to share one coverage set per build configuration.  The
:func:`functools.lru_cache` that used to back ``get_coverage_set`` gave
per-process sharing but no introspection, no preloading, and — crucially
for a concurrent front-end — no *single-flight* guarantee: N threads
asking for a cold key would race N disk loads (or worse, N polytope
builds).

:class:`CoverageRegistry` fixes all three:

* **Keying** — entries are keyed by ``(basis, topology, mirror,
  num_samples, seed, max_depth)``.  The ``topology`` component is a
  namespace label for callers that maintain topology-specialised sets
  (the default loader builds topology-independent geometry, so entries
  registered under different topologies share the same disk entry).
* **Single-flight builds** — the first thread to miss a key becomes the
  builder; every concurrent requester blocks on the same in-flight build
  and receives the identical object.  One pickle load, one polytope
  build, no matter how many requests arrive at once.
* **Tiering** — the default loader is
  :func:`repro.polytopes.coverage.load_or_build_coverage_set`, i.e. the
  persistent ``$MIRAGE_CACHE_DIR`` disk cache (PR 2) acts as the L2
  below this in-memory L1.
* **Provenance** — :meth:`CoverageRegistry.stats` reports hits, misses,
  builds, waiters and errors, suitable for service dashboards.

The module-level :data:`DEFAULT_REGISTRY` backs
:func:`repro.polytopes.coverage.get_coverage_set`, preserving the
one-shared-set-per-process behaviour every existing caller relies on.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.polytopes.coverage import CoverageSet


@dataclasses.dataclass
class _InFlightBuild:
    """Rendezvous for threads waiting on another thread's build."""

    event: threading.Event = dataclasses.field(default_factory=threading.Event)
    result: "CoverageSet | None" = None
    error: BaseException | None = None


class CoverageRegistry:
    """Thread-safe, single-flight registry of shared coverage sets.

    Parameters
    ----------
    loader : callable, optional
        ``loader(basis, *, mirror, num_samples, seed, max_depth)``
        producing a :class:`~repro.polytopes.coverage.CoverageSet` on a
        registry miss.  Defaults to
        :func:`~repro.polytopes.coverage.load_or_build_coverage_set`
        (the persistent disk cache).  The loader runs *outside* the
        registry lock, so a slow build never blocks hits on other keys.
    """

    def __init__(
        self, loader: "Callable[..., CoverageSet] | None" = None
    ) -> None:
        self._loader = loader
        self._lock = threading.Lock()
        self._entries: dict[tuple, "CoverageSet"] = {}
        self._inflight: dict[tuple, _InFlightBuild] = {}
        self._hits = 0
        self._misses = 0
        self._builds = 0
        self._waits = 0
        self._errors = 0

    @staticmethod
    def key(
        basis: str,
        *,
        topology: object = None,
        mirror: bool = False,
        num_samples: int = 1200,
        seed: int = 7,
        max_depth: int | None = None,
    ) -> tuple:
        """Canonical registry key of one build configuration.

        ``topology`` may be any hashable label (a topology name string,
        ``None`` for topology-independent sets); unhashable objects are
        keyed by their ``repr`` so coupling-map instances can be passed
        directly.
        """
        try:
            hash(topology)
        except TypeError:
            topology = repr(topology)
        return (basis, topology, bool(mirror), num_samples, seed, max_depth)

    def _load(
        self,
        basis: str,
        *,
        mirror: bool,
        num_samples: int,
        seed: int,
        max_depth: int | None,
    ) -> "CoverageSet":
        loader = self._loader
        if loader is None:
            from repro.polytopes.coverage import load_or_build_coverage_set

            loader = load_or_build_coverage_set
        return loader(
            basis,
            mirror=mirror,
            num_samples=num_samples,
            seed=seed,
            max_depth=max_depth,
        )

    def get(
        self,
        basis: str,
        *,
        topology: object = None,
        mirror: bool = False,
        num_samples: int = 1200,
        seed: int = 7,
        max_depth: int | None = None,
    ) -> "CoverageSet":
        """Return the shared coverage set for one build configuration.

        On a registry hit the cached instance is returned (identical
        object every time, so memoised cost tables keep accumulating).
        On a miss, exactly one caller builds — concurrent requesters for
        the same key block until that build lands and then share its
        result; a failed build propagates its exception to the builder
        *and* every waiter, and leaves the key cold so the next request
        retries.
        """
        key = self.key(
            basis,
            topology=topology,
            mirror=mirror,
            num_samples=num_samples,
            seed=seed,
            max_depth=max_depth,
        )
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._hits += 1
                return entry
            build = self._inflight.get(key)
            if build is None:
                build = _InFlightBuild()
                self._inflight[key] = build
                self._misses += 1
                owner = True
            else:
                self._waits += 1
                owner = False
        if not owner:
            build.event.wait()
            if build.error is not None:
                raise build.error
            assert build.result is not None
            return build.result
        try:
            coverage = self._load(
                basis,
                mirror=mirror,
                num_samples=num_samples,
                seed=seed,
                max_depth=max_depth,
            )
        except BaseException as exc:
            with self._lock:
                self._inflight.pop(key, None)
                self._errors += 1
            build.error = exc
            build.event.set()
            raise
        build.result = coverage
        with self._lock:
            self._entries[key] = coverage
            self._inflight.pop(key, None)
            self._builds += 1
        build.event.set()
        return coverage

    def put(
        self,
        coverage: "CoverageSet",
        basis: str,
        *,
        topology: object = None,
        mirror: bool = False,
        num_samples: int = 1200,
        seed: int = 7,
        max_depth: int | None = None,
    ) -> None:
        """Preload an already-built set under its configuration key."""
        key = self.key(
            basis,
            topology=topology,
            mirror=mirror,
            num_samples=num_samples,
            seed=seed,
            max_depth=max_depth,
        )
        with self._lock:
            self._entries[key] = coverage

    def bind(
        self,
        *,
        topology: object = None,
        mirror: bool = False,
        num_samples: int = 1200,
        seed: int = 7,
        max_depth: int | None = None,
    ) -> "RegistryHandle":
        """Bind build parameters into a handle exposing ``get(basis)``.

        The handle plugs straight into the ``coverage=`` argument of the
        transpile APIs (see :func:`repro.core.pipeline.resolve_coverage`),
        so a service can route every batch's coverage lookup through its
        registry without resolving the set itself.
        """
        return RegistryHandle(
            registry=self,
            topology=topology,
            mirror=mirror,
            num_samples=num_samples,
            seed=seed,
            max_depth=max_depth,
        )

    def stats(self) -> dict[str, int]:
        """Counters for dashboards: hits/misses/builds/waits/errors/size."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "builds": self._builds,
                "waits": self._waits,
                "errors": self._errors,
                "size": len(self._entries),
            }

    def clear(self) -> None:
        """Drop every cached entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._builds = 0
            self._waits = 0
            self._errors = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CoverageRegistry(size={len(self)})"


@dataclasses.dataclass(frozen=True)
class RegistryHandle:
    """Build parameters bound to a registry, exposing ``get(basis)``.

    Accepted anywhere the transpile APIs take a ``coverage=`` argument:
    :func:`repro.core.pipeline.resolve_coverage` duck-types on ``get``
    and resolves the concrete :class:`~repro.polytopes.coverage.CoverageSet`
    through the bound registry (one lock round-trip per batch on hits).
    """

    registry: CoverageRegistry
    topology: object = None
    mirror: bool = False
    num_samples: int = 1200
    seed: int = 7
    max_depth: int | None = None

    def get(self, basis: str) -> "CoverageSet":
        """Resolve the shared coverage set for ``basis``."""
        return self.registry.get(
            basis,
            topology=self.topology,
            mirror=self.mirror,
            num_samples=self.num_samples,
            seed=self.seed,
            max_depth=self.max_depth,
        )


#: Process-wide default registry backing ``get_coverage_set`` — the
#: replacement for its former ``lru_cache``, with the same
#: one-shared-set-per-process behaviour plus introspection and
#: single-flight builds.
DEFAULT_REGISTRY = CoverageRegistry()
