"""Multi-tenant coverage-set registry: in-memory L1 over the disk L2.

A long-lived process serving many transpilation requests (the
:mod:`repro.service` tier, a notebook, a benchmark harness) wants every
request to share one coverage set per build configuration.  The
:func:`functools.lru_cache` that used to back ``get_coverage_set`` gave
per-process sharing but no introspection, no preloading, and — crucially
for a concurrent front-end — no *single-flight* guarantee: N threads
asking for a cold key would race N disk loads (or worse, N polytope
builds).

:class:`CoverageRegistry` fixes all three:

* **Keying** — entries are keyed by ``(basis, topology, mirror,
  num_samples, seed, max_depth)``.  The ``topology`` component is a
  namespace label for callers that maintain topology-specialised sets
  (the default loader builds topology-independent geometry, so entries
  registered under different topologies share the same disk entry).
* **Single-flight builds** — the first thread to miss a key becomes the
  builder; every concurrent requester blocks on the same in-flight build
  and receives the identical object.  One pickle load, one polytope
  build, no matter how many requests arrive at once.
* **Tiering** — the default loader is
  :func:`repro.polytopes.coverage.load_or_build_coverage_set`, i.e. the
  persistent ``$MIRAGE_CACHE_DIR`` disk cache (PR 2) acts as the L2
  below this in-memory L1.
* **Provenance** — :meth:`CoverageRegistry.stats` reports hits, misses,
  builds, waiters, errors and eviction counters, suitable for service
  dashboards.
* **Bounded residency** — a long-running multi-basis service would
  otherwise accrete one coverage set per configuration forever.  The
  registry is an LRU: ``max_entries`` / ``max_bytes`` (a best-effort
  pickled-size memory watermark) cap residency, and ``ttl_seconds``
  expires entries that have outlived their build.  All three default to
  the ``MIRAGE_REGISTRY_MAX_ENTRIES`` / ``MIRAGE_REGISTRY_MAX_BYTES`` /
  ``MIRAGE_REGISTRY_TTL_S`` environment knobs (read per call, unlimited
  when unset).  Eviction only forgets the *shared* reference — callers
  already holding a set keep it; the next request for the key rebuilds
  through the L2 disk cache.

The module-level :data:`DEFAULT_REGISTRY` backs
:func:`repro.polytopes.coverage.get_coverage_set`, preserving the
one-shared-set-per-process behaviour every existing caller relies on.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.polytopes.coverage import CoverageSet


def _env_limit(name: str, cast=int) -> int | float | None:
    """Parse an optional numeric environment limit (``None`` = unlimited)."""
    value = os.environ.get(name, "").strip()
    if not value:
        return None
    try:
        parsed = cast(value)
    except ValueError:
        return None
    return parsed if parsed > 0 else None


@dataclasses.dataclass
class _InFlightBuild:
    """Rendezvous for threads waiting on another thread's build."""

    event: threading.Event = dataclasses.field(default_factory=threading.Event)
    result: "CoverageSet | None" = None
    error: BaseException | None = None


@dataclasses.dataclass
class _RegistryEntry:
    """One resident coverage set plus its eviction bookkeeping."""

    coverage: "CoverageSet"
    size_bytes: int
    created: float


def _estimate_size(coverage: "CoverageSet") -> int:
    """Best-effort resident size of one coverage set, in bytes.

    Uses the pickled size — the same representation the dispatch
    transport ships, and cheap relative to a polytope build.  The
    memoised cost table is deliberately excluded (``__getstate__``
    drops it), so the watermark tracks the irreducible geometry, not a
    cache that can be rebuilt.  Unpicklable exotics count as zero
    rather than failing registration.
    """
    try:
        return len(pickle.dumps(coverage, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # pragma: no cover - exotic custom loaders
        return 0


class CoverageRegistry:
    """Thread-safe, single-flight registry of shared coverage sets.

    Parameters
    ----------
    loader : callable, optional
        ``loader(basis, *, mirror, num_samples, seed, max_depth)``
        producing a :class:`~repro.polytopes.coverage.CoverageSet` on a
        registry miss.  Defaults to
        :func:`~repro.polytopes.coverage.load_or_build_coverage_set`
        (the persistent disk cache).  The loader runs *outside* the
        registry lock, so a slow build never blocks hits on other keys.
    max_entries : int, optional
        LRU residency cap; ``None`` (default) falls back to
        ``MIRAGE_REGISTRY_MAX_ENTRIES`` (unlimited when unset).
    max_bytes : int, optional
        Memory watermark over the summed best-effort (pickled) entry
        sizes; least-recently-used entries are evicted until the total
        fits.  ``None`` falls back to ``MIRAGE_REGISTRY_MAX_BYTES``.
    ttl_seconds : float, optional
        Entries older than this (since build/registration) are dropped
        on their next lookup and rebuilt fresh.  ``None`` falls back to
        ``MIRAGE_REGISTRY_TTL_S``.
    """

    def __init__(
        self,
        loader: "Callable[..., CoverageSet] | None" = None,
        *,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        ttl_seconds: float | None = None,
    ) -> None:
        self._loader = loader
        self._max_entries = max_entries
        self._max_bytes = max_bytes
        self._ttl_seconds = ttl_seconds
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, _RegistryEntry] = OrderedDict()
        self._inflight: dict[tuple, _InFlightBuild] = {}
        self._hits = 0
        self._misses = 0
        self._builds = 0
        self._waits = 0
        self._errors = 0
        self._evictions = 0
        self._expirations = 0

    # -- residency limits --------------------------------------------------

    def _limit_entries(self) -> int | None:
        if self._max_entries is not None:
            return self._max_entries
        return _env_limit("MIRAGE_REGISTRY_MAX_ENTRIES", int)

    def _limit_bytes(self) -> int | None:
        if self._max_bytes is not None:
            return self._max_bytes
        return _env_limit("MIRAGE_REGISTRY_MAX_BYTES", int)

    def _limit_ttl(self) -> float | None:
        if self._ttl_seconds is not None:
            return self._ttl_seconds
        return _env_limit("MIRAGE_REGISTRY_TTL_S", float)

    def _expired_locked(self, entry: _RegistryEntry) -> bool:
        ttl = self._limit_ttl()
        return ttl is not None and time.monotonic() - entry.created > ttl

    def _evict_locked(self, protect: tuple | None = None) -> None:
        """Evict LRU entries until the residency limits hold.

        The entry named by ``protect`` (the one just inserted or hit) is
        never evicted — a single set larger than ``max_bytes`` stays
        resident alone rather than thrashing rebuild-evict-rebuild.
        """
        max_entries = self._limit_entries()
        max_bytes = self._limit_bytes()
        if max_entries is None and max_bytes is None:
            return
        while self._entries:
            over_count = (
                max_entries is not None and len(self._entries) > max_entries
            )
            over_bytes = max_bytes is not None and (
                sum(e.size_bytes for e in self._entries.values()) > max_bytes
            )
            if not (over_count or over_bytes):
                return
            victim = next(iter(self._entries))
            if victim == protect:
                if len(self._entries) == 1:
                    return
                victim = next(iter(list(self._entries)[1:]))
            del self._entries[victim]
            self._evictions += 1

    @staticmethod
    def key(
        basis: str,
        *,
        topology: object = None,
        mirror: bool = False,
        num_samples: int = 1200,
        seed: int = 7,
        max_depth: int | None = None,
    ) -> tuple:
        """Canonical registry key of one build configuration.

        ``topology`` may be any hashable label (a topology name string,
        ``None`` for topology-independent sets); unhashable objects are
        keyed by their ``repr`` so coupling-map instances can be passed
        directly.
        """
        try:
            hash(topology)
        except TypeError:
            topology = repr(topology)
        return (basis, topology, bool(mirror), num_samples, seed, max_depth)

    def _load(
        self,
        basis: str,
        *,
        mirror: bool,
        num_samples: int,
        seed: int,
        max_depth: int | None,
    ) -> "CoverageSet":
        loader = self._loader
        if loader is None:
            from repro.polytopes.coverage import load_or_build_coverage_set

            loader = load_or_build_coverage_set
        return loader(
            basis,
            mirror=mirror,
            num_samples=num_samples,
            seed=seed,
            max_depth=max_depth,
        )

    def get(
        self,
        basis: str,
        *,
        topology: object = None,
        mirror: bool = False,
        num_samples: int = 1200,
        seed: int = 7,
        max_depth: int | None = None,
    ) -> "CoverageSet":
        """Return the shared coverage set for one build configuration.

        On a registry hit the cached instance is returned (identical
        object every time, so memoised cost tables keep accumulating).
        On a miss, exactly one caller builds — concurrent requesters for
        the same key block until that build lands and then share its
        result; a failed build propagates its exception to the builder
        *and* every waiter, and leaves the key cold so the next request
        retries.
        """
        key = self.key(
            basis,
            topology=topology,
            mirror=mirror,
            num_samples=num_samples,
            seed=seed,
            max_depth=max_depth,
        )
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                if self._expired_locked(entry):
                    del self._entries[key]
                    self._expirations += 1
                else:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    return entry.coverage
            build = self._inflight.get(key)
            if build is None:
                build = _InFlightBuild()
                self._inflight[key] = build
                self._misses += 1
                owner = True
            else:
                self._waits += 1
                owner = False
        if not owner:
            build.event.wait()
            if build.error is not None:
                raise build.error
            assert build.result is not None
            return build.result
        try:
            coverage = self._load(
                basis,
                mirror=mirror,
                num_samples=num_samples,
                seed=seed,
                max_depth=max_depth,
            )
        except BaseException as exc:
            with self._lock:
                self._inflight.pop(key, None)
                self._errors += 1
            build.error = exc
            build.event.set()
            raise
        build.result = coverage
        size = _estimate_size(coverage)
        with self._lock:
            self._entries[key] = _RegistryEntry(
                coverage, size, time.monotonic()
            )
            self._entries.move_to_end(key)
            self._inflight.pop(key, None)
            self._builds += 1
            self._evict_locked(protect=key)
        build.event.set()
        return coverage

    def put(
        self,
        coverage: "CoverageSet",
        basis: str,
        *,
        topology: object = None,
        mirror: bool = False,
        num_samples: int = 1200,
        seed: int = 7,
        max_depth: int | None = None,
    ) -> None:
        """Preload an already-built set under its configuration key."""
        key = self.key(
            basis,
            topology=topology,
            mirror=mirror,
            num_samples=num_samples,
            seed=seed,
            max_depth=max_depth,
        )
        size = _estimate_size(coverage)
        with self._lock:
            self._entries[key] = _RegistryEntry(
                coverage, size, time.monotonic()
            )
            self._entries.move_to_end(key)
            self._evict_locked(protect=key)

    def bind(
        self,
        *,
        topology: object = None,
        mirror: bool = False,
        num_samples: int = 1200,
        seed: int = 7,
        max_depth: int | None = None,
    ) -> "RegistryHandle":
        """Bind build parameters into a handle exposing ``get(basis)``.

        The handle plugs straight into the ``coverage=`` argument of the
        transpile APIs (see :func:`repro.core.pipeline.resolve_coverage`),
        so a service can route every batch's coverage lookup through its
        registry without resolving the set itself.
        """
        return RegistryHandle(
            registry=self,
            topology=topology,
            mirror=mirror,
            num_samples=num_samples,
            seed=seed,
            max_depth=max_depth,
        )

    def stats(self) -> dict[str, int]:
        """Counters for dashboards: hits/misses/builds/waits/errors,
        eviction provenance (``evictions``/``expirations``) and current
        residency (``size`` entries, ``bytes`` best-effort)."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "builds": self._builds,
                "waits": self._waits,
                "errors": self._errors,
                "evictions": self._evictions,
                "expirations": self._expirations,
                "size": len(self._entries),
                "bytes": sum(
                    entry.size_bytes for entry in self._entries.values()
                ),
            }

    def clear(self) -> None:
        """Drop every cached entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._builds = 0
            self._waits = 0
            self._errors = 0
            self._evictions = 0
            self._expirations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CoverageRegistry(size={len(self)})"


@dataclasses.dataclass(frozen=True)
class RegistryHandle:
    """Build parameters bound to a registry, exposing ``get(basis)``.

    Accepted anywhere the transpile APIs take a ``coverage=`` argument:
    :func:`repro.core.pipeline.resolve_coverage` duck-types on ``get``
    and resolves the concrete :class:`~repro.polytopes.coverage.CoverageSet`
    through the bound registry (one lock round-trip per batch on hits).
    """

    registry: CoverageRegistry
    topology: object = None
    mirror: bool = False
    num_samples: int = 1200
    seed: int = 7
    max_depth: int | None = None

    def get(self, basis: str) -> "CoverageSet":
        """Resolve the shared coverage set for ``basis``."""
        return self.registry.get(
            basis,
            topology=self.topology,
            mirror=self.mirror,
            num_samples=self.num_samples,
            seed=self.seed,
            max_depth=self.max_depth,
        )


#: Process-wide default registry backing ``get_coverage_set`` — the
#: replacement for its former ``lru_cache``, with the same
#: one-shared-set-per-process behaviour plus introspection and
#: single-flight builds.
DEFAULT_REGISTRY = CoverageRegistry()
