"""Convex polytopes in Weyl-coordinate space.

The paper relies on *monodromy polytopes* — convex regions of the Weyl
chamber reachable by a fixed-depth circuit ansatz.  This module provides the
geometric primitive used by our numerical substitute: a convex polytope
described by the convex hull of a point cloud, with robust handling of
degenerate (lower-dimensional) regions such as the single point reached by a
depth-one ansatz or the planar region reached by two CNOTs.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

import numpy as np
from scipy.optimize import minimize
from scipy.spatial import ConvexHull, QhullError


def _deduplicate(points: np.ndarray, decimals: int = 7) -> np.ndarray:
    """Drop duplicate points (rounded) while keeping original precision."""
    rounded = np.round(points, decimals)
    _, index = np.unique(rounded, axis=0, return_index=True)
    return points[np.sort(index)]


@dataclasses.dataclass
class WeylPolytope:
    """Convex hull of a set of Weyl-chamber points.

    Handles full-dimensional (3-D), planar (2-D), linear (1-D) and single
    point (0-D) hulls uniformly; membership tests use a tolerance ``atol``
    measured in radians of coordinate space.

    Attributes:
        points: the defining point cloud, shape ``(n, 3)``.
        name: optional label used in reports.
    """

    points: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        points = np.atleast_2d(np.asarray(self.points, dtype=float))
        if points.shape[1] != 3:
            raise ValueError("WeylPolytope points must be three dimensional")
        self.points = _deduplicate(points)
        self._build()

    # -- construction ----------------------------------------------------

    def _build(self) -> None:
        centroid = self.points.mean(axis=0)
        centered = self.points - centroid
        # Affine rank via SVD.
        if len(self.points) == 1:
            rank = 0
            basis = np.zeros((0, 3))
        else:
            _, singular_values, v_rows = np.linalg.svd(centered, full_matrices=False)
            rank = int(np.sum(singular_values > 1e-7))
            basis = v_rows[:rank]
        self._centroid = centroid
        self._basis = basis
        self._rank = rank

        self._hull: ConvexHull | None = None
        self._vertices = self.points
        if rank >= 2:
            projected = centered @ basis.T
            try:
                self._hull = ConvexHull(projected[:, :rank])
                self._vertices = self.points[self._hull.vertices]
            except QhullError:
                # Nearly degenerate clouds: fall back to treating the set as
                # rank - 1 dimensional.
                self._rank = rank - 1
                self._basis = basis[: self._rank]
                self._hull = None
                self._vertices = self.points
                if self._rank == 1:
                    projected = (centered @ self._basis.T).ravel()
                    self._interval = (
                        float(projected.min()),
                        float(projected.max()),
                    )
        elif rank == 1:
            projected = (centered @ basis.T).ravel()
            self._interval = (float(projected.min()), float(projected.max()))
            self._vertices = self.points[
                [int(np.argmin(projected)), int(np.argmax(projected))]
            ]
        self._build_halfspaces()

    def __getstate__(self) -> dict:
        # The heavy arrays (point cloud, half-space matrices, orthogonal
        # complement) ride pickle protocol 5 as out-of-band buffers, which
        # the shared-memory transport lays out in the segment so workers
        # rebuild them as zero-copy views.  numpy only exports contiguous
        # arrays out of band, so any array that picked up a non-contiguous
        # layout during construction is compacted here — the values are
        # unchanged, and non-array state passes through untouched.
        state = self.__dict__.copy()
        for key, value in state.items():
            if isinstance(value, np.ndarray) and not value.flags.c_contiguous:
                state[key] = np.ascontiguousarray(value)
        return state

    def _build_halfspaces(self) -> None:
        """Precompute the linear form of the membership test.

        Membership of ``x`` splits into (i) an off-plane distance bound
        ``||orth @ (x - centroid)|| <= atol`` for polytopes of dimension
        below three, and (ii) linear inequalities ``A @ x - b <= atol``
        (hull facets mapped back to ambient coordinates, or the interval
        bounds of a 1-D hull).  Both parts are precomputed here so batched
        membership queries reduce to matrix products.
        """
        rank = self._rank
        centroid = self._centroid
        basis = self._basis

        if rank == 3:
            self._orth = np.zeros((0, 3))
        elif rank == 0:
            self._orth = np.eye(3)
        else:
            # Rows of the orthogonal complement of the (orthonormal) basis.
            _, _, complement = np.linalg.svd(basis, full_matrices=True)
            self._orth = complement[rank:]

        self._degenerate = rank >= 2 and self._hull is None
        if self._hull is not None:
            equations = self._hull.equations
            lin_a = equations[:, :-1] @ basis
            lin_b = lin_a @ centroid - equations[:, -1]
        elif rank == 1:
            direction = basis[0]
            low, high = self._interval
            offset = float(direction @ centroid)
            lin_a = np.vstack([direction, -direction])
            lin_b = np.array([offset + high, -offset - low])
        else:
            lin_a = np.zeros((0, 3))
            lin_b = np.zeros(0)
        self._lin_a = lin_a
        self._lin_b = lin_b

    @property
    def halfspaces(self) -> tuple[np.ndarray, np.ndarray]:
        """Linear inequalities ``(A, b)`` with membership ``A @ x <= b``.

        Off-plane constraints of degenerate polytopes are not included;
        see :meth:`contains_mask` for the complete batched test.
        """
        return self._lin_a, self._lin_b

    # -- properties ------------------------------------------------------

    @property
    def dimension(self) -> int:
        """Affine dimension of the polytope (0 to 3)."""
        return self._rank

    @property
    def vertices(self) -> np.ndarray:
        """Vertices of the hull (or defining points for degenerate cases)."""
        return self._vertices

    @property
    def euclidean_volume(self) -> float:
        """Euclidean volume; zero for polytopes of dimension < 3."""
        if self._rank < 3 or self._hull is None:
            return 0.0
        return float(self._hull.volume)

    # -- queries ---------------------------------------------------------

    def contains(self, point: Iterable[float], atol: float = 1e-6) -> bool:
        """Whether ``point`` lies inside the polytope (within ``atol``).

        Evaluates the same precomputed half-space form as
        :meth:`contains_mask`, so scalar and batched membership can never
        disagree — not even for points floating-point-close to a facet.
        """
        point = np.asarray(tuple(point), dtype=float)
        return bool(self.contains_mask(point[None, :], atol=atol)[0])

    def nearest_point(self, point: Iterable[float]) -> np.ndarray:
        """Euclidean projection of ``point`` onto the polytope.

        Solved as a small quadratic program over the convex combination of
        the hull vertices — the vertex count is tiny (tens), so this is
        cheap and has no external dependencies.
        """
        target = np.asarray(tuple(point), dtype=float)
        vertices = self._vertices
        if len(vertices) == 1:
            return vertices[0].copy()
        if self.contains(target):
            return target.copy()

        count = len(vertices)

        def objective(weights: np.ndarray) -> float:
            combo = weights @ vertices
            diff = combo - target
            return float(diff @ diff)

        start = np.full(count, 1.0 / count)
        constraints = [{"type": "eq", "fun": lambda w: np.sum(w) - 1.0}]
        bounds = [(0.0, 1.0)] * count
        result = minimize(
            objective,
            start,
            method="SLSQP",
            bounds=bounds,
            constraints=constraints,
            options={"maxiter": 200, "ftol": 1e-12},
        )
        weights = np.clip(result.x, 0.0, 1.0)
        weights /= weights.sum()
        return weights @ vertices

    def distance(self, point: Iterable[float]) -> float:
        """Euclidean distance from ``point`` to the polytope."""
        target = np.asarray(tuple(point), dtype=float)
        if self.contains(target):
            return 0.0
        nearest = self.nearest_point(target)
        return float(np.linalg.norm(nearest - target))

    def contains_mask(
        self, samples: np.ndarray, atol: float = 1e-6
    ) -> np.ndarray:
        """Boolean membership mask for an ``(n, 3)`` array of samples.

        Uses the precomputed half-space form for every rank, so the whole
        batch reduces to one matrix product (plus an off-plane distance
        check for degenerate polytopes).
        """
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        if self._lin_a.shape[0]:
            values = samples @ self._lin_a.T - self._lin_b
        else:
            values = np.zeros((len(samples), 0))
        return self._stack_mask(samples, values, atol=atol)

    def _stack_mask(
        self, samples: np.ndarray, facet_values: np.ndarray, atol: float = 1e-6
    ) -> np.ndarray:
        """Membership mask given precomputed facet values ``A @ x - b``.

        Lets callers that stacked several polytopes' half-spaces into one
        matrix product (see ``CircuitPolytope.contains_mask``) reuse the
        shared facet evaluation; only the off-plane bound of degenerate
        polytopes is evaluated here.
        """
        if self._degenerate:
            return np.zeros(len(samples), dtype=bool)
        if self._orth.shape[0]:
            off_plane = (samples - self._centroid) @ self._orth.T
            mask = np.einsum("ij,ij->i", off_plane, off_plane) <= atol * atol
        else:
            mask = np.ones(len(samples), dtype=bool)
        if facet_values.shape[1]:
            mask &= np.all(facet_values <= atol, axis=1)
        return mask

    def contains_fraction(
        self, samples: np.ndarray, atol: float = 1e-6
    ) -> float:
        """Fraction of ``samples`` (shape ``(n, 3)``) inside the polytope."""
        mask = self.contains_mask(samples, atol=atol)
        return float(np.mean(mask))

    def union_with(self, other: "WeylPolytope") -> "WeylPolytope":
        """Convex hull of the union of two polytopes' points."""
        return WeylPolytope(
            np.vstack([self.points, other.points]),
            name=f"{self.name}|{other.name}",
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WeylPolytope(name={self.name!r}, dim={self.dimension}, "
            f"vertices={len(self._vertices)})"
        )
