"""Haar scores: expected decomposition cost of a Haar-random two-qubit gate.

The Haar score of a basis gate (paper Section III-C) is the Haar-weighted
average of the minimum circuit cost needed to decompose a random two-qubit
unitary.  With the coverage polytopes in hand it reduces to an expectation
of ``CoverageSet.cost_of`` over Haar-distributed Weyl coordinates.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

import numpy as np

from repro.polytopes.coverage import CoverageSet
from repro.weyl.haar import cached_haar_samples


@dataclasses.dataclass(frozen=True)
class HaarScoreResult:
    """Summary of a Haar-score estimate.

    Attributes:
        basis: basis gate name.
        mirrored: whether mirror gates were permitted.
        score: expected decomposition cost (lower is better).
        average_fidelity: expected decoherence-limited fidelity under the
            paper's unit-cost error model (iSWAP cost 1.0 -> fidelity 0.99).
        volumes: Haar-weighted coverage per depth.
        num_samples: Monte Carlo sample count used.
    """

    basis: str
    mirrored: bool
    score: float
    average_fidelity: float
    volumes: dict[int, float]
    num_samples: int


def expected_cost(
    coverage: CoverageSet, samples: np.ndarray
) -> tuple[float, np.ndarray]:
    """Expected cost and the per-sample cost vector over coordinate samples."""
    costs = coverage.cost_of_many(np.atleast_2d(samples))
    return float(costs.mean()), costs


def cost_to_fidelity(cost: float | np.ndarray, unit_fidelity: float = 0.99) -> np.ndarray:
    """Decoherence-limited fidelity of a circuit of normalised cost ``cost``.

    The paper's model (Eq. 2) assigns an iSWAP (cost 1.0) a fidelity of 99%,
    hence ``F = unit_fidelity ** cost``.
    """
    return np.power(unit_fidelity, cost)


def haar_score(
    coverage: CoverageSet,
    *,
    num_samples: int = 4000,
    seed: int = 2024,
    samples: np.ndarray | None = None,
    unit_fidelity: float = 0.99,
) -> HaarScoreResult:
    """Estimate the Haar score of a coverage set.

    Args:
        coverage: the (possibly mirror-inclusive) coverage set.
        num_samples: Haar sample count when ``samples`` is not given.
        seed: seed of the shared Haar sample stream.
        samples: precomputed ``(n, 3)`` Haar coordinate samples.
        unit_fidelity: fidelity of a unit-cost (iSWAP) pulse.

    Returns:
        A :class:`HaarScoreResult`.
    """
    if samples is None:
        samples = cached_haar_samples(num_samples, seed)
    score, costs = expected_cost(coverage, samples)
    fidelities = cost_to_fidelity(costs, unit_fidelity)
    volumes = coverage.haar_volumes(samples)
    return HaarScoreResult(
        basis=coverage.basis,
        mirrored=coverage.mirrored,
        score=score,
        average_fidelity=float(fidelities.mean()),
        volumes=volumes,
        num_samples=len(samples),
    )


def coverage_volume_report(
    coverage: CoverageSet,
    *,
    num_samples: int = 4000,
    seed: int = 2024,
    samples: np.ndarray | None = None,
) -> dict[int, float]:
    """Haar-weighted coverage volume per depth (paper Figs. 3 and 4)."""
    if samples is None:
        samples = cached_haar_samples(num_samples, seed)
    return coverage.haar_volumes(samples)


def score_comparison(
    results: Iterable[HaarScoreResult],
) -> list[dict[str, float | str | bool]]:
    """Flatten Haar-score results into table rows (paper Tables I / II)."""
    rows = []
    for result in results:
        rows.append(
            {
                "basis": result.basis,
                "mirrored": result.mirrored,
                "haar_score": round(result.score, 4),
                "average_fidelity": round(result.average_fidelity, 5),
            }
        )
    return rows
