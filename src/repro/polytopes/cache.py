"""Caches used on the transpiler hot path (paper Section VI-C).

Two caches matter in practice:

* a unitary-to-Weyl-coordinate cache keyed by the matrix of the interior
  (1Q-stripped) block, mirroring the rewritten ``ConsolidateBlocks`` pass of
  the paper, and
* the per-coverage-set cost lookup table (kept inside
  :class:`repro.polytopes.coverage.CoverageSet`).

Both expose hit/miss counters so the Fig. 13 bench can report cache
effectiveness.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.weyl.coordinates import weyl_coordinates


class CoordinateCache:
    """LRU cache mapping two-qubit unitaries to Weyl coordinates.

    Keys are byte strings of the matrix rounded to ``decimals`` decimal
    places, so numerically identical blocks produced by different gate
    sequences share an entry.

    All operations are guarded by a lock: the module-level instance is
    shared by every concurrent routing trial when a thread executor is in
    use, and unguarded ``move_to_end``/``popitem`` pairs race into
    ``KeyError``.  Coordinate extraction itself runs outside the lock.
    """

    def __init__(self, maxsize: int = 4096, decimals: int = 9) -> None:
        self.maxsize = maxsize
        self.decimals = decimals
        self._store: OrderedDict[bytes, tuple[float, float, float]] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def _key(self, unitary: np.ndarray) -> bytes:
        rounded = np.round(np.asarray(unitary, dtype=complex), self.decimals)
        return rounded.tobytes()

    def _insert(self, key: bytes, value: tuple[float, float, float]) -> None:
        # Caller must hold the lock.
        self._store[key] = value
        if len(self._store) > self.maxsize:
            self._store.popitem(last=False)

    def coordinate(self, unitary: np.ndarray) -> tuple[float, float, float]:
        """Coordinate of ``unitary`` with memoisation."""
        key = self._key(unitary)
        with self._lock:
            cached = self._store.get(key)
            if cached is not None:
                self.hits += 1
                self._store.move_to_end(key)
                return cached
            self.misses += 1
        # Extract outside the lock — this is the expensive part, and a
        # duplicate computation by a racing thread is deterministic anyway.
        value = tuple(weyl_coordinates(unitary))
        with self._lock:
            self._insert(key, value)
        return value

    def put(self, unitary: np.ndarray, coordinate: tuple[float, float, float]) -> None:
        """Insert a known coordinate (used when mirroring analytically)."""
        key = self._key(unitary)
        with self._lock:
            self._insert(key, tuple(coordinate))

    def info(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._store),
            }

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __getstate__(self) -> dict:
        # Locks cannot be pickled; process-pool workers get a cache copy
        # with a fresh lock.
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


#: Module-level cache shared by the transpiler passes (cleared per run if
#: deterministic measurements are needed).
GLOBAL_COORDINATE_CACHE = CoordinateCache()
