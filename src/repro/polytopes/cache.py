"""Caches used on the transpiler hot path (paper Section VI-C).

Two caches matter in practice:

* a unitary-to-Weyl-coordinate cache keyed by the matrix of the interior
  (1Q-stripped) block, mirroring the rewritten ``ConsolidateBlocks`` pass of
  the paper, and
* the per-coverage-set cost lookup table (kept inside
  :class:`repro.polytopes.coverage.CoverageSet`).

Both expose hit/miss counters so the Fig. 13 bench can report cache
effectiveness.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.weyl.coordinates import weyl_coordinates


class CoordinateCache:
    """LRU cache mapping two-qubit unitaries to Weyl coordinates.

    Keys are byte strings of the matrix rounded to ``decimals`` decimal
    places, so numerically identical blocks produced by different gate
    sequences share an entry.
    """

    def __init__(self, maxsize: int = 4096, decimals: int = 9) -> None:
        self.maxsize = maxsize
        self.decimals = decimals
        self._store: OrderedDict[bytes, tuple[float, float, float]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def _key(self, unitary: np.ndarray) -> bytes:
        rounded = np.round(np.asarray(unitary, dtype=complex), self.decimals)
        return rounded.tobytes()

    def coordinate(self, unitary: np.ndarray) -> tuple[float, float, float]:
        """Coordinate of ``unitary`` with memoisation."""
        key = self._key(unitary)
        cached = self._store.get(key)
        if cached is not None:
            self.hits += 1
            self._store.move_to_end(key)
            return cached
        self.misses += 1
        value = tuple(weyl_coordinates(unitary))
        self._store[key] = value
        if len(self._store) > self.maxsize:
            self._store.popitem(last=False)
        return value

    def put(self, unitary: np.ndarray, coordinate: tuple[float, float, float]) -> None:
        """Insert a known coordinate (used when mirroring analytically)."""
        self._store[self._key(unitary)] = tuple(coordinate)
        if len(self._store) > self.maxsize:
            self._store.popitem(last=False)

    def info(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "size": len(self._store)}

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)


#: Module-level cache shared by the transpiler passes (cleared per run if
#: deterministic measurements are needed).
GLOBAL_COORDINATE_CACHE = CoordinateCache()
