"""Caches used on the transpiler hot path (paper Section VI-C).

Three caches matter in practice:

* a unitary-to-Weyl-coordinate cache keyed by the matrix of the interior
  (1Q-stripped) block, mirroring the rewritten ``ConsolidateBlocks`` pass of
  the paper,
* the per-coverage-set cost lookup table (kept inside
  :class:`repro.polytopes.coverage.CoverageSet`), and
* a persistent on-disk coverage-set cache, so the dominant cold-start cost
  — building the coverage polytopes — amortises across processes and runs.

The disk cache lives under ``$MIRAGE_CACHE_DIR`` (default
``~/.cache/mirage``), keys entries on every build parameter plus a format
version, and writes atomically (temp file + ``os.replace``) so concurrent
builders never observe a torn entry.  ``MIRAGE_CACHE_DISABLE=1`` turns it
off entirely.

The in-memory caches expose hit/miss counters so the Fig. 13 bench can
report cache effectiveness.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.weyl.coordinates import weyl_coordinates, weyl_coordinates_many

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.polytopes.coverage import CoverageSet


class CoordinateCache:
    """LRU cache mapping two-qubit unitaries to Weyl coordinates.

    Keys are byte strings of the matrix rounded to ``decimals`` decimal
    places, so numerically identical blocks produced by different gate
    sequences share an entry.

    All operations are guarded by a lock: the module-level instance is
    shared by every concurrent routing trial when a thread executor is in
    use, and unguarded ``move_to_end``/``popitem`` pairs race into
    ``KeyError``.  Coordinate extraction itself runs outside the lock.
    """

    def __init__(self, maxsize: int = 4096, decimals: int = 9) -> None:
        self.maxsize = maxsize
        self.decimals = decimals
        self._store: OrderedDict[bytes, tuple[float, float, float]] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def _key(self, unitary: np.ndarray) -> bytes:
        rounded = np.round(np.asarray(unitary, dtype=complex), self.decimals)
        return rounded.tobytes()

    def _insert(self, key: bytes, value: tuple[float, float, float]) -> None:
        # Caller must hold the lock.
        self._store[key] = value
        if len(self._store) > self.maxsize:
            self._store.popitem(last=False)

    def coordinate(self, unitary: np.ndarray) -> tuple[float, float, float]:
        """Coordinate of ``unitary`` with memoisation."""
        key = self._key(unitary)
        with self._lock:
            cached = self._store.get(key)
            if cached is not None:
                self.hits += 1
                self._store.move_to_end(key)
                return cached
            self.misses += 1
        # Extract outside the lock — this is the expensive part, and a
        # duplicate computation by a racing thread is deterministic anyway.
        value = tuple(weyl_coordinates(unitary))
        with self._lock:
            self._insert(key, value)
        return value

    def coordinates_many(
        self, unitaries: list[np.ndarray]
    ) -> list[tuple[float, float, float]]:
        """Coordinates of a batch of unitaries with memoisation.

        Cache misses are deduplicated by key and extracted through one
        :func:`weyl_coordinates_many` call, so a consolidation pass pays the
        eigenvalue/candidate machinery once per *distinct* block matrix —
        and the whole miss set is one numpy batch rather than a Python loop.
        """
        keys = [self._key(unitary) for unitary in unitaries]
        results: list[tuple[float, float, float] | None] = [None] * len(keys)
        miss_order: list[bytes] = []
        miss_positions: list[int] = []
        miss_index: dict[bytes, int] = {}
        with self._lock:
            for position, key in enumerate(keys):
                cached = self._store.get(key)
                if cached is not None:
                    self.hits += 1
                    self._store.move_to_end(key)
                    results[position] = cached
                elif key in miss_index:
                    # A duplicate matrix earlier in this same batch: counted
                    # as a hit-to-be because it costs one extraction.
                    self.hits += 1
                else:
                    self.misses += 1
                    miss_index[key] = len(miss_order)
                    miss_order.append(key)
                    miss_positions.append(position)
        if miss_order:
            # Extract outside the lock — the expensive part, batched.
            distinct = [unitaries[position] for position in miss_positions]
            extracted = weyl_coordinates_many(np.stack(distinct))
            values = [
                (float(row[0]), float(row[1]), float(row[2]))
                for row in extracted
            ]
            with self._lock:
                for key, value in zip(miss_order, values):
                    self._insert(key, value)
            for position, key in enumerate(keys):
                if results[position] is None:
                    results[position] = values[miss_index[key]]
        return results  # type: ignore[return-value]

    def put(self, unitary: np.ndarray, coordinate: tuple[float, float, float]) -> None:
        """Insert a known coordinate (used when mirroring analytically)."""
        key = self._key(unitary)
        with self._lock:
            self._insert(key, tuple(coordinate))

    def info(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._store),
            }

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __getstate__(self) -> dict:
        # Locks cannot be pickled; process-pool workers get a cache copy
        # with a fresh lock.
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


#: Module-level cache shared by the transpiler passes (cleared per run if
#: deterministic measurements are needed).
GLOBAL_COORDINATE_CACHE = CoordinateCache()


# -- persistent coverage-set cache ------------------------------------------

#: Bump when the pickled CoverageSet layout changes incompatibly, or when a
#: construction-semantics change is not already captured by the probe
#: fingerprint below (e.g. the landmark-anchoring optimiser).
COVERAGE_CACHE_VERSION = 1

#: Memoised construction fingerprint (computed once per process).
_CONSTRUCTION_FINGERPRINT: str | None = None


def _construction_fingerprint() -> str:
    """Digest of a tiny deterministic slice of coverage construction.

    Runs the real sampling pipeline (basis matrices, structured/random
    locals, batched Weyl extraction, canonicalisation) and the mirror
    transform on fixed seeds and hashes the resulting coordinates.  Any
    change to that machinery — new landmark constants, different candidate
    scoring, a tweaked mirror branch — changes the digest and therefore the
    cache key, so warm machines can never keep serving pre-change geometry
    while cold machines build post-change sets.
    """
    global _CONSTRUCTION_FINGERPRINT
    if _CONSTRUCTION_FINGERPRINT is None:
        from repro.polytopes.coverage import (
            _LANDMARKS,
            _STRUCTURED_ANGLES,
            sample_ansatz_coordinates,
        )
        from repro.weyl.mirror import mirror_coordinates_many

        probe = sample_ansatz_coordinates("sqrt_iswap", 2, 6, seed=123)
        mirrored = mirror_coordinates_many(probe)
        payload = (
            np.round(probe, 12).tobytes()
            + np.round(mirrored, 12).tobytes()
            + repr((_LANDMARKS, _STRUCTURED_ANGLES)).encode()
        )
        _CONSTRUCTION_FINGERPRINT = hashlib.sha256(payload).hexdigest()[:16]
    return _CONSTRUCTION_FINGERPRINT

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "MIRAGE_CACHE_DIR"

#: Environment variable disabling the disk cache entirely ("1"/"true").
CACHE_DISABLE_ENV = "MIRAGE_CACHE_DISABLE"


def coverage_cache_dir() -> Path:
    """Directory holding persistent coverage-set entries.

    ``$MIRAGE_CACHE_DIR`` wins; the default is ``~/.cache/mirage`` (or
    ``$XDG_CACHE_HOME/mirage`` when set).
    """
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "mirage"


def coverage_cache_enabled() -> bool:
    """Whether the persistent coverage cache is active."""
    flag = os.environ.get(CACHE_DISABLE_ENV, "").strip().lower()
    return flag not in {"1", "true", "yes"}


def coverage_cache_key(**parameters) -> str:
    """Stable cache key for one coverage-set build configuration.

    Every parameter that influences the built polytopes participates, plus
    the format version and a fingerprint of the construction machinery
    itself, so any change — basis, mirror, sample count, seed, depth bound,
    anchoring, tolerance, pickle layout, or the sampling/extraction code —
    lands in a different entry.
    """
    payload = sorted(parameters.items()) + [
        ("version", COVERAGE_CACHE_VERSION),
        ("construction", _construction_fingerprint()),
    ]
    digest = hashlib.sha256(repr(payload).encode()).hexdigest()[:24]
    return f"coverage-v{COVERAGE_CACHE_VERSION}-{digest}"


def coverage_cache_path(**parameters) -> Path:
    """Path of the cache entry for one build configuration."""
    return coverage_cache_dir() / f"{coverage_cache_key(**parameters)}.pkl"


def _validate_cached_entry(entry: object, parameters: dict) -> bool:
    """Sanity-check an unpickled cache entry against its build parameters.

    The exception path of :func:`load_cached_coverage_set` already covers
    truncated or garbage bytes; this guards the nastier case of a *valid*
    pickle holding the wrong thing — a foreign object written under our
    key, or an entry whose payload does not match the parameters that
    keyed it (e.g. a hash collision or a hand-edited cache directory).
    """
    from repro.polytopes.coverage import CoverageSet

    if not isinstance(entry, CoverageSet):
        return False
    if not getattr(entry, "polytopes", None):
        return False
    basis = parameters.get("basis")
    if basis is not None and entry.basis != basis:
        return False
    mirror = parameters.get("mirror")
    if mirror is not None and bool(entry.mirrored) != bool(mirror):
        return False
    return True


def load_cached_coverage_set(**parameters) -> "CoverageSet | None":
    """Load a coverage set from disk, or ``None`` on miss/corruption.

    A corrupt, truncated or otherwise unreadable entry — including a
    well-formed pickle that does not hold a plausible coverage set for
    ``parameters`` — is deleted (best effort) and treated as a miss, so
    a crashed writer, format drift or a poisoned cache directory can
    never wedge the cache: the caller rebuilds and atomically rewrites
    the entry instead of raising.
    """
    if not coverage_cache_enabled():
        return None
    path = coverage_cache_path(**parameters)
    try:
        with open(path, "rb") as handle:
            entry = pickle.load(handle)
    except FileNotFoundError:
        return None
    except Exception:
        try:
            path.unlink()
        except OSError:
            pass
        return None
    if not _validate_cached_entry(entry, parameters):
        try:
            path.unlink()
        except OSError:
            pass
        return None
    return entry


def store_coverage_set(coverage: "CoverageSet", **parameters) -> Path | None:
    """Persist a coverage set atomically; returns the path (or ``None``).

    The pickle is written to a temporary sibling file and moved into place
    with ``os.replace``, so readers only ever see complete entries even
    with concurrent writers.  I/O and serialisation failures are swallowed
    — the cache is an optimisation, never a correctness dependency.
    """
    if not coverage_cache_enabled():
        return None
    path = coverage_cache_path(**parameters)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            mode="wb", dir=path.parent, prefix="tmp-coverage-", delete=False
        )
        try:
            with handle:
                pickle.dump(coverage, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(handle.name, path)
        except BaseException:
            os.unlink(handle.name)
            raise
    except Exception:
        return None
    return path


def clear_coverage_cache() -> int:
    """Delete every persistent coverage entry; returns the removed count.

    Also sweeps orphaned ``tmp-coverage-*`` files left behind by writers
    killed between temp-file creation and the atomic rename.
    """
    directory = coverage_cache_dir()
    removed = 0
    if not directory.is_dir():
        return removed
    for pattern in ("coverage-v*.pkl", "tmp-coverage-*"):
        for entry in directory.glob(pattern):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
    return removed
