"""Coverage polytopes — the numerical substitute for monodromy polytopes."""

from repro.polytopes.cache import GLOBAL_COORDINATE_CACHE, CoordinateCache
from repro.polytopes.coverage import (
    CircuitPolytope,
    CoverageSet,
    build_circuit_polytope,
    build_coverage_set,
    get_coverage_set,
    sample_ansatz_coordinates,
)
from repro.polytopes.haar_score import (
    HaarScoreResult,
    cost_to_fidelity,
    coverage_volume_report,
    expected_cost,
    haar_score,
    score_comparison,
)
from repro.polytopes.polytope import WeylPolytope

__all__ = [
    "GLOBAL_COORDINATE_CACHE",
    "CoordinateCache",
    "CircuitPolytope",
    "CoverageSet",
    "build_circuit_polytope",
    "build_coverage_set",
    "get_coverage_set",
    "sample_ansatz_coordinates",
    "HaarScoreResult",
    "cost_to_fidelity",
    "coverage_volume_report",
    "expected_cost",
    "haar_score",
    "score_comparison",
    "WeylPolytope",
]
