"""Coverage polytopes — the numerical substitute for monodromy polytopes."""

from repro.polytopes.cache import (
    GLOBAL_COORDINATE_CACHE,
    CoordinateCache,
    clear_coverage_cache,
    coverage_cache_dir,
    coverage_cache_enabled,
    coverage_cache_path,
)
from repro.polytopes.coverage import (
    CircuitPolytope,
    CoverageSet,
    build_circuit_polytope,
    build_coverage_set,
    get_coverage_set,
    load_or_build_coverage_set,
    sample_ansatz_coordinates,
)
from repro.polytopes.haar_score import (
    HaarScoreResult,
    cost_to_fidelity,
    coverage_volume_report,
    expected_cost,
    haar_score,
    score_comparison,
)
from repro.polytopes.polytope import WeylPolytope
from repro.polytopes.registry import (
    DEFAULT_REGISTRY,
    CoverageRegistry,
    RegistryHandle,
)

__all__ = [
    "DEFAULT_REGISTRY",
    "CoverageRegistry",
    "RegistryHandle",
    "GLOBAL_COORDINATE_CACHE",
    "CoordinateCache",
    "CircuitPolytope",
    "CoverageSet",
    "build_circuit_polytope",
    "build_coverage_set",
    "clear_coverage_cache",
    "coverage_cache_dir",
    "coverage_cache_enabled",
    "coverage_cache_path",
    "get_coverage_set",
    "load_or_build_coverage_set",
    "sample_ansatz_coordinates",
    "HaarScoreResult",
    "cost_to_fidelity",
    "coverage_volume_report",
    "expected_cost",
    "haar_score",
    "score_comparison",
    "WeylPolytope",
]
