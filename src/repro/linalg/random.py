"""Random unitary sampling.

Haar-distributed unitaries are the workhorse of the paper's Section III
analysis: coverage volumes are Haar-weighted, and the Haar score is the
expected decomposition cost of a Haar-random two-qubit unitary.
"""

from __future__ import annotations

import numpy as np


def _as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce a seed or generator into a ``numpy.random.Generator``."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def haar_unitary(
    dim: int, seed: int | np.random.Generator | None = None
) -> np.ndarray:
    """Sample a Haar-random unitary of dimension ``dim``.

    Uses the QR decomposition of a complex Ginibre matrix with the phase
    correction of Mezzadri (2007), which makes the distribution exactly Haar
    rather than merely "QR of a Gaussian".
    """
    rng = _as_rng(seed)
    ginibre = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(ginibre)
    diag = np.diagonal(r)
    phases = diag / np.abs(diag)
    return q * phases


def random_su2(seed: int | np.random.Generator | None = None) -> np.ndarray:
    """Sample a Haar-random single-qubit special unitary."""
    u = haar_unitary(2, seed)
    det = np.linalg.det(u)
    return u / np.sqrt(det)


def random_two_qubit_unitary(
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Sample a Haar-random two-qubit unitary (4x4)."""
    return haar_unitary(4, seed)


def random_local_pair(
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Sample a random product of two single-qubit unitaries ``u1 (x) u0``."""
    rng = _as_rng(seed)
    return np.kron(haar_unitary(2, rng), haar_unitary(2, rng))


def random_statevector(
    num_qubits: int, seed: int | np.random.Generator | None = None
) -> np.ndarray:
    """Sample a Haar-random pure state on ``num_qubits`` qubits."""
    rng = _as_rng(seed)
    dim = 2**num_qubits
    vec = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return vec / np.linalg.norm(vec)
