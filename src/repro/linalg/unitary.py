"""Generic unitary-matrix helpers.

The rest of the library treats two-qubit unitaries as plain 4x4 numpy
arrays; this module collects the small amount of matrix algebra that the
higher layers need — checking unitarity, comparing unitaries up to a global
phase, fidelity measures and embedding small unitaries into larger registers
for circuit simulation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import CircuitError

DEFAULT_ATOL = 1e-9


def is_unitary(matrix: np.ndarray, atol: float = 1e-8) -> bool:
    """Return ``True`` if ``matrix`` is (numerically) unitary."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix.conj().T @ matrix, identity, atol=atol))


def is_hermitian(matrix: np.ndarray, atol: float = 1e-8) -> bool:
    """Return ``True`` if ``matrix`` equals its conjugate transpose."""
    matrix = np.asarray(matrix, dtype=complex)
    return bool(np.allclose(matrix, matrix.conj().T, atol=atol))


def global_phase_align(matrix: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Rescale ``matrix`` by a global phase so that it best matches ``reference``.

    The optimal phase maximises ``Re(Tr(reference^dag, phase*matrix))``, which
    is achieved by rotating by the phase of ``Tr(reference^dag matrix)``.
    """
    overlap = np.trace(reference.conj().T @ matrix)
    if abs(overlap) < 1e-14:
        return matrix
    return matrix * (overlap.conjugate() / abs(overlap))


def equal_up_to_global_phase(
    a: np.ndarray, b: np.ndarray, atol: float = 1e-7
) -> bool:
    """Check whether two matrices are equal up to a global phase factor."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return False
    aligned = global_phase_align(a, b)
    return bool(np.allclose(aligned, b, atol=atol))


def remove_global_phase(matrix: np.ndarray) -> np.ndarray:
    """Return a special-unitary representative (determinant one) of ``matrix``."""
    matrix = np.asarray(matrix, dtype=complex)
    dim = matrix.shape[0]
    det = np.linalg.det(matrix)
    if abs(det) < 1e-14:
        raise CircuitError("matrix is singular; cannot normalise global phase")
    return matrix / det ** (1.0 / dim)


def trace_inner_product(a: np.ndarray, b: np.ndarray) -> complex:
    """Hilbert-Schmidt inner product ``Tr(a^dag b)``."""
    return complex(np.trace(np.asarray(a).conj().T @ np.asarray(b)))


def unitary_entanglement_fidelity(a: np.ndarray, b: np.ndarray) -> float:
    """Entanglement (process) fidelity between unitaries ``a`` and ``b``.

    ``F_e = |Tr(a^dag b)|^2 / d^2`` — invariant under a global phase of
    either argument.
    """
    d = a.shape[0]
    return float(abs(trace_inner_product(a, b)) ** 2 / d**2)


def average_gate_fidelity(a: np.ndarray, b: np.ndarray) -> float:
    """Average gate fidelity between unitaries ``a`` and ``b``.

    ``F_avg = (d * F_e + 1) / (d + 1)`` with ``F_e`` the entanglement
    fidelity.  This is the measure used when accepting approximate
    decompositions.
    """
    d = a.shape[0]
    fe = unitary_entanglement_fidelity(a, b)
    return float((d * fe + 1) / (d + 1))


def hilbert_schmidt_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Phase-invariant Hilbert-Schmidt distance ``sqrt(1 - F_e)``."""
    return float(np.sqrt(max(0.0, 1.0 - unitary_entanglement_fidelity(a, b))))


def closest_unitary(matrix: np.ndarray) -> np.ndarray:
    """Project ``matrix`` onto the unitary group via polar decomposition."""
    u, _, vh = np.linalg.svd(np.asarray(matrix, dtype=complex))
    return u @ vh


def kron_all(matrices: Iterable[np.ndarray]) -> np.ndarray:
    """Kronecker product of an iterable of matrices, left to right."""
    out: np.ndarray | None = None
    for m in matrices:
        out = np.asarray(m, dtype=complex) if out is None else np.kron(out, m)
    if out is None:
        return np.eye(1, dtype=complex)
    return out


def embed_unitary(
    unitary: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Embed a small unitary acting on ``qubits`` into an ``num_qubits`` register.

    Uses the little-endian convention: qubit 0 is the least-significant bit of
    the computational-basis index.  ``qubits[0]`` is the least-significant
    qubit of ``unitary``.

    Args:
        unitary: ``2^k x 2^k`` matrix.
        qubits: the ``k`` register positions it acts on (all distinct).
        num_qubits: total register width.

    Returns:
        The ``2^n x 2^n`` matrix acting on the full register.
    """
    unitary = np.asarray(unitary, dtype=complex)
    k = len(qubits)
    if unitary.shape != (2**k, 2**k):
        raise CircuitError(
            f"unitary of shape {unitary.shape} does not act on {k} qubits"
        )
    if len(set(qubits)) != k:
        raise CircuitError(f"duplicate qubits in {qubits!r}")
    if any(q < 0 or q >= num_qubits for q in qubits):
        raise CircuitError(f"qubit index out of range in {qubits!r}")

    dim = 2**num_qubits
    out = np.zeros((dim, dim), dtype=complex)
    others = [q for q in range(num_qubits) if q not in qubits]

    for col in range(dim):
        # Split the column index into the "acted on" part and the rest.
        small_col = 0
        for bit_pos, q in enumerate(qubits):
            small_col |= ((col >> q) & 1) << bit_pos
        rest = col
        for q in qubits:
            rest &= ~(1 << q)
        column_vector = unitary[:, small_col]
        for small_row, amplitude in enumerate(column_vector):
            if amplitude == 0:
                continue
            row = rest
            for bit_pos, q in enumerate(qubits):
                row |= ((small_row >> bit_pos) & 1) << q
            out[row, col] += amplitude
    # "others" documented for clarity; rest bits pass through unchanged.
    del others
    return out


def apply_unitary_to_state(
    state: np.ndarray, unitary: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Apply a small unitary to selected qubits of a statevector.

    This reshapes the state into a tensor and contracts only the acted-on
    axes, which is far cheaper than building the embedded matrix when the
    register is wide.
    """
    state = np.asarray(state, dtype=complex)
    k = len(qubits)
    if state.shape != (2**num_qubits,):
        raise CircuitError("statevector has wrong length")
    tensor = state.reshape([2] * num_qubits)
    gate = np.asarray(unitary, dtype=complex).reshape([2] * (2 * k))
    # Tensor axis i holds qubit (num_qubits - 1 - i); reshaped gate axes j
    # (outputs) and k + j (inputs) both act on gate bit (k - 1 - j), which is
    # register qubit ``qubits[k - 1 - j]``.
    input_axes = [num_qubits - 1 - qubits[k - 1 - j] for j in range(k)]
    contracted = np.tensordot(
        gate, tensor, axes=(list(range(k, 2 * k)), input_axes)
    )
    result = np.moveaxis(contracted, list(range(k)), input_axes)
    return result.reshape(2**num_qubits)
