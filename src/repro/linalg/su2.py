"""Single-qubit (SU(2)) rotations and Euler-angle decomposition.

The numerical decomposition ansatz (paper Fig. 2) interleaves arbitrary
single-qubit gates between applications of the two-qubit basis gate; those
single-qubit gates are parameterised here as ZYZ Euler rotations, the same
parameterisation used to emit ``U(theta, phi, lambda)`` gates in the final
circuits.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from repro.linalg.constants import X, Y, Z


def rx(theta: float) -> np.ndarray:
    """Rotation about the X axis by ``theta``."""
    half = theta / 2
    return np.array(
        [
            [math.cos(half), -1j * math.sin(half)],
            [-1j * math.sin(half), math.cos(half)],
        ],
        dtype=complex,
    )


def ry(theta: float) -> np.ndarray:
    """Rotation about the Y axis by ``theta``."""
    half = theta / 2
    return np.array(
        [
            [math.cos(half), -math.sin(half)],
            [math.sin(half), math.cos(half)],
        ],
        dtype=complex,
    )


def rz(theta: float) -> np.ndarray:
    """Rotation about the Z axis by ``theta``."""
    half = theta / 2
    return np.array(
        [[cmath.exp(-1j * half), 0], [0, cmath.exp(1j * half)]], dtype=complex
    )


def u3(theta: float, phi: float, lam: float) -> np.ndarray:
    """The generic single-qubit gate ``U(theta, phi, lambda)``.

    Matches the OpenQASM / IBM convention::

        U = [[cos(t/2),            -e^{i lam} sin(t/2)],
             [e^{i phi} sin(t/2),   e^{i(phi+lam)} cos(t/2)]]
    """
    half = theta / 2
    return np.array(
        [
            [math.cos(half), -cmath.exp(1j * lam) * math.sin(half)],
            [
                cmath.exp(1j * phi) * math.sin(half),
                cmath.exp(1j * (phi + lam)) * math.cos(half),
            ],
        ],
        dtype=complex,
    )


def zyz_angles(unitary: np.ndarray) -> tuple[float, float, float, float]:
    """Decompose a single-qubit unitary as ``e^{i alpha} Rz(phi) Ry(theta) Rz(lam)``.

    Returns:
        ``(theta, phi, lam, alpha)`` — the Euler angles and global phase.
    """
    unitary = np.asarray(unitary, dtype=complex)
    det = np.linalg.det(unitary)
    alpha = cmath.phase(det) / 2
    su = unitary * cmath.exp(-1j * alpha)

    # su = [[a, b], [-b*, a*]] with |a|^2 + |b|^2 = 1 for SU(2).
    a = su[0, 0]
    b = su[0, 1]
    theta = 2 * math.atan2(abs(b), abs(a))

    # With theta in [0, pi], both cos(theta/2) and sin(theta/2) are
    # non-negative, so su[1, 1] = cos(theta/2) e^{i(phi+lam)/2} and
    # su[1, 0] = sin(theta/2) e^{i(phi-lam)/2} give the phase sums directly.
    if abs(a) < 1e-12:
        plus = 0.0  # theta = pi: only phi - lam is physical.
        minus = 2 * cmath.phase(su[1, 0])
    elif abs(b) < 1e-12:
        plus = 2 * cmath.phase(su[1, 1])  # theta = 0: only phi + lam matters.
        minus = 0.0
    else:
        plus = 2 * cmath.phase(su[1, 1])
        minus = 2 * cmath.phase(su[1, 0])
    phi = (plus + minus) / 2
    lam = (plus - minus) / 2

    # The phase sums are only recovered modulo 2*pi, and Rz is 4*pi periodic,
    # so the reconstruction can come out off by a global sign; fold that sign
    # into the global phase.
    rebuilt = rz(phi) @ ry(theta) @ rz(lam)
    overlap = np.trace(rebuilt.conj().T @ su)
    if overlap.real < 0:
        alpha += math.pi
    return theta, phi, lam, alpha


def zyz_matrix(theta: float, phi: float, lam: float, alpha: float = 0.0) -> np.ndarray:
    """Rebuild the unitary ``e^{i alpha} Rz(phi) Ry(theta) Rz(lam)``."""
    return cmath.exp(1j * alpha) * (rz(phi) @ ry(theta) @ rz(lam))


def u3_from_zyz(theta: float, phi: float, lam: float) -> np.ndarray:
    """``U3`` matrix equivalent (up to global phase) of the ZYZ angles."""
    return u3(theta, phi, lam)


def so3_rotation(axis: np.ndarray, angle: float) -> np.ndarray:
    """SU(2) rotation ``exp(-i angle/2 (axis . sigma))`` about a Bloch axis."""
    axis = np.asarray(axis, dtype=float)
    axis = axis / np.linalg.norm(axis)
    generator = axis[0] * X + axis[1] * Y + axis[2] * Z
    return (
        math.cos(angle / 2) * np.eye(2, dtype=complex)
        - 1j * math.sin(angle / 2) * generator
    )
