"""MIRAGE reproduction: mirror-gate aware quantum transpilation.

The top-level package re-exports the small public API most users need:

* :func:`repro.transpile` — transpile a circuit for a topology + basis gate,
  with or without MIRAGE mirror-gate routing.
* :class:`repro.circuits.QuantumCircuit` — the circuit IR.
* :mod:`repro.circuits.library` — benchmark circuit generators.
* :mod:`repro.polytopes` — coverage-set / Haar-score analysis.
"""

from __future__ import annotations

__version__ = "1.0.0"

# Re-exported lazily to keep import time low for scripts that only need a
# subpackage; the names below are resolved on first attribute access.
_LAZY_EXPORTS = {
    "transpile": "repro.core.transpile",
    "transpile_many": "repro.core.transpile",
    "build_mirage_pipeline": "repro.core.pipeline",
    "TranspileResult": "repro.core.results",
    "BatchResult": "repro.core.results",
    "QuantumCircuit": "repro.circuits.circuit",
    "WeylCoordinate": "repro.weyl.coordinates",
}


def __getattr__(name: str):
    if name in _LAZY_EXPORTS:
        import importlib

        module = importlib.import_module(_LAZY_EXPORTS[name])
        return getattr(module, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = [
    "transpile",
    "transpile_many",
    "build_mirage_pipeline",
    "TranspileResult",
    "BatchResult",
    "QuantumCircuit",
    "WeylCoordinate",
    "__version__",
]
