"""Transpilation-as-a-service tier: asyncio front-end over the batch engine."""

from repro.service.service import (
    BREAKER_COOLDOWN_ENV,
    BREAKER_THRESHOLD_ENV,
    BREAKER_WINDOW_ENV,
    DEFAULT_BREAKER_COOLDOWN_S,
    DEFAULT_BREAKER_THRESHOLD,
    DEFAULT_BREAKER_WINDOW_S,
    DEFAULT_DRAIN_S,
    DEFAULT_WINDOW_MS,
    DRAIN_ENV,
    MAX_PENDING_ENV,
    TENANT_QUOTA_ENV,
    WINDOW_ENV,
    MirageService,
    ServiceClient,
    service_window_ms,
)

__all__ = [
    "BREAKER_COOLDOWN_ENV",
    "BREAKER_THRESHOLD_ENV",
    "BREAKER_WINDOW_ENV",
    "DEFAULT_BREAKER_COOLDOWN_S",
    "DEFAULT_BREAKER_THRESHOLD",
    "DEFAULT_BREAKER_WINDOW_S",
    "DEFAULT_DRAIN_S",
    "DEFAULT_WINDOW_MS",
    "DRAIN_ENV",
    "MAX_PENDING_ENV",
    "TENANT_QUOTA_ENV",
    "WINDOW_ENV",
    "MirageService",
    "ServiceClient",
    "service_window_ms",
]
