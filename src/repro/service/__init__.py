"""Transpilation-as-a-service tier: asyncio front-end over the batch engine."""

from repro.service.service import (
    DEFAULT_WINDOW_MS,
    WINDOW_ENV,
    MirageService,
    ServiceClient,
    service_window_ms,
)

__all__ = [
    "DEFAULT_WINDOW_MS",
    "WINDOW_ENV",
    "MirageService",
    "ServiceClient",
    "service_window_ms",
]
