"""Transpilation-as-a-service: the asyncio front-end over the batch engine.

:class:`MirageService` turns the one-shot batch API into a long-lived
request-serving tier:

* **Admission windows** — requests arriving within a configurable window
  (``MIRAGE_SERVICE_WINDOW_MS``, or the ``window_ms`` argument) that
  share a batch-compatibility key (topology, basis, method, selection
  and the trial knobs) are coalesced into **one**
  :func:`~repro.core.transpile.transpile_many` dispatch on the streaming
  scheduler — the coverage set is pickled once as the session anchor and
  every request's trials share one worker-pool conversation.
* **Byte-identity** — each request carries its own seed into the batch
  through ``circuit_seeds``, so the result returned to a caller is
  byte-identical to a direct ``transpile(circuit, ..., seed=seed)``
  call: coalescing is invisible in every output bit.
* **Admission control** — a service-wide pending cap
  (``MIRAGE_SERVICE_MAX_PENDING``) and a per-tenant quota
  (``MIRAGE_SERVICE_TENANT_QUOTA``) shed excess submissions with a
  typed :class:`~repro.exceptions.ServiceOverloadError` carrying a
  ``retry_after_ms`` hint, before any window slot or executor work is
  consumed.  Sealed windows interleave tenants round-robin so one hot
  tenant cannot starve the others of dispatch slots.
* **Deadline propagation** — ``submit(..., deadline_ms=...)`` stamps an
  absolute deadline that flows through the window into per-chunk
  dispatch records; an expiring request resolves with a typed
  :class:`~repro.exceptions.DeadlineExceededError` (a loop-side safety
  timer guarantees *never a hang*) while sibling requests in the same
  window complete normally and byte-identically.
* **Circuit breaker** — repeated recovery events (pool respawns,
  executor/transport downgrades) within a sliding window trip a
  breaker that routes subsequent windows to in-process degraded serial
  execution — still byte-identical by the digest guarantee — then
  half-opens with a probe window after a cooldown.
* **Warm pools** — the service owns (or borrows) one
  :class:`~repro.transpiler.executors.TrialExecutor` for its lifetime
  and pre-spawns its workers, so no request pays pool-spawn latency;
  each window dispatch holds an executor lease, making a shutdown
  racing an in-flight batch fail loudly instead of killing workers
  under it.
* **Coverage registry** — coverage lookups route through a
  :class:`~repro.polytopes.registry.CoverageRegistry` (in-memory L1 with
  single-flight builds over the ``$MIRAGE_CACHE_DIR`` disk L2), so N
  concurrent cold requests trigger exactly one build and one pickle.
* **Graceful drain** — :meth:`MirageService.aclose` stops admissions
  (further submissions raise
  :class:`~repro.exceptions.ServiceClosedError`), seals open windows,
  waits for in-flight dispatches under a cap
  (``MIRAGE_SERVICE_DRAIN_S``) and only then tears the executor down —
  zero leaked workers, zero leaked shared-memory segments.
* **Provenance** — :meth:`MirageService.stats` exposes request/tenant
  counts, shed/deadline/breaker counters, per-window queue waits and
  the dispatch counters inherited from
  :attr:`~repro.core.results.BatchResult.dispatch`, suitable for
  dashboards.

The service inherits the PR-7 fault-tolerance contract wholesale: a
worker killed or hung mid-window is respawned and only its lost chunks
replayed, so the affected requests still resolve with byte-identical
results and ``aclose()`` still leaves zero shared-memory segments and
zero live workers.  The deterministic fault plan
(``MIRAGE_FAULT_PLAN``) extends to the service tier with
``shed:request:<ordinal>`` (shed the Nth submission) and
``trip_breaker:window:<ordinal>`` (treat the Nth dispatched window as a
threshold worth of failures); a malformed plan fails fast at service
construction with the accepted grammar named.
"""

from __future__ import annotations

import asyncio
import collections
import dataclasses
import itertools
import os
import threading
import time
from typing import Sequence

import numpy as np

from repro.exceptions import (
    DeadlineExceededError,
    ServiceClosedError,
    ServiceOverloadError,
)
from repro.circuits.circuit import QuantumCircuit
from repro.core.results import BatchResult, TranspileResult
from repro.core.transpile import transpile_many
from repro.polytopes.registry import CoverageRegistry
from repro.transpiler.executors import (
    SerialExecutor,
    TrialExecutor,
    owns_executor,
    resolve_executor,
)
from repro.transpiler.faults import FaultPlan
from repro.transpiler.topologies import CouplingMap

#: Environment variable holding the default admission window in
#: milliseconds.  ``0`` disables coalescing (every request dispatches
#: on the next event-loop tick); unset or unparsable falls back to
#: :data:`DEFAULT_WINDOW_MS`.
WINDOW_ENV = "MIRAGE_SERVICE_WINDOW_MS"

#: Default admission window (milliseconds) when neither the constructor
#: argument nor the environment variable is given.
DEFAULT_WINDOW_MS = 10.0

#: Environment variable capping service-wide pending (admitted but
#: unresolved) requests.  Unset, unparsable or ``<= 0`` means unlimited.
MAX_PENDING_ENV = "MIRAGE_SERVICE_MAX_PENDING"

#: Environment variable capping pending requests *per tenant*.  Unset,
#: unparsable or ``<= 0`` means unlimited.
TENANT_QUOTA_ENV = "MIRAGE_SERVICE_TENANT_QUOTA"

#: Environment variable for the breaker trip threshold — recovery
#: events (respawns + executor/transport downgrades) within the sliding
#: window needed to open the breaker.
BREAKER_THRESHOLD_ENV = "MIRAGE_SERVICE_BREAKER_THRESHOLD"

#: Environment variable for the breaker's sliding failure window, in
#: seconds.
BREAKER_WINDOW_ENV = "MIRAGE_SERVICE_BREAKER_WINDOW_S"

#: Environment variable for the open-state cooldown before the breaker
#: half-opens with a probe window, in seconds.
BREAKER_COOLDOWN_ENV = "MIRAGE_SERVICE_BREAKER_COOLDOWN_S"

#: Environment variable capping how long ``aclose()`` waits for
#: in-flight windows before abandoning their unresolved futures, in
#: seconds.
DRAIN_ENV = "MIRAGE_SERVICE_DRAIN_S"

#: Breaker defaults when neither constructor nor environment supplies a
#: value.
DEFAULT_BREAKER_THRESHOLD = 3
DEFAULT_BREAKER_WINDOW_S = 30.0
DEFAULT_BREAKER_COOLDOWN_S = 5.0

#: Default drain cap (seconds) for :meth:`MirageService.aclose`.
DEFAULT_DRAIN_S = 30.0


def service_window_ms() -> float:
    """Admission window in milliseconds from ``MIRAGE_SERVICE_WINDOW_MS``.

    Non-numeric or negative values fall back to the default so a typo in
    deployment configuration degrades to default behaviour rather than
    crashing the service at construction time.
    """
    raw = os.environ.get(WINDOW_ENV, "").strip()
    if not raw:
        return DEFAULT_WINDOW_MS
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_WINDOW_MS
    return value if value >= 0 else DEFAULT_WINDOW_MS


def _env_limit(name: str) -> int | None:
    """Positive-int limit from the environment; ``None`` when unlimited."""
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def _env_seconds(name: str, default: float) -> float:
    """Non-negative float from the environment, with a default."""
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value >= 0 else default


def _topology_key(topology: "CouplingMap | str") -> object:
    """Hashable batch-compatibility key component for a topology.

    Coupling maps with identical edge sets are interchangeable (the
    geometry, not the instance, determines routing), so they coalesce
    into the same window.
    """
    if isinstance(topology, CouplingMap):
        return ("coupling", topology.num_qubits, tuple(topology.edges))
    return ("name", topology)


def _aggression_key(aggression: object) -> object:
    """Hashable key component for an aggression specification."""
    if isinstance(aggression, (list, tuple)):
        return tuple(aggression)
    return aggression


def _interleave_tenants(
    requests: "list[_PendingRequest]",
) -> "list[_PendingRequest]":
    """Deterministic round-robin interleave of a window's requests.

    Tenants cycle in order of first appearance and each tenant's own
    requests stay FIFO, so a tenant that stuffed a window cannot push
    other tenants' requests to the back of the dispatch order.  Because
    every request carries its own seed through ``circuit_seeds``, the
    reorder never changes an output bit — only the position (and hence
    the streaming completion order) inside the batch.
    """
    queues: "collections.OrderedDict[str, collections.deque]" = (
        collections.OrderedDict()
    )
    for request in requests:
        queues.setdefault(request.tenant, collections.deque()).append(request)
    order: list[_PendingRequest] = []
    while queues:
        for tenant in list(queues):
            order.append(queues[tenant].popleft())
            if not queues[tenant]:
                del queues[tenant]
    return order


@dataclasses.dataclass(frozen=True)
class _WindowKey:
    """Batch-compatibility key: requests sharing it can ride one batch."""

    topology: object
    basis: str
    method: str
    selection: str
    aggression: object
    layout_trials: int
    refinement_rounds: int
    routing_trials: int
    use_vf2: bool


@dataclasses.dataclass
class _PendingRequest:
    """One submitted request waiting for its window to dispatch."""

    circuit: QuantumCircuit
    seed: object
    tenant: str
    future: asyncio.Future
    enqueued: float
    deadline: float | None = None
    timer: asyncio.TimerHandle | None = None


@dataclasses.dataclass
class _Window:
    """An open admission window accumulating compatible requests."""

    id: int
    key: _WindowKey
    topology: "CouplingMap | str"
    requests: list[_PendingRequest]
    opened: float
    handle: asyncio.TimerHandle | None = None
    sealed: bool = False
    degraded: bool = False
    probe: bool = False


class _CircuitBreaker:
    """Sliding-window circuit breaker over per-window recovery events.

    Counts recovery events (pool respawns, executor downgrades,
    transport downgrades) reported by each dispatched window's
    :attr:`~repro.core.results.BatchResult.dispatch` counters.  When
    ``threshold`` events accumulate within ``window_s`` seconds the
    breaker **opens**: subsequent windows are routed to in-process
    degraded serial execution (byte-identical outputs — only the
    latency profile changes).  After ``cooldown_s`` seconds open, the
    breaker **half-opens**: the next window runs on the primary
    executor as a probe; a clean probe closes the breaker, a dirty one
    re-opens it.  All transitions are recorded for :meth:`stats`.
    """

    def __init__(
        self, threshold: int, window_s: float, cooldown_s: float, t0: float
    ) -> None:
        self.threshold = threshold
        self.window_s = window_s
        self.cooldown_s = cooldown_s
        self.state = "closed"
        self.trips = 0
        self.opened_at: float | None = None
        self.transitions: list[dict] = []
        self._events: collections.deque[float] = collections.deque()
        self._t0 = t0

    def _shift(self, to: str, now: float, window: int, reason: str) -> None:
        self.transitions.append(
            {
                "from": self.state,
                "to": to,
                "window": window,
                "reason": reason,
                "at_s": round(now - self._t0, 3),
            }
        )
        self.state = to

    def _prune(self, now: float) -> None:
        while self._events and now - self._events[0] > self.window_s:
            self._events.popleft()

    def route(self, now: float, window: int) -> str:
        """Routing decision for the next window.

        Returns ``"primary"`` (breaker closed), ``"degraded"`` (open,
        cooldown still running) or ``"probe"`` (half-open — run on the
        primary executor and judge the outcome).
        """
        if self.state == "open":
            if self.opened_at is not None and (
                now - self.opened_at >= self.cooldown_s
            ):
                self._shift("half_open", now, window, "cooldown elapsed")
            else:
                return "degraded"
        if self.state == "half_open":
            return "probe"
        return "primary"

    def record(
        self, failures: int, now: float, window: int, injected: bool
    ) -> None:
        """Fold one primary-executor window's recovery events in."""
        reason = "injected trip" if injected else "recovery events"
        if self.state == "half_open":
            self._events.clear()
            if failures:
                self.trips += 1
                self.opened_at = now
                self._shift("open", now, window, f"probe failed: {reason}")
            else:
                self._shift("closed", now, window, "probe succeeded")
            return
        if self.state != "closed":
            return
        self._events.extend([now] * failures)
        self._prune(now)
        if len(self._events) >= self.threshold:
            self.trips += 1
            self.opened_at = now
            self._events.clear()
            self._shift("open", now, window, reason)

    def stats(self) -> dict:
        """Snapshot: state, trip count, thresholds and transitions."""
        return {
            "state": self.state,
            "trips": self.trips,
            "threshold": self.threshold,
            "window_s": self.window_s,
            "cooldown_s": self.cooldown_s,
            "recent_failures": len(self._events),
            "transitions": [dict(t) for t in self.transitions],
        }


class ServiceClient:
    """In-process client bound to one tenant of a :class:`MirageService`.

    The thinnest possible client: :meth:`transpile` forwards to
    :meth:`MirageService.submit` with the bound tenant attached, so test
    harnesses (and in-process embedders) talk to the service exactly the
    way a network front-end would — submit, await, inspect.
    """

    def __init__(self, service: "MirageService", tenant: str) -> None:
        self._service = service
        self.tenant = tenant

    async def transpile(
        self,
        circuit: QuantumCircuit,
        topology: "CouplingMap | str",
        **kwargs: object,
    ) -> TranspileResult:
        """Submit one request under this client's tenant and await it."""
        return await self._service.submit(
            circuit, topology, tenant=self.tenant, **kwargs
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServiceClient(tenant={self.tenant!r})"


class MirageService:
    """Long-lived asyncio transpilation service over the batch engine.

    Parameters
    ----------
    executor : str, TrialExecutor, or None
        Trial executor serving every window — ``"threads"`` (default),
        ``"processes"``, ``"serial"``/``None``, or a borrowed instance
        (left open on :meth:`aclose`; owned executors are closed).
    max_workers : int, optional
        Worker count for executors created from a string spec.
    window_ms : float, optional
        Admission window in milliseconds; defaults to
        ``MIRAGE_SERVICE_WINDOW_MS`` (or 10 ms).  ``0`` dispatches every
        request on the next event-loop tick without coalescing.
    registry : CoverageRegistry, optional
        Coverage-set registry shared by every request; a fresh private
        registry by default.  Pass
        :data:`repro.polytopes.registry.DEFAULT_REGISTRY` to share sets
        with direct ``transpile()`` callers in the same process.
    coverage_params : dict, optional
        Build parameters (``num_samples``, ``seed``, ``max_depth``,
        ``mirror``) bound into every registry lookup — one coverage
        configuration per service instance.
    prewarm : bool
        Spawn the executor's full worker complement before the first
        dispatch (on first submit / ``async with`` entry).
    max_pending : int, optional
        Service-wide cap on admitted-but-unresolved requests; excess
        submissions are shed with
        :class:`~repro.exceptions.ServiceOverloadError`.  Defaults to
        ``MIRAGE_SERVICE_MAX_PENDING`` (unset means unlimited).
    tenant_quota : int, optional
        Per-tenant cap on pending requests; defaults to
        ``MIRAGE_SERVICE_TENANT_QUOTA`` (unset means unlimited).
    breaker_threshold : int, optional
        Recovery events within the breaker window that open the
        breaker.  Defaults to ``MIRAGE_SERVICE_BREAKER_THRESHOLD``
        (or 3).
    breaker_window_s : float, optional
        Sliding failure-window width in seconds; defaults to
        ``MIRAGE_SERVICE_BREAKER_WINDOW_S`` (or 30).
    breaker_cooldown_s : float, optional
        Open-state cooldown before a half-open probe, in seconds;
        defaults to ``MIRAGE_SERVICE_BREAKER_COOLDOWN_S`` (or 5).
    drain_s : float, optional
        :meth:`aclose` drain cap in seconds; defaults to
        ``MIRAGE_SERVICE_DRAIN_S`` (or 30).

    Notes
    -----
    All service methods must be called from a running event loop; the
    dispatch work itself runs on worker threads (and the executor's
    pool), so the loop stays responsive while batches execute.  Fixed
    request seeds give byte-identical results to direct
    :func:`~repro.core.transpile.transpile` calls regardless of how
    requests interleave, coalesce, or which executor serves them —
    including windows served by the breaker's degraded serial path.

    The deterministic fault plan (``MIRAGE_FAULT_PLAN``) is parsed
    eagerly at construction, so a malformed plan fails fast here with
    the accepted ``kind:stage:ordinal`` grammar named instead of
    surfacing mid-dispatch.
    """

    def __init__(
        self,
        *,
        executor: "str | TrialExecutor | None" = "threads",
        max_workers: int | None = None,
        window_ms: float | None = None,
        registry: CoverageRegistry | None = None,
        coverage_params: dict | None = None,
        prewarm: bool = True,
        max_pending: int | None = None,
        tenant_quota: int | None = None,
        breaker_threshold: int | None = None,
        breaker_window_s: float | None = None,
        breaker_cooldown_s: float | None = None,
        drain_s: float | None = None,
    ) -> None:
        # Fail fast on a malformed fault plan: a service that would
        # crash mid-window on its first injected fault should refuse to
        # construct instead.
        self._fault_plan = FaultPlan.from_env()
        self._executor = resolve_executor(executor, max_workers)
        self._owns_executor = owns_executor(executor)
        self._executor_closed = False
        self._degraded_executor: SerialExecutor | None = None
        self._window_seconds = (
            window_ms if window_ms is not None else service_window_ms()
        ) / 1000.0
        self.registry = registry if registry is not None else CoverageRegistry()
        self._coverage_params = dict(coverage_params or {})
        self._prewarm = prewarm
        self._warmed = False
        self._closed = False
        self._draining = False
        self._max_pending = (
            max_pending if max_pending is not None
            else _env_limit(MAX_PENDING_ENV)
        )
        self._tenant_quota = (
            tenant_quota if tenant_quota is not None
            else _env_limit(TENANT_QUOTA_ENV)
        )
        self._drain_seconds = (
            drain_s if drain_s is not None
            else _env_seconds(DRAIN_ENV, DEFAULT_DRAIN_S)
        )
        self._breaker = _CircuitBreaker(
            threshold=(
                breaker_threshold if breaker_threshold is not None
                else _env_limit(BREAKER_THRESHOLD_ENV)
                or DEFAULT_BREAKER_THRESHOLD
            ),
            window_s=(
                breaker_window_s if breaker_window_s is not None
                else _env_seconds(BREAKER_WINDOW_ENV, DEFAULT_BREAKER_WINDOW_S)
            ),
            cooldown_s=(
                breaker_cooldown_s if breaker_cooldown_s is not None
                else _env_seconds(
                    BREAKER_COOLDOWN_ENV, DEFAULT_BREAKER_COOLDOWN_S
                )
            ),
            t0=time.monotonic(),
        )
        self._window_ids = itertools.count()
        self._open_windows: dict[_WindowKey, _Window] = {}
        self._inflight: dict[asyncio.Task, _Window] = {}
        # One window dispatches at a time: the executor's dispatch paths
        # are thread-safe, but serialising windows keeps the per-window
        # dispatch-counter deltas exact (provenance would otherwise mix
        # concurrent windows' counters) and makes breaker decisions
        # race-free.
        self._dispatch_lock = threading.Lock()
        self._requests = 0
        self._completed = 0
        self._failed = 0
        self._pending = 0
        self._tenant_pending: collections.Counter[str] = collections.Counter()
        self._submit_ordinal = 0
        self._window_ordinal = 0
        self._shed_total = 0
        self._shed_reasons: collections.Counter[str] = collections.Counter()
        self._deadline_expirations = 0
        self._degraded_windows = 0
        self._drain_abandoned = 0
        self._tenant_counts: collections.Counter[str] = collections.Counter()
        self._window_log: list[dict] = []

    # -- client surface -----------------------------------------------------

    def client(self, tenant: str = "default") -> ServiceClient:
        """Create an in-process :class:`ServiceClient` for ``tenant``."""
        return ServiceClient(self, tenant)

    async def submit(
        self,
        circuit: QuantumCircuit,
        topology: "CouplingMap | str",
        *,
        basis: str = "sqrt_iswap",
        seed: "int | np.random.SeedSequence | None" = 11,
        tenant: str = "default",
        deadline_ms: float | None = None,
        method: str = "mirage",
        selection: str = "depth",
        aggression: "int | str | Sequence[int] | None" = None,
        layout_trials: int = 4,
        refinement_rounds: int = 2,
        routing_trials: int = 1,
        use_vf2: bool = True,
    ) -> TranspileResult:
        """Submit one transpilation request; await its result.

        Requests submitted within one admission window that share a
        batch-compatibility key (topology geometry, basis, method,
        selection and the trial knobs) are coalesced into a single
        streaming batch dispatch.  The returned
        :class:`~repro.core.results.TranspileResult` is byte-identical
        to ``transpile(circuit, topology, ..., seed=seed)`` — the
        request's seed rides the batch through ``circuit_seeds``, so
        coalescing never changes an output bit.

        ``deadline_ms`` bounds the whole request: once the deadline
        expires the await resolves with
        :class:`~repro.exceptions.DeadlineExceededError` — enforced
        per-chunk inside the dispatch layer *and* by a loop-side safety
        timer, so an expired request can never hang — while sibling
        requests coalesced into the same window complete normally.

        Raises
        ------
        ServiceClosedError
            If the service has been closed or a drain has begun.
        ServiceOverloadError
            If admission control sheds the request — the service-wide
            pending cap or this tenant's quota is exhausted (or a
            ``shed:request:<ordinal>`` fault-plan entry targets it).
            Carries ``retry_after_ms``.
        DeadlineExceededError
            If ``deadline_ms`` expires before the result is ready
            (including a non-positive deadline at submission).
        """
        if self._draining or self._closed:
            raise ServiceClosedError("service is closed")
        retry_after_ms = max(self._window_seconds * 1000.0, 1.0)
        ordinal = self._submit_ordinal
        self._submit_ordinal += 1
        if self._fault_plan is not None and self._fault_plan.service_fault(
            "shed", ordinal
        ):
            self._shed(tenant, "injected")
            raise ServiceOverloadError(
                f"submission #{ordinal} shed by fault plan",
                retry_after_ms=retry_after_ms,
            )
        if self._max_pending is not None and self._pending >= self._max_pending:
            self._shed(tenant, "queue_full")
            raise ServiceOverloadError(
                f"pending queue is full ({self._pending}/{self._max_pending})",
                retry_after_ms=retry_after_ms,
            )
        if (
            self._tenant_quota is not None
            and self._tenant_pending[tenant] >= self._tenant_quota
        ):
            self._shed(tenant, "tenant_quota")
            raise ServiceOverloadError(
                f"tenant {tenant!r} is over quota "
                f"({self._tenant_pending[tenant]}/{self._tenant_quota})",
                retry_after_ms=retry_after_ms,
            )
        deadline: float | None = None
        if deadline_ms is not None:
            if deadline_ms <= 0:
                self._deadline_expirations += 1
                raise DeadlineExceededError(
                    f"deadline of {deadline_ms:g} ms expired at submission"
                )
            deadline = time.monotonic() + deadline_ms / 1000.0
        loop = asyncio.get_running_loop()
        if self._prewarm and not self._warmed:
            self._warmed = True
            await asyncio.to_thread(self._executor.prewarm)
            if self._draining or self._closed:  # closed while warming
                raise ServiceClosedError("service is closed")
        key = _WindowKey(
            topology=_topology_key(topology),
            basis=basis,
            method=method,
            selection=selection,
            aggression=_aggression_key(aggression),
            layout_trials=layout_trials,
            refinement_rounds=refinement_rounds,
            routing_trials=routing_trials,
            use_vf2=use_vf2,
        )
        request = _PendingRequest(
            circuit=circuit,
            seed=seed,
            tenant=tenant,
            future=loop.create_future(),
            enqueued=time.perf_counter(),
            deadline=deadline,
        )
        self._admit(request)
        if deadline is not None:
            request.timer = loop.call_later(
                max(deadline - time.monotonic(), 0.0),
                self._expire_request,
                request,
            )
        window = self._open_windows.get(key)
        if window is None:
            window = _Window(
                id=next(self._window_ids),
                key=key,
                topology=topology,
                requests=[],
                opened=time.perf_counter(),
            )
            self._open_windows[key] = window
            if self._window_seconds > 0:
                window.handle = loop.call_later(
                    self._window_seconds, self._seal, window
                )
            else:
                window.handle = None
                loop.call_soon(self._seal, window)
        window.requests.append(request)
        return await request.future

    # -- admission bookkeeping ----------------------------------------------

    def _shed(self, tenant: str, reason: str) -> None:
        """Count one shed submission (pre-admission, nothing to undo)."""
        self._shed_total += 1
        self._shed_reasons[reason] += 1

    def _admit(self, request: _PendingRequest) -> None:
        """Count an admitted request; arrange release on resolution."""
        self._requests += 1
        self._tenant_counts[request.tenant] += 1
        self._pending += 1
        self._tenant_pending[request.tenant] += 1
        request.future.add_done_callback(
            lambda future, request=request: self._release(request, future)
        )

    def _release(
        self, request: _PendingRequest, future: asyncio.Future
    ) -> None:
        """Done-callback: free the request's admission slot (loop thread)."""
        self._pending -= 1
        self._tenant_pending[request.tenant] -= 1
        if self._tenant_pending[request.tenant] <= 0:
            del self._tenant_pending[request.tenant]
        if request.timer is not None:
            request.timer.cancel()
            request.timer = None
        if not future.cancelled():
            if isinstance(future.exception(), DeadlineExceededError):
                self._deadline_expirations += 1

    def _expire_request(self, request: _PendingRequest) -> None:
        """Loop-side safety timer: settle an expired request's future.

        The dispatch layer normally resolves expired requests itself
        (per-chunk deadline checks); this timer is the never-hang
        guarantee for the windows where it cannot — e.g. a worker hung
        past the deadline with the watchdog disabled.
        """
        if not request.future.done():
            request.future.set_exception(
                DeadlineExceededError(
                    "request deadline expired before its result was ready"
                )
            )

    # -- window lifecycle ---------------------------------------------------

    def _seal(self, window: _Window) -> None:
        """Close a window to admissions and launch its dispatch task."""
        if window.sealed:
            return
        window.sealed = True
        if window.handle is not None:
            window.handle.cancel()
        if self._open_windows.get(window.key) is window:
            del self._open_windows[window.key]
        window.requests = _interleave_tenants(window.requests)
        task = asyncio.get_running_loop().create_task(self._dispatch(window))
        self._inflight[task] = window
        task.add_done_callback(lambda task: self._inflight.pop(task, None))

    async def _dispatch(self, window: _Window) -> None:
        """Run one sealed window's batch and deliver its results."""
        try:
            batch, waits = await asyncio.to_thread(self._run_window, window)
        except BaseException as exc:  # noqa: BLE001 - forwarded to callers
            self._failed += len(window.requests)
            self._window_log.append(self._window_record(window, None, None, exc))
            for request in window.requests:
                if not request.future.done():
                    request.future.set_exception(exc)
            return
        self._window_log.append(self._window_record(window, batch, waits, None))
        for request, result in zip(window.requests, batch.results):
            if isinstance(result, TranspileResult):
                self._completed += 1
                if not request.future.done():
                    request.future.set_result(result)
            else:
                self._failed += 1
                if not request.future.done():
                    request.future.set_exception(result)

    def _run_window(
        self, window: _Window
    ) -> tuple[BatchResult, list[float]]:
        """Dispatch one window's batch on a worker thread (blocking)."""
        with self._dispatch_lock:
            ordinal = self._window_ordinal
            self._window_ordinal += 1
            injected_trip = (
                self._fault_plan is not None
                and self._fault_plan.service_fault("trip_breaker", ordinal)
            )
            route = self._breaker.route(time.monotonic(), window.id)
            window.degraded = route == "degraded"
            window.probe = route == "probe"
            if window.degraded:
                self._degraded_windows += 1
                executor = self._degraded()
            else:
                executor = self._executor
            with executor.lease():
                started = time.perf_counter()
                waits = [
                    started - request.enqueued for request in window.requests
                ]
                key = window.key
                handle = self.registry.bind(
                    topology=key.topology, **self._coverage_params
                )
                deadlines = [request.deadline for request in window.requests]
                batch = transpile_many(
                    [request.circuit for request in window.requests],
                    window.topology,
                    basis=key.basis,
                    method=key.method,
                    selection=key.selection,
                    aggression=key.aggression,
                    layout_trials=key.layout_trials,
                    refinement_rounds=key.refinement_rounds,
                    routing_trials=key.routing_trials,
                    coverage=handle,
                    use_vf2=key.use_vf2,
                    circuit_seeds=[
                        request.seed for request in window.requests
                    ],
                    executor=executor,
                    scheduler="stream",
                    circuit_deadlines=(
                        deadlines
                        if any(d is not None for d in deadlines)
                        else None
                    ),
                    on_error="return",
                )
            if not window.degraded:
                failures = self._recovery_events(batch.dispatch)
                if injected_trip:
                    failures = max(failures, self._breaker.threshold)
                self._breaker.record(
                    failures, time.monotonic(), window.id, injected_trip
                )
        return batch, waits

    def _degraded(self) -> SerialExecutor:
        """The lazily created in-process executor for open-breaker windows."""
        if self._degraded_executor is None:
            self._degraded_executor = SerialExecutor()
        return self._degraded_executor

    @staticmethod
    def _recovery_events(dispatch: dict | None) -> int:
        """Breaker failure score of one window's dispatch counters.

        Local recovery (pool respawns, executor/transport downgrades)
        and remote recovery (stream reconnects, hosts marked down) feed
        the same score, so a service mounted on a
        :class:`~repro.transpiler.remote.RemoteExecutor` trips its
        breaker on a degrading cluster exactly as it would on a
        degrading pool.
        """
        if not dispatch:
            return 0
        return sum(
            dispatch.get(counter, 0)
            for counter in (
                "respawns",
                "executor_downgrades",
                "transport_downgrades",
                "reconnects",
                "host_downgrades",
            )
        )

    def _window_record(
        self,
        window: _Window,
        batch: BatchResult | None,
        waits: list[float] | None,
        error: BaseException | None,
    ) -> dict:
        tenants: collections.Counter[str] = collections.Counter(
            request.tenant for request in window.requests
        )
        record = {
            "window": window.id,
            "basis": window.key.basis,
            "method": window.key.method,
            "requests": len(window.requests),
            "tenants": dict(tenants),
            "degraded": window.degraded,
            "probe": window.probe,
        }
        if waits:
            record["queue_wait_seconds"] = {
                "max": round(max(waits), 6),
                "mean": round(sum(waits) / len(waits), 6),
            }
            tenant_waits: dict[str, float] = {}
            for request, wait in zip(window.requests, waits):
                tenant_waits[request.tenant] = max(
                    tenant_waits.get(request.tenant, 0.0), wait
                )
            record["queue_wait_seconds"]["by_tenant"] = {
                tenant: round(wait, 6)
                for tenant, wait in sorted(tenant_waits.items())
            }
        if batch is not None:
            record["dispatch"] = batch.dispatch
            record["executor"] = batch.executor
            record["fanout"] = batch.fanout
            record["runtime_seconds"] = round(batch.runtime_seconds, 6)
            record["expired"] = sum(
                1
                for result in batch.results
                if not isinstance(result, TranspileResult)
            )
        if error is not None:
            record["error"] = repr(error)
        return record

    # -- introspection ------------------------------------------------------

    def stats(self) -> dict:
        """Service provenance snapshot for dashboards and tests.

        Returns a dict with aggregate counters (``requests``,
        ``completed``, ``failed``, per-``tenants`` request counts),
        admission-control state (``pending``, ``tenant_pending``,
        ``shed_requests`` with a per-reason ``shed`` breakdown, and the
        effective ``limits``), deadline accounting
        (``deadline_expirations``), the circuit ``breaker`` snapshot
        (state, trips, transitions) with ``degraded_windows`` served
        in-process, window accounting (``windows`` dispatched,
        ``coalesced_requests`` — requests that shared a window with at
        least one other, ``open_windows`` still admitting,
        ``drain_abandoned`` futures failed at the drain cap), the
        per-window ``window_log`` (request/tenant counts, queue waits
        including a per-tenant breakdown, and the dispatch counters
        inherited from :attr:`~repro.core.results.BatchResult.dispatch`),
        plus ``registry`` hit/miss/build/eviction counters and the
        executor's cumulative ``dispatch_stats``.
        """
        stats = {
            "requests": self._requests,
            "completed": self._completed,
            "failed": self._failed,
            "tenants": dict(self._tenant_counts),
            "pending": self._pending,
            "tenant_pending": dict(self._tenant_pending),
            "shed_requests": self._shed_total,
            "shed": dict(self._shed_reasons),
            "deadline_expirations": self._deadline_expirations,
            "limits": {
                "max_pending": self._max_pending,
                "tenant_quota": self._tenant_quota,
                "window_ms": self._window_seconds * 1000.0,
                "drain_s": self._drain_seconds,
            },
            "breaker": self._breaker.stats(),
            "degraded_windows": self._degraded_windows,
            "windows": len(self._window_log),
            "coalesced_requests": sum(
                record["requests"]
                for record in self._window_log
                if record["requests"] > 1
            ),
            "open_windows": len(self._open_windows),
            "drain_abandoned": self._drain_abandoned,
            "window_log": [dict(record) for record in self._window_log],
            "registry": self.registry.stats(),
            "executor": dict(self._executor.dispatch_stats),
        }
        if self._degraded_executor is not None:
            stats["degraded_executor"] = dict(
                self._degraded_executor.dispatch_stats
            )
        return stats

    @property
    def closed(self) -> bool:
        """Whether :meth:`aclose` has run (or begun running)."""
        return self._draining or self._closed

    @property
    def executor(self) -> TrialExecutor:
        """The trial executor serving this service's window dispatches."""
        return self._executor

    # -- lifecycle ----------------------------------------------------------

    async def aclose(self) -> None:
        """Drain and shut down: flush open windows, close owned resources.

        The drain sequence: admissions stop (further submissions raise
        :class:`~repro.exceptions.ServiceClosedError`), every open
        admission window is sealed and dispatched immediately, and
        in-flight dispatches are awaited for up to ``drain_s`` seconds
        (``MIRAGE_SERVICE_DRAIN_S``).  Requests still unresolved at the
        cap have their futures failed with ``ServiceClosedError``
        (counted under ``drain_abandoned``), after which the dispatch
        threads are *still* awaited — the executor teardown never races
        a live lease — and, when the service created its executor, the
        worker pool is shut down.  After ``aclose`` returns no worker
        processes and no shared-memory segments created on the
        service's behalf remain.  Idempotent.
        """
        if self._closed:
            # A second aclose still drains whatever is in flight.
            while self._inflight:
                await asyncio.gather(
                    *list(self._inflight), return_exceptions=True
                )
            return
        self._draining = True
        for window in list(self._open_windows.values()):
            self._seal(window)
        if self._inflight:
            done, pending = await asyncio.wait(
                set(self._inflight), timeout=self._drain_seconds or None
            )
            if pending:
                for task in pending:
                    window = self._inflight.get(task)
                    if window is None:
                        continue
                    for request in window.requests:
                        if not request.future.done():
                            self._drain_abandoned += 1
                            request.future.set_exception(
                                ServiceClosedError(
                                    "service closed: request abandoned at "
                                    f"the {self._drain_seconds:g}s drain cap"
                                )
                            )
                # The executor cannot be torn down under a live lease:
                # keep awaiting the dispatch threads (the task watchdog
                # bounds how long a hung window can hold one).
                await asyncio.gather(*pending, return_exceptions=True)
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        self._closed = True
        if self._owns_executor and not self._executor_closed:
            self._executor_closed = True
            await asyncio.to_thread(self._executor.close)
        if self._degraded_executor is not None:
            await asyncio.to_thread(self._degraded_executor.close)

    async def __aenter__(self) -> "MirageService":
        if self._prewarm and not self._warmed:
            self._warmed = True
            await asyncio.to_thread(self._executor.prewarm)
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MirageService(executor={self._executor.name!r}, "
            f"window_ms={self._window_seconds * 1000:g}, "
            f"closed={self.closed})"
        )
