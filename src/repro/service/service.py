"""Transpilation-as-a-service: the asyncio front-end over the batch engine.

:class:`MirageService` turns the one-shot batch API into a long-lived
request-serving tier:

* **Admission windows** — requests arriving within a configurable window
  (``MIRAGE_SERVICE_WINDOW_MS``, or the ``window_ms`` argument) that
  share a batch-compatibility key (topology, basis, method, selection
  and the trial knobs) are coalesced into **one**
  :func:`~repro.core.transpile.transpile_many` dispatch on the streaming
  scheduler — the coverage set is pickled once as the session anchor and
  every request's trials share one worker-pool conversation.
* **Byte-identity** — each request carries its own seed into the batch
  through ``circuit_seeds``, so the result returned to a caller is
  byte-identical to a direct ``transpile(circuit, ..., seed=seed)``
  call: coalescing is invisible in every output bit.
* **Warm pools** — the service owns (or borrows) one
  :class:`~repro.transpiler.executors.TrialExecutor` for its lifetime
  and pre-spawns its workers, so no request pays pool-spawn latency;
  each window dispatch holds an executor lease, making a shutdown
  racing an in-flight batch fail loudly instead of killing workers
  under it.
* **Coverage registry** — coverage lookups route through a
  :class:`~repro.polytopes.registry.CoverageRegistry` (in-memory L1 with
  single-flight builds over the ``$MIRAGE_CACHE_DIR`` disk L2), so N
  concurrent cold requests trigger exactly one build and one pickle.
* **Provenance** — :meth:`MirageService.stats` exposes request/tenant
  counts, per-window queue waits and the dispatch counters inherited
  from :attr:`~repro.core.results.BatchResult.dispatch`, suitable for
  dashboards.

The service inherits the PR-7 fault-tolerance contract wholesale: a
worker killed or hung mid-window is respawned and only its lost chunks
replayed, so the affected requests still resolve with byte-identical
results and ``aclose()`` still leaves zero shared-memory segments and
zero live workers.
"""

from __future__ import annotations

import asyncio
import collections
import dataclasses
import itertools
import os
import threading
import time
from typing import Sequence

import numpy as np

from repro.exceptions import ServiceError
from repro.circuits.circuit import QuantumCircuit
from repro.core.results import BatchResult, TranspileResult
from repro.core.transpile import transpile_many
from repro.polytopes.registry import CoverageRegistry
from repro.transpiler.executors import (
    TrialExecutor,
    owns_executor,
    resolve_executor,
)
from repro.transpiler.topologies import CouplingMap

#: Environment variable holding the default admission window in
#: milliseconds.  ``0`` disables coalescing (every request dispatches
#: on the next event-loop tick); unset or unparsable falls back to
#: :data:`DEFAULT_WINDOW_MS`.
WINDOW_ENV = "MIRAGE_SERVICE_WINDOW_MS"

#: Default admission window (milliseconds) when neither the constructor
#: argument nor the environment variable is given.
DEFAULT_WINDOW_MS = 10.0


def service_window_ms() -> float:
    """Admission window in milliseconds from ``MIRAGE_SERVICE_WINDOW_MS``.

    Non-numeric or negative values fall back to the default so a typo in
    deployment configuration degrades to default behaviour rather than
    crashing the service at construction time.
    """
    raw = os.environ.get(WINDOW_ENV, "").strip()
    if not raw:
        return DEFAULT_WINDOW_MS
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_WINDOW_MS
    return value if value >= 0 else DEFAULT_WINDOW_MS


def _topology_key(topology: "CouplingMap | str") -> object:
    """Hashable batch-compatibility key component for a topology.

    Coupling maps with identical edge sets are interchangeable (the
    geometry, not the instance, determines routing), so they coalesce
    into the same window.
    """
    if isinstance(topology, CouplingMap):
        return ("coupling", topology.num_qubits, tuple(topology.edges))
    return ("name", topology)


def _aggression_key(aggression: object) -> object:
    """Hashable key component for an aggression specification."""
    if isinstance(aggression, (list, tuple)):
        return tuple(aggression)
    return aggression


@dataclasses.dataclass(frozen=True)
class _WindowKey:
    """Batch-compatibility key: requests sharing it can ride one batch."""

    topology: object
    basis: str
    method: str
    selection: str
    aggression: object
    layout_trials: int
    refinement_rounds: int
    routing_trials: int
    use_vf2: bool


@dataclasses.dataclass
class _PendingRequest:
    """One submitted request waiting for its window to dispatch."""

    circuit: QuantumCircuit
    seed: object
    tenant: str
    future: asyncio.Future
    enqueued: float


@dataclasses.dataclass
class _Window:
    """An open admission window accumulating compatible requests."""

    id: int
    key: _WindowKey
    topology: "CouplingMap | str"
    requests: list[_PendingRequest]
    opened: float
    handle: asyncio.TimerHandle | None = None
    sealed: bool = False


class ServiceClient:
    """In-process client bound to one tenant of a :class:`MirageService`.

    The thinnest possible client: :meth:`transpile` forwards to
    :meth:`MirageService.submit` with the bound tenant attached, so test
    harnesses (and in-process embedders) talk to the service exactly the
    way a network front-end would — submit, await, inspect.
    """

    def __init__(self, service: "MirageService", tenant: str) -> None:
        self._service = service
        self.tenant = tenant

    async def transpile(
        self,
        circuit: QuantumCircuit,
        topology: "CouplingMap | str",
        **kwargs: object,
    ) -> TranspileResult:
        """Submit one request under this client's tenant and await it."""
        return await self._service.submit(
            circuit, topology, tenant=self.tenant, **kwargs
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServiceClient(tenant={self.tenant!r})"


class MirageService:
    """Long-lived asyncio transpilation service over the batch engine.

    Parameters
    ----------
    executor : str, TrialExecutor, or None
        Trial executor serving every window — ``"threads"`` (default),
        ``"processes"``, ``"serial"``/``None``, or a borrowed instance
        (left open on :meth:`aclose`; owned executors are closed).
    max_workers : int, optional
        Worker count for executors created from a string spec.
    window_ms : float, optional
        Admission window in milliseconds; defaults to
        ``MIRAGE_SERVICE_WINDOW_MS`` (or 10 ms).  ``0`` dispatches every
        request on the next event-loop tick without coalescing.
    registry : CoverageRegistry, optional
        Coverage-set registry shared by every request; a fresh private
        registry by default.  Pass
        :data:`repro.polytopes.registry.DEFAULT_REGISTRY` to share sets
        with direct ``transpile()`` callers in the same process.
    coverage_params : dict, optional
        Build parameters (``num_samples``, ``seed``, ``max_depth``,
        ``mirror``) bound into every registry lookup — one coverage
        configuration per service instance.
    prewarm : bool
        Spawn the executor's full worker complement before the first
        dispatch (on first submit / ``async with`` entry).

    Notes
    -----
    All service methods must be called from a running event loop; the
    dispatch work itself runs on worker threads (and the executor's
    pool), so the loop stays responsive while batches execute.  Fixed
    request seeds give byte-identical results to direct
    :func:`~repro.core.transpile.transpile` calls regardless of how
    requests interleave, coalesce, or which executor serves them.
    """

    def __init__(
        self,
        *,
        executor: "str | TrialExecutor | None" = "threads",
        max_workers: int | None = None,
        window_ms: float | None = None,
        registry: CoverageRegistry | None = None,
        coverage_params: dict | None = None,
        prewarm: bool = True,
    ) -> None:
        self._executor = resolve_executor(executor, max_workers)
        self._owns_executor = owns_executor(executor)
        self._window_seconds = (
            window_ms if window_ms is not None else service_window_ms()
        ) / 1000.0
        self.registry = registry if registry is not None else CoverageRegistry()
        self._coverage_params = dict(coverage_params or {})
        self._prewarm = prewarm
        self._warmed = False
        self._closed = False
        self._window_ids = itertools.count()
        self._open_windows: dict[_WindowKey, _Window] = {}
        self._inflight: set[asyncio.Task] = set()
        # One window dispatches at a time: the executor's dispatch paths
        # are thread-safe, but serialising windows keeps the per-window
        # dispatch-counter deltas exact (provenance would otherwise mix
        # concurrent windows' counters).
        self._dispatch_lock = threading.Lock()
        self._requests = 0
        self._completed = 0
        self._failed = 0
        self._tenant_counts: collections.Counter[str] = collections.Counter()
        self._window_log: list[dict] = []

    # -- client surface -----------------------------------------------------

    def client(self, tenant: str = "default") -> ServiceClient:
        """Create an in-process :class:`ServiceClient` for ``tenant``."""
        return ServiceClient(self, tenant)

    async def submit(
        self,
        circuit: QuantumCircuit,
        topology: "CouplingMap | str",
        *,
        basis: str = "sqrt_iswap",
        seed: "int | np.random.SeedSequence | None" = 11,
        tenant: str = "default",
        method: str = "mirage",
        selection: str = "depth",
        aggression: "int | str | Sequence[int] | None" = None,
        layout_trials: int = 4,
        refinement_rounds: int = 2,
        routing_trials: int = 1,
        use_vf2: bool = True,
    ) -> TranspileResult:
        """Submit one transpilation request; await its result.

        Requests submitted within one admission window that share a
        batch-compatibility key (topology geometry, basis, method,
        selection and the trial knobs) are coalesced into a single
        streaming batch dispatch.  The returned
        :class:`~repro.core.results.TranspileResult` is byte-identical
        to ``transpile(circuit, topology, ..., seed=seed)`` — the
        request's seed rides the batch through ``circuit_seeds``, so
        coalescing never changes an output bit.

        Raises
        ------
        ServiceError
            If the service has been closed.
        """
        if self._closed:
            raise ServiceError("service is closed")
        loop = asyncio.get_running_loop()
        if self._prewarm and not self._warmed:
            self._warmed = True
            await asyncio.to_thread(self._executor.prewarm)
            if self._closed:  # closed while warming
                raise ServiceError("service is closed")
        key = _WindowKey(
            topology=_topology_key(topology),
            basis=basis,
            method=method,
            selection=selection,
            aggression=_aggression_key(aggression),
            layout_trials=layout_trials,
            refinement_rounds=refinement_rounds,
            routing_trials=routing_trials,
            use_vf2=use_vf2,
        )
        request = _PendingRequest(
            circuit=circuit,
            seed=seed,
            tenant=tenant,
            future=loop.create_future(),
            enqueued=time.perf_counter(),
        )
        self._requests += 1
        self._tenant_counts[tenant] += 1
        window = self._open_windows.get(key)
        if window is None:
            window = _Window(
                id=next(self._window_ids),
                key=key,
                topology=topology,
                requests=[],
                opened=time.perf_counter(),
            )
            self._open_windows[key] = window
            if self._window_seconds > 0:
                window.handle = loop.call_later(
                    self._window_seconds, self._seal, window
                )
            else:
                window.handle = None
                loop.call_soon(self._seal, window)
        window.requests.append(request)
        return await request.future

    # -- window lifecycle ---------------------------------------------------

    def _seal(self, window: _Window) -> None:
        """Close a window to admissions and launch its dispatch task."""
        if window.sealed:
            return
        window.sealed = True
        if window.handle is not None:
            window.handle.cancel()
        if self._open_windows.get(window.key) is window:
            del self._open_windows[window.key]
        task = asyncio.get_running_loop().create_task(self._dispatch(window))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _dispatch(self, window: _Window) -> None:
        """Run one sealed window's batch and deliver its results."""
        try:
            batch, waits = await asyncio.to_thread(self._run_window, window)
        except BaseException as exc:  # noqa: BLE001 - forwarded to callers
            self._failed += len(window.requests)
            self._window_log.append(self._window_record(window, None, None, exc))
            for request in window.requests:
                if not request.future.done():
                    request.future.set_exception(exc)
            return
        self._completed += len(window.requests)
        self._window_log.append(self._window_record(window, batch, waits, None))
        for request, result in zip(window.requests, batch.results):
            if not request.future.done():
                request.future.set_result(result)

    def _run_window(
        self, window: _Window
    ) -> tuple[BatchResult, list[float]]:
        """Dispatch one window's batch on a worker thread (blocking)."""
        with self._dispatch_lock, self._executor.lease():
            started = time.perf_counter()
            waits = [started - request.enqueued for request in window.requests]
            key = window.key
            handle = self.registry.bind(
                topology=key.topology, **self._coverage_params
            )
            batch = transpile_many(
                [request.circuit for request in window.requests],
                window.topology,
                basis=key.basis,
                method=key.method,
                selection=key.selection,
                aggression=key.aggression,
                layout_trials=key.layout_trials,
                refinement_rounds=key.refinement_rounds,
                routing_trials=key.routing_trials,
                coverage=handle,
                use_vf2=key.use_vf2,
                circuit_seeds=[request.seed for request in window.requests],
                executor=self._executor,
                scheduler="stream",
            )
        return batch, waits

    def _window_record(
        self,
        window: _Window,
        batch: BatchResult | None,
        waits: list[float] | None,
        error: BaseException | None,
    ) -> dict:
        tenants: collections.Counter[str] = collections.Counter(
            request.tenant for request in window.requests
        )
        record = {
            "window": window.id,
            "basis": window.key.basis,
            "method": window.key.method,
            "requests": len(window.requests),
            "tenants": dict(tenants),
        }
        if waits:
            record["queue_wait_seconds"] = {
                "max": round(max(waits), 6),
                "mean": round(sum(waits) / len(waits), 6),
            }
        if batch is not None:
            record["dispatch"] = batch.dispatch
            record["executor"] = batch.executor
            record["fanout"] = batch.fanout
            record["runtime_seconds"] = round(batch.runtime_seconds, 6)
        if error is not None:
            record["error"] = repr(error)
        return record

    # -- introspection ------------------------------------------------------

    def stats(self) -> dict:
        """Service provenance snapshot for dashboards and tests.

        Returns a dict with aggregate counters (``requests``,
        ``completed``, ``failed``, per-``tenants`` request counts),
        window accounting (``windows`` dispatched, ``coalesced_requests``
        — requests that shared a window with at least one other,
        ``open_windows`` still admitting), the per-window ``window_log``
        (request/tenant counts, queue waits, and the dispatch counters
        inherited from :attr:`~repro.core.results.BatchResult.dispatch`),
        plus ``registry`` hit/miss/build counters and the executor's
        cumulative ``dispatch_stats``.
        """
        return {
            "requests": self._requests,
            "completed": self._completed,
            "failed": self._failed,
            "tenants": dict(self._tenant_counts),
            "windows": len(self._window_log),
            "coalesced_requests": sum(
                record["requests"]
                for record in self._window_log
                if record["requests"] > 1
            ),
            "open_windows": len(self._open_windows),
            "window_log": [dict(record) for record in self._window_log],
            "registry": self.registry.stats(),
            "executor": dict(self._executor.dispatch_stats),
        }

    @property
    def closed(self) -> bool:
        """Whether :meth:`aclose` has run (or begun running)."""
        return self._closed

    @property
    def executor(self) -> TrialExecutor:
        """The trial executor serving this service's window dispatches."""
        return self._executor

    # -- lifecycle ----------------------------------------------------------

    async def aclose(self) -> None:
        """Drain and shut down: flush open windows, close owned resources.

        Every open admission window is sealed and dispatched immediately
        (pending ``submit`` awaiters resolve normally), in-flight
        dispatches are awaited, and — when the service created its
        executor — the worker pool is shut down.  After ``aclose``
        returns, no worker processes and no shared-memory segments
        created on the service's behalf remain, and further submissions
        raise :class:`~repro.exceptions.ServiceError`.  Idempotent.
        """
        if self._closed:
            # A second aclose still drains whatever is in flight.
            while self._inflight:
                await asyncio.gather(
                    *list(self._inflight), return_exceptions=True
                )
            return
        self._closed = True
        for window in list(self._open_windows.values()):
            self._seal(window)
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        if self._owns_executor:
            await asyncio.to_thread(self._executor.close)

    async def __aenter__(self) -> "MirageService":
        if self._prewarm and not self._warmed:
            self._warmed = True
            await asyncio.to_thread(self._executor.prewarm)
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MirageService(executor={self._executor.name!r}, "
            f"window_ms={self._window_seconds * 1000:g}, "
            f"closed={self._closed})"
        )
