"""Decomposition of unitaries into basis gates (exact, numerical, approximate)."""

from repro.decompose.numerical import (
    AnsatzResult,
    best_approximation_fidelity,
    interleaved_ansatz_matrix,
    is_reachable,
    middle_local_matrix,
    optimize_to_coordinate,
)

__all__ = [
    "AnsatzResult",
    "best_approximation_fidelity",
    "interleaved_ansatz_matrix",
    "is_reachable",
    "middle_local_matrix",
    "optimize_to_coordinate",
]
