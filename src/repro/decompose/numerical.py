"""Numerical decomposition of two-qubit targets into a fixed basis-gate ansatz.

The ansatz is the standard interleaved form of paper Fig. 2: ``k`` copies of
the two-qubit basis gate separated by arbitrary single-qubit gates,

    (L_k)  B  (L_{k-1})  B  ...  (L_1)  B  (L_0)

Because outer single-qubit layers never change the local-equivalence class,
reaching a *canonical class* only requires optimising the ``k - 1`` middle
layers; the objective used here is the distance between Makhlin invariants,
which is smooth and vanishes exactly on local equivalence.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np
from scipy import optimize

from repro.exceptions import DecompositionError
from repro.linalg.random import _as_rng
from repro.linalg.su2 import u3
from repro.weyl.catalog import basis_gate_matrix
from repro.weyl.coordinates import weyl_coordinates
from repro.weyl.invariants import makhlin_from_coordinate, makhlin_invariants

#: Number of real parameters per middle local layer (two U3 gates).
PARAMS_PER_LAYER = 6


def middle_local_matrix(params: Sequence[float]) -> np.ndarray:
    """Build ``u3(q1) (x) u3(q0)`` from six Euler angles."""
    t0, p0, l0, t1, p1, l1 = params
    return np.kron(u3(t1, p1, l1), u3(t0, p0, l0))


def interleaved_ansatz_matrix(
    basis_matrix: np.ndarray, middle_params: Sequence[float]
) -> np.ndarray:
    """Product ``B L_{k-1} B ... L_1 B`` for the given middle parameters.

    ``middle_params`` has ``6 * (k - 1)`` entries; ``k`` is inferred.
    """
    middle_params = np.asarray(middle_params, dtype=float)
    if middle_params.size % PARAMS_PER_LAYER != 0:
        raise DecompositionError(
            "middle parameter vector length must be a multiple of six"
        )
    layers = middle_params.size // PARAMS_PER_LAYER
    product = np.array(basis_matrix, dtype=complex)
    for layer in range(layers):
        chunk = middle_params[
            layer * PARAMS_PER_LAYER : (layer + 1) * PARAMS_PER_LAYER
        ]
        product = basis_matrix @ middle_local_matrix(chunk) @ product
    return product


@dataclasses.dataclass(frozen=True)
class AnsatzResult:
    """Outcome of a numerical ansatz optimisation.

    Attributes:
        basis: basis-gate name.
        depth: number of basis applications ``k``.
        invariant_error: final distance between Makhlin invariants.
        coordinate: Weyl coordinate actually realised by the optimum.
        parameters: optimal middle-layer parameters (length ``6 (k - 1)``).
        success: whether ``invariant_error`` is below the requested tolerance.
    """

    basis: str
    depth: int
    invariant_error: float
    coordinate: tuple[float, float, float]
    parameters: tuple[float, ...]
    success: bool


def optimize_to_coordinate(
    target_coordinate: Sequence[float],
    basis: str,
    depth: int,
    *,
    trials: int = 4,
    maxiter: int = 400,
    tol: float = 1e-3,
    seed: int | np.random.Generator | None = None,
) -> AnsatzResult:
    """Search middle-layer parameters realising a target canonical class.

    Args:
        target_coordinate: Weyl coordinate of the target class.
        basis: basis gate name (see :func:`repro.weyl.basis_gate_matrix`).
        depth: number of basis-gate applications ``k >= 1``.
        trials: independent random restarts.
        maxiter: iteration cap per restart.
        tol: invariant-distance threshold counted as success.
        seed: RNG seed for the restarts.

    Returns:
        The best :class:`AnsatzResult` over all restarts.
    """
    if depth < 1:
        raise DecompositionError("ansatz depth must be at least one")
    rng = _as_rng(seed)
    basis_matrix = basis_gate_matrix(basis)
    target_invariants = np.array(
        makhlin_from_coordinate(tuple(target_coordinate)), dtype=float
    )

    num_params = PARAMS_PER_LAYER * (depth - 1)

    def objective(params: np.ndarray) -> float:
        product = interleaved_ansatz_matrix(basis_matrix, params)
        inv = np.array(makhlin_invariants(product), dtype=float)
        delta = inv - target_invariants
        return float(delta @ delta)

    if num_params == 0:
        # Depth one: the class is fixed; nothing to optimise.
        product = basis_matrix
        inv = np.array(makhlin_invariants(product), dtype=float)
        error = float(np.linalg.norm(inv - target_invariants))
        coordinate = weyl_coordinates(product)
        return AnsatzResult(
            basis=basis,
            depth=depth,
            invariant_error=error,
            coordinate=tuple(coordinate),
            parameters=(),
            success=error <= max(tol, 1e-6) ** 0.5,
        )

    best_value = np.inf
    best_params = np.zeros(num_params)
    for _ in range(max(1, trials)):
        start = rng.uniform(-np.pi, np.pi, size=num_params)
        result = optimize.minimize(
            objective,
            start,
            method="L-BFGS-B",
            options={"maxiter": maxiter},
        )
        if result.fun < best_value:
            best_value = float(result.fun)
            best_params = np.array(result.x)
        if best_value < tol**2:
            break

    product = interleaved_ansatz_matrix(basis_matrix, best_params)
    coordinate = weyl_coordinates(product)
    error = float(np.sqrt(best_value))
    return AnsatzResult(
        basis=basis,
        depth=depth,
        invariant_error=error,
        coordinate=tuple(coordinate),
        parameters=tuple(best_params.tolist()),
        success=error <= tol,
    )


def is_reachable(
    target_coordinate: Sequence[float],
    basis: str,
    depth: int,
    *,
    tol: float = 1e-3,
    trials: int = 4,
    seed: int | np.random.Generator | None = None,
) -> bool:
    """Whether a canonical class is realisable with ``depth`` basis gates."""
    result = optimize_to_coordinate(
        target_coordinate,
        basis,
        depth,
        trials=trials,
        tol=tol,
        seed=seed,
    )
    return result.invariant_error <= tol


def best_approximation_fidelity(
    target_coordinate: Sequence[float],
    basis: str,
    depth: int,
    *,
    trials: int = 3,
    maxiter: int = 150,
    seed: int | np.random.Generator | None = None,
) -> tuple[float, tuple[float, float, float]]:
    """Best average-gate-fidelity approximation of a class at fixed depth.

    Maximises the canonical trace fidelity between the realised class and
    the target class over the ansatz parameters.  Returns the fidelity and
    the realised coordinate.
    """
    from repro.weyl.coordinates import canonical_trace_fidelity

    rng = _as_rng(seed)
    basis_matrix = basis_gate_matrix(basis)
    num_params = PARAMS_PER_LAYER * max(0, depth - 1)
    target = tuple(target_coordinate)

    def negative_fidelity(params: np.ndarray) -> float:
        product = interleaved_ansatz_matrix(basis_matrix, params)
        realised = weyl_coordinates(product)
        return -canonical_trace_fidelity(realised, target)

    if num_params == 0:
        realised = weyl_coordinates(basis_matrix)
        return canonical_trace_fidelity(realised, target), tuple(realised)

    best_value = np.inf
    best_params = np.zeros(num_params)
    for _ in range(max(1, trials)):
        start = rng.uniform(-np.pi, np.pi, size=num_params)
        result = optimize.minimize(
            negative_fidelity,
            start,
            method="Nelder-Mead",
            options={"maxiter": maxiter, "fatol": 1e-7},
        )
        if result.fun < best_value:
            best_value = float(result.fun)
            best_params = np.array(result.x)

    product = interleaved_ansatz_matrix(basis_matrix, best_params)
    realised = weyl_coordinates(product)
    return -best_value, tuple(realised)
