"""Fidelity models and Monte-Carlo Haar-score analysis."""

from repro.fidelity.error_model import (
    DEFAULT_UNIT_FIDELITY,
    ErrorModel,
    relative_infidelity_reduction,
)
from repro.fidelity.monte_carlo import (
    MonteCarloResult,
    approximate_gate_costs,
    strategy_comparison,
)

__all__ = [
    "DEFAULT_UNIT_FIDELITY",
    "ErrorModel",
    "relative_infidelity_reduction",
    "MonteCarloResult",
    "approximate_gate_costs",
    "strategy_comparison",
]
